#!/usr/bin/env python3
"""Compiled backward plans: the lower-once/run-many classical tape.

Every training step re-records a structurally identical autodiff tape,
so ``repro.nn.graph`` lowers it once into a cached backward program
(fused elementwise VJP chains, flattened dispatch, plan-owned cotangent
and GEMM buffers) and replays that program on steps 2+.  Gradients are
bit-identical to the interpreted walk — the compiler only removes
allocation and dispatch, never changes the math.

This script demonstrates the three user-facing surfaces:

1. the global toggle — ``REPRO_TAPE_COMPILE=0`` in the environment, or
   ``repro.nn.tape_compile(False)`` as a scope;
2. the plan cache — step 1 is a miss that lowers, steps 2+ are hits
   (``repro.nn.plan_cache_stats()``);
3. the measured per-step win on a deep tanh autoencoder-style MLP,
   timed interleaved (one uncompiled step, one compiled step, repeat)
   so machine drift cannot bias the ratio.

Run:
    python examples/compiled_training.py
    REPRO_TAPE_COMPILE=0 python examples/compiled_training.py  # all-off
"""

from __future__ import annotations

import os
import statistics
import time

import numpy as np

from repro import nn
from repro.nn import graph


def build_step(rng):
    """One steady-state train step of a deep tanh hourglass MLP."""
    dims = (8, 512, 8, 512, 8, 512, 8)
    batch = 384
    ws = [
        nn.Tensor(rng.normal(size=(a, b)) * 0.3, requires_grad=True)
        for a, b in zip(dims[:-1], dims[1:])
    ]
    bs = [nn.Tensor(np.zeros(b), requires_grad=True) for b in dims[1:]]
    params = ws + bs
    x = nn.Tensor(rng.normal(size=(batch, dims[0])))
    opt = nn.SGD(params, lr=1e-3)

    def step():
        opt.zero_grad(set_to_none=True)
        h = x
        for i, (w, b) in enumerate(zip(ws, bs)):
            h = h @ w + b
            if i < len(ws) - 1:
                h = h.tanh()
        loss = (h * h).sum() * (1.0 / batch)
        loss.backward()
        opt.step()
        return float(loss.data)

    return step


def main() -> None:
    rounds = int(os.environ.get("ROUNDS", 40))
    step = build_step(np.random.default_rng(0))

    print(f"tape compile enabled: {graph.tape_compile_enabled()} "
          f"(REPRO_TAPE_COMPILE={os.environ.get('REPRO_TAPE_COMPILE', '<unset>')})")

    # -- plan cache: one miss to lower, then pure hits ------------------
    graph.clear_plan_cache()
    with graph.tape_compile(True):
        for _ in range(5):
            step()
    stats = graph.plan_cache_stats()
    print(f"plan cache after 5 steps: {stats['misses']} miss (lowered once), "
          f"{stats['hits']} hits, {stats['size']} cached plan(s)")

    # -- gradient equivalence: compiled == interpreted, bitwise ---------
    probe = build_step(np.random.default_rng(1))
    with graph.tape_compile(False):
        loss_ref = probe()
    with graph.tape_compile(True):
        loss_com = build_step(np.random.default_rng(1))()
    print(f"first-step loss interpreted {loss_ref:.12f} vs "
          f"compiled {loss_com:.12f} (bit-identical math)")

    # -- the measured win, interleaved ----------------------------------
    with graph.tape_compile(True):
        step()  # warm both plan cache and allocator
    with graph.tape_compile(False):
        step()
    ratios, t_off, t_on = [], [], []
    for _ in range(rounds):
        with graph.tape_compile(False):
            t0 = time.perf_counter()
            step()
            t1 = time.perf_counter()
        with graph.tape_compile(True):
            step()
            t2 = time.perf_counter()
        t_off.append(t1 - t0)
        t_on.append(t2 - t1)
        ratios.append((t1 - t0) / (t2 - t1))
    print(f"interpreted walk {1e3 * statistics.median(t_off):7.2f} ms/step")
    print(f"compiled plan    {1e3 * statistics.median(t_on):7.2f} ms/step")
    print(f"median speedup   {statistics.median(ratios):7.2f}x "
          f"over {rounds} interleaved rounds")


if __name__ == "__main__":
    main()
