#!/usr/bin/env python3
"""Backend mode: run the quantum engine on interchangeable kernel sets.

The compiled plans in ``repro.quantum.engine`` are backend-agnostic: the
same lowered program dispatches onto whatever kernel set is active.  Two
backends ship — the default single-threaded NumPy kernels, and a
``ThreadedBackend`` that shards the stacked ``(p * batch, 2**n)`` row
dimension across a worker pool (a real win on multi-core hosts, a clean
degrade to the NumPy kernels on serial ones).  Selection mirrors the
precision policy exactly: per layer (``backend="threaded"``), per scope
(``with use_backend("threaded")``), per run
(``TrainConfig(backend="threaded")``), or process-wide via the
``REPRO_BACKEND`` environment variable.

Run:
    python examples/backend_mode.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.models import ScalableQuantumAE
from repro.nn import Tensor, functional as F
from repro.quantum import ThreadedBackend, resolve_backend, use_backend

INPUT_DIM = 1024
N_PATCHES = 16
BATCH = 32
STEPS = 3


def build():
    return ScalableQuantumAE(
        input_dim=INPUT_DIM,
        n_patches=N_PATCHES,
        n_layers=5,
        rng=np.random.default_rng(0),
    )


def training_step_time(model, x, backend):
    from repro.nn import heterogeneous_adam

    optimizer = heterogeneous_adam(model, quantum_lr=0.03, classical_lr=0.01)

    def step():
        optimizer.zero_grad()
        out = model(x)
        loss = F.mse_loss(out.reconstruction, x)
        loss.backward()
        optimizer.step()
        return loss.item()

    with use_backend(backend):
        step()  # warmup (plan compilation, pool spin-up)
        best = float("inf")
        for _ in range(STEPS):
            start = time.perf_counter()
            loss = step()
            best = min(best, time.perf_counter() - start)
    return best, loss


def main() -> None:
    rng = np.random.default_rng(1)
    features = np.abs(rng.normal(size=(BATCH, INPUT_DIM))) + 0.01
    x = Tensor(features)

    threaded = resolve_backend("threaded")
    print(f"threaded backend resolves to {threaded.max_workers} worker(s)")

    # 1. Backends are exact, not approximate: same weights, same outputs.
    #    (min_shard_elements=1 forces sharding even for small states, so
    #    the parallel code path is what gets compared.)
    model = build()
    out_numpy = model(x).reconstruction.data
    with use_backend(ThreadedBackend(max_workers=4, min_shard_elements=1)):
        out_threaded = model(x).reconstruction.data
    print("max |threaded - numpy| deviation: "
          f"{np.abs(out_threaded - out_numpy).max():.2e}")

    # 2. Wall-clock per optimizer step at the paper's largest patch count
    #    (p=16, batch=32 — the stacked row dimension is 512, which shards
    #    across the pool per kernel).
    t_numpy, loss_n = training_step_time(build(), x, "numpy")
    t_threaded, loss_t = training_step_time(build(), x, "threaded")
    print(f"numpy    step: {t_numpy * 1e3:7.1f} ms (loss {loss_n:.5f})")
    print(f"threaded step: {t_threaded * 1e3:7.1f} ms (loss {loss_t:.5f})")
    print(f"speedup: {t_numpy / t_threaded:.2f}x "
          f"({threaded.max_workers} worker(s); ~1.0x expected on one core)")

    # 3. The knobs compose with the precision policy: a float32 model on
    #    the threaded backend stacks both bandwidth levers.
    model32 = ScalableQuantumAE(
        input_dim=INPUT_DIM, n_patches=N_PATCHES, n_layers=5,
        rng=np.random.default_rng(0), dtype="float32",
    )
    with use_backend("threaded"):
        out32 = model32(Tensor(features, dtype=np.float32)).reconstruction
    print(f"float32 + threaded reconstruction dtype: {out32.data.dtype}")


if __name__ == "__main__":
    main()
