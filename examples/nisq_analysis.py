#!/usr/bin/env python3
"""NISQ-readiness analysis of the paper's quantum encoder.

The paper evaluates on an exact simulator; this example asks what changes
on near-term hardware: (1) what the baseline encoder circuit actually
looks like, (2) how many measurement shots the 6-qubit latent needs, and
(3) how fast per-gate depolarizing noise erases the latent signal.

Run:
    python examples/nisq_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.data import load_qm9
from repro.quantum import (
    Circuit,
    NoiseModel,
    draw,
    estimate_expval_z,
    execute,
    noisy_execute,
    shot_noise_std,
)


def main() -> None:
    # 1. The F-BQ encoder: amplitude embedding, 3 strongly entangling
    #    layers, per-qubit Z expectations (Section III-B).
    circuit = (
        Circuit(6)
        .amplitude_embedding(64)
        .strongly_entangling_layers(3)
        .measure_expval()
    )
    print("Baseline quantum encoder (first 12 gate columns):\n")
    print(draw(circuit, max_columns=12))
    print(f"\n{circuit.n_weights} trainable rotation angles, "
          f"{len(circuit.ops)} gates total")

    rng = np.random.default_rng(0)
    weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
    molecules = load_qm9(n_samples=12, seed=0)
    exact, cache = execute(circuit, molecules.features, weights)

    # 2. Shot budget: latent RMSE vs number of measurement shots.
    print("\nShot-noise analysis (latent RMSE vs exact simulator):")
    print(f"{'shots':>8} {'measured RMSE':>14} {'theory (mean)':>14}")
    for shots in (16, 64, 256, 1024, 4096):
        estimate = estimate_expval_z(
            cache.final_state, tuple(range(6)), shots,
            np.random.default_rng(shots),
        )
        rmse = float(np.sqrt(((estimate - exact) ** 2).mean()))
        theory = float(shot_noise_std(exact, shots).mean())
        print(f"{shots:>8} {rmse:>14.4f} {theory:>14.4f}")

    # 3. Depolarizing noise: how much latent signal survives.
    print("\nDepolarizing-noise analysis (trajectory-averaged):")
    print(f"{'rate':>8} {'latent RMSE':>12} {'signal kept':>12}")
    scale = float(np.abs(exact).mean())
    for rate in (0.0, 0.01, 0.05, 0.1):
        noisy = noisy_execute(
            circuit, molecules.features, weights,
            NoiseModel(depolarizing=rate), n_trajectories=80,
            rng=np.random.default_rng(int(rate * 1e4)),
        )
        rmse = float(np.sqrt(((noisy - exact) ** 2).mean()))
        kept = float(np.abs(noisy).mean()) / scale if scale else 0.0
        print(f"{rate:>8.2f} {rmse:>12.4f} {kept:>12.2%}")

    print("\nTakeaway: a few thousand shots recover the exact-simulator")
    print("latent to ~1%, but percent-level gate noise already perturbs it")
    print("more than that — the regime the paper's noiseless simulation")
    print("assumes away.")


if __name__ == "__main__":
    main()
