#!/usr/bin/env python3
"""Batched molecule scoring and constant-memory streaming, side by side.

Scores the same noisy ligand stack three ways — the per-molecule reference
loop, the batched pipeline, and the streaming shard scorer — prints the
identical results with wall-clock timings, then demonstrates bulk
fingerprinting with one Tanimoto GEMM against a reference pool.

Run:
    python examples/pipeline_throughput.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.chem import (
    default_fragment_table,
    morgan_fingerprints,
    novelty,
    score_matrices,
    score_matrices_reference,
    tanimoto_matrix,
)
from repro.chem.batch import MoleculeBatch, sanitize_batch
from repro.data import iter_shards, load_pdbbind_ligands, score_matrix_stream


def timed(label, fn):
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    print(f"  {label:<28} {elapsed * 1e3:8.1f} ms")
    return result, elapsed


def main() -> None:
    n = 192
    print(f"workload: {n} noisy 32x32 ligand matrices "
          "(decode -> sanitize -> QED/logP/SA -> uniqueness)")
    raw = load_pdbbind_ligands(n, seed=2019).raw.astype(np.float64)
    stack = raw + np.random.default_rng(99).normal(0.0, 0.35, size=raw.shape)
    table = default_fragment_table()

    reference, ref_s = timed(
        "per-molecule reference", lambda: score_matrices_reference(stack, table=table)
    )
    batched, batch_s = timed(
        "batched pipeline", lambda: score_matrices(stack, table=table)
    )
    # The streaming scorer folds 64-molecule shards through the same batched
    # substrate; peak memory is one shard, the result is identical.
    streamed, _ = timed(
        "streaming (64-mol shards)",
        lambda: score_matrix_stream(iter_shards(iter(stack), 64), table=table),
    )
    assert batched == reference == streamed
    print(f"  speedup {ref_s / batch_s:.1f}x; all three results identical:")
    print(f"  validity {batched.validity:.2f}  QED {batched.qed:.3f}  "
          f"logP {batched.logp:.3f}  SA {batched.sa:.3f}  "
          f"unique {batched.uniqueness:.2f}")

    print("\nbulk fingerprints + one Tanimoto GEMM:")
    generated = [
        m for m in sanitize_batch(MoleculeBatch.from_matrices(stack))
        if m.num_atoms
    ][:96]
    reference_mols = MoleculeBatch.from_matrices(
        load_pdbbind_ligands(96, seed=77).raw.astype(np.float64)
    ).molecules
    reference_fps = morgan_fingerprints(reference_mols)
    gen_fps = morgan_fingerprints(generated)
    similarity = tanimoto_matrix(gen_fps, reference_fps)
    print(f"  {similarity.shape[0]}x{similarity.shape[1]} similarity matrix, "
          f"max nearest-neighbor sim {similarity.max(axis=1).max():.2f}")
    # Precomputed reference fingerprints make repeated novelty sweeps cheap.
    print(f"  novelty vs reference pool: "
          f"{novelty(generated, reference_fingerprints=reference_fps):.2f}")


if __name__ == "__main__":
    main()
