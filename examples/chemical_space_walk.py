#!/usr/bin/env python3
"""Navigating chemical space with a trained variational autoencoder.

The paper's introduction motivates generative autoencoders as tools for
exploring "the impractically large chemical space".  This example makes
that literal: train a VAE on QM9-like molecules, then (1) walk a straight
line in latent space between two training molecules and decode every step,
and (2) explore the latent neighborhood of one molecule at increasing
radii to find close structural variants.

Run:
    python examples/chemical_space_walk.py
"""

from __future__ import annotations

import numpy as np

from repro.chem import qed, to_smiles
from repro.data import load_qm9
from repro.evaluation import (
    decode_to_molecules,
    interpolate_latent,
    latent_neighborhood,
)
from repro.training import TrainConfig, Trainer


def describe(mol) -> str:
    if mol.num_atoms == 0:
        return "(empty)"
    smiles = to_smiles(mol) if mol.is_connected() else mol.molecular_formula()
    return f"{mol.molecular_formula():10s} QED={qed(mol):.2f}  {smiles[:40]}"


def main() -> None:
    data = load_qm9(n_samples=192, seed=3)
    # Vanilla AE: the paper's Section I points out AEs reconstruct more
    # accurately than VAEs, which is exactly what a crisp latent walk
    # needs (the discretization step swallows blurry decodes).
    from repro.models import ClassicalAE

    model = ClassicalAE(input_dim=64, latent_dim=16, rng=np.random.default_rng(3))
    model.init_output_bias(data.features.mean(axis=0))
    history = Trainer(
        model, TrainConfig(epochs=60, batch_size=32, classical_lr=0.01,
                           seed=3)
    ).fit(data)
    print(f"trained AE: loss {history.train_losses[0]:.3f} -> "
          f"{history.final_train_loss:.3f}\n")

    # 1. Interpolate between two molecules.
    start, end = data.features[0], data.features[1]
    start_mol, end_mol = decode_to_molecules(np.stack([start, end]),
                                             repair=False)
    print("latent-space walk:")
    print(f"  from: {describe(start_mol)}")
    print(f"    to: {describe(end_mol)}\n")
    path = interpolate_latent(model, start, end, steps=7)
    for step, mol in enumerate(decode_to_molecules(path)):
        print(f"  step {step}: {describe(mol)}")

    # 2. Neighborhood exploration around the first molecule.
    print("\nlatent neighborhood (increasing radius):")
    for radius in (0.1, 0.5, 1.5):
        neighbors = latent_neighborhood(
            model, start, n_samples=4, radius=radius,
            rng=np.random.default_rng(int(radius * 10)),
        )
        molecules = decode_to_molecules(neighbors)
        unique = {to_smiles(m) if m.is_connected() and m.num_atoms else "-"
                  for m in molecules}
        print(f"  radius {radius:>4}: {len(unique)} distinct decodes, e.g. "
              f"{describe(molecules[0])}")


if __name__ == "__main__":
    main()
