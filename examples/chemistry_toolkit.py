#!/usr/bin/env python3
"""Tour of the cheminformatics substrate (the RDKit stand-in).

Walks one molecule through everything the Table II evaluation uses:
matrix encoding/decoding, SMILES, descriptors, QED / logP / SA scoring,
Lipinski filters, scaffolds, fingerprints, and set-level metrics on a
generated library.

Run:
    python examples/chemistry_toolkit.py
"""

from __future__ import annotations

import numpy as np

from repro.chem import (
    crippen_logp,
    default_fragment_table,
    encode_molecule,
    from_smiles,
    lipinski_report,
    morgan_fingerprint,
    murcko_scaffold,
    novelty,
    qed,
    qed_properties,
    random_molecules,
    sa_score,
    scaffold_diversity,
    score_molecules,
    tanimoto,
    to_smiles,
)
from repro.evaluation import distribution_report, render_molecule_matrix


def main() -> None:
    # One molecule through the pipeline: ibuprofen.  (In this SMILES
    # dialect ring-closure bonds are written explicitly, hence ":1".)
    mol = from_smiles("CC(C)CC:1:C:C:C(C(C)C(O)=O):C:C:1")
    print(f"molecule: {to_smiles(mol)}")
    print(f"formula:  {mol.molecular_formula()}  "
          f"(MW {mol.molecular_weight():.1f})")

    print("\nmolecule matrix (paper Fig. 3 encoding):")
    print(render_molecule_matrix(encode_molecule(mol, mol.num_atoms)))

    print("\nQED descriptor breakdown:")
    for name, value in qed_properties(mol).items():
        print(f"  {name:>7}: {value:8.2f}")
    table = default_fragment_table()
    print(f"QED  = {qed(mol):.3f}   logP = {crippen_logp(mol):.2f}   "
          f"SA = {sa_score(mol, table):.2f}")

    report = lipinski_report(mol)
    print(f"Lipinski violations: {report.n_violations} "
          f"({', '.join(report.violations) or 'none'})")

    scaffold = murcko_scaffold(mol)
    print(f"Murcko scaffold: {to_smiles(scaffold)}")

    analog = from_smiles("CC(C)CC:1:C:C:C(C(C)C(N)=O):C:C:1")  # amide analog
    similarity = tanimoto(morgan_fingerprint(mol), morgan_fingerprint(analog))
    print(f"Tanimoto to amide analog: {similarity:.2f}")

    # Set-level metrics on a generated library (the Table II machinery).
    print("\n-- generated library analysis --")
    reference = random_molecules(60, seed=1)
    library = random_molecules(60, seed=2)
    scores = score_molecules(library, table=table)
    print(f"validity {scores.validity:.2f}  QED {scores.qed:.3f}  "
          f"logP {scores.logp:.3f}  SA {scores.sa:.3f}  "
          f"unique {scores.uniqueness:.2f}")
    print(f"scaffold diversity: {scaffold_diversity(library):.2f}")
    print(f"novelty vs reference set: {novelty(library, reference):.2f}")

    print()
    print(distribution_report(reference, library).format_table())


if __name__ == "__main__":
    main()
