#!/usr/bin/env python3
"""Architecture ablations from Section IV-C: depth and learning rates.

Runs miniature versions of the paper's two sensitivity studies on one
shared ligand set:

1. quantum layer depth (Fig. 6) — sweep strongly-entangling-layer counts
   and watch expressiveness vs. trainability trade off;
2. heterogeneous learning rates (Fig. 7) — compare homogeneous settings
   against the paper's (quantum 0.03, classical 0.01) split.

Run:
    python examples/architecture_ablation.py
"""

from __future__ import annotations

import os

import numpy as np

from repro.data import load_pdbbind_ligands, train_test_split
from repro.models import ScalableQuantumAE
from repro.training import TrainConfig, Trainer


def main() -> None:
    seed = int(os.environ.get("SEED", 0))
    n_ligands = int(os.environ.get("LIGANDS", 64))
    epochs = int(os.environ.get("EPOCHS", 3))

    data = load_pdbbind_ligands(n_samples=n_ligands, seed=seed)
    train, test = train_test_split(data, test_fraction=0.15, seed=seed)

    print("-- depth ablation (Fig. 6 miniature) --")
    print(f"{'layers':>6} {'train':>8} {'test':>8}")
    for depth in (1, 3, 5, 7):
        model = ScalableQuantumAE(
            input_dim=1024, n_patches=4, n_layers=depth,
            rng=np.random.default_rng(seed + depth),
        )
        trainer = Trainer(
            model,
            TrainConfig(epochs=epochs, quantum_lr=0.001, classical_lr=0.001,
                        seed=seed),
        )
        history = trainer.fit(train, test_data=test)
        print(f"{depth:>6} {history.final_train_loss:>8.4f} "
              f"{history.final_test_loss:>8.4f}")

    print("\n-- learning-rate ablation (Fig. 7 miniature) --")
    combos = [
        ("homogeneous 0.001", 0.001, 0.001),
        ("homogeneous 0.01", 0.01, 0.01),
        ("paper heterogeneous", 0.03, 0.01),
        ("inverted heterogeneous", 0.01, 0.03),
    ]
    print(f"{'setting':>24} {'q-lr':>6} {'c-lr':>6} {'train':>8}")
    for name, quantum_lr, classical_lr in combos:
        model = ScalableQuantumAE(
            input_dim=1024, n_patches=4, n_layers=5,
            rng=np.random.default_rng(seed),
        )
        trainer = Trainer(
            model,
            TrainConfig(epochs=epochs, quantum_lr=quantum_lr,
                        classical_lr=classical_lr, seed=seed),
        )
        history = trainer.fit(train)
        print(f"{name:>24} {quantum_lr:>6} {classical_lr:>6} "
              f"{history.final_train_loss:>8.4f}")
    print("\nThe quantum angles live in [-pi, pi]; giving them a larger step")
    print("than the unbounded classical weights is what Fig. 7 selects.")


if __name__ == "__main__":
    main()
