#!/usr/bin/env python3
"""Quickstart: train a baseline quantum VAE on QM9-like molecules.

Reproduces the paper's headline low-dimensional result in miniature: on
L1-normalized 8x8 molecule matrices, the fully quantum autoencoder (108
rotation angles) reaches a far lower reconstruction loss than a classical
VAE with ~50x more parameters in the same number of epochs (Fig. 4b).

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.data import load_qm9
from repro.evaluation import render_molecule_matrix, side_by_side
from repro.chem.matrix import discretize
from repro.models import ClassicalVAE, FullyQuantumVAE
from repro.training import TrainConfig, Trainer


def main() -> None:
    # 1. Data: seeded synthetic QM9 (8x8 integer molecule matrices),
    #    L1-normalized so the quantum decoder's probability outputs can
    #    represent them exactly.
    data = load_qm9(n_samples=192, seed=7)
    normalized = data.normalized()
    print(f"dataset: {len(data)} molecules, {data.n_features} features")

    # 2. Models: F-BQ-VAE (amplitude-embedding encoder, 6 qubits, 3
    #    strongly entangling layers) vs the classical VAE of Table I.
    quantum = FullyQuantumVAE(input_dim=64, n_layers=3,
                              rng=np.random.default_rng(0))
    classical = ClassicalVAE(input_dim=64, latent_dim=6,
                             rng=np.random.default_rng(0))
    for name, model in [("F-BQ-VAE", quantum), ("CVAE", classical)]:
        counts = model.parameter_count_by_group()
        print(f"{name}: quantum={counts['quantum']} "
              f"classical={counts['classical']} total={counts['total']}")

    # 3. Train both for the same budget.
    config = TrainConfig(epochs=10, batch_size=32, quantum_lr=0.01,
                         classical_lr=0.01, seed=0)
    histories = {}
    for name, model in [("F-BQ-VAE", quantum), ("CVAE", classical)]:
        histories[name] = Trainer(model, config).fit(normalized)
        losses = histories[name].train_losses
        print(f"{name} train loss: {losses[0]:.5f} -> {losses[-1]:.5f}")

    better = ("F-BQ-VAE"
              if histories["F-BQ-VAE"].final_train_loss
              < histories["CVAE"].final_train_loss else "CVAE")
    print(f"\nlower final loss on normalized molecules: {better}")

    # 4. Reconstruct one molecule and sample a new one from the prior.
    molecule = normalized.features[:1]
    recon = quantum.reconstruct(molecule)[0]
    scale = data.features[0].sum()  # undo the L1 normalization for display
    panel = side_by_side(
        [
            render_molecule_matrix(data.raw[0]),
            render_molecule_matrix(discretize(recon.reshape(8, 8) * scale)),
        ],
        titles=["Input molecule", "F-BQ-VAE reconstruction"],
    )
    print(f"\n{panel}")

    sample = quantum.sample(1, np.random.default_rng(1))[0]
    sampled_matrix = discretize(sample.reshape(8, 8) * scale)
    print("\nNew molecule sampled from the learned latent space:")
    print(render_molecule_matrix(sampled_matrix))


if __name__ == "__main__":
    main()
