#!/usr/bin/env python3
"""Higher-order gradients: Hessian-vector products on one recorded tape.

The tape autodiff core records every operation — classical tensor ops and
quantum adjoints alike — as primitives with registered VJPs, and a
``create_graph`` backward walk replays those VJPs *through the tape*.  The
gradient of a gradient is therefore just another backward pass: no
finite differences, no hand-derived second-derivative rules.

This demo shows both halves of the hybrid stack:

1. a classical MLP, where the Hessian-vector product from
   :func:`repro.nn.hvp` is cross-checked against a finite difference of
   tape gradients;
2. a small variational quantum circuit, where the tape's grad-of-grad
   (parameter-shifted adjoint executions, recorded and differentiated
   again) is cross-checked against the explicit shift-of-shift Hessian
   from :func:`repro.quantum.shift.parameter_shift_hessian` — exact to
   machine precision in float64.

Run:
    python examples/higher_order.py
"""

from __future__ import annotations

import numpy as np

from repro.nn import Tensor, grad, hvp
from repro.qnn.qlayer import QuantumLayer
from repro.quantum.circuit import Circuit
from repro.quantum.shift import parameter_shift_hessian


def classical_hvp() -> None:
    """HVP through a two-layer MLP, vs finite differences of tape grads."""
    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(16, 8)))
    y = Tensor(rng.normal(size=(16, 4)))
    w1 = Tensor(rng.normal(size=(8, 12)) * 0.5, requires_grad=True)
    w2 = Tensor(rng.normal(size=(12, 4)) * 0.5, requires_grad=True)

    def loss_of(a, b):
        pred = (x @ a).tanh() @ b
        return ((pred - y) ** 2).sum() * (1.0 / y.size)

    v1 = rng.normal(size=w1.shape)
    v2 = rng.normal(size=w2.shape)
    h1, h2 = hvp(loss_of(w1, w2), [w1, w2], [v1, v2])

    # Reference: (grad(w + eps v) - grad(w - eps v)) / 2 eps, with every
    # parameter perturbed along its direction simultaneously so the
    # cross-parameter Hessian blocks are captured too.
    eps = 1e-6

    def grads_at(sign):
        a = Tensor(w1.data + sign * eps * v1, requires_grad=True)
        b = Tensor(w2.data + sign * eps * v2, requires_grad=True)
        return grad(loss_of(a, b), [a, b])

    (p1, p2), (m1, m2) = grads_at(+1.0), grads_at(-1.0)
    fd1 = (p1.data - m1.data) / (2 * eps)
    fd2 = (p2.data - m2.data) / (2 * eps)
    err = max(np.abs(h1.data - fd1).max(), np.abs(h2.data - fd2).max())
    print("classical MLP")
    print(f"  Hv block norms: |H v|_w1 = {np.linalg.norm(h1.data):.4f}, "
          f"|H v|_w2 = {np.linalg.norm(h2.data):.4f}")
    print(f"  max |tape HVP - finite difference| = {err:.2e}")


def quantum_hvp() -> None:
    """Grad-of-grad through a quantum layer, vs the shift-of-shift Hessian."""
    circuit = Circuit(2)
    circuit.strongly_entangling_layers(1)
    circuit.measure_expval()
    layer = QuantumLayer(circuit, rng=np.random.default_rng(7))
    w = layer.weights

    rng = np.random.default_rng(11)
    v = rng.normal(size=w.shape)
    h = hvp(layer(None).sum(), w, v)

    # Reference: the explicit parameter-shift Hessian (2n extra Jacobians).
    hessian = parameter_shift_hessian(circuit, None, w.data)[0]
    reference = np.einsum("oij,j->i", hessian, v)
    err = np.abs(h.data - reference).max()
    print("quantum circuit (2 qubits, 1 entangling layer, "
          f"{circuit.n_weights} weights)")
    print(f"  tape HVP:        {np.array2string(h.data, precision=5)}")
    print(f"  shift-of-shift:  {np.array2string(reference, precision=5)}")
    print(f"  max deviation = {err:.2e}")


def main() -> None:
    classical_hvp()
    quantum_hvp()


if __name__ == "__main__":
    main()
