#!/usr/bin/env python3
"""Precision mode: train the scalable quantum autoencoder in float32.

The stacked statevector passes behind ``PatchedQuantumLayer`` are memory-
bandwidth-bound at paper scale, so halving the bytes per kernel (float32
parameters, complex64 states) buys a large chunk of wall-clock per training
step while gradients stay accurate to ~1e-4 — far below the step noise Adam
sees anyway.  float64 stays the default everywhere; single precision is an
explicit opt-in via ``dtype="float32"`` (or a ``use_precision`` scope).

Run:
    python examples/precision_mode.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.models import ScalableQuantumAE
from repro.nn import Tensor, functional as F, use_precision

INPUT_DIM = 1024
N_PATCHES = 8
BATCH = 32
STEPS = 3


def build(dtype):
    return ScalableQuantumAE(
        input_dim=INPUT_DIM,
        n_patches=N_PATCHES,
        n_layers=5,
        rng=np.random.default_rng(0),
        dtype=dtype,
    )


def training_step_time(model, x, policy):
    from repro.nn import heterogeneous_adam

    optimizer = heterogeneous_adam(model, quantum_lr=0.03, classical_lr=0.01)

    def step():
        optimizer.zero_grad()
        out = model(x)
        loss = F.mse_loss(out.reconstruction, x)
        loss.backward()
        optimizer.step()
        return loss.item()

    with use_precision(policy):
        step()  # warmup (plan compilation, allocator)
        best = float("inf")
        for _ in range(STEPS):
            start = time.perf_counter()
            loss = step()
            best = min(best, time.perf_counter() - start)
    return best, loss


def main() -> None:
    rng = np.random.default_rng(1)
    features = np.abs(rng.normal(size=(BATCH, INPUT_DIM))) + 0.01

    # 1. Same weights, two precisions: forward passes agree to ~1e-5.
    m64, m32 = build("float64"), build("float32")
    out64 = m64(Tensor(features)).reconstruction.data
    out32 = m32(Tensor(features, dtype=np.float32)).reconstruction.data
    print(f"float32 reconstruction dtype: {out32.dtype}")
    print(f"max |float32 - float64| deviation: {np.abs(out32 - out64).max():.2e}")

    # 2. Wall-clock per optimizer step (p=8, batch=32 — the bandwidth-bound
    #    stacked regime; see BENCH_kernels.json speedup_c64_vs_c128).
    t64, loss64 = training_step_time(m64, Tensor(features), "float64")
    t32, loss32 = training_step_time(
        m32, Tensor(features, dtype=np.float32), "float32"
    )
    print(f"float64 step: {t64 * 1e3:7.1f} ms (loss {loss64:.5f})")
    print(f"float32 step: {t32 * 1e3:7.1f} ms (loss {loss32:.5f})")
    print(f"speedup: {t64 / t32:.2f}x")

    # 3. The mixed policy: float32 compute, float64 gradient accumulation —
    #    the stability middle ground for long runs.
    m32.zero_grad()
    with use_precision("mixed32"):
        out = m32(Tensor(features, dtype=np.float32))
        F.mse_loss(out.reconstruction, Tensor(features, dtype=np.float32)).backward()
    grad = m32.latent_map.weight.grad
    print(f"mixed32: params {m32.latent_map.weight.data.dtype}, "
          f"grads accumulate in {grad.dtype}")


if __name__ == "__main__":
    main()
