#!/usr/bin/env python3
"""Image reconstruction with patched quantum autoencoders (Fig. 8b-c).

The paper notes the scalable architecture "also applies to other tasks such
as image generation": this example trains an SQ-AE and a classical AE on
32x32 grayscale images and prints side-by-side ASCII reconstructions,
mirroring the CIFAR-10 panel of Fig. 8(c).

Run:
    python examples/image_reconstruction.py
    IMAGES=256 EPOCHS=10 python examples/image_reconstruction.py
"""

from __future__ import annotations

import os

import numpy as np

from repro.data import load_cifar_gray
from repro.evaluation import ascii_image, reconstruction_report, side_by_side
from repro.models import ClassicalAE, ScalableQuantumAE
from repro.training import TrainConfig, Trainer


def main() -> None:
    n_images = int(os.environ.get("IMAGES", 64))
    epochs = int(os.environ.get("EPOCHS", 5))
    seed = int(os.environ.get("SEED", 0))

    data = load_cifar_gray(n_samples=n_images, seed=seed)
    print(f"images: {n_images} grayscale 32x32")

    models = {
        "SQ-AE (p=2, LSD 18)": ScalableQuantumAE(
            input_dim=1024, n_patches=2, n_layers=5,
            rng=np.random.default_rng(seed),
        ),
        "Classical AE (LSD 18)": ClassicalAE(
            input_dim=1024, latent_dim=18, rng=np.random.default_rng(seed)
        ),
    }
    for name, model in models.items():
        trainer = Trainer(model, TrainConfig.paper_sq(epochs=epochs, seed=seed))
        history = trainer.fit(data)
        report = reconstruction_report(model, data)
        print(f"{name}: final train loss {history.final_train_loss:.4f}, "
              f"mean recon MSE {report['mean_mse']:.4f}")

    # Qualitative panel: input vs both reconstructions for two images.
    originals = data.features[:2]
    panels = [
        "\n\n".join(ascii_image(img) for img in originals),
        "\n\n".join(
            ascii_image(img)
            for img in models["Classical AE (LSD 18)"].reconstruct(originals)
        ),
        "\n\n".join(
            ascii_image(img)
            for img in models["SQ-AE (p=2, LSD 18)"].reconstruct(originals)
        ),
    ]
    print()
    print(side_by_side(panels, titles=["Input", "Classical AE", "SQ-AE"]))
    print("\nAfter a short budget both models capture the sketch of the")
    print("input; longer training sharpens both (Section IV-D).")


if __name__ == "__main__":
    main()
