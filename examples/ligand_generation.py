#!/usr/bin/env python3
"""De novo ligand generation with the scalable quantum VAE (SQ-VAE).

The paper's target application: learn the distribution of PDBbind-style
drug ligands (32x32 molecule matrices, 1024 features) with a *patched*
quantum circuit — far beyond what a monolithic 10-qubit autoencoder can
represent — then sample new candidate ligands from the latent prior and
rank them by drug properties (QED, logP, synthetic accessibility).

Run:
    python examples/ligand_generation.py            # fast demo
    LIGANDS=512 EPOCHS=10 python examples/ligand_generation.py
"""

from __future__ import annotations

import os

import numpy as np

from repro.chem import qed, sanitize_lenient, to_smiles
from repro.chem.metrics import normalized_logp, normalized_sa
from repro.chem.sa import default_fragment_table
from repro.data import load_pdbbind_ligands, train_test_split
from repro.evaluation import sample_molecules
from repro.models import ScalableQuantumVAE
from repro.qnn import patched_latent_dim
from repro.training import TrainConfig, Trainer


def main() -> None:
    n_ligands = int(os.environ.get("LIGANDS", 96))
    epochs = int(os.environ.get("EPOCHS", 4))
    n_patches = int(os.environ.get("PATCHES", 8))
    seed = int(os.environ.get("SEED", 0))

    # 1. Ligand dataset: synthetic PDBbind-refined stand-in, filtered to
    #    <= 32 heavy atoms over C/N/O/F/S exactly like Section IV-A.
    data = load_pdbbind_ligands(n_samples=n_ligands, seed=seed)
    train, test = train_test_split(data, test_fraction=0.15, seed=seed)
    print(f"ligands: {len(train)} train / {len(test)} test")

    # 2. SQ-VAE with p patches -> latent dimension p * log2(1024/p).
    lsd = patched_latent_dim(1024, n_patches)
    print(f"patches: {n_patches} -> latent space dimension {lsd}")
    model = ScalableQuantumVAE(
        input_dim=1024, n_patches=n_patches, n_layers=5,
        rng=np.random.default_rng(seed), noise_seed=seed,
    )
    model.init_output_bias(train.features.mean(axis=0))
    counts = model.parameter_count_by_group()
    print(f"parameters: quantum={counts['quantum']} "
          f"classical={counts['classical']}")

    # 3. Train with the paper's heterogeneous learning rates (Fig. 7):
    #    quantum 0.03, classical 0.01.
    trainer = Trainer(model, TrainConfig.paper_sq(epochs=epochs, seed=seed))
    history = trainer.fit(train, test_data=test)
    for record in history.epochs:
        print(f"epoch {record.epoch}: train {record.train_loss:.4f} "
              f"test {record.test_loss:.4f}")

    # 4. Sample candidate ligands from the Gaussian prior and rank them.
    raw = sample_molecules(model, 40, np.random.default_rng(seed + 1))
    table = default_fragment_table()
    candidates = []
    for mol in raw:
        repaired = sanitize_lenient(mol)
        if repaired.num_atoms < 3:
            continue
        candidates.append(
            (
                qed(repaired),
                normalized_logp(repaired),
                normalized_sa(repaired, table),
                repaired,
            )
        )
    candidates.sort(key=lambda item: item[0], reverse=True)
    print(f"\nsampled {len(raw)} matrices -> {len(candidates)} usable ligands")
    print(f"{'QED':>6} {'logP':>6} {'SA':>6}  candidate")
    for qed_score, logp_score, sa_score, mol in candidates[:8]:
        smiles = to_smiles(mol) if mol.is_connected() else mol.molecular_formula()
        print(f"{qed_score:6.3f} {logp_score:6.3f} {sa_score:6.3f}  "
              f"{mol.molecular_formula():12s} {smiles[:48]}")


if __name__ == "__main__":
    main()
