"""ASCII visualization of images and molecule matrices.

The paper's qualitative panels (Fig. 4c-d, Fig. 8c) show digit / CIFAR
reconstructions and molecule matrices; in a terminal-only environment we
render them as character art so the examples and benchmark logs can still
display inputs next to reconstructions.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ascii_image", "render_molecule_matrix", "side_by_side"]

_DEFAULT_RAMP = " .:-=+*#%@"


def ascii_image(
    image: np.ndarray, ramp: str = _DEFAULT_RAMP, width: int | None = None
) -> str:
    """Render a 2-D intensity array as ASCII art (dark -> dense glyphs).

    The image is min-max scaled; each pixel becomes one character (doubled
    horizontally so the aspect ratio looks square in a terminal).
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim == 1:
        side = int(round(np.sqrt(image.size)))
        if side * side != image.size:
            raise ValueError(f"cannot infer square shape from {image.size} pixels")
        image = image.reshape(side, side)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    low, high = image.min(), image.max()
    span = high - low if high > low else 1.0
    normalized = (image - low) / span
    indices = np.clip(
        (normalized * (len(ramp) - 1)).round().astype(int), 0, len(ramp) - 1
    )
    rows = ("".join(ramp[i] * 2 for i in row) for row in indices)
    return "\n".join(rows)


def render_molecule_matrix(matrix: np.ndarray, max_size: int | None = None) -> str:
    """Pretty-print an integer molecule matrix (atoms on the diagonal).

    Zero entries print as '.' to make sparsity patterns readable; optionally
    truncates to the top-left ``max_size`` block (useful for 32x32 ligands).
    """
    matrix = np.asarray(matrix)
    if max_size is not None:
        matrix = matrix[:max_size, :max_size]
    rows = []
    for i, row in enumerate(matrix):
        cells = []
        for j, value in enumerate(row):
            value = int(round(float(value)))
            if value == 0:
                cells.append(".")
            elif i == j:
                cells.append("CNOFS"[value - 1] if 1 <= value <= 5 else "?")
            else:
                cells.append(str(value) if 0 <= value <= 9 else "?")
        rows.append(" ".join(cells))
    return "\n".join(rows)


def side_by_side(blocks: list[str], titles: list[str] | None = None,
                 gap: int = 4) -> str:
    """Join multi-line string blocks horizontally (inputs vs reconstructions)."""
    split_blocks = [block.splitlines() for block in blocks]
    widths = [max((len(line) for line in block), default=0)
              for block in split_blocks]
    if titles is not None:
        if len(titles) != len(blocks):
            raise ValueError("one title per block required")
        header = (" " * gap).join(
            title.ljust(width) for title, width in zip(titles, widths)
        )
    height = max(len(block) for block in split_blocks)
    lines = []
    for row in range(height):
        cells = []
        for block, width in zip(split_blocks, widths):
            cell = block[row] if row < len(block) else ""
            cells.append(cell.ljust(width))
        lines.append((" " * gap).join(cells).rstrip())
    body = "\n".join(lines)
    return f"{header}\n{body}" if titles is not None else body
