"""Reconstruction-quality evaluation helpers."""

from __future__ import annotations

import numpy as np

from ..chem.batch import MoleculeBatch, valid_mask
from ..chem.scaffold import canonical_signature
from ..data.loader import ArrayDataset
from ..models.base import Autoencoder

__all__ = [
    "per_sample_mse",
    "reconstruct_samples",
    "reconstruction_report",
    "molecule_reconstruction_report",
]


def per_sample_mse(model: Autoencoder, features: np.ndarray) -> np.ndarray:
    """MSE of each sample's reconstruction, shape ``(n,)``."""
    features = np.atleast_2d(np.asarray(features, dtype=np.float64))
    recon = model.reconstruct(features)
    return ((recon - features) ** 2).mean(axis=1)


def reconstruct_samples(
    model: Autoencoder,
    dataset: ArrayDataset,
    n_samples: int = 3,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Pick random samples and reconstruct them (paper's qualitative panels).

    Returns ``(originals, reconstructions)`` with shape ``(n, features)``.
    """
    rng = np.random.default_rng(seed)
    indices = rng.choice(len(dataset), size=min(n_samples, len(dataset)),
                         replace=False)
    originals = dataset.features[indices]
    return originals, model.reconstruct(originals)


def reconstruction_report(
    model: Autoencoder, dataset: ArrayDataset
) -> dict[str, float]:
    """Summary statistics of reconstruction error over a dataset."""
    errors = per_sample_mse(model, dataset.features)
    return {
        "mean_mse": float(errors.mean()),
        "median_mse": float(np.median(errors)),
        "worst_mse": float(errors.max()),
        "best_mse": float(errors.min()),
    }


def molecule_reconstruction_report(
    model: Autoencoder, dataset: ArrayDataset
) -> dict[str, float]:
    """Graph-level reconstruction fidelity for molecule-matrix datasets.

    Decodes originals and reconstructions as two packed batches and
    reports: the fraction of reconstructions that decode to strictly valid
    molecules, the fraction recovering the original graph exactly (by
    canonical signature), and the mean heavy-atom count error.  Requires
    a dataset of flattened square molecule matrices.
    """
    features = np.asarray(dataset.features, dtype=np.float64)
    size = int(round(np.sqrt(features.shape[1])))
    if size * size != features.shape[1]:
        raise ValueError(
            f"feature dim {features.shape[1]} is not a square matrix "
            "flattening"
        )
    originals = MoleculeBatch.from_matrices(features.reshape(-1, size, size))
    recon = MoleculeBatch.from_matrices(
        model.reconstruct(features).reshape(-1, size, size)
    )
    n = len(originals)
    if n == 0:
        return {"validity": 0.0, "exact_match": 0.0, "mean_atom_error": 0.0}
    matches = sum(
        1
        for orig, rec in zip(originals.molecules, recon.molecules)
        if canonical_signature(orig) == canonical_signature(rec)
    )
    atom_error = np.abs(originals.counts - recon.counts)
    return {
        "validity": float(valid_mask(recon).mean()),
        "exact_match": matches / n,
        "mean_atom_error": float(atom_error.mean()),
    }
