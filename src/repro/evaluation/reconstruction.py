"""Reconstruction-quality evaluation helpers."""

from __future__ import annotations

import numpy as np

from ..data.loader import ArrayDataset
from ..models.base import Autoencoder

__all__ = ["per_sample_mse", "reconstruct_samples", "reconstruction_report"]


def per_sample_mse(model: Autoencoder, features: np.ndarray) -> np.ndarray:
    """MSE of each sample's reconstruction, shape ``(n,)``."""
    features = np.atleast_2d(np.asarray(features, dtype=np.float64))
    recon = model.reconstruct(features)
    return ((recon - features) ** 2).mean(axis=1)


def reconstruct_samples(
    model: Autoencoder,
    dataset: ArrayDataset,
    n_samples: int = 3,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Pick random samples and reconstruct them (paper's qualitative panels).

    Returns ``(originals, reconstructions)`` with shape ``(n, features)``.
    """
    rng = np.random.default_rng(seed)
    indices = rng.choice(len(dataset), size=min(n_samples, len(dataset)),
                         replace=False)
    originals = dataset.features[indices]
    return originals, model.reconstruct(originals)


def reconstruction_report(
    model: Autoencoder, dataset: ArrayDataset
) -> dict[str, float]:
    """Summary statistics of reconstruction error over a dataset."""
    errors = per_sample_mse(model, dataset.features)
    return {
        "mean_mse": float(errors.mean()),
        "median_mse": float(np.median(errors)),
        "worst_mse": float(errors.max()),
        "best_mse": float(errors.min()),
    }
