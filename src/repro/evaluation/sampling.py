"""Prior sampling from generative autoencoders into molecule space.

This is the Table II pipeline: draw Gaussian noise from the learned latent
space, decode to continuous matrices, discretize onto molecule-matrix codes,
decode to graphs, apply lenient validity correction, and score the set with
the normalized QED / logP / SA metrics.
"""

from __future__ import annotations

import numpy as np

from ..chem.batch import MoleculeBatch
from ..chem.metrics import MoleculeSetScores, score_molecules
from ..chem.molecule import Molecule
from ..chem.sa import FragmentTable
from ..models.base import Autoencoder

__all__ = ["sample_matrices", "sample_batch", "sample_molecules",
           "sample_and_score"]


def sample_matrices(
    model: Autoencoder, n_samples: int, rng: np.random.Generator
) -> np.ndarray:
    """Decode prior noise into ``(n, size, size)`` continuous matrices."""
    flat = model.sample(n_samples, rng)
    size = int(round(np.sqrt(model.input_dim)))
    if size * size != model.input_dim:
        raise ValueError(
            f"input dim {model.input_dim} is not a square matrix flattening"
        )
    return flat.reshape(n_samples, size, size)


def sample_batch(
    model: Autoencoder, n_samples: int, rng: np.random.Generator
) -> MoleculeBatch:
    """Sampled matrices discretized and decoded as one packed batch."""
    return MoleculeBatch.from_matrices(sample_matrices(model, n_samples, rng))


def sample_molecules(
    model: Autoencoder, n_samples: int, rng: np.random.Generator
) -> list[Molecule]:
    """Sampled matrices discretized and decoded into (raw) molecule graphs."""
    return sample_batch(model, n_samples, rng).molecules


def sample_and_score(
    model: Autoencoder,
    n_samples: int,
    rng: np.random.Generator,
    table: FragmentTable | None = None,
) -> MoleculeSetScores:
    """The full Table II metric: sample, correct, and score a molecule set.

    Runs end-to-end on the batched substrate: the sampled stack is decoded
    in one vectorized pass and scored set-at-a-time.
    """
    return score_molecules(
        sample_batch(model, n_samples, rng), table=table, correct=True
    )
