"""Prior sampling from generative autoencoders into molecule space.

This is the Table II pipeline: draw Gaussian noise from the learned latent
space, decode to continuous matrices, discretize onto molecule-matrix codes,
decode to graphs, apply lenient validity correction, and score the set with
the normalized QED / logP / SA metrics.
"""

from __future__ import annotations

import numpy as np

from ..chem.batch import MoleculeBatch
from ..chem.metrics import MoleculeSetScores, score_molecules
from ..chem.molecule import Molecule
from ..chem.sa import FragmentTable
from ..models.base import Autoencoder
from ..nn.tensor import Tensor, no_grad

__all__ = ["matrix_size", "prior_latents", "decode_latents",
           "sample_matrices", "sample_batch", "sample_molecules",
           "sample_and_score"]


def matrix_size(model: Autoencoder) -> int:
    """Side length of the square molecule matrix ``model`` reconstructs."""
    size = int(round(np.sqrt(model.input_dim)))
    if size * size != model.input_dim:
        raise ValueError(
            f"input dim {model.input_dim} is not a square matrix flattening"
        )
    return size


def prior_latents(
    model: Autoencoder, n_samples: int, rng: np.random.Generator
) -> np.ndarray:
    """The N(0, I) prior draw ``model.sample`` would make from ``rng``.

    Split out so the serving layer can draw each request's latents from
    its own seeded stream, stack them, and decode once — the draw is
    identical to sequential per-request sampling by construction.
    """
    return rng.normal(size=(n_samples, model.latent_dim))


def decode_latents(model: Autoencoder, latents: np.ndarray) -> np.ndarray:
    """Decode a ``(n, latent_dim)`` latent stack to flat features.

    This is exactly the decode half of ``VariationalMixin.sample``
    (untracked, default-policy tensor wrapping), so decoding a stacked
    batch of requests runs the same code path as each request alone.
    """
    with no_grad():
        return model.decode(Tensor(latents)).data


def sample_matrices(
    model: Autoencoder, n_samples: int, rng: np.random.Generator
) -> np.ndarray:
    """Decode prior noise into ``(n, size, size)`` continuous matrices."""
    flat = model.sample(n_samples, rng)
    size = matrix_size(model)
    return flat.reshape(n_samples, size, size)


def sample_batch(
    model: Autoencoder, n_samples: int, rng: np.random.Generator
) -> MoleculeBatch:
    """Sampled matrices discretized and decoded as one packed batch."""
    return MoleculeBatch.from_matrices(sample_matrices(model, n_samples, rng))


def sample_molecules(
    model: Autoencoder, n_samples: int, rng: np.random.Generator
) -> list[Molecule]:
    """Sampled matrices discretized and decoded into (raw) molecule graphs."""
    return sample_batch(model, n_samples, rng).molecules


def sample_and_score(
    model: Autoencoder,
    n_samples: int,
    rng: np.random.Generator,
    table: FragmentTable | None = None,
) -> MoleculeSetScores:
    """The full Table II metric: sample, correct, and score a molecule set.

    Runs end-to-end on the batched substrate: the sampled stack is decoded
    in one vectorized pass and scored set-at-a-time.
    """
    return score_molecules(
        sample_batch(model, n_samples, rng), table=table, correct=True
    )
