"""Distribution-level comparison of molecule sets.

The paper scores samples with per-molecule means (Table II); a stronger
question is whether the *distribution* of generated molecules matches the
training distribution.  This module computes per-descriptor 1-D
Wasserstein distances between two molecule sets (the metric the companion
QGAN literature uses as "property distribution distance") and a pooled
summary score.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import stats

from ..chem.batch import descriptor_matrix_batch
from ..chem.crippen import crippen_logp
from ..chem.descriptors import (
    aromatic_ring_count,
    hydrogen_bond_acceptors,
    hydrogen_bond_donors,
    ring_count,
    rotatable_bonds,
)
from ..chem.molecule import Molecule
from ..chem.qed import qed

__all__ = [
    "DescriptorDistributions",
    "descriptor_matrix",
    "descriptor_matrix_reference",
    "distribution_report",
]

DESCRIPTOR_NAMES = (
    "heavy_atoms",
    "molecular_weight",
    "logp",
    "qed",
    "rings",
    "aromatic_rings",
    "hba",
    "hbd",
    "rotatable",
)


def descriptor_matrix(molecules) -> np.ndarray:
    """Descriptor vectors, shape ``(n_molecules, len(DESCRIPTOR_NAMES))``.

    Computed on the batched substrate (one packed-array pass plus one
    cached graph context per molecule); bit-for-bit equal to
    :func:`descriptor_matrix_reference`.  Accepts a molecule list or a
    :class:`repro.chem.batch.MoleculeBatch`.
    """
    return descriptor_matrix_batch(molecules)


def descriptor_matrix_reference(molecules: list[Molecule]) -> np.ndarray:
    """Per-molecule reference implementation (the bit-for-bit oracle)."""
    rows = []
    for mol in molecules:
        rows.append(
            [
                mol.num_atoms,
                mol.molecular_weight(),
                crippen_logp(mol),
                qed(mol),
                ring_count(mol),
                aromatic_ring_count(mol),
                hydrogen_bond_acceptors(mol),
                hydrogen_bond_donors(mol),
                rotatable_bonds(mol),
            ]
        )
    return np.asarray(rows, dtype=np.float64).reshape(-1, len(DESCRIPTOR_NAMES))


@dataclass
class DescriptorDistributions:
    """Wasserstein distance per descriptor between two molecule sets."""

    distances: dict[str, float] = field(default_factory=dict)

    @property
    def mean_normalized_distance(self) -> float:
        """Mean of the per-descriptor distances (already scale-normalized)."""
        if not self.distances:
            return float("inf")
        return float(np.mean(list(self.distances.values())))

    def format_table(self) -> str:
        from ..experiments.tables import format_table

        rows = [[name, value] for name, value in self.distances.items()]
        rows.append(["MEAN", self.mean_normalized_distance])
        return format_table(
            ["Descriptor", "Normalized W1 distance"], rows,
            title="Descriptor distribution distance (reference vs generated)",
        )


def distribution_report(
    reference: list[Molecule], generated: list[Molecule]
) -> DescriptorDistributions:
    """Per-descriptor normalized Wasserstein-1 distances.

    Each descriptor's distance is divided by the reference set's standard
    deviation (floored at a small epsilon) so descriptors on different
    scales are comparable; a value of 0 means identical distributions,
    ~1 means off by a full reference standard deviation.
    """
    if not reference or not generated:
        raise ValueError("both molecule sets must be non-empty")
    ref = descriptor_matrix(reference)
    gen = descriptor_matrix(generated)
    result = DescriptorDistributions()
    for column, name in enumerate(DESCRIPTOR_NAMES):
        scale = max(float(ref[:, column].std()), 1e-9)
        distance = stats.wasserstein_distance(ref[:, column], gen[:, column])
        result.distances[name] = float(distance / scale)
    return result
