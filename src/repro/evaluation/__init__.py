"""Evaluation utilities: reconstruction, sampling, distributions, rendering."""

from .distribution import (
    DESCRIPTOR_NAMES,
    DescriptorDistributions,
    descriptor_matrix,
    distribution_report,
)
from .latent import (
    decode_to_molecules,
    encode_to_latent,
    interpolate_latent,
    latent_neighborhood,
)
from .reconstruction import (
    molecule_reconstruction_report,
    per_sample_mse,
    reconstruct_samples,
    reconstruction_report,
)
from .sampling import (
    decode_latents,
    matrix_size,
    prior_latents,
    sample_and_score,
    sample_batch,
    sample_matrices,
    sample_molecules,
)
from .visualize import ascii_image, render_molecule_matrix, side_by_side

__all__ = [
    "per_sample_mse",
    "reconstruct_samples",
    "reconstruction_report",
    "molecule_reconstruction_report",
    "matrix_size",
    "prior_latents",
    "decode_latents",
    "sample_matrices",
    "sample_batch",
    "sample_molecules",
    "sample_and_score",
    "ascii_image",
    "render_molecule_matrix",
    "side_by_side",
    "DescriptorDistributions",
    "DESCRIPTOR_NAMES",
    "descriptor_matrix",
    "distribution_report",
    "encode_to_latent",
    "interpolate_latent",
    "decode_to_molecules",
    "latent_neighborhood",
]
