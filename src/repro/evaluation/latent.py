"""Latent-space navigation: interpolation and neighborhood exploration.

The paper's introduction frames generative autoencoders as tools for
*navigating the chemical space*; these helpers make that navigation
concrete: walk a straight line between two molecules' latent codes and
decode each step, or sample a local neighborhood around one molecule to
find close structural variants.
"""

from __future__ import annotations

import numpy as np

from ..chem.matrix import decode_molecule, discretize
from ..chem.molecule import Molecule
from ..chem.valence import sanitize_lenient
from ..models.base import Autoencoder
from ..nn.tensor import Tensor, no_grad

__all__ = [
    "encode_to_latent",
    "interpolate_latent",
    "decode_to_molecules",
    "latent_neighborhood",
]


def encode_to_latent(model: Autoencoder, features: np.ndarray) -> np.ndarray:
    """Deterministic latent codes (posterior mean for VAEs), ``(n, lsd)``."""
    features = np.atleast_2d(np.asarray(features, dtype=np.float64))
    with no_grad():
        latent = model.encode(Tensor(features))
    return latent.data


def interpolate_latent(
    model: Autoencoder,
    start_features: np.ndarray,
    end_features: np.ndarray,
    steps: int = 7,
) -> np.ndarray:
    """Decode a straight latent-space line between two inputs.

    Returns ``(steps, input_dim)`` reconstructions; endpoints are the
    decoded codes of the two inputs (not the inputs themselves).
    """
    if steps < 2:
        raise ValueError("interpolation needs at least 2 steps")
    codes = encode_to_latent(
        model, np.stack([np.ravel(start_features), np.ravel(end_features)])
    )
    weights = np.linspace(0.0, 1.0, steps)[:, None]
    path = (1.0 - weights) * codes[0] + weights * codes[1]
    with no_grad():
        decoded = model.decode(Tensor(path))
    return decoded.data


def decode_to_molecules(
    flat_outputs: np.ndarray, repair: bool = True
) -> list[Molecule]:
    """Reshape decoder outputs to square matrices and decode each one."""
    flat_outputs = np.atleast_2d(np.asarray(flat_outputs))
    size = int(round(np.sqrt(flat_outputs.shape[1])))
    if size * size != flat_outputs.shape[1]:
        raise ValueError(
            f"{flat_outputs.shape[1]} features is not a square matrix"
        )
    molecules = []
    for row in flat_outputs:
        mol = decode_molecule(discretize(row.reshape(size, size)))
        molecules.append(sanitize_lenient(mol) if repair else mol)
    return molecules


def latent_neighborhood(
    model: Autoencoder,
    features: np.ndarray,
    n_samples: int,
    radius: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Decode Gaussian perturbations of one input's latent code.

    ``radius`` is the standard deviation of the isotropic noise added to
    the code — small radii produce close structural variants, large radii
    approach prior sampling.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    code = encode_to_latent(model, features)[0]
    noise = rng.normal(0.0, radius, size=(n_samples, code.size))
    with no_grad():
        decoded = model.decode(Tensor(code[None, :] + noise))
    return decoded.data
