"""Learning-rate schedulers.

Section III-C: "the small-scale of quantum parameters may require a
different quantum learning rate *schedule* from classical one".  The paper
settles on fixed heterogeneous rates (Fig. 7); these schedulers make the
schedule variant explorable too.  Each one wraps an optimizer and rescales
every parameter group's learning rate relative to its initial value, so
heterogeneous groups keep their ratio.
"""

from __future__ import annotations

import math

from .optim import Optimizer

__all__ = ["LRScheduler", "StepLR", "ExponentialLR", "CosineAnnealingLR"]


class LRScheduler:
    """Base class: tracks initial group lrs and an epoch counter."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lrs = [group["lr"] for group in optimizer.param_groups]
        self.last_epoch = 0

    def get_factor(self, epoch: int) -> float:
        """Multiplier applied to every group's base lr at ``epoch``."""
        raise NotImplementedError

    def step(self) -> None:
        """Advance one epoch and update the optimizer's learning rates."""
        self.last_epoch += 1
        factor = self.get_factor(self.last_epoch)
        for group, base in zip(self.optimizer.param_groups, self.base_lrs):
            group["lr"] = base * factor

    def current_lrs(self) -> list[float]:
        return [group["lr"] for group in self.optimizer.param_groups]


class StepLR(LRScheduler):
    """Decay by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        if step_size < 1:
            raise ValueError("step_size must be positive")
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_factor(self, epoch: int) -> float:
        return self.gamma ** (epoch // self.step_size)


class ExponentialLR(LRScheduler):
    """Decay by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float):
        super().__init__(optimizer)
        self.gamma = gamma

    def get_factor(self, epoch: int) -> float:
        return self.gamma**epoch


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base lr to ``eta_min_factor * base`` over T_max."""

    def __init__(self, optimizer: Optimizer, t_max: int,
                 eta_min_factor: float = 0.0):
        if t_max < 1:
            raise ValueError("t_max must be positive")
        super().__init__(optimizer)
        self.t_max = t_max
        self.eta_min_factor = eta_min_factor

    def get_factor(self, epoch: int) -> float:
        epoch = min(epoch, self.t_max)
        cosine = 0.5 * (1.0 + math.cos(math.pi * epoch / self.t_max))
        return self.eta_min_factor + (1.0 - self.eta_min_factor) * cosine
