"""Recorded-tape reverse-mode autodiff: Node, VJP registry, backward walk.

This module is the graph substrate under :class:`repro.nn.tensor.Tensor`.
It replaces the original per-op backward-closure design (every operation
captured its operands in a bespoke ``_backward`` closure) with three small
pieces:

* a :class:`Primitive` per differentiable operation, whose VJPs
  (vector-Jacobian products) live in a registry filled by :func:`defvjp` /
  :func:`defvjp_all` — one table entry per primitive instead of one closure
  per call;
* a :class:`Node` recorded on each output tensor: the primitive, the
  operand tensors, their raw arrays, and the non-differentiable parameters
  — everything a VJP needs, with no per-call closure allocation;
* one generic topological backward walk shared by every op, classical or
  quantum (:func:`backward_pass` for ``Tensor.backward``'s ``.grad``
  semantics, :func:`grad` for the functional interface).

On top of the walk sits a *compile layer* (:mod:`repro.nn.graph`): since
training steps re-record structurally identical tapes, both
:func:`backward_pass` and the fast path of :func:`grad` consult a plan
cache keyed on the tape's structural signature.  Step 1 lowers the tape
into a flat backward program (flattened VJP dispatch, fused elementwise
chains, reusable cotangent buffers); steps 2+ run the cached program.
The walks in this module remain the *reference semantics* — the compiled
program is bit-identical to them by construction and by differential
test, and ``REPRO_TAPE_COMPILE=0`` (or ``tape_compile(False)``) routes
everything back through them.  The ``create_graph`` walks never compile:
they re-record VJPs onto a fresh tape, so each run is structurally new
work by design.

VJPs are *dual-mode*: the registry functions receive raw numpy arrays
during an ordinary first-order backward (no wrapper overhead on the hot
path) and :class:`~repro.nn.tensor.Tensor` operands when the walk runs
with ``create_graph=True`` — then every VJP is itself built from recorded
primitives, so the gradient of a gradient is just another tape walk.
:func:`hvp` packages the resulting Hessian-vector products.

The recording flag (``no_grad`` / ``enable_grad`` / ``is_grad_enabled``)
lives here too, because the graph-mode walk must be able to force
recording on while it replays VJPs.
"""

from __future__ import annotations

import functools

import numpy as np

from . import graph as _graph

__all__ = [
    "Primitive",
    "Node",
    "defvjp",
    "defvjp_all",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "topo_order",
    "backward_pass",
    "grad",
    "hvp",
    "register_tensor_type",
    "is_tensor",
]

# Single mutable cell so every module sees flag flips immediately.
_GRAD_ENABLED = [True]


def is_grad_enabled() -> bool:
    """Return whether new ops will be recorded on the autodiff tape."""
    return _GRAD_ENABLED[0]


class _GradMode:
    """Shared context-manager/decorator machinery for the recording flag."""

    _mode: bool = True

    def __new__(cls, func=None):
        if func is None:
            return super().__new__(cls)
        # Bare ``@no_grad`` / ``@enable_grad`` decoration (no parentheses).
        return cls()(func)

    def __enter__(self):
        self._prev = _GRAD_ENABLED[0]
        _GRAD_ENABLED[0] = self._mode
        return self

    def __exit__(self, *exc) -> None:
        _GRAD_ENABLED[0] = self._prev

    def __call__(self, fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with type(self)():
                return fn(*args, **kwargs)

        return wrapper


class no_grad(_GradMode):
    """Disable gradient recording — context manager *and* decorator.

    ``with no_grad(): ...`` scopes the flag like ``torch.no_grad``;
    ``@no_grad()`` (or bare ``@no_grad``) wraps a whole function so every
    call runs untracked.
    """

    _mode = False


class enable_grad(_GradMode):
    """Force recording on inside a ``no_grad`` scope (manager/decorator).

    The graph-mode backward walk uses this so VJPs land on the tape even
    when a caller differentiates from inside a ``no_grad`` region.
    """

    _mode = True


# ----------------------------------------------------------------------
# Primitive registry
# ----------------------------------------------------------------------
class Primitive:
    """A named differentiable operation with registered VJPs.

    ``vjps`` is a per-argnum tuple of functions ``vjp(g, ans, operands,
    params) -> grad``; ``vjp_all`` (exclusive with ``vjps``) computes every
    requested argnum in one call — used where one engine invocation serves
    all operands (quantum adjoints) or where shared work should happen once
    (stack/concatenate).  ``operands`` are raw arrays in the fast walk and
    Tensors in the ``create_graph`` walk; VJP bodies are written to accept
    both.
    """

    __slots__ = ("name", "vjps", "vjp_all")

    def __init__(self, name: str):
        self.name = name
        self.vjps: tuple | None = None
        self.vjp_all = None

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"Primitive({self.name!r})"


def defvjp(prim: Primitive, *vjps) -> Primitive:
    """Register one VJP per positional operand of ``prim``."""
    prim.vjps = vjps
    return prim


def defvjp_all(prim: Primitive, vjp_all) -> Primitive:
    """Register a fused VJP computing every requested operand gradient.

    ``vjp_all(g, ans, operands, params, argnums)`` must return one gradient
    per entry of ``argnums`` (in order); entries may be None to skip.
    """
    prim.vjp_all = vjp_all
    return prim


class Node:
    """One recorded tape entry: which primitive produced a tensor, from what.

    ``args`` holds the operand tensors (graph-mode VJP inputs), ``vals``
    their raw arrays (fast-walk VJP inputs, extracted once at record time),
    ``params`` the non-differentiable parameters, and ``parents`` the
    ``(argnum, tensor)`` pairs that require gradients — the edges the
    backward walk follows.
    """

    __slots__ = ("prim", "args", "vals", "params", "parents")

    def __init__(self, prim, args, vals, params, parents):
        self.prim = prim
        self.args = args
        self.vals = vals
        self.params = params
        self.parents = parents


# ----------------------------------------------------------------------
# Tensor-type registration (avoids a circular import with tensor.py)
# ----------------------------------------------------------------------
_TENSOR_TYPES: tuple[type, ...] = ()


def register_tensor_type(cls) -> type:
    """Tell the walk which class carries ``_node``/``grad`` (Tensor)."""
    global _TENSOR_TYPES
    if cls not in _TENSOR_TYPES:
        _TENSOR_TYPES = _TENSOR_TYPES + (cls,)
    return cls


def is_tensor(x) -> bool:
    """Whether ``x`` is a registered tape tensor (vs a raw array/scalar)."""
    return isinstance(x, _TENSOR_TYPES)


def _tensor_cls() -> type:
    if not _TENSOR_TYPES:  # pragma: no cover - import-order guard
        raise RuntimeError("no tensor type registered with the tape")
    return _TENSOR_TYPES[0]


# ----------------------------------------------------------------------
# Topological walk
# ----------------------------------------------------------------------
def topo_order(root) -> list:
    """Post-order of the graph reachable from ``root`` through parents."""
    order: list = []
    visited: set[int] = set()
    stack: list[tuple] = [(root, False)]
    pop = stack.pop
    push = stack.append
    seen = visited.__contains__
    mark = visited.add
    emit = order.append
    while stack:
        t, processed = pop()
        if processed:
            emit(t)
            continue
        ti = id(t)
        if seen(ti):
            continue
        mark(ti)
        node = t._node
        if node is None:
            # Leaves have no parents: emit directly, skipping the
            # re-push/re-pop round-trip of the generic case.
            emit(t)
            continue
        push((t, True))
        for __, parent in node.parents:
            if not seen(id(parent)):
                push((parent, False))
    return order


def backward_pass(root, seed: np.ndarray, retain_graph: bool = False) -> None:
    """Propagate ``seed`` from ``root`` into every leaf's ``.grad`` buffer.

    This is the walk behind :meth:`Tensor.backward`: intermediate (non-leaf)
    gradients are cleared up front so ``retain_graph`` reruns are correct,
    accumulation happens through ``Tensor._accumulate`` (which owns the
    precision policy's grad dtype), and the graph is torn down afterwards
    unless ``retain_graph`` is set.

    Intermediate cotangents are transient: each one is released the moment
    its node's VJPs have consumed it, so only leaves carry a ``.grad``
    after the walk and peak memory is bounded by the graph *frontier*, not
    the whole tape.

    When tape compilation is enabled (the default — see
    :mod:`repro.nn.graph`), the walk body is replaced by a cached
    :class:`~repro.nn.graph.GraphPlan` lowered from the tape's structure;
    the interpreted loop below stays as the reference implementation the
    plan is bit-identical to.
    """
    if root._node is None:
        # Leaf root: no graph to walk, the seed is the gradient.
        root._accumulate(seed)
        return
    order = topo_order(root)
    # Intermediate (non-leaf) gradients are not retained across backward
    # passes — mirror torch semantics so retain_graph reruns are correct.
    for t in order:
        if t._node is not None:
            t.grad = None
    if _graph.tape_compile_enabled():
        _graph.plan_for_backward(order).run_backward(order, seed)
    else:
        root._accumulate(seed)
        for t in reversed(order):
            node = t._node
            if node is None or t.grad is None:
                continue
            g = t.grad
            # Release on consume: this node's cotangent is dead once its
            # VJPs have read ``g``.
            t.grad = None
            prim = node.prim
            if prim.vjp_all is not None:
                argnums = tuple(a for a, __ in node.parents)
                grads = prim.vjp_all(g, t.data, node.vals, node.params,
                                     argnums)
                for (__, parent), pg in zip(node.parents, grads):
                    if pg is not None and parent.requires_grad:
                        parent._accumulate(pg)
            else:
                vjps = prim.vjps
                for argnum, parent in node.parents:
                    if parent.requires_grad:
                        parent._accumulate(
                            vjps[argnum](g, t.data, node.vals, node.params)
                        )
    if not retain_graph:
        for t in order:
            t._node = None


def _node_grad_pairs(node, g, ans, operands):
    """Yield ``((argnum, parent), grad)`` for one node in either mode."""
    prim = node.prim
    if prim.vjp_all is not None:
        argnums = tuple(a for a, __ in node.parents)
        grads = prim.vjp_all(g, ans, operands, node.params, argnums)
        return zip(node.parents, grads)
    return (
        ((argnum, parent), prim.vjps[argnum](g, ans, operands, node.params))
        for argnum, parent in node.parents
    )


def _cotangent_walk(root, seed, order, create_graph: bool) -> dict:
    """Shared dict-based walk for the functional interface.

    Fast mode keeps cotangents as raw arrays; graph mode keeps them as
    Tensors and replays every VJP through recorded primitives (with
    recording forced on), so the returned gradients are themselves
    differentiable.
    """
    cot: dict[int, object] = {id(root): seed}
    if create_graph:
        with enable_grad():
            for t in reversed(order):
                node = t._node
                g = cot.get(id(t))
                if node is None or g is None:
                    continue
                for (__, parent), pg in _node_grad_pairs(node, g, t, node.args):
                    if pg is None:
                        continue
                    prev = cot.get(id(parent))
                    cot[id(parent)] = pg if prev is None else prev + pg
    else:
        for t in reversed(order):
            node = t._node
            g = cot.get(id(t))
            if node is None or g is None:
                continue
            for (__, parent), pg in _node_grad_pairs(node, g, t.data, node.vals):
                if pg is None:
                    continue
                prev = cot.get(id(parent))
                cot[id(parent)] = pg if prev is None else prev + pg
    return cot


# ----------------------------------------------------------------------
# Functional interface
# ----------------------------------------------------------------------
def grad(
    output,
    inputs,
    grad_output=None,
    retain_graph: bool | None = None,
    create_graph: bool = False,
    allow_unused: bool = False,
):
    """Gradients of ``output`` with respect to ``inputs`` (torch-style).

    Unlike :meth:`Tensor.backward` this does not touch any ``.grad``
    buffer: gradients come back as Tensors, one per input.  With
    ``create_graph=True`` the returned gradients carry their own tape, so
    they can be differentiated again — the entry point for Hessian-vector
    products and any grad-of-grad computation.

    Parameters
    ----------
    output:
        The tensor to differentiate (scalar unless ``grad_output`` is
        given).
    inputs:
        A tensor or sequence of tensors to differentiate with respect to
        (leaves or intermediates).
    grad_output:
        Upstream cotangent; defaults to 1 for scalar outputs.
    retain_graph:
        Keep the graph alive for another walk.  Defaults to
        ``create_graph``.
    create_graph:
        Record the backward computation itself, enabling higher-order
        gradients.
    allow_unused:
        Return None (instead of raising) for inputs the output does not
        depend on.
    """
    single = is_tensor(inputs)
    targets = (inputs,) if single else tuple(inputs)
    retain = create_graph if retain_graph is None else retain_graph
    if grad_output is None:
        if output.size != 1:
            raise ValueError(
                "grad() without an explicit grad_output requires a scalar "
                f"output, got shape {output.shape}"
            )
        seed = np.ones_like(output.data)
    else:
        seed = grad_output.data if is_tensor(grad_output) else grad_output
        seed = np.asarray(seed, dtype=output.dtype)
        if seed.shape != output.shape:
            seed = np.broadcast_to(seed, output.shape).copy()
    order = topo_order(output)
    tensor_cls = _tensor_cls()
    if create_graph:
        cot = _cotangent_walk(output, tensor_cls(seed), order, True)
    elif _graph.tape_compile_enabled() and output._node is not None:
        cot = _graph.plan_for_grad(order, targets).run_grad(order, seed)
    else:
        cot = _cotangent_walk(output, seed, order, False)
    if not retain:
        for t in order:
            t._node = None
    results = []
    for t in targets:
        g = cot.get(id(t))
        if g is None:
            if not allow_unused:
                raise ValueError(
                    "one of the differentiation targets is not reachable "
                    "from the output (pass allow_unused=True to get None)"
                )
            results.append(None)
        else:
            results.append(g if is_tensor(g) else tensor_cls(g))
    return results[0] if single else tuple(results)


def hvp(output, inputs, vectors, retain_graph: bool = False):
    """Hessian-vector products of a scalar ``output``: ``H @ v`` per input.

    Computed as the gradient of ``sum_i <grad_i, v_i>`` — one
    ``create_graph`` walk followed by one ordinary walk, never forming the
    Hessian.  Inputs the gradient does not depend on (linear parameters)
    get exact zero vectors back.
    """
    single = is_tensor(inputs)
    targets = (inputs,) if single else tuple(inputs)
    vecs = (vectors,) if single else tuple(vectors)
    if len(vecs) != len(targets):
        raise ValueError(
            f"expected {len(targets)} vectors, got {len(vecs)}"
        )
    grads = grad(output, targets, create_graph=True)
    dot = None
    for gi, vi in zip(grads, vecs):
        term = (gi * (vi.data if is_tensor(vi) else vi)).sum()
        dot = term if dot is None else dot + term
    products = grad(
        dot, targets, retain_graph=retain_graph, allow_unused=True
    )
    tensor_cls = _tensor_cls()
    results = tuple(
        tensor_cls(np.zeros_like(t.data)) if p is None else p
        for t, p in zip(targets, products)
    )
    return results[0] if single else results
