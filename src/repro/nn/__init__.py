"""Minimal PyTorch-like neural-network substrate (autodiff, modules, optim).

Public surface::

    from repro.nn import Tensor, Linear, Sequential, ReLU, Adam
    from repro.nn import functional as F
"""

from . import autodiff
from . import functional
from . import graph
from . import init
from .autodiff import enable_grad, grad, hvp
from .flat import (
    FlatLayout,
    FlatSlot,
    gradient_layout,
    parameter_layout,
    unique_named_parameters,
)
from .graph import (
    GraphPlan,
    clear_plan_cache,
    plan_cache_stats,
    set_tape_compile,
    tape_compile,
    tape_compile_enabled,
)
from .modules import (
    Identity,
    Lambda,
    Linear,
    Module,
    ModuleList,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from .optim import SGD, Adam, Optimizer, heterogeneous_adam
from .precision import (
    FLOAT32,
    FLOAT64,
    MIXED32,
    Precision,
    default_precision,
    resolve_precision,
    set_default_precision,
    use_precision,
)
from .serialization import load_module, module_fingerprint, save_module
from .schedulers import CosineAnnealingLR, ExponentialLR, LRScheduler, StepLR
from .tensor import Tensor, is_grad_enabled, no_grad

__all__ = [
    "Tensor",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "autodiff",
    "grad",
    "hvp",
    "graph",
    "GraphPlan",
    "tape_compile",
    "tape_compile_enabled",
    "set_tape_compile",
    "plan_cache_stats",
    "clear_plan_cache",
    "Module",
    "Parameter",
    "Linear",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Identity",
    "Lambda",
    "Sequential",
    "ModuleList",
    "Optimizer",
    "SGD",
    "Adam",
    "heterogeneous_adam",
    "LRScheduler",
    "StepLR",
    "ExponentialLR",
    "CosineAnnealingLR",
    "save_module",
    "load_module",
    "module_fingerprint",
    "functional",
    "init",
    "Precision",
    "FLOAT64",
    "FLOAT32",
    "MIXED32",
    "default_precision",
    "set_default_precision",
    "use_precision",
    "resolve_precision",
    "FlatLayout",
    "FlatSlot",
    "parameter_layout",
    "gradient_layout",
    "unique_named_parameters",
]
