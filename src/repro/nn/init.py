"""Weight initialization schemes.

All initializers take an explicit :class:`numpy.random.Generator` so that
every experiment in the reproduction is seeded end to end.
"""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "kaiming_uniform", "uniform", "normal", "zeros"]


def xavier_uniform(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform init: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_uniform(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform init suited to ReLU networks: U(-a, a), a = sqrt(6/fan_in)."""
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def uniform(shape: tuple, rng: np.random.Generator, low: float, high: float) -> np.ndarray:
    """Plain uniform init over [low, high)."""
    return rng.uniform(low, high, size=shape)


def normal(shape: tuple, rng: np.random.Generator, std: float = 1.0) -> np.ndarray:
    """Zero-mean Gaussian init with the given standard deviation."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple, rng: np.random.Generator | None = None) -> np.ndarray:
    """All-zeros init (used for biases)."""
    return np.zeros(shape)


def _fans(shape: tuple) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[1:]))
    fan_out = shape[0]
    return fan_in, fan_out
