"""Weight initialization schemes.

All initializers take an explicit :class:`numpy.random.Generator` so that
every experiment in the reproduction is seeded end to end.  Layers that are
constructed *without* a generator fall back to :func:`fresh_rng`, which
derives a distinct deterministic stream per call — previously every such
layer silently reused ``np.random.default_rng(0)`` and therefore drew
identical weights.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "xavier_uniform",
    "kaiming_uniform",
    "uniform",
    "normal",
    "zeros",
    "fresh_rng",
]

# Root of the default-initialization entropy tree.  ``spawn`` advances an
# internal child counter, so successive fresh_rng() calls hand out distinct,
# deterministic streams (run-to-run reproducible in construction order).
_DEFAULT_SEED_ROOT = np.random.SeedSequence(0)


def fresh_rng(rng: np.random.Generator | None = None) -> np.random.Generator:
    """Return ``rng`` unchanged, or a distinct deterministic default stream.

    The fallback used by ``Linear``/``QuantumLayer``/``PatchedQuantumLayer``
    when no generator is passed: each call spawns a new child of one root
    seed sequence, so two default-constructed layers no longer initialize
    from the same stream.  Pass an explicit generator (as every experiment
    entry point does) for exact end-to-end seeding.
    """
    if rng is not None:
        return rng
    return np.random.default_rng(_DEFAULT_SEED_ROOT.spawn(1)[0])


def xavier_uniform(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform init: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_uniform(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform init suited to ReLU networks: U(-a, a), a = sqrt(6/fan_in)."""
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def uniform(shape: tuple, rng: np.random.Generator, low: float, high: float) -> np.ndarray:
    """Plain uniform init over [low, high)."""
    return rng.uniform(low, high, size=shape)


def normal(shape: tuple, rng: np.random.Generator, std: float = 1.0) -> np.ndarray:
    """Zero-mean Gaussian init with the given standard deviation."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple, rng: np.random.Generator | None = None) -> np.ndarray:
    """All-zeros init (used for biases)."""
    return np.zeros(shape)


def _fans(shape: tuple) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[1:]))
    fan_out = shape[0]
    return fan_in, fan_out
