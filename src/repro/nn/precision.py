"""Precision policy: paired real/complex dtypes threaded through the stack.

Training-quality gradients do not need full double precision, and the
simulator's hot paths (the stacked ``(p * batch, 2**n)`` statevector passes)
are memory-bandwidth-bound — halving the bytes moved per kernel is the
single biggest lever left on them.  This module is the one place that
decides *which* floating-point width the stack runs at:

* a :class:`Precision` names a paired real/complex dtype family —
  ``float64/complex128`` (:data:`FLOAT64`, the default) or
  ``float32/complex64`` (:data:`FLOAT32`), plus :data:`MIXED32` which
  computes in single precision but accumulates gradients in ``float64``
  for mixed-precision stability;
* a process-wide *default policy* consulted by every constructor that is
  not given an explicit ``dtype=`` — :class:`~repro.nn.tensor.Tensor`
  creation from non-array data, layer parameter initialization, and the
  quantum execution entry points;
* :func:`use_precision`, a context manager that scopes a policy change:
  building a model (or running a training loop) inside
  ``with use_precision("float32"):`` threads single precision through every
  layer without touching any call site.

``float64`` stays the global default so parameter-shift gradient
cross-checks remain exact to machine precision; single precision is always
an explicit opt-in, per layer (``dtype="float32"``) or per scope.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Precision",
    "FLOAT64",
    "FLOAT32",
    "MIXED32",
    "default_precision",
    "set_default_precision",
    "use_precision",
    "resolve_precision",
    "precision_from_descriptor",
    "grad_dtype",
    "real_dtype_for",
    "complex_dtype_for",
]


@dataclass(frozen=True)
class Precision:
    """A paired real/complex dtype family plus its grad-accumulation width.

    ``real`` is the dtype of parameters, activations, and measurement
    outputs; ``complex`` the dtype of statevectors and gate matrices
    (always the complex counterpart of ``real``); ``grad_real`` the dtype
    gradient buffers accumulate in — equal to ``real`` except for the
    mixed policy, which keeps ``float64`` accumulators under ``float32``
    compute.
    """

    name: str
    real: np.dtype
    complex: np.dtype
    grad_real: np.dtype

    def descriptor(self) -> str:
        """The policy's stable cross-process form (its name).

        Worker processes rebuild their execution context from descriptors
        instead of inheriting pickled live state
        (:mod:`repro.training.parallel`); round-trips through
        :func:`precision_from_descriptor`.
        """
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"Precision({self.name!r})"


FLOAT64 = Precision(
    "float64", np.dtype(np.float64), np.dtype(np.complex128), np.dtype(np.float64)
)
FLOAT32 = Precision(
    "float32", np.dtype(np.float32), np.dtype(np.complex64), np.dtype(np.float32)
)
# float32 compute with float64 gradient accumulation (mixed-precision
# training stability: many small per-batch contributions summed into wide
# buffers lose no mantissa to the accumulation order).
MIXED32 = Precision(
    "mixed32", np.dtype(np.float32), np.dtype(np.complex64), np.dtype(np.float64)
)

_BY_NAME = {p.name: p for p in (FLOAT64, FLOAT32, MIXED32)}
_BY_DTYPE = {
    np.dtype(np.float64): FLOAT64,
    np.dtype(np.complex128): FLOAT64,
    np.dtype(np.float32): FLOAT32,
    np.dtype(np.complex64): FLOAT32,
}

_REAL_TO_COMPLEX = {
    np.dtype(np.float64): np.dtype(np.complex128),
    np.dtype(np.float32): np.dtype(np.complex64),
}
_COMPLEX_TO_REAL = {v: k for k, v in _REAL_TO_COMPLEX.items()}

# A stack so nested ``use_precision`` scopes restore correctly.
_DEFAULT: list[Precision] = [FLOAT64]


def default_precision() -> Precision:
    """The policy consulted wherever no explicit ``dtype=`` was given."""
    return _DEFAULT[-1]


def set_default_precision(spec) -> Precision:
    """Replace the process-wide default policy; returns the previous one."""
    previous = _DEFAULT[-1]
    _DEFAULT[-1] = resolve_precision(spec)
    return previous


@contextmanager
def use_precision(spec):
    """Scope the default policy: ``with use_precision("float32"): ...``."""
    _DEFAULT.append(resolve_precision(spec))
    try:
        yield _DEFAULT[-1]
    finally:
        _DEFAULT.pop()


def resolve_precision(spec=None) -> Precision:
    """Normalize a dtype-ish spec to a :class:`Precision`.

    Accepts None (the active default), a :class:`Precision`, a policy name
    (``"float64"``, ``"float32"``, ``"mixed32"``), or any real/complex
    numpy dtype of a supported pair (``np.float32`` -> :data:`FLOAT32`,
    ``np.complex128`` -> :data:`FLOAT64`, ...).
    """
    if spec is None:
        return default_precision()
    if isinstance(spec, Precision):
        return spec
    if isinstance(spec, str) and spec in _BY_NAME:
        return _BY_NAME[spec]
    try:
        dtype = np.dtype(spec)
    except TypeError:
        dtype = None
    if dtype is not None and dtype in _BY_DTYPE:
        return _BY_DTYPE[dtype]
    raise ValueError(
        f"unsupported precision spec {spec!r}; expected one of "
        f"{sorted(_BY_NAME)} or a float32/float64/complex64/complex128 dtype"
    )


def precision_from_descriptor(descriptor: str) -> Precision:
    """Rebuild the policy a :meth:`Precision.descriptor` names.

    The inverse of ``descriptor()`` for a fresh process: descriptors are
    plain strings, so they cross process boundaries without pickling any
    dtype state.
    """
    return resolve_precision(descriptor)


def grad_dtype(data_dtype) -> np.dtype:
    """Dtype a gradient buffer for ``data_dtype`` data accumulates in.

    The data dtype promoted with the active policy's ``grad_real``: under
    the default ``float64`` policy every buffer is float64 (the historical
    behavior); under ``float32`` a float32 tensor accumulates in float32;
    under ``mixed32`` accumulation is widened back to float64.

    ``Tensor._accumulate`` applies this on the *first* write into a grad
    buffer; the tape's backward walk (:mod:`repro.nn.autodiff`) routes
    every VJP — classical and quantum alike — through that one accumulation
    point, so the policy governs the whole graph uniformly.
    """
    return np.promote_types(np.dtype(data_dtype), default_precision().grad_real)


def real_dtype_for(dtype) -> np.dtype:
    """The real member of the pair containing ``dtype`` (real or complex)."""
    dtype = np.dtype(dtype)
    if dtype in _COMPLEX_TO_REAL:
        return _COMPLEX_TO_REAL[dtype]
    if dtype in _REAL_TO_COMPLEX:
        return dtype
    raise ValueError(f"no paired real dtype for {dtype}")


def complex_dtype_for(dtype) -> np.dtype:
    """The complex member of the pair containing ``dtype`` (real or complex)."""
    dtype = np.dtype(dtype)
    if dtype in _REAL_TO_COMPLEX:
        return _REAL_TO_COMPLEX[dtype]
    if dtype in _COMPLEX_TO_REAL:
        return dtype
    raise ValueError(f"no paired complex dtype for {dtype}")
