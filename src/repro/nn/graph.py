"""Compiled backward plans: lower a recorded tape once, run it many times.

Every training step re-records a structurally identical tape, yet the
generic walk in :mod:`repro.nn.autodiff` re-derives the same dispatch
decisions per step: which VJP to call for each node, which parents
receive gradients, whether a contribution is the first into a buffer.
This module gives the classical tape the same lower-once/run-many
treatment the quantum engine gives circuits (``compiled_plan`` /
``stacked_plan``):

* :func:`tape_signature` fingerprints a tape structurally — primitive
  sequence, operand shapes/dtypes, parent wiring, and the current
  requires-grad mask — exactly like ``circuit_signature`` keys circuit
  plans.  Any structural change (a shape, a dtype or precision-policy
  switch, a ``requires_grad_`` flip, a ``no_grad`` branch taken the other
  way) produces a different signature and transparently recompiles.
* :class:`GraphPlan` lowers the tape into a flat backward program:
  per-node dispatch is resolved at compile time (no registry lookups, no
  ``parents`` re-tupling, no per-edge requires-grad checks), and runs of
  single-consumer elementwise nodes (``mul``/``add``/``exp``/``tanh``/
  ``relu``/…) fuse into one composite VJP evaluated in a single pass —
  the classical analogue of the engine's fused single-qubit runs.
* Cotangent accumulation buffers are preallocated on the plan and reused
  across steps, with in-place accumulation wherever an ownership analysis
  proves it safe (see ``_OWN_*`` below); gradients stay bit-identical to
  the uncompiled walk because every fused kernel performs the exact same
  numpy operations in the exact same order, merely in place.
* Two further buffer families kill the remaining per-step allocations in
  backward mode: 2-d matmul VJP edges whose reference form is a bare
  GEMM write straight into plan-owned edge buffers (``out=`` runs the
  identical dgemm), and fused runs carry one staging temp so
  ``tanh``/``sigmoid``/``pow_const`` kernels stop allocating their
  shape-of-gradient intermediate.  View-shaped VJPs
  (transpose/reshape/astype return a view of the incoming cotangent)
  *inherit* the incoming ownership instead of pessimistically aliasing,
  so elementwise work keeps running in place across layout changes.

Plans are cached globally on their signature; :func:`plan_cache_stats`
exposes hit/miss/compile counters so tests can assert that steps 2+ of a
training loop never re-lower.  Compilation is on by default and can be
disabled with ``REPRO_TAPE_COMPILE=0`` (or per scope via
:func:`tape_compile`); the uncompiled walk remains the reference the
compiled path is differentially tested against.

Ownership levels
----------------
Bit-identical in-place execution hinges on knowing which arrays the walk
is allowed to mutate:

* ``_OWN_ALIAS`` (0) — the array may alias forward-graph state, a user
  seed, or a returned cotangent: never mutated.
* ``_OWN_SCRATCH`` (1) — a plan-owned persistent buffer: mutable this
  walk, but never handed out as a leaf ``.grad`` (it will be reused next
  step).
* ``_OWN_FRESH`` (2) — freshly allocated by a VJP this walk and
  referenced nowhere else: mutable *and* adoptable, so a leaf can take it
  as its ``.grad`` without the defensive copy the uncompiled walk pays.
"""

from __future__ import annotations

import os

import numpy as np

from .precision import default_precision, grad_dtype

__all__ = [
    "GraphPlan",
    "tape_signature",
    "plan_for_backward",
    "plan_for_grad",
    "plan_cache_stats",
    "clear_plan_cache",
    "tape_compile_enabled",
    "set_tape_compile",
    "tape_compile",
]

_OWN_ALIAS = 0
_OWN_SCRATCH = 1
_OWN_FRESH = 2
# Edge-freshness marker, never a runtime ownership level: the VJP returns
# a bijective view of the incoming cotangent (transpose/reshape/astype),
# so its ownership is whatever the incoming cotangent's ownership is,
# resolved at execution time.  Bijectivity matters: every element of the
# view maps to exactly one element of the base, so in-place accumulation
# through the view is sound, which is not true of broadcast views.
_OWN_INHERIT = 3

# ----------------------------------------------------------------------
# Toggle: REPRO_TAPE_COMPILE=0 opts out of the compile layer entirely.
# ----------------------------------------------------------------------
_ENABLED = [os.environ.get("REPRO_TAPE_COMPILE", "1").strip().lower()
            not in ("0", "false", "off", "no")]


def tape_compile_enabled() -> bool:
    """Whether ``Tensor.backward`` / ``grad()`` consult the plan cache."""
    return _ENABLED[0]


def set_tape_compile(enabled: bool) -> bool:
    """Set the compile toggle; returns the previous value."""
    previous = _ENABLED[0]
    _ENABLED[0] = bool(enabled)
    return previous


class tape_compile:
    """Scope the compile toggle: ``with tape_compile(False): ...``.

    The equivalence suite uses this to run the same tape through both the
    compiled program and the reference walk inside one process.
    """

    def __init__(self, enabled: bool):
        self._enabled = bool(enabled)

    def __enter__(self):
        self._prev = set_tape_compile(self._enabled)
        return self

    def __exit__(self, *exc) -> None:
        _ENABLED[0] = self._prev


# ----------------------------------------------------------------------
# Structural signature
# ----------------------------------------------------------------------
# Section separator inside the flat signature stream.  It equals only
# itself, so the variable-length parent/operand sections of consecutive
# nodes can never shift into alignment between two different structures.
_SEP = object()


def tape_signature(order) -> tuple:
    """Structural fingerprint of a recorded tape (and its slot index map).

    The signature is a single flat tuple — this function runs once per
    ``backward()`` even on cache hits, so it avoids per-node nested-tuple
    construction.  Leaves contribute ``None, shape, dtype, requires_grad``;
    recorded nodes contribute the primitive (hashed by identity —
    primitives are module singletons), the output shape/dtype, the parent
    wiring as ``argnum, slot, requires_grad`` triples, and every operand's
    shape/dtype, with the two variable-length sections ``_SEP``-terminated
    so the stream parses back to exactly one structure.  Returns
    ``(signature, index)`` where ``index`` maps ``id(tensor) -> slot``.
    """
    parts: list = []
    ap = parts.append
    index: dict[int, int] = {}
    i = 0
    for t in order:
        index[id(t)] = i
        i += 1
        node = t._node
        data = t.data
        if node is None:
            ap(None)
            ap(data.shape)
            ap(data.dtype.num)
            ap(t.requires_grad)
        else:
            ap(node.prim)
            ap(data.shape)
            ap(data.dtype.num)
            for a, p in node.parents:
                ap(a)
                ap(index[id(p)])
                ap(p.requires_grad)
            ap(_SEP)
            for v in node.vals:
                ap(v.shape)
                ap(v.dtype.num)
            ap(_SEP)
    return tuple(parts), index


# ----------------------------------------------------------------------
# Freshness analysis: which registered VJPs return arrays that alias
# nothing (safe to adopt as a leaf .grad, safe to mutate downstream)?
# Keyed by (primitive name, argnum); values are True (always a fresh
# allocation), False (may alias the upstream cotangent or a view of it),
# "unb" (fresh exactly when unbroadcasting actually reduces), or "view"
# (a bijective view of the cotangent — inherits its ownership at run
# time, so a fresh matmul gradient flowing through e.g. ``transpose``
# stays adoptable by the leaf on the far side).
# ----------------------------------------------------------------------
_VJP_FRESHNESS: dict[tuple[str, int], object] = {
    ("add", 0): "unb", ("add", 1): "unb",
    ("sub", 0): "unb", ("sub", 1): True,   # -g allocates
    ("neg", 0): True,
    ("mul", 0): True, ("mul", 1): True,
    ("div", 0): True, ("div", 1): True,
    ("pow_const", 0): True,
    ("pow", 0): True, ("pow", 1): True,
    ("matmul", 0): True, ("matmul", 1): True,
    ("exp", 0): True, ("log", 0): True, ("sqrt", 0): True,
    ("relu", 0): True, ("sigmoid", 0): True, ("tanh", 0): True,
    ("abs", 0): True, ("clip", 0): True,
    ("sum", 0): False,            # broadcast_to view of g
    ("max", 0): True,
    ("reshape", 0): "view", ("transpose", 0): "view",
    ("astype", 0): "view",        # astype(copy=False) may return g itself
    ("broadcast_to", 0): "unb",
    ("getitem", 0): True,         # np.add.at into a zeros buffer
}


def _edge_freshness(prim_name: str, argnum: int, parent_shape, out_shape) -> int:
    rule = _VJP_FRESHNESS.get((prim_name, argnum), False)
    if rule == "unb":
        return _OWN_FRESH if parent_shape != out_shape else _OWN_ALIAS
    if rule == "view":
        return _OWN_INHERIT
    return _OWN_FRESH if rule is True else _OWN_ALIAS


# ----------------------------------------------------------------------
# Fused elementwise kernels.  Each mirrors the registered VJP expression
# operation for operation (same ufuncs, same association order) so the
# result is bit-identical — the only difference is writing into ``g`` in
# place when the ownership level allows, instead of allocating per node.
# Each kernel takes ``(g, own, ans, vals, params, tmp)`` and returns the
# updated ``(g, own)``.  ``tmp`` is an optional plan-owned staging buffer
# (the run's shape, the plan's grad dtype): kernels that need a
# shape-of-``g`` intermediate even when they own ``g`` (tanh, sigmoid,
# pow_const) stage it there instead of allocating — guarded by exact
# shape/dtype match so a mismatch silently falls back to the allocating
# expression and numeric promotion never changes.
# ----------------------------------------------------------------------
def _k_identity(g, own, ans, vals, params, tmp=None):
    return g, own


def _k_neg(g, own, ans, vals, params, tmp=None):
    if own:
        return np.negative(g, out=g), own
    return -g, _OWN_FRESH


def _make_mul_by(operand_index):
    def kernel(g, own, ans, vals, params, tmp=None):
        v = vals[operand_index]
        if own:
            return np.multiply(g, v, out=g), own
        return g * v, _OWN_FRESH

    return kernel


_k_mul0 = _make_mul_by(1)
_k_mul1 = _make_mul_by(0)


def _k_div0(g, own, ans, vals, params, tmp=None):
    v = vals[1]
    if own:
        return np.divide(g, v, out=g), own
    return g / v, _OWN_FRESH


def _k_exp(g, own, ans, vals, params, tmp=None):
    if own:
        return np.multiply(g, ans, out=g), own
    return g * ans, _OWN_FRESH


def _k_log(g, own, ans, vals, params, tmp=None):
    if own:
        return np.divide(g, vals[0], out=g), own
    return g / vals[0], _OWN_FRESH


def _k_sqrt(g, own, ans, vals, params, tmp=None):
    # g * 0.5 / ans, left to right.
    if own:
        np.multiply(g, 0.5, out=g)
        return np.divide(g, ans, out=g), own
    return g * 0.5 / ans, _OWN_FRESH


def _k_relu(g, own, ans, vals, params, tmp=None):
    mask = params["mask"]
    if own:
        return np.multiply(g, mask, out=g), own
    return g * mask, _OWN_FRESH


def _k_sigmoid(g, own, ans, vals, params, tmp=None):
    # g * ans * (1.0 - ans), left to right.
    if tmp is not None and tmp.shape == ans.shape and tmp.dtype == ans.dtype:
        s = np.subtract(1.0, ans, out=tmp)
    else:
        s = 1.0 - ans
    if own:
        np.multiply(g, ans, out=g)
    else:
        g = g * ans
        own = _OWN_FRESH
    return np.multiply(g, s, out=g), own


def _k_tanh(g, own, ans, vals, params, tmp=None):
    # g * (1.0 - ans**2); numpy lowers ``ans**2`` to square.
    if tmp is not None and tmp.shape == ans.shape and tmp.dtype == ans.dtype:
        s = np.square(ans, out=tmp)
    else:
        s = np.square(ans)
    np.subtract(1.0, s, out=s)
    if own:
        return np.multiply(g, s, out=g), own
    return g * s, _OWN_FRESH


def _k_abs(g, own, ans, vals, params, tmp=None):
    sign = params["sign"]
    if own and sign.dtype == g.dtype:
        return np.multiply(g, sign, out=g), own
    return g * sign, _OWN_FRESH


def _k_clip(g, own, ans, vals, params, tmp=None):
    mask = params["mask"]
    if own:
        return np.multiply(g, mask, out=g), own
    return g * mask, _OWN_FRESH


def _k_pow_const(g, own, ans, vals, params, tmp=None):
    # g * c * x**(c - 1), left to right; the exponent stays a Python
    # scalar so ``x ** (c - 1)`` takes the exact code path of the VJP.
    c = params["c"]
    x = vals[0]
    if (
        tmp is not None
        and not isinstance(c, complex)
        and tmp.shape == x.shape
        and tmp.dtype == x.dtype
    ):
        p = np.power(x, c - 1, out=tmp)
    else:
        p = x ** (c - 1)
    if not own:
        g = g * c
        own = _OWN_FRESH
    else:
        np.multiply(g, c, out=g)
    return np.multiply(g, p, out=g), own


# Kernels that profit from a staging buffer: a run containing any of
# these gets one plan-owned temp registered at lowering.
_TMP_KERNELS = frozenset((_k_sigmoid, _k_tanh, _k_pow_const))


# ``(prim name, argnum) -> kernel`` for chainable elementwise VJPs.  An
# edge qualifies only when the cotangent shape is preserved (checked at
# lowering), so no unbroadcast step is ever skipped.
_CHAIN_KERNELS: dict[tuple[str, int], object] = {
    ("add", 0): _k_identity, ("add", 1): _k_identity,
    ("sub", 0): _k_identity, ("sub", 1): _k_neg,
    ("neg", 0): _k_neg,
    ("mul", 0): _k_mul0, ("mul", 1): _k_mul1,
    ("div", 0): _k_div0,
    ("exp", 0): _k_exp, ("log", 0): _k_log, ("sqrt", 0): _k_sqrt,
    ("relu", 0): _k_relu, ("sigmoid", 0): _k_sigmoid, ("tanh", 0): _k_tanh,
    ("abs", 0): _k_abs, ("clip", 0): _k_clip,
    ("pow_const", 0): _k_pow_const,
}


def _chain_kernel(node, t, parent):
    """Kernel for ``node``'s single gradient edge, or None if not fusible."""
    if len(node.parents) != 1:
        return None
    argnum, p = node.parents[0]
    kernel = _CHAIN_KERNELS.get((node.prim.name, argnum))
    if kernel is None:
        return None
    out_shape = t.data.shape
    if out_shape == ():
        return None  # 0-d cotangents are numpy scalars — no out= kernels
    if p.data.shape != out_shape:
        return None  # an unbroadcast is involved — leave it to the VJP
    # Multiplicative kernels read the co-operand; it must broadcast
    # without changing the cotangent's shape.
    for v in node.vals:
        if v.shape not in ((), out_shape):
            return None
    return kernel


def _matmul_out_vjp(plan, key, argnum):
    """Backward-mode matmul VJP writing into a plan-owned edge buffer.

    Only installed when lowering has proven the reference VJP reduces to
    a single 2-d ``matmul`` whose natural result dtype equals the
    target's accumulation dtype (no unbroadcast, no reshape, no cast) —
    then ``out=`` runs the very same GEMM into a reusable buffer and the
    result is bit-identical.  The buffer is handed to the accumulator at
    ``_OWN_SCRATCH``: mutable during the walk, never adopted as a leaf
    ``.grad``, fully overwritten on the next walk.
    """
    if argnum == 0:
        def vjp(g, ans, vals, params):
            return np.matmul(
                g, vals[1].swapaxes(-1, -2), out=plan._edge_buf(key)
            )
    else:
        def vjp(g, ans, vals, params):
            return np.matmul(
                vals[0].swapaxes(-1, -2), g, out=plan._edge_buf(key)
            )
    return vjp


# Step kinds in the lowered program.
_STEP_RUN = 0      # fused elementwise run
_STEP_VJPS = 1     # per-argnum VJP dispatch, flattened at compile time
_STEP_VJP_ALL = 2  # fused multi-operand VJP (stack/concat/quantum)


class GraphPlan:
    """One lowered backward program for one tape structure.

    ``steps`` is the flat reverse program; each step carries its node's
    slot so execution can bind the *fresh* tape's arrays and params at run
    time — the plan never bakes in data, only structure.  Accumulation
    targets are ``(slot, want_dtype, is_leaf)`` triples resolved at
    compile time.  ``_bufs`` holds the per-slot cotangent accumulation
    buffers reused across executions.
    """

    __slots__ = (
        "signature", "n_slots", "steps", "root_slot", "root_want",
        "leaf_slots", "mode", "target_slots", "n_fused_nodes", "_bufs",
        "_buf_spec", "_edge_bufs", "_edge_spec", "_tmp_bufs", "_tmp_spec",
    )

    def __init__(self, order, signature, mode="backward", target_slots=()):
        self.signature = signature
        self.n_slots = len(order)
        self.mode = mode
        self.target_slots = frozenset(target_slots)
        self.root_slot = self.n_slots - 1
        root = order[self.root_slot]
        self.root_want = grad_dtype(root.data.dtype)
        self.leaf_slots = tuple(
            i for i, t in enumerate(order) if t._node is None
        )
        self._bufs: dict[int, np.ndarray] = {}
        self._buf_spec: dict[int, tuple] = {}
        # Per-edge matmul output buffers and per-run kernel temp buffers
        # (backward mode only); like ``_bufs`` they are allocated lazily
        # and reused across walks — nothing written to them ever escapes
        # the walk, so reuse is invisible.
        self._edge_bufs: dict[tuple, np.ndarray] = {}
        self._edge_spec: dict[tuple, tuple] = {}
        self._tmp_bufs: dict[int, np.ndarray] = {}
        self._tmp_spec: dict[int, tuple] = {}
        self.steps, self.n_fused_nodes = self._lower(order)

    # ------------------------------------------------------------------
    # Lowering
    # ------------------------------------------------------------------
    def _lower(self, order):
        index = {id(t): i for i, t in enumerate(order)}
        # Contribution in-degree per slot: how many gradient edges feed it.
        indeg = [0] * len(order)
        for t in order:
            node = t._node
            if node is None:
                continue
            for argnum, p in node.parents:
                if p.requires_grad:
                    indeg[index[id(p)]] += 1
        is_grad_mode = self.mode == "grad"

        def accum_for(slot):
            t = order[slot]
            want = None if is_grad_mode else grad_dtype(t.data.dtype)
            is_leaf = t._node is None and not is_grad_mode
            if not is_leaf and not is_grad_mode:
                self._buf_spec.setdefault(slot, (t.data.shape, want))
            return (slot, want, is_leaf)

        # The program visits nodes in exactly the reference walk's order
        # (reversed topological); leaves are never visited.
        node_slots = [
            slot for slot in range(len(order) - 1, -1, -1)
            if order[slot]._node is not None
        ]

        steps: list[tuple] = []
        fused_nodes = 0
        run_kernels: list[tuple] = []
        run_entry = -1
        run_expect = -1

        def close_run():
            nonlocal run_kernels, run_entry, run_expect
            if run_kernels:
                # Register one staging buffer for the run when a kernel
                # can use it (tanh/sigmoid/pow_const stage an
                # intermediate there instead of allocating).  The spec is
                # taken from the first eligible node; kernels re-check
                # shape/dtype at execution and fall back to allocating on
                # any mismatch, so a shared buffer is purely advisory.
                if not is_grad_mode and run_entry not in self._tmp_spec:
                    for kernel, kslot in run_kernels:
                        if kernel not in _TMP_KERNELS:
                            continue
                        kt = order[kslot]
                        src = (
                            kt._node.vals[0]
                            if kernel is _k_pow_const
                            else kt.data
                        )
                        if np.issubdtype(src.dtype, np.inexact):
                            self._tmp_spec[run_entry] = (
                                src.shape, src.dtype
                            )
                            break
                steps.append((
                    _STEP_RUN,
                    run_entry,
                    tuple(run_kernels),
                    accum_for(run_expect),
                ))
            run_kernels = []
            run_entry = -1
            run_expect = -1

        for pos, slot in enumerate(node_slots):
            t = order[slot]
            node = t._node
            parent = node.parents[0][1] if node.parents else None
            kernel = (
                _chain_kernel(node, t, parent)
                if parent is not None and parent.requires_grad
                else None
            )
            if kernel is None:
                # If a run is open here its expected slot is this one
                # (guaranteed by the flow check below), so closing it now
                # stores this node's cotangent before the generic step
                # reads it.
                close_run()
                prim = node.prim
                if prim.vjp_all is not None:
                    argnums = tuple(a for a, __ in node.parents)
                    targets = tuple(
                        accum_for(index[id(p)]) if p.requires_grad else None
                        for __, p in node.parents
                    )
                    steps.append((_STEP_VJP_ALL, slot, prim.vjp_all,
                                  argnums, targets))
                else:
                    edges = []
                    for argnum, p in node.parents:
                        if not p.requires_grad:
                            continue
                        target = accum_for(index[id(p)])
                        vjp = prim.vjps[argnum]
                        fresh = _edge_freshness(
                            prim.name, argnum, p.data.shape, t.data.shape
                        )
                        # A 2-d matmul edge whose reference VJP is a bare
                        # GEMM (no unbroadcast/reshape) and whose natural
                        # result dtype equals the target's accumulation
                        # dtype can write straight into a plan-owned
                        # buffer.  The cotangent dtype is known here
                        # because backward mode maintains
                        # ``cot[slot].dtype == want(slot)``.  Leaf
                        # targets are excluded: adoption needs a fresh
                        # array, so a scratch result would force a copy.
                        if (
                            not is_grad_mode
                            and prim.name == "matmul"
                            and not target[2]
                            and t.data.ndim == 2
                            and node.vals[0].ndim == 2
                            and node.vals[1].ndim == 2
                            and np.result_type(
                                grad_dtype(t.data.dtype),
                                node.vals[1 - argnum].dtype,
                            ) == target[1]
                        ):
                            key = (slot, argnum)
                            self._edge_spec[key] = (p.data.shape, target[1])
                            vjp = _matmul_out_vjp(self, key, argnum)
                            fresh = _OWN_SCRATCH
                        edges.append((vjp, target, fresh))
                    if edges:
                        steps.append((_STEP_VJPS, slot, tuple(edges)))
                continue
            # Fusible node: start a run or extend the one flowing into it.
            parent_slot = index[id(parent)]
            if not run_kernels:
                run_entry = slot
            run_kernels.append((kernel, slot))
            run_expect = parent_slot
            fused_nodes += 1
            # The run may keep flowing only if the parent is processed
            # immediately next (preserving the reference walk's
            # accumulation order), receives no other contribution, and is
            # not a target that must materialize its cotangent.
            # Backward mode additionally pins the run to one accumulation
            # dtype: the reference walk casts each slot's cotangent to its
            # ``want`` dtype, so flowing across a want boundary would skip
            # a cast the reference performs.
            next_slot = node_slots[pos + 1] if pos + 1 < len(node_slots) else -1
            if (
                parent_slot != next_slot
                or indeg[parent_slot] != 1
                or parent_slot in self.target_slots
                or (
                    not is_grad_mode
                    and grad_dtype(parent.data.dtype)
                    != grad_dtype(t.data.dtype)
                )
            ):
                close_run()
        close_run()
        return tuple(steps), fused_nodes

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _scratch(self, slot):
        buf = self._bufs.get(slot)
        if buf is None:
            shape, want = self._buf_spec[slot]
            buf = np.empty(shape, dtype=want)
            self._bufs[slot] = buf
        return buf

    def _edge_buf(self, key):
        buf = self._edge_bufs.get(key)
        if buf is None:
            shape, dtype = self._edge_spec[key]
            buf = np.empty(shape, dtype=dtype)
            self._edge_bufs[key] = buf
        return buf

    def _tmp(self, entry_slot):
        spec = self._tmp_spec.get(entry_slot)
        if spec is None:
            return None
        buf = self._tmp_bufs.get(entry_slot)
        if buf is None:
            buf = np.empty(spec[0], dtype=spec[1])
            self._tmp_bufs[entry_slot] = buf
        return buf

    def run_backward(self, order, seed) -> None:
        """Execute the program: leaf ``.grad`` semantics, bit-identical to
        the reference walk in :func:`repro.nn.autodiff.backward_pass`."""
        n = self.n_slots
        cot: list = [None] * n
        own: list = [0] * n
        mine: list = [False] * n  # leaf .grad buffers we created this walk

        def acc(target, pg, pg_own):
            slot, want, is_leaf = target
            # VJPs of 0-d tensors return numpy *scalars*; they carry no
            # adoptable/mutable buffer, so strip any ownership claim.
            if pg.__class__ is not np.ndarray:
                pg_own = _OWN_ALIAS
            if is_leaf:
                t = order[slot]
                cur = t.grad
                if cur is None:
                    if pg_own == _OWN_FRESH and pg.dtype == want:
                        t.grad = pg
                    else:
                        t.grad = np.array(pg, dtype=want, copy=True)
                    mine[slot] = True
                elif mine[slot]:
                    np.add(cur, pg, out=cur)
                else:
                    t._accumulate(pg)
                return
            prev = cot[slot]
            if prev is None:
                if pg.dtype == want:
                    cot[slot] = pg
                    own[slot] = pg_own
                else:
                    buf = self._scratch(slot)
                    np.copyto(buf, pg)
                    cot[slot] = buf
                    own[slot] = _OWN_SCRATCH
            elif own[slot]:
                np.add(prev, pg, out=prev)
            else:
                buf = self._scratch(slot)
                np.add(prev, pg, out=buf)
                cot[slot] = buf
                own[slot] = _OWN_SCRATCH

        # Seed the root exactly like root._accumulate would.
        root_slot = self.root_slot
        if seed.dtype == self.root_want:
            cot[root_slot] = seed
        else:
            cot[root_slot] = np.array(seed, dtype=self.root_want, copy=True)
            own[root_slot] = _OWN_FRESH

        for step in self.steps:
            kind = step[0]
            if kind == _STEP_RUN:
                g = cot[step[1]]
                if g is None:
                    continue
                g_own = own[step[1]]
                tmp = self._tmp(step[1])
                for kernel, slot in step[2]:
                    t = order[slot]
                    node = t._node
                    g, g_own = kernel(
                        g, g_own, t.data, node.vals, node.params, tmp
                    )
                acc(step[3], g, g_own)
            elif kind == _STEP_VJPS:
                slot = step[1]
                g = cot[slot]
                if g is None:
                    continue
                t = order[slot]
                node = t._node
                ans, vals, params = t.data, node.vals, node.params
                g_own = own[slot]
                for vjp, target, fresh in step[2]:
                    acc(target, vjp(g, ans, vals, params),
                        g_own if fresh == _OWN_INHERIT else fresh)
            else:  # _STEP_VJP_ALL
                slot = step[1]
                g = cot[slot]
                if g is None:
                    continue
                t = order[slot]
                node = t._node
                grads = step[2](g, t.data, node.vals, node.params, step[3])
                for target, pg in zip(step[4], grads):
                    if target is not None and pg is not None:
                        acc(target, pg, _OWN_ALIAS)

    def run_grad(self, order, seed) -> dict:
        """Execute in functional mode: return ``{id(tensor): cotangent}``
        for the requested target slots, matching ``_cotangent_walk``."""
        n = self.n_slots
        cot: list = [None] * n
        own: list = [0] * n
        targets = self.target_slots

        def acc(target, pg, pg_own):
            slot = target[0]
            if pg.__class__ is not np.ndarray:
                pg_own = _OWN_ALIAS
            prev = cot[slot]
            if prev is None:
                cot[slot] = pg
                own[slot] = 0 if slot in targets else pg_own
            elif own[slot] and prev.dtype == pg.dtype:
                np.add(prev, pg, out=prev)
                if slot in targets:
                    own[slot] = 0
            else:
                cot[slot] = prev + pg
                own[slot] = 0 if slot in targets else _OWN_FRESH

        cot[self.root_slot] = seed

        for step in self.steps:
            kind = step[0]
            if kind == _STEP_RUN:
                g = cot[step[1]]
                if g is None:
                    continue
                # Functional mode has no ``want``-dtype invariant along a
                # run, so in-place kernels could downcast where the
                # reference promotes: force the non-owned (allocating)
                # branch of every kernel, which replicates the reference
                # expressions with natural promotion.
                for kernel, slot in step[2]:
                    t = order[slot]
                    node = t._node
                    g, __ = kernel(g, _OWN_ALIAS, t.data, node.vals,
                                   node.params)
                acc(step[3], g, _OWN_ALIAS)
            elif kind == _STEP_VJPS:
                slot = step[1]
                g = cot[slot]
                if g is None:
                    continue
                t = order[slot]
                node = t._node
                ans, vals, params = t.data, node.vals, node.params
                g_own = own[slot]
                for vjp, target, fresh in step[2]:
                    acc(target, vjp(g, ans, vals, params),
                        g_own if fresh == _OWN_INHERIT else fresh)
            else:
                slot = step[1]
                g = cot[slot]
                if g is None:
                    continue
                t = order[slot]
                node = t._node
                grads = step[2](g, t.data, node.vals, node.params, step[3])
                for target, pg in zip(step[4], grads):
                    if target is not None and pg is not None:
                        acc(target, pg, _OWN_ALIAS)
        return {
            id(order[slot]): cot[slot]
            for slot in targets
            if cot[slot] is not None
        }

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"GraphPlan(slots={self.n_slots}, steps={len(self.steps)}, "
            f"fused_nodes={self.n_fused_nodes}, mode={self.mode!r})"
        )


# ----------------------------------------------------------------------
# Plan cache
# ----------------------------------------------------------------------
_PLAN_CACHE: dict[tuple, GraphPlan] = {}
_STATS = {"hits": 0, "misses": 0}


def plan_cache_stats() -> dict:
    """Cache counters: ``hits``, ``misses`` (== compiles), and ``size``."""
    return {
        "hits": _STATS["hits"],
        "misses": _STATS["misses"],
        "size": len(_PLAN_CACHE),
    }


def clear_plan_cache() -> None:
    """Drop every cached plan and reset the counters."""
    _PLAN_CACHE.clear()
    _STATS["hits"] = 0
    _STATS["misses"] = 0


def _lookup(order, mode, signature, target_slots=()):
    key = (
        mode,
        tuple(sorted(set(target_slots))),
        default_precision().grad_real.num,
        signature,
    )
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        _STATS["misses"] += 1
        plan = GraphPlan(order, signature, mode=mode,
                         target_slots=target_slots)
        _PLAN_CACHE[key] = plan
    else:
        _STATS["hits"] += 1
    return plan


def plan_for_backward(order) -> GraphPlan:
    """The cached plan for ``Tensor.backward``'s ``.grad`` semantics."""
    signature, __ = tape_signature(order)
    return _lookup(order, "backward", signature)


def plan_for_grad(order, targets) -> GraphPlan:
    """The cached plan for the functional :func:`grad` fast path.

    ``targets`` not reachable from the root simply never receive a
    cotangent; :meth:`GraphPlan.run_grad` omits them from its result dict
    exactly like the reference ``_cotangent_walk``.
    """
    signature, index = tape_signature(order)
    target_slots = tuple(
        index[id(t)] for t in targets if id(t) in index
    )
    return _lookup(order, "grad", signature, target_slots)
