"""Neural-network module system (the reproduction's ``torch.nn``).

Modules own named :class:`~repro.nn.tensor.Tensor` parameters and compose
through :class:`Sequential`.  Parameters are discovered recursively, and each
module can be tagged with a ``group`` label ("classical" or "quantum") which
the optimizer uses to apply the paper's heterogeneous learning rates.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

import numpy as np

from . import init as initializers
from .precision import resolve_precision
from .tensor import Tensor

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Identity",
    "Lambda",
    "Sequential",
    "ModuleList",
]


class Parameter(Tensor):
    """A trainable tensor; distinguished from activations by its type."""

    def __init__(self, data, group: str = "classical", name: str = "", dtype=None):
        super().__init__(data, requires_grad=True, name=name, dtype=dtype)
        self.group = group

    __slots__ = ("group",)


class Module:
    """Base class with parameter registration and (sub)module traversal."""

    def __init__(self) -> None:
        self._parameters: dict[str, Parameter] = {}
        self._modules: dict[str, "Module"] = {}
        self.training = True

    # -- registration ---------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, param: Parameter) -> None:
        self._parameters[name] = param
        object.__setattr__(self, name, param)

    # -- traversal ------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield every parameter in this module and its children, once."""
        seen: set[int] = set()
        for __, param in self.named_parameters():
            if id(param) not in seen:
                seen.add(id(param))
                yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{child_name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self, group: str | None = None) -> int:
        """Total number of scalar trainable parameters (optionally one group)."""
        return sum(
            p.size for p in self.parameters() if group is None or p.group == group
        )

    def parameter_groups(self) -> dict[str, list[Parameter]]:
        """Parameters bucketed by their ``group`` tag (quantum vs classical)."""
        groups: dict[str, list[Parameter]] = {}
        for param in self.parameters():
            groups.setdefault(param.group, []).append(param)
        return groups

    # -- mode -----------------------------------------------------------
    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def requires_grad_(self, requires_grad: bool = True) -> "Module":
        """Freeze or unfreeze every parameter in place (torch-style).

        Frozen parameters drop out of the recorded tape entirely — ops on
        them record no node, so backward skips their whole subgraph rather
        than computing and discarding gradients.
        """
        for param in self.parameters():
            param.requires_grad = bool(requires_grad)
        return self

    # -- state ----------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter array keyed by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore parameters from a dotted-name -> array mapping.

        The stored floating dtype is preserved (a float32 checkpoint
        rehydrates as float32 parameters); non-float payloads are cast to
        float64.
        """
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        if missing:
            raise KeyError(f"state dict missing parameters: {sorted(missing)}")
        for name, param in params.items():
            value = np.asarray(state[name])
            if value.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
                value = value.astype(np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {value.shape} vs {param.data.shape}"
                )
            param.data = value.copy()

    # -- call -----------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Affine layer ``y = x W^T + b`` with Kaiming-uniform weights.

    ``dtype`` selects the parameter precision (a real dtype, a policy name,
    or a :class:`~repro.nn.precision.Precision`); None follows the active
    precision policy (float64 by default).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        group: str = "classical",
        dtype=None,
    ):
        super().__init__()
        rng = initializers.fresh_rng(rng)
        real = resolve_precision(dtype).real
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            initializers.kaiming_uniform((out_features, in_features), rng),
            group=group,
            dtype=real,
        )
        if bias:
            bound = 1.0 / np.sqrt(in_features)
            self.bias = Parameter(
                initializers.uniform((out_features,), rng, -bound, bound),
                group=group,
                dtype=real,
            )
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"Linear({self.in_features}, {self.out_features})"


class ReLU(Module):
    """Elementwise rectifier."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Sigmoid(Module):
    """Elementwise logistic sigmoid."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    """Elementwise hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Identity(Module):
    """Pass-through module."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Lambda(Module):
    """Wrap an arbitrary tensor function as a module (for simple glue)."""

    def __init__(self, fn: Callable[[Tensor], Tensor]):
        super().__init__()
        self.fn = fn

    def forward(self, x: Tensor) -> Tensor:
        return self.fn(x)


class Sequential(Module):
    """Feed-forward composition of child modules."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for index, layer in enumerate(layers):
            self._modules[str(index)] = layer

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)


class ModuleList(Module):
    """A list of modules whose parameters are all registered."""

    def __init__(self, modules: Iterable[Module] = ()):
        super().__init__()
        self._items: list[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> None:
        self._modules[str(len(self._items))] = module
        self._items.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]
