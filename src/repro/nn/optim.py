"""Optimizers with parameter groups.

The paper trains hybrid models with *heterogeneous learning rates*: quantum
rotation angles live in ``[-pi, pi]`` while classical weights span a much
larger range, so the two families get different step sizes (Fig. 7 sweeps a
5x5 grid and selects quantum lr 0.03 / classical lr 0.01).  Parameter groups
make that a first-class feature, exactly like ``torch.optim``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer handling parameter groups and ``zero_grad``."""

    def __init__(self, params, defaults: dict):
        self.defaults = defaults
        self.param_groups: list[dict] = []
        params = list(params)
        if params and isinstance(params[0], dict):
            for group in params:
                merged = dict(defaults)
                merged.update(group)
                merged["params"] = list(group["params"])
                self.param_groups.append(merged)
        else:
            merged = dict(defaults)
            merged["params"] = params
            self.param_groups.append(merged)
        for group in self.param_groups:
            if not all(isinstance(p, Tensor) for p in group["params"]):
                raise TypeError("optimizer parameters must be Tensors")

    def zero_grad(self, set_to_none: bool = True) -> None:
        """Reset every parameter gradient (torch-parity signature).

        ``set_to_none=True`` (the default) drops the buffers entirely —
        the next backward allocates or adopts fresh ones, which pairs
        with the compiled tape's buffer reuse and skips a redundant
        fill.  ``set_to_none=False`` keeps each existing buffer and
        zeroes it in place, for callers that hold references to
        ``param.grad`` across steps.
        """
        for group in self.param_groups:
            for param in group["params"]:
                if set_to_none:
                    param.zero_grad()
                else:
                    grad = param.grad
                    if grad is not None:
                        grad[...] = 0.0

    def parameters(self) -> Iterable[Tensor]:
        for group in self.param_groups:
            yield from group["params"]

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params, lr: float = 0.01, momentum: float = 0.0):
        super().__init__(params, {"lr": lr, "momentum": momentum})
        self._velocity: dict[int, np.ndarray] = {}

    def step(self) -> None:
        for group in self.param_groups:
            lr, momentum = group["lr"], group["momentum"]
            for param in group["params"]:
                if param.grad is None:
                    continue
                if momentum > 0:
                    vel = self._velocity.get(id(param))
                    vel = momentum * vel + param.grad if vel is not None else param.grad
                    self._velocity[id(param)] = vel
                    update = vel
                else:
                    update = param.grad
                # Cast back so float64-accumulated gradients never silently
                # widen float32 parameters.
                param.data = (param.data - lr * update).astype(
                    param.data.dtype, copy=False
                )


class Adam(Optimizer):
    """Adam (Kingma & Ba) — the paper's optimizer, beta1=0.9, beta2=0.999."""

    def __init__(
        self,
        params,
        lr: float = 0.001,
        betas: Sequence[float] = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        super().__init__(params, {"lr": lr, "betas": tuple(betas), "eps": eps})
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t: dict[int, int] = {}

    def step(self) -> None:
        for group in self.param_groups:
            lr = group["lr"]
            beta1, beta2 = group["betas"]
            eps = group["eps"]
            for param in group["params"]:
                if param.grad is None:
                    continue
                key = id(param)
                t = self._t.get(key, 0) + 1
                self._t[key] = t
                m = self._m.get(key, np.zeros_like(param.data))
                v = self._v.get(key, np.zeros_like(param.data))
                m = beta1 * m + (1.0 - beta1) * param.grad
                v = beta2 * v + (1.0 - beta2) * param.grad**2
                self._m[key] = m
                self._v[key] = v
                m_hat = m / (1.0 - beta1**t)
                v_hat = v / (1.0 - beta2**t)
                # Cast back so float64-accumulated gradients (the mixed32
                # policy) never silently widen float32 parameters.
                param.data = (
                    param.data - lr * m_hat / (np.sqrt(v_hat) + eps)
                ).astype(param.data.dtype, copy=False)


def heterogeneous_adam(
    model,
    quantum_lr: float,
    classical_lr: float,
    betas: Sequence[float] = (0.9, 0.999),
) -> Adam:
    """Build an Adam optimizer with the paper's quantum/classical lr split.

    Parameters tagged ``group == 'quantum'`` get ``quantum_lr``; everything
    else gets ``classical_lr``.  Models with only one family degrade
    gracefully to a single group.
    """
    buckets = {"quantum": [], "classical": []}
    for param in model.parameters():
        bucket = "quantum" if getattr(param, "group", "classical") == "quantum" else "classical"
        buckets[bucket].append(param)
    groups = []
    if buckets["quantum"]:
        groups.append({"params": buckets["quantum"], "lr": quantum_lr})
    if buckets["classical"]:
        groups.append({"params": buckets["classical"], "lr": classical_lr})
    return Adam(groups, lr=classical_lr, betas=betas)


__all__.append("heterogeneous_adam")
