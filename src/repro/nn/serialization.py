"""Model checkpointing to ``.npz`` archives.

``save_module`` stores every named parameter of a module (plus optional
metadata) in a single compressed numpy archive; ``load_module`` restores
them into a freshly constructed module of the same architecture.  This is
the reproduction's checkpoint format — no pickle, so checkpoints are
portable and safe to share.

Parameter dtype round-trips: ``.npz`` stores each array verbatim and
``load_state_dict`` preserves the stored floating dtype, so a ``float32``
checkpoint rehydrates as ``float32`` parameters (it used to be silently
widened to ``float64``).  Note that a layer's *execution* precision is
fixed at construction — to run a float32 checkpoint at complex64, build
the target module with ``dtype="float32"`` before loading.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .modules import Module

__all__ = ["save_module", "load_module", "module_fingerprint"]

_META_KEY = "__repro_meta__"


def save_module(module: Module, path: str | Path, metadata: dict | None = None
                ) -> Path:
    """Write all parameters (and JSON-serializable metadata) to ``path``.

    The ``.npz`` suffix is appended if missing.  Returns the final path.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    arrays = {name: param.data for name, param in module.named_parameters()}
    if _META_KEY in arrays:
        raise ValueError(f"parameter name {_META_KEY!r} is reserved")
    meta = dict(metadata or {})
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return path


def load_module(module: Module, path: str | Path) -> dict:
    """Restore parameters saved by :func:`save_module`; returns the metadata.

    The module must already have the same architecture (same parameter
    names and shapes) — construct it first, then load.
    """
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files
                 if name != _META_KEY}
        if _META_KEY in archive.files:
            metadata = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
        else:
            metadata = {}
    module.load_state_dict(state)
    return metadata


def module_fingerprint(module: Module) -> str:
    """Short content hash of all parameters (change detection in tests)."""
    import hashlib

    digest = hashlib.sha256()
    for name, param in sorted(module.named_parameters()):
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(param.data).tobytes())
    return digest.hexdigest()[:16]
