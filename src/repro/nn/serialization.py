"""Model checkpointing to ``.npz`` archives.

``save_module`` stores every named parameter of a module (plus optional
metadata) in a single compressed numpy archive; ``load_module`` restores
them into a freshly constructed module of the same architecture.  This is
the reproduction's checkpoint format — no pickle, so checkpoints are
portable and safe to share.

Parameter dtype round-trips: ``.npz`` stores each array verbatim and
``load_state_dict`` preserves the stored floating dtype, so a ``float32``
checkpoint rehydrates as ``float32`` parameters (it used to be silently
widened to ``float64``).  Note that a layer's *execution* precision is
fixed at construction — to run a float32 checkpoint at complex64, build
the target module with ``dtype="float32"`` before loading.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

import numpy as np

from .modules import Module

__all__ = [
    "save_module",
    "load_module",
    "module_fingerprint",
    "resolve_checkpoint_path",
    "read_checkpoint_metadata",
]

_META_KEY = "__repro_meta__"


def resolve_checkpoint_path(path: str | Path) -> Path:
    """Resolve a checkpoint argument to an existing ``.npz`` file.

    A bare name falls back to the ``.npz``-suffixed form (mirroring
    ``save_module``'s suffix handling); a missing file raises
    ``FileNotFoundError`` naming the path that was actually probed.
    """
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    if not path.exists():
        raise FileNotFoundError(f"checkpoint not found: {path}")
    return path


def read_checkpoint_metadata(path: str | Path) -> dict:
    """The metadata dict stored by :func:`save_module` (empty if none).

    Reads only the metadata entry — the parameter arrays stay on disk, so
    a registry can decide how to rebuild the architecture before paying
    for deserialization.
    """
    path = resolve_checkpoint_path(path)
    with np.load(path) as archive:
        if _META_KEY not in archive.files:
            return {}
        return json.loads(bytes(archive[_META_KEY]).decode("utf-8"))


def save_module(module: Module, path: str | Path, metadata: dict | None = None
                ) -> Path:
    """Write all parameters (and JSON-serializable metadata) to ``path``.

    The ``.npz`` suffix is appended if missing.  Returns the final path.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    arrays = {name: param.data for name, param in module.named_parameters()}
    if _META_KEY in arrays:
        raise ValueError(f"parameter name {_META_KEY!r} is reserved")
    meta = dict(metadata or {})
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return path


def load_module(module: Module, path: str | Path) -> dict:
    """Restore parameters saved by :func:`save_module`; returns the metadata.

    The module must already have the same architecture (same parameter
    names and shapes) — construct it first, then load.
    """
    path = resolve_checkpoint_path(path)
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files
                 if name != _META_KEY}
        if _META_KEY in archive.files:
            metadata = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
        else:
            metadata = {}
    _warn_dtype_mismatch(module, state, path)
    module.load_state_dict(state)
    return metadata


def _warn_dtype_mismatch(module: Module, state: dict, path: Path) -> None:
    """Warn when stored floating widths differ from the module's.

    ``load_state_dict`` preserves the stored dtype, but a layer's
    *execution* precision is fixed at construction — loading float32
    weights into a float64-built module (or vice versa) silently runs the
    checkpoint at the wrong width.  The warning names both dtypes so the
    caller can rebuild with the matching ``dtype=``.
    """
    floats = (np.dtype(np.float32), np.dtype(np.float64))
    for name, param in module.named_parameters():
        stored = state.get(name)
        if stored is None:
            continue
        stored_dtype = np.asarray(stored).dtype
        if (stored_dtype in floats and param.data.dtype in floats
                and stored_dtype != param.data.dtype):
            warnings.warn(
                f"checkpoint {path} stores {stored_dtype} parameters but "
                f"the module was built {param.data.dtype}; rebuild the "
                f"module with dtype={stored_dtype.name!r} to run the "
                "checkpoint at its recorded precision",
                stacklevel=3,
            )
            return


def module_fingerprint(module: Module) -> str:
    """Short content hash of all parameters (change detection in tests)."""
    import hashlib

    digest = hashlib.sha256()
    for name, param in sorted(module.named_parameters()):
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(param.data).tobytes())
    return digest.hexdigest()[:16]
