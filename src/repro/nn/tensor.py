"""Reverse-mode automatic differentiation on numpy arrays.

This module is the substrate that replaces PyTorch's autograd for the
reproduction.  A :class:`Tensor` wraps a floating-point numpy array together
with an optional gradient buffer and a backward closure.  Calling
:meth:`Tensor.backward` on a scalar result propagates gradients to every leaf
tensor created with ``requires_grad=True``.

Design notes
------------
* Gradients follow numpy broadcasting: every op records how its inputs were
  broadcast and :func:`_unbroadcast` sums the upstream gradient back down to
  the original shape.
* The graph is dynamic (define-by-run) and torn down after ``backward`` unless
  ``retain_graph=True`` is passed.
* Tensors are dtype-parameterized over the real dtypes of
  :mod:`repro.nn.precision` (``float32`` / ``float64``).  Explicit arrays
  keep their dtype; non-array data follows the active precision policy
  (``float64`` by default, so parameter-shift gradient cross-checks stay
  exact to machine precision).  Ops propagate their operands' dtype —
  scalar operands are coerced to the tensor's dtype so float32 chains never
  silently widen — and gradient buffers accumulate in
  :func:`repro.nn.precision.grad_dtype`, which the ``mixed32`` policy
  widens to float64 for mixed-precision stability.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from .precision import default_precision, grad_dtype

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = [True]

# Dtypes a Tensor may hold; everything else is cast to the policy default.
_REAL_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


class no_grad:
    """Context manager disabling gradient tracking (like ``torch.no_grad``)."""

    def __enter__(self) -> "no_grad":
        self._prev = _GRAD_ENABLED[0]
        _GRAD_ENABLED[0] = False
        return self

    def __exit__(self, *exc) -> None:
        _GRAD_ENABLED[0] = self._prev


def is_grad_enabled() -> bool:
    """Return whether new ops will be recorded on the autodiff tape."""
    return _GRAD_ENABLED[0]


def _validated_dtype(dtype) -> np.dtype:
    dtype = np.dtype(dtype)
    if dtype not in _REAL_DTYPES:
        raise TypeError(f"Tensor dtype must be float32 or float64, got {dtype}")
    return dtype


def _as_array(value, dtype=None) -> np.ndarray:
    """Coerce to a supported floating array.

    With an explicit ``dtype`` the value is cast to it; otherwise arrays
    already holding a supported real dtype are kept as-is (dtype
    propagation) and everything else follows the active precision policy.
    """
    if dtype is not None:
        return np.asarray(value, dtype=_validated_dtype(dtype))
    if isinstance(value, (np.ndarray, np.generic)) and value.dtype in _REAL_DTYPES:
        return np.asarray(value)
    return np.asarray(value, dtype=default_precision().real)


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` reversing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along axes that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor that records operations for reverse-mode AD."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    def __init__(
        self, data, requires_grad: bool = False, name: str = "", dtype=None
    ):
        self.data = _as_array(data, dtype=dtype)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._backward: Callable[[], None] | None = None
        self._prev: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(shape, requires_grad: bool = False, dtype=None) -> "Tensor":
        dtype = (
            _validated_dtype(dtype) if dtype is not None
            else default_precision().real
        )
        return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad)

    @staticmethod
    def ones(shape, requires_grad: bool = False, dtype=None) -> "Tensor":
        dtype = (
            _validated_dtype(dtype) if dtype is not None
            else default_precision().real
        )
        return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad)

    @staticmethod
    def from_numpy(array: np.ndarray, requires_grad: bool = False) -> "Tensor":
        return Tensor(array, requires_grad=requires_grad)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def astype(self, dtype) -> "Tensor":
        """Differentiable dtype cast; the gradient is cast back on backward."""
        dtype = _validated_dtype(dtype)
        source = self.data.dtype

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad.astype(source, copy=False))

        return Tensor._make(self.data.astype(dtype, copy=False), (self,), backward)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=grad_dtype(self.data.dtype), copy=True)
        else:
            # Keep the buffer dtype stable: a float64 contribution must not
            # silently widen a float32 accumulator mid-backward.
            self.grad = (self.grad + grad).astype(self.grad.dtype, copy=False)

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad=None, retain_graph: bool = False) -> None:
        """Backpropagate from this tensor.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to 1 for scalar tensors.
        retain_graph:
            Keep backward closures alive so ``backward`` can run again.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar "
                    f"tensor, got shape {self.data.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).copy()

        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        # Intermediate (non-leaf) gradients are not retained across backward
        # passes — mirror torch semantics so retain_graph reruns are correct.
        for node in order:
            if node._backward is not None:
                node.grad = None

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward()
        if not retain_graph:
            for node in order:
                node._backward = None
                node._prev = ()

    # ------------------------------------------------------------------
    # Internal op constructor
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[["Tensor"], None] | None,
    ) -> "Tensor":
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data)
        out.requires_grad = requires
        if requires and backward is not None:
            out._prev = tuple(p for p in parents if p.requires_grad)

            def _run() -> None:
                backward(out)

            out._backward = _run
        return out

    def _coerce(self, other) -> "Tensor":
        """Wrap a non-Tensor operand; scalars adopt this tensor's dtype so
        ``float32_tensor * 2.0`` stays float32 regardless of policy."""
        if isinstance(other, Tensor):
            return other
        arr = np.asarray(other)
        if arr.ndim == 0:
            return Tensor(arr.astype(self.data.dtype))
        return Tensor(arr)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad, other.shape))

        return Tensor._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(-out.grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = self._coerce(other)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-out.grad, other.shape))

        return Tensor._make(self.data - other.data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) - self

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad * self.data, other.shape))

        return Tensor._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-out.grad * self.data / other.data**2, other.shape)
                )

        return Tensor._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor ** only supports scalar exponents")

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(self.data**exponent, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)

        def backward(out: Tensor) -> None:
            grad = out.grad
            a, b = self.data, other.data
            if self.requires_grad:
                if b.ndim == 1:
                    ga = np.outer(grad, b) if a.ndim == 2 else grad * b
                    if a.ndim == 1:
                        ga = grad * b  # scalar grad times vector
                else:
                    gb_t = np.swapaxes(b, -1, -2)
                    if a.ndim == 1:
                        ga = grad @ gb_t
                    else:
                        ga = grad @ gb_t
                        ga = _unbroadcast(ga, a.shape)
                self._accumulate(ga.reshape(a.shape))
            if other.requires_grad:
                if a.ndim == 1:
                    if b.ndim == 1:
                        gb = grad * a
                    else:
                        gb = np.outer(a, grad)
                else:
                    at = np.swapaxes(a, -1, -2)
                    if b.ndim == 1:
                        gb = at @ grad
                    else:
                        gb = at @ grad
                        gb = _unbroadcast(gb, b.shape)
                other._accumulate(gb.reshape(b.shape))

        return Tensor._make(self.data @ other.data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        value = np.exp(self.data)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad * value)

        return Tensor._make(value, (self,), backward)

    def log(self) -> "Tensor":
        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad / self.data)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        value = np.sqrt(self.data)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad * 0.5 / value)

        return Tensor._make(value, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-self.data))

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad * value * (1.0 - value))

        return Tensor._make(value, (self,), backward)

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad * (1.0 - value**2))

        return Tensor._make(value, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad * sign)

        return Tensor._make(np.abs(self.data), (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad * mask)

        return Tensor._make(np.clip(self.data, low, high), (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def backward(out: Tensor) -> None:
            if not self.requires_grad:
                return
            grad = out.grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(a % self.data.ndim for a in axes)
                shape = [
                    1 if i in axes else dim for i, dim in enumerate(self.data.shape)
                ]
                grad = grad.reshape(shape)
            self._accumulate(np.broadcast_to(grad, self.data.shape))

        return Tensor._make(
            self.data.sum(axis=axis, keepdims=keepdims), (self,), backward
        )

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a % self.data.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        value = self.data.max(axis=axis, keepdims=keepdims)

        def backward(out: Tensor) -> None:
            if not self.requires_grad:
                return
            grad = out.grad
            full = self.data.max(axis=axis, keepdims=True)
            mask = self.data == full
            counts = mask.sum(axis=axis, keepdims=True)
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(a % self.data.ndim for a in axes)
                shape = [
                    1 if i in axes else dim for i, dim in enumerate(self.data.shape)
                ]
                grad = grad.reshape(shape)
            self._accumulate(np.broadcast_to(grad, self.data.shape) * mask / counts)

        return Tensor._make(value, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad.reshape(self.data.shape))

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad.transpose(inverse))

        return Tensor._make(self.data.transpose(axes), (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, key) -> "Tensor":
        def backward(out: Tensor) -> None:
            if self.requires_grad:
                grad = np.zeros_like(self.data)
                np.add.at(grad, key, out.grad)
                self._accumulate(grad)

        return Tensor._make(self.data[key], (self,), backward)

    @staticmethod
    def concatenate(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = list(tensors)
        datas = [t.data for t in tensors]
        sizes = [d.shape[axis] for d in datas]
        offsets = np.cumsum([0] + sizes)

        def backward(out: Tensor) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    index = [slice(None)] * out.grad.ndim
                    index[axis] = slice(start, stop)
                    tensor._accumulate(out.grad[tuple(index)])

        return Tensor._make(np.concatenate(datas, axis=axis), tensors, backward)

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = list(tensors)

        def backward(out: Tensor) -> None:
            grads = np.moveaxis(out.grad, axis, 0)
            for tensor, grad in zip(tensors, grads):
                if tensor.requires_grad:
                    tensor._accumulate(grad)

        return Tensor._make(
            np.stack([t.data for t in tensors], axis=axis), tensors, backward
        )

    # ------------------------------------------------------------------
    # Comparisons (no gradient; returned as plain numpy arrays)
    # ------------------------------------------------------------------
    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other
