"""Reverse-mode automatic differentiation on numpy arrays.

This module is the substrate that replaces PyTorch's autograd for the
reproduction.  A :class:`Tensor` wraps a floating-point numpy array
together with an optional gradient buffer and — when gradients are being
recorded — a :class:`repro.nn.autodiff.Node` naming the primitive that
produced it.  Calling :meth:`Tensor.backward` on a scalar result
propagates gradients to every leaf tensor created with
``requires_grad=True``.

Design notes
------------
* **Tape + VJP registry, not per-op closures.**  Every operation is a
  registered :class:`~repro.nn.autodiff.Primitive` whose vector-Jacobian
  products live in a module-level table (``defvjp`` /``defvjp_all``) —
  one entry per op instead of a closure allocated per call.  Forward
  methods compute the result array (plus any forward-time constants such
  as activation masks or concat offsets) and record a single ``Node``;
  one generic topological walk in :mod:`repro.nn.autodiff` drives every
  backward, classical or quantum.  Quantum layers join the same tape by
  recording their engine adjoints as custom VJPs (``tape_record``).
* **Dual-mode VJPs.**  Each VJP body is written to accept either raw
  numpy arrays (the fast first-order walk — no wrapper overhead on the
  hot path, numerically identical to the old closure design) or Tensors
  (the ``create_graph`` walk of :func:`repro.nn.autodiff.grad`, where
  every VJP is re-recorded through these same primitives).  That is what
  makes grad-of-grad — :func:`repro.nn.autodiff.hvp` — fall out of the
  design instead of needing a second implementation.
* **Compiled backward plans.**  A recorded tape is pure structure —
  primitive sequence, shapes, dtypes, wiring — so :mod:`repro.nn.graph`
  lowers it once into a reusable backward program (flattened VJP
  dispatch, fused single-consumer elementwise chains, preallocated
  cotangent buffers) cached on a structural signature, exactly like the
  quantum engine caches circuit plans.  ``Tensor.backward`` and the fast
  path of :func:`repro.nn.autodiff.grad` consult that cache
  automatically; training loops therefore lower on step 1 and run the
  cached program from step 2 on.  The compiled program is bit-identical
  to the interpreted walk; ``REPRO_TAPE_COMPILE=0`` (or
  ``repro.nn.tape_compile(False)``) disables it.
* Gradients follow numpy broadcasting: every op's VJP sums the upstream
  gradient back down to the operand's shape via :func:`_unbroadcast` (or
  its dual-mode twin ``_unb_any``).
* The graph is dynamic (define-by-run) and torn down after ``backward``
  unless ``retain_graph=True`` is passed.  Intermediate cotangents are
  released as soon as their node is consumed — after ``backward`` only
  leaves carry a ``.grad``, and peak backward memory is bounded by the
  graph frontier rather than the whole tape.
* Tensors are dtype-parameterized over the real dtypes of
  :mod:`repro.nn.precision` (``float32`` / ``float64``).  Explicit arrays
  keep their dtype; non-array data follows the active precision policy
  (``float64`` by default, so parameter-shift gradient cross-checks stay
  exact to machine precision).  Ops propagate their operands' dtype —
  scalar operands are coerced to the tensor's dtype so float32 chains
  never silently widen — and gradient buffers accumulate in
  :func:`repro.nn.precision.grad_dtype`, which the ``mixed32`` policy
  widens to float64 for mixed-precision stability.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .autodiff import (
    Node,
    Primitive,
    backward_pass,
    defvjp,
    defvjp_all,
    enable_grad,
    is_grad_enabled,
    is_tensor,
    no_grad,
    register_tensor_type,
)
from .autodiff import _GRAD_ENABLED as _GRAD_CELL
from .precision import default_precision, grad_dtype

__all__ = [
    "Tensor",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "tape_record",
]

# Dtypes a Tensor may hold; everything else is cast to the policy default.
_REAL_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def _validated_dtype(dtype) -> np.dtype:
    dtype = np.dtype(dtype)
    if dtype not in _REAL_DTYPES:
        raise TypeError(f"Tensor dtype must be float32 or float64, got {dtype}")
    return dtype


def _as_array(value, dtype=None) -> np.ndarray:
    """Coerce to a supported floating array.

    With an explicit ``dtype`` the value is cast to it; otherwise arrays
    already holding a supported real dtype are kept as-is (dtype
    propagation) and everything else follows the active precision policy.
    """
    if dtype is not None:
        return np.asarray(value, dtype=_validated_dtype(dtype))
    if isinstance(value, (np.ndarray, np.generic)) and value.dtype in _REAL_DTYPES:
        return np.asarray(value)
    return np.asarray(value, dtype=default_precision().real)


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` reversing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along axes that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


# ----------------------------------------------------------------------
# Dual-mode VJP helpers: each works on a raw ndarray (fast walk) or a
# Tensor (create_graph walk, where the result must itself be recorded).
# ----------------------------------------------------------------------
def _unb_any(grad, shape: tuple):
    """Dual-mode :func:`_unbroadcast`."""
    if grad.shape == shape:  # no broadcasting happened — the common case
        return grad
    if not is_tensor(grad):
        return _unbroadcast(grad, shape)
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _reshape_any(grad, shape: tuple):
    return grad.reshape(shape)


def _broadcast_any(grad, shape: tuple):
    """Dual-mode ``np.broadcast_to`` (recorded so it stays differentiable)."""
    if not is_tensor(grad):
        return np.broadcast_to(grad, shape)
    if grad.shape == shape:
        return grad
    return _record(
        _broadcast_p,
        np.broadcast_to(grad.data, shape),
        (grad,),
        {"shape": grad.shape},
    )


def _log_any(x):
    return x.log() if is_tensor(x) else np.log(x)


def _swap_last(x):
    """Dual-mode ``np.swapaxes(x, -1, -2)``."""
    if not is_tensor(x):
        return np.swapaxes(x, -1, -2)
    perm = list(range(x.ndim))
    perm[-1], perm[-2] = perm[-2], perm[-1]
    return x.transpose(tuple(perm))


def _outer_any(u, v):
    """Dual-mode ``np.outer`` for 1-D operands."""
    if not (is_tensor(u) or is_tensor(v)):
        return np.outer(u, v)
    ur = u.reshape(-1, 1) if is_tensor(u) else np.reshape(u, (-1, 1))
    vr = v.reshape(1, -1) if is_tensor(v) else np.reshape(v, (1, -1))
    return ur * vr


# ----------------------------------------------------------------------
# Recording
# ----------------------------------------------------------------------
_EMPTY: dict = {}


def _record(prim: Primitive, data, args: tuple, params: dict = _EMPTY) -> "Tensor":
    """Wrap ``data`` in a Tensor, recording a tape node when tracking.

    Builds the output via ``__new__`` rather than ``Tensor(data)``: every
    caller hands in the freshly-computed numpy result of the forward
    expression, so the full ``_as_array`` coercion ladder is skipped on the
    per-op hot path (only a dtype guard for numpy scalars/odd dtypes stays).
    The one- and two-operand cases — every arithmetic dunder and
    elementwise method — build their parent/operand tuples directly
    instead of through ``enumerate`` comprehensions.
    """
    out = Tensor.__new__(Tensor)
    if data.__class__ is not np.ndarray or data.dtype not in _REAL_DTYPES:
        data = _as_array(data)
    out.data = data
    out.grad = None
    out.requires_grad = False
    out._node = None
    out.name = ""
    if _GRAD_CELL[0]:
        n = len(args)
        if n == 1:
            a0 = args[0]
            if a0.requires_grad:
                out.requires_grad = True
                out._node = Node(prim, args, (a0.data,), params, ((0, a0),))
        elif n == 2:
            a0, a1 = args
            r0 = a0.requires_grad
            r1 = a1.requires_grad
            if r0 | r1:
                out.requires_grad = True
                out._node = Node(
                    prim, args, (a0.data, a1.data), params,
                    ((0, a0), (1, a1)) if r0 & r1
                    else (((0, a0),) if r0 else ((1, a1),)),
                )
        else:
            parents = [(i, a) for i, a in enumerate(args) if a.requires_grad]
            if parents:
                out.requires_grad = True
                out._node = Node(
                    prim, args, tuple([a.data for a in args]), params,
                    tuple(parents),
                )
    return out


def tape_record(prim: Primitive, data, args: tuple, params: dict | None = None):
    """Public recording hook for custom primitives (quantum layers).

    ``args`` must be Tensors; ``params`` carries whatever the registered
    VJPs need (adjoint caches, circuit handles, geometry).  Returns the
    output Tensor, wired into the tape iff recording is enabled and some
    operand requires gradients.
    """
    return _record(prim, data, tuple(args), _EMPTY if params is None else params)


# ----------------------------------------------------------------------
# Primitive definitions.  VJP math is kept expression-for-expression
# identical to the original per-op closures so first-order gradients are
# bit-identical; the same bodies run on Tensors in the create_graph walk.
# ----------------------------------------------------------------------
_add_p = Primitive("add")
defvjp(
    _add_p,
    lambda g, ans, operands, params: _unb_any(g, operands[0].shape),
    lambda g, ans, operands, params: _unb_any(g, operands[1].shape),
)

_neg_p = Primitive("neg")
defvjp(_neg_p, lambda g, ans, operands, params: -g)

_sub_p = Primitive("sub")
defvjp(
    _sub_p,
    lambda g, ans, operands, params: _unb_any(g, operands[0].shape),
    lambda g, ans, operands, params: _unb_any(-g, operands[1].shape),
)

_mul_p = Primitive("mul")
defvjp(
    _mul_p,
    lambda g, ans, operands, params: _unb_any(g * operands[1], operands[0].shape),
    lambda g, ans, operands, params: _unb_any(g * operands[0], operands[1].shape),
)

_div_p = Primitive("div")
defvjp(
    _div_p,
    lambda g, ans, operands, params: _unb_any(g / operands[1], operands[0].shape),
    lambda g, ans, operands, params: _unb_any(
        -g * operands[0] / operands[1] ** 2, operands[1].shape
    ),
)

# Scalar exponent: the historical fast path (exponent lives in params).
_pow_const_p = Primitive("pow_const")
defvjp(
    _pow_const_p,
    lambda g, ans, operands, params: g
    * params["c"]
    * operands[0] ** (params["c"] - 1),
)

# Tensor exponent: log-based VJP (d/db a**b = a**b * log a).
_pow_p = Primitive("pow")
defvjp(
    _pow_p,
    lambda g, ans, operands, params: _unb_any(
        g * operands[1] * operands[0] ** (operands[1] - 1.0), operands[0].shape
    ),
    lambda g, ans, operands, params: _unb_any(
        g * ans * _log_any(operands[0]), operands[1].shape
    ),
)


def _matmul_vjp_a(g, ans, operands, params):
    a, b = operands
    if b.ndim == 1:
        ga = _outer_any(g, b) if a.ndim == 2 else g * b
    else:
        ga = g @ _swap_last(b)
        if a.ndim != 1:
            ga = _unb_any(ga, a.shape)
    return _reshape_any(ga, a.shape)


def _matmul_vjp_b(g, ans, operands, params):
    a, b = operands
    if a.ndim == 1:
        gb = g * a if b.ndim == 1 else _outer_any(a, g)
    else:
        gb = _swap_last(a) @ g
        if b.ndim != 1:
            gb = _unb_any(gb, b.shape)
    return _reshape_any(gb, b.shape)


_matmul_p = Primitive("matmul")
defvjp(_matmul_p, _matmul_vjp_a, _matmul_vjp_b)

_exp_p = Primitive("exp")
defvjp(_exp_p, lambda g, ans, operands, params: g * ans)

_log_p = Primitive("log")
defvjp(_log_p, lambda g, ans, operands, params: g / operands[0])

_sqrt_p = Primitive("sqrt")
defvjp(_sqrt_p, lambda g, ans, operands, params: g * 0.5 / ans)

_relu_p = Primitive("relu")
defvjp(_relu_p, lambda g, ans, operands, params: g * params["mask"])

_sigmoid_p = Primitive("sigmoid")
defvjp(_sigmoid_p, lambda g, ans, operands, params: g * ans * (1.0 - ans))

_tanh_p = Primitive("tanh")
defvjp(_tanh_p, lambda g, ans, operands, params: g * (1.0 - ans**2))

_abs_p = Primitive("abs")
defvjp(_abs_p, lambda g, ans, operands, params: g * params["sign"])

_clip_p = Primitive("clip")
defvjp(_clip_p, lambda g, ans, operands, params: g * params["mask"])


def _reduced_grad_shape(g, params):
    """Reshape ``g`` so it broadcasts against the pre-reduction shape."""
    axis, keepdims, shape = params["axis"], params["keepdims"], params["shape"]
    if axis is not None and not keepdims:
        axes = (axis,) if isinstance(axis, int) else tuple(axis)
        axes = tuple(a % len(shape) for a in axes)
        gshape = tuple(1 if i in axes else dim for i, dim in enumerate(shape))
        g = _reshape_any(g, gshape)
    return g


def _sum_vjp(g, ans, operands, params):
    return _broadcast_any(_reduced_grad_shape(g, params), params["shape"])


_sum_p = Primitive("sum")
defvjp(_sum_p, _sum_vjp)


def _max_vjp(g, ans, operands, params):
    g = _reduced_grad_shape(g, params)
    return (
        _broadcast_any(g, params["shape"]) * params["mask"] / params["counts"]
    )


_max_p = Primitive("max")
defvjp(_max_p, _max_vjp)

_reshape_prim = Primitive("reshape")
defvjp(
    _reshape_prim, lambda g, ans, operands, params: g.reshape(params["shape"])
)

_broadcast_p = Primitive("broadcast_to")
defvjp(
    _broadcast_p, lambda g, ans, operands, params: _unb_any(g, params["shape"])
)

_transpose_p = Primitive("transpose")
defvjp(
    _transpose_p,
    lambda g, ans, operands, params: g.transpose(params["inverse"]),
)

_astype_p = Primitive("astype")
defvjp(
    _astype_p,
    lambda g, ans, operands, params: g.astype(params["source"]),
)


def _getitem_vjp(g, ans, operands, params):
    key, shape, dtype = params["key"], params["shape"], params["dtype"]
    buf = np.zeros(shape, dtype=dtype)
    if is_tensor(g):
        np.add.at(buf, key, g.data)
        return _record(_scatter_p, buf, (g,), {"key": key})
    np.add.at(buf, key, g)
    return buf


_getitem_p = Primitive("getitem")
defvjp(_getitem_p, _getitem_vjp)

# Gradient of a scatter is the gather back through the same key — this is
# what keeps ``__getitem__`` differentiable to arbitrary order.
_scatter_p = Primitive("scatter_add")
defvjp(_scatter_p, lambda g, ans, operands, params: g[params["key"]])


def _concat_vjp_all(g, ans, operands, params, argnums):
    axis, offsets = params["axis"], params["offsets"]
    nd = g.ndim
    grads = []
    for k in argnums:
        index = [slice(None)] * nd
        index[axis] = slice(offsets[k], offsets[k + 1])
        grads.append(g[tuple(index)])
    return grads


_concat_p = Primitive("concatenate")
defvjp_all(_concat_p, _concat_vjp_all)


def _stack_vjp_all(g, ans, operands, params, argnums):
    axis = params["axis"]
    if is_tensor(g):
        nd = g.ndim
        grads = []
        for k in argnums:
            index = [slice(None)] * nd
            index[axis] = k
            grads.append(g[tuple(index)])
        return grads
    moved = np.moveaxis(g, axis, 0)
    return [moved[k] for k in argnums]


_stack_p = Primitive("stack")
defvjp_all(_stack_p, _stack_vjp_all)


class Tensor:
    """A numpy-backed tensor that records operations for reverse-mode AD."""

    __slots__ = ("data", "grad", "requires_grad", "_node", "name")

    # Make ``ndarray <op> Tensor`` defer to the Tensor's reflected methods
    # instead of numpy trying (and failing) to coerce the Tensor itself.
    __array_priority__ = 1000

    def __init__(
        self, data, requires_grad: bool = False, name: str = "", dtype=None
    ):
        self.data = _as_array(data, dtype=dtype)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._node: Node | None = None
        self.name = name

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(shape, requires_grad: bool = False, dtype=None) -> "Tensor":
        dtype = (
            _validated_dtype(dtype) if dtype is not None
            else default_precision().real
        )
        return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad)

    @staticmethod
    def ones(shape, requires_grad: bool = False, dtype=None) -> "Tensor":
        dtype = (
            _validated_dtype(dtype) if dtype is not None
            else default_precision().real
        )
        return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad)

    @staticmethod
    def from_numpy(array: np.ndarray, requires_grad: bool = False) -> "Tensor":
        return Tensor(array, requires_grad=requires_grad)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def astype(self, dtype) -> "Tensor":
        """Differentiable dtype cast; the gradient is cast back on backward."""
        dtype = _validated_dtype(dtype)
        return _record(
            _astype_p,
            self.data.astype(dtype, copy=False),
            (self,),
            {"source": self.data.dtype},
        )

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    def _accumulate(self, grad) -> None:
        if grad.__class__ is not np.ndarray and is_tensor(grad):
            grad = grad.data
        if self.grad is None:
            want = grad_dtype(self.data.dtype)
            if grad.dtype == want and self._node is not None:
                # Intermediate tensors: the buffer is only ever read (a
                # second contribution rebinds it to a fresh sum), so the
                # VJP output can be adopted directly — no defensive copy,
                # and stride-0 broadcast cotangents stay unmaterialized.
                # Leaves keep the copy so .grad never aliases graph state.
                self.grad = grad
                return
            self.grad = np.array(grad, dtype=want, copy=True)
        else:
            # Keep the buffer dtype stable: a float64 contribution must not
            # silently widen a float32 accumulator mid-backward.
            self.grad = (self.grad + grad).astype(self.grad.dtype, copy=False)

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad=None, retain_graph: bool = False) -> None:
        """Backpropagate from this tensor.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to 1 for scalar tensors.
        retain_graph:
            Keep the recorded graph alive so ``backward`` can run again.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar "
                    f"tensor, got shape {self.data.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).copy()
        backward_pass(self, grad, retain_graph=retain_graph)

    def _coerce(self, other) -> "Tensor":
        """Wrap a non-Tensor operand; scalars adopt this tensor's dtype so
        ``float32_tensor * 2.0`` stays float32 regardless of policy."""
        if isinstance(other, Tensor):
            return other
        arr = np.asarray(other)
        if arr.ndim == 0:
            # Scalar fast path: one allocating cast (same values as the
            # ``astype`` it replaces) and a bare ``__new__`` — this runs
            # once per ``tensor <op> constant``, so the full ``Tensor()``
            # ladder is measurable overhead.
            out = Tensor.__new__(Tensor)
            out.data = np.array(arr, dtype=self.data.dtype)
            out.grad = None
            out.requires_grad = False
            out._node = None
            out.name = ""
            return out
        return Tensor(arr)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        return _record(_add_p, self.data + other.data, (self, other))

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return _record(_neg_p, -self.data, (self,))

    def __sub__(self, other) -> "Tensor":
        other = self._coerce(other)
        return _record(_sub_p, self.data - other.data, (self, other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) - self

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        return _record(_mul_p, self.data * other.data, (self, other))

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        return _record(_div_p, self.data / other.data, (self, other))

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent) -> "Tensor":
        if isinstance(exponent, Tensor):
            return _record(
                _pow_p, self.data**exponent.data, (self, exponent)
            )
        if not isinstance(exponent, (int, float)):
            raise TypeError(
                "Tensor ** supports scalar exponents and Tensor exponents, "
                f"got {type(exponent).__name__}"
            )
        return _record(
            _pow_const_p, self.data**exponent, (self,), {"c": exponent}
        )

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        return _record(_matmul_p, self.data @ other.data, (self, other))

    def __rmatmul__(self, other) -> "Tensor":
        return self._coerce(other) @ self

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        return _record(_exp_p, np.exp(self.data), (self,))

    def log(self) -> "Tensor":
        return _record(_log_p, np.log(self.data), (self,))

    def sqrt(self) -> "Tensor":
        return _record(_sqrt_p, np.sqrt(self.data), (self,))

    def relu(self) -> "Tensor":
        mask = self.data > 0
        return _record(_relu_p, self.data * mask, (self,), {"mask": mask})

    def sigmoid(self) -> "Tensor":
        return _record(_sigmoid_p, 1.0 / (1.0 + np.exp(-self.data)), (self,))

    def tanh(self) -> "Tensor":
        return _record(_tanh_p, np.tanh(self.data), (self,))

    def abs(self) -> "Tensor":
        return _record(
            _abs_p, np.abs(self.data), (self,), {"sign": np.sign(self.data)}
        )

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)
        return _record(
            _clip_p, np.clip(self.data, low, high), (self,), {"mask": mask}
        )

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return _record(
            _sum_p,
            self.data.sum(axis=axis, keepdims=keepdims),
            (self,),
            {"axis": axis, "keepdims": keepdims, "shape": self.data.shape},
        )

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a % self.data.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        value = self.data.max(axis=axis, keepdims=keepdims)
        full = self.data.max(axis=axis, keepdims=True)
        mask = self.data == full
        return _record(
            _max_p,
            value,
            (self,),
            {
                "axis": axis,
                "keepdims": keepdims,
                "shape": self.data.shape,
                "mask": mask,
                "counts": mask.sum(axis=axis, keepdims=True),
            },
        )

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return _record(
            _reshape_prim,
            self.data.reshape(shape),
            (self,),
            {"shape": self.data.shape},
        )

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = tuple(int(i) for i in np.argsort(axes))
        # Materialize contiguously: BLAS picks different (1-ulp different)
        # GEMM kernels for strided operands depending on the *other*
        # operand's row count, so ``x @ W.T`` on a transposed view is not
        # row-count-independent.  Serving stacks requests into one pass
        # and must return bit-identical rows to per-request execution.
        return _record(
            _transpose_p,
            np.ascontiguousarray(self.data.transpose(axes)),
            (self,),
            {"inverse": inverse},
        )

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, key) -> "Tensor":
        return _record(
            _getitem_p,
            self.data[key],
            (self,),
            {"key": key, "shape": self.data.shape, "dtype": self.data.dtype},
        )

    @staticmethod
    def concatenate(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = tuple(tensors)
        datas = [t.data for t in tensors]
        offsets = [0]
        for d in datas:
            offsets.append(offsets[-1] + d.shape[axis])
        return _record(
            _concat_p,
            np.concatenate(datas, axis=axis),
            tensors,
            {"axis": axis, "offsets": offsets},
        )

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = tuple(tensors)
        return _record(
            _stack_p,
            np.stack([t.data for t in tensors], axis=axis),
            tensors,
            {"axis": axis},
        )

    # ------------------------------------------------------------------
    # Comparisons (no gradient; returned as plain numpy arrays)
    # ------------------------------------------------------------------
    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other


register_tensor_type(Tensor)
