"""Contiguous flat views of a module's parameters and gradients.

Data-parallel training (:mod:`repro.training.parallel`) moves parameters
and gradients between processes through one
``multiprocessing.shared_memory`` block.  The block is just bytes; this
module defines the *layout* that gives those bytes meaning: a
:class:`FlatLayout` assigns every parameter a named slot — shape, dtype,
and byte offset — inside one contiguous buffer, so the master can publish
its parameters with one pass of copies, and each worker can expose its
slot as zero-copy numpy views.

Two layouts matter per module:

* :func:`parameter_layout` — slots sized and typed like each parameter's
  ``data`` array (what the master publishes and workers read back);
* :func:`gradient_layout` — slots typed like the *gradient* buffers the
  active (or given) precision policy allocates, which the ``mixed32``
  policy widens to float64 over float32 parameters (mirrors
  :func:`repro.nn.precision.grad_dtype`).

Layouts are plain frozen dataclasses of names/shapes/dtypes/offsets —
picklable, so the master computes them once and ships them to workers,
guaranteeing both sides agree on every offset.  Parameters shared under
several dotted names occupy one slot (first name wins), matching the
deduplication of :meth:`repro.nn.modules.Module.parameters`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from .precision import resolve_precision

__all__ = [
    "FlatSlot",
    "FlatLayout",
    "parameter_layout",
    "gradient_layout",
    "unique_named_parameters",
    "write_parameters",
    "read_parameters",
    "write_gradients",
]

# Slot offsets are rounded up to this many bytes so every view is aligned
# for its dtype whatever mix of widths the module holds (complex128 needs
# 16; a float32 slot after a float64 one must not start mid-word).
_ALIGN = 16


def unique_named_parameters(module) -> Iterator[tuple[str, object]]:
    """``(name, parameter)`` pairs deduplicated by identity.

    A parameter registered under several dotted names (weight tying)
    appears once, under the first name traversal finds — the same order
    and deduplication as ``Module.parameters()``, so a layout built from
    this iteration allocates each underlying array exactly once.
    """
    seen: set[int] = set()
    for name, param in module.named_parameters():
        if id(param) not in seen:
            seen.add(id(param))
            yield name, param


@dataclass(frozen=True)
class FlatSlot:
    """One named array's position inside a flat buffer."""

    name: str
    shape: tuple[int, ...]
    dtype: np.dtype
    offset: int  # bytes from the start of the layout

    @property
    def size(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64))

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize


@dataclass(frozen=True)
class FlatLayout:
    """An ordered set of :class:`FlatSlot` slots covering ``nbytes`` bytes."""

    slots: tuple[FlatSlot, ...]
    nbytes: int

    @classmethod
    def from_specs(cls, specs: Iterable[tuple[str, tuple[int, ...], object]]
                   ) -> "FlatLayout":
        """Build a layout from ``(name, shape, dtype)`` triples in order."""
        slots: list[FlatSlot] = []
        offset = 0
        for name, shape, dtype in specs:
            offset = -(-offset // _ALIGN) * _ALIGN
            slot = FlatSlot(name, tuple(int(s) for s in shape),
                            np.dtype(dtype), offset)
            slots.append(slot)
            offset += slot.nbytes
        return cls(tuple(slots), -(-offset // _ALIGN) * _ALIGN)

    def views(self, buffer, base: int = 0) -> dict[str, np.ndarray]:
        """Zero-copy ndarray views of every slot inside ``buffer``.

        ``buffer`` is anything exposing the buffer protocol (a
        ``SharedMemory.buf`` memoryview, a bytearray, a uint8 array);
        ``base`` shifts the whole layout, so several layouts — or several
        workers' copies of one layout — can tile a single block.
        """
        return {
            slot.name: np.ndarray(slot.shape, dtype=slot.dtype,
                                  buffer=buffer, offset=base + slot.offset)
            for slot in self.slots
        }

    def specs(self) -> tuple[tuple[str, tuple[int, ...], str], ...]:
        """``(name, shape, dtype-str)`` triples — handy for comparisons."""
        return tuple((s.name, s.shape, s.dtype.str) for s in self.slots)


def parameter_layout(module) -> FlatLayout:
    """Layout with one slot per unique parameter, typed like its data."""
    return FlatLayout.from_specs(
        (name, param.data.shape, param.data.dtype)
        for name, param in unique_named_parameters(module)
    )


def gradient_layout(module, precision=None) -> FlatLayout:
    """Layout typed like each parameter's *gradient* buffer.

    ``precision`` names the policy whose ``grad_real`` widens the slots
    (None reads the active policy), mirroring
    :func:`repro.nn.precision.grad_dtype`: under ``mixed32`` a float32
    parameter gets a float64 gradient slot.
    """
    grad_real = resolve_precision(precision).grad_real
    return FlatLayout.from_specs(
        (name, param.data.shape,
         np.promote_types(param.data.dtype, grad_real))
        for name, param in unique_named_parameters(module)
    )


def write_parameters(module, layout: FlatLayout, buffer, base: int = 0) -> None:
    """Copy every parameter's current data into its slot."""
    views = layout.views(buffer, base)
    for name, param in unique_named_parameters(module):
        views[name][...] = param.data


def read_parameters(module, layout: FlatLayout, buffer, base: int = 0) -> None:
    """Copy slot contents back into the parameters, in place.

    Writes through ``param.data[...] = view`` rather than rebinding, so
    parameter identity (and the optimizer state keyed on it) survives.
    """
    views = layout.views(buffer, base)
    for name, param in unique_named_parameters(module):
        param.data[...] = views[name]


def write_gradients(module, layout: FlatLayout, buffer, base: int = 0
                    ) -> tuple[str, ...]:
    """Copy every present gradient into its slot; return the present names.

    Parameters whose ``grad`` is None leave their slot untouched (stale
    bytes) — the returned name tuple is the authoritative presence mask,
    so a reader never mistakes stale data for a zero gradient and a
    parameter that took no part in the step stays grad-less end to end
    (an optimizer skips it instead of applying a zero update).
    """
    views = layout.views(buffer, base)
    present: list[str] = []
    for name, param in unique_named_parameters(module):
        if param.grad is not None:
            views[name][...] = param.grad
            present.append(name)
    return tuple(present)
