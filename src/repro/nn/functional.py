"""Functional operations and losses on :class:`repro.nn.tensor.Tensor`.

Everything here is composed from registered tape primitives, so each
function is differentiable to arbitrary order: losses can sit at the root
of a ``create_graph`` walk (:func:`repro.nn.autodiff.grad` /
:func:`repro.nn.autodiff.hvp`) without any special casing.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "relu",
    "sigmoid",
    "tanh",
    "softplus",
    "mse_loss",
    "l1_loss",
    "bce_loss",
    "gaussian_kl",
    "softmax",
    "log_softmax",
]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return x.tanh()


def softplus(x: Tensor) -> Tensor:
    """Numerically-stable softplus log(1 + e^x) = max(x,0) + log1p(e^-|x|)."""
    return x.relu() + ((-x.abs()).exp() + 1.0).log()


def mse_loss(prediction: Tensor, target: Tensor, reduction: str = "mean") -> Tensor:
    """Mean squared error, the paper's reconstruction loss."""
    diff = prediction - _as_tensor(target)
    squared = diff * diff
    return _reduce(squared, reduction)


def l1_loss(prediction: Tensor, target: Tensor, reduction: str = "mean") -> Tensor:
    """Mean absolute error."""
    return _reduce((prediction - _as_tensor(target)).abs(), reduction)


def bce_loss(
    prediction: Tensor, target: Tensor, eps: float = 1e-12, reduction: str = "mean"
) -> Tensor:
    """Binary cross entropy on probabilities in (0, 1)."""
    target = _as_tensor(target)
    pred = prediction.clip(eps, 1.0 - eps)
    loss = -(target * pred.log() + (1.0 - target) * (1.0 - pred).log())
    return _reduce(loss, reduction)


def gaussian_kl(mu: Tensor, logvar: Tensor, reduction: str = "mean") -> Tensor:
    """KL( N(mu, exp(logvar)) || N(0, I) ), summed over the latent dimension.

    This is the VAE regularizer from Kingma & Welling (the paper's Eq. for
    the ELBO): 0.5 * sum(mu^2 + exp(logvar) - logvar - 1).
    """
    per_sample = (mu * mu + logvar.exp() - logvar - 1.0).sum(axis=-1) * 0.5
    return _reduce(per_sample, reduction)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` with the max-subtraction stabilization."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log of the softmax, computed stably."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def _as_tensor(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(np.asarray(value))


def _reduce(value: Tensor, reduction: str) -> Tensor:
    if reduction == "mean":
        return value.mean()
    if reduction == "sum":
        return value.sum()
    if reduction == "none":
        return value
    raise ValueError(f"unknown reduction {reduction!r}")
