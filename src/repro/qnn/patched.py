"""Patched quantum circuits — the paper's key scaling contribution.

Section III-C: *"we partition the entire feature vector into multiple
equal-sized sub-vectors, and each sub-vector is fed into a quantum
sub-circuit"*.  Compared with the patch-GAN of Huang et al. (which feeds all
features to every sub-circuit), this uses fewer qubits per patch and widens
the output: with ``p`` patches over 1024 features each patch amplitude-embeds
``1024/p`` features into ``log2(1024/p)`` qubits, and the concatenated
per-qubit expectations give a latent space of ``p * log2(1024/p)`` dimensions
(18/32/56/96 for p = 2/4/8/16 — Section IV-D).

Stacked execution contract
--------------------------
The ``p`` sub-circuits are independent and (when built from one factory)
structurally identical, so :class:`PatchedQuantumLayer` does not loop over
them: it stacks the per-patch input slices into ``(p, batch, in)``, the
per-patch weight vectors into a ``(p, n_weights)`` Tensor, and records
**one** tape primitive around :func:`repro.quantum.autodiff
.execute_stacked` — a single ``(p * batch, 2**n)`` statevector pass
through one compiled plan, whose registered VJP is one adjoint walk
returning every patch's weight and input gradients
(:func:`repro.quantum.autodiff.backward_stacked`).  The ``Tensor.stack``
node routes the ``(p, n_weights)`` gradient back to the individual patch
``Parameter``s.  Patches whose circuits are *not* structurally identical
(or a layer built with ``stacked=False``) fall back to the sequential
per-patch loop, which is also the reference the stacked path is
property-tested against.

Under ``create_graph`` the stacked primitive's VJP switches to the
parameter-shift rule, exploiting patch independence: patch outputs depend
only on their own weight row, so shifting weight *column* ``i`` across all
``p`` rows simultaneously is exact — ``2 * n_weights`` stacked executions
instead of ``2 * p * n_weights``.
"""

from __future__ import annotations

import numpy as np

from ..nn.autodiff import Primitive, defvjp_all, is_tensor
from ..nn.init import fresh_rng
from ..nn.modules import Module, ModuleList
from ..nn.precision import resolve_precision
from ..nn.tensor import Tensor, is_grad_enabled, tape_record
from ..quantum.autodiff import backward_stacked, execute_stacked
from ..quantum.backends import resolve_backend
from ..quantum.circuit import Circuit
from ..quantum.engine import circuit_signature, stacked_plan
from ..quantum.shift import _SHIFT, require_two_term
from .qlayer import QuantumLayer

__all__ = ["PatchedQuantumLayer", "patched_latent_dim", "patch_qubits"]


def patch_qubits(n_features: int, n_patches: int) -> int:
    """Qubits per patch for amplitude-embedded patches: log2(features/p)."""
    if n_features % n_patches:
        raise ValueError(
            f"{n_features} features do not split into {n_patches} equal patches"
        )
    per_patch = n_features // n_patches
    if per_patch < 2:
        raise ValueError(
            f"{n_features} features over {n_patches} patches leaves "
            f"{per_patch} feature(s) per patch — a 0-qubit sub-circuit; "
            "use fewer patches"
        )
    n_qubits = int(per_patch).bit_length() - 1
    if 2**n_qubits != per_patch:
        raise ValueError(f"patch size {per_patch} is not a power of two")
    return n_qubits


def patched_latent_dim(n_features: int, n_patches: int) -> int:
    """Latent dimension of a patched amplitude encoder: p * log2(features/p)."""
    return n_patches * patch_qubits(n_features, n_patches)


def _stacked_vjp_all(g, ans, operands, params, argnums):
    if is_tensor(g):
        return _stacked_vjp_graph(g, operands, params, argnums)
    p, per_out = params["n_patches"], params["per_out"]
    batch, input_dim = params["batch"], params["input_dim"]
    grad_out = np.ascontiguousarray(
        g.reshape(batch, p, per_out).transpose(1, 0, 2)
    )
    grad_inputs, grad_weights = backward_stacked(
        params["cache"], grad_out, want_inputs=1 in argnums
    )
    grads = []
    for argnum in argnums:
        if argnum == 0:
            grads.append(grad_weights)
        else:
            grads.append(
                np.ascontiguousarray(
                    grad_inputs.transpose(1, 0, 2)
                ).reshape(batch, input_dim)
            )
    return grads


def _stacked_vjp_graph(g, operands, params, argnums):
    """``create_graph`` VJP: per-column parameter shift over all patches.

    Patch ``k``'s outputs depend only on weight row ``k``, so adding the
    shift to column ``i`` of every row at once yields each patch's shifted
    evaluation in a single stacked pass.
    """
    if any(argnum != 0 for argnum in argnums):
        raise NotImplementedError(
            "higher-order gradients w.r.t. patched-layer inputs are not "
            "supported; only the rotation weights admit the "
            "parameter-shift recursion"
        )
    template = params["template"]
    require_two_term(template)
    weights, x = operands[0], operands[1]
    p, per_out, batch = params["n_patches"], params["per_out"], params["batch"]
    precision, backend = params["precision"], params["backend"]
    g3 = g.reshape(batch, p, per_out).transpose((1, 0, 2))
    n = template.n_weights
    cols = []
    for index in range(n):
        shift = np.zeros(n, dtype=weights.dtype)
        shift[index] = _SHIFT
        plus = quantum_execute_stacked(
            template, weights + shift, x, p, precision=precision,
            backend=backend,
        )
        minus = quantum_execute_stacked(
            template, weights - shift, x, p, precision=precision,
            backend=backend,
        )
        jac = ((plus - minus) * 0.5).reshape(batch, p, per_out).transpose(
            (1, 0, 2)
        )
        cols.append((g3 * jac).sum(axis=(1, 2)))
    return [Tensor.stack(cols, axis=1)]


_QSTACKED = Primitive("quantum_execute_stacked")
defvjp_all(_QSTACKED, _stacked_vjp_all)


def quantum_execute_stacked(
    template: Circuit,
    weights: Tensor,
    x: Tensor,
    n_patches: int,
    precision=None,
    backend=None,
) -> Tensor:
    """Run ``p`` independent patch circuits as one recorded tape primitive.

    ``weights`` is the stacked ``(p, n_weights)`` Tensor, ``x`` the flat
    ``(batch, p * inputs_per_patch)`` feature Tensor.  Returns the
    concatenated ``(batch, p * per_out)`` outputs with the stacked adjoint
    registered as the primitive's VJP.
    """
    precision = resolve_precision(precision)
    batch = x.shape[0]
    per_in = x.shape[1] // n_patches
    inputs = np.ascontiguousarray(
        np.asarray(x.data, dtype=precision.real)
        .reshape(batch, n_patches, per_in)
        .transpose(1, 0, 2)
    )
    track = is_grad_enabled() and (weights.requires_grad or x.requires_grad)
    stacked_out, cache = execute_stacked(
        template, inputs, weights.data, want_cache=track,
        dtype=precision, backend=backend,
    )
    per_out = stacked_out.shape[2]
    data = np.ascontiguousarray(stacked_out.transpose(1, 0, 2)).reshape(
        batch, n_patches * per_out
    )
    if not track:
        return Tensor(data)
    return tape_record(
        _QSTACKED,
        data,
        (weights, x),
        {
            "cache": cache,
            "template": template,
            "n_patches": n_patches,
            "per_out": per_out,
            "batch": batch,
            "input_dim": x.shape[1],
            "precision": precision,
            "backend": backend,
        },
    )


class PatchedQuantumLayer(Module):
    """Split features across ``p`` independent sub-circuits, concat outputs.

    Parameters
    ----------
    circuit_factory:
        Called once per patch as ``circuit_factory(patch_index)`` and must
        return a built :class:`~repro.quantum.circuit.Circuit`.  All patches
        must consume the same number of inputs.
    n_patches:
        Number of sub-circuits ``p``.
    rng:
        Seeded generator; each patch gets independently initialized weights.
    stacked:
        Execute all patches as one stacked engine pass (see the module
        docstring).  On by default; only takes effect when every patch
        circuit is structurally identical, otherwise the layer silently
        uses the sequential per-patch loop.
    dtype:
        Precision spec resolved at construction and shared by every patch:
        weights live in its real dtype, the stacked pass runs at its paired
        complex dtype.  None follows the active precision policy.
    backend:
        Kernel backend spec shared by every patch and by the stacked pass.
        An explicit backend pins this layer to it; None follows the active
        backend policy at each forward (so a ``use_backend`` scope around
        training takes effect without rebuilding the layer).
    """

    def __init__(
        self,
        circuit_factory,
        n_patches: int,
        rng: np.random.Generator | None = None,
        init_scale: float = np.pi,
        stacked: bool = True,
        dtype=None,
        backend=None,
    ):
        super().__init__()
        if n_patches < 1:
            raise ValueError("need at least one patch")
        rng = fresh_rng(rng)
        self.n_patches = n_patches
        self.precision = resolve_precision(dtype)
        self.backend = None if backend is None else resolve_backend(backend)
        # Each QuantumLayer compiles its circuit at construction; structurally
        # identical patch circuits (the common case: one factory with
        # per-patch weights) dedupe to a single shared plan in the engine's
        # structural cache, so p patches pay compilation once.
        self.patches = ModuleList(
            QuantumLayer(
                circuit_factory(i),
                rng=rng,
                init_scale=init_scale,
                dtype=self.precision,
                backend=self.backend,
            )
            for i in range(n_patches)
        )
        in_dims = {patch.circuit.n_inputs for patch in self.patches}
        if len(in_dims) != 1:
            raise ValueError(f"patches disagree on input dim: {sorted(in_dims)}")
        self.inputs_per_patch = in_dims.pop()
        self.output_dim = sum(patch.output_dim for patch in self.patches)
        signatures = {circuit_signature(patch.circuit) for patch in self.patches}
        self._template: Circuit | None = (
            self.patches[0].circuit if len(signatures) == 1 else None
        )
        self.stacked = bool(stacked) and self._template is not None
        if self.stacked:
            stacked_plan(self._template)  # pay template compilation up front

    @property
    def input_dim(self) -> int:
        return self.inputs_per_patch * self.n_patches

    def forward(self, x: Tensor) -> Tensor:
        """Map ``(batch, p * inputs_per_patch)`` to concatenated patch outputs."""
        if x.shape[-1] != self.input_dim:
            raise ValueError(
                f"expected {self.input_dim} features "
                f"({self.n_patches} patches x {self.inputs_per_patch}), "
                f"got {x.shape[-1]}"
            )
        if not (self.stacked and self._template is not None):
            return self._forward_sequential(x)
        return self._forward_stacked(x)

    def _forward_sequential(self, x: Tensor) -> Tensor:
        """Reference path: one engine invocation per patch."""
        outputs = []
        for index, patch in enumerate(self.patches):
            start = index * self.inputs_per_patch
            chunk = x[:, start : start + self.inputs_per_patch]
            outputs.append(patch(chunk))
        return Tensor.concatenate(outputs, axis=1)

    def _forward_stacked(self, x: Tensor) -> Tensor:
        """Fast path: all p patches as one stacked statevector pass."""
        weights = Tensor.stack([patch.weights for patch in self.patches])
        return quantum_execute_stacked(
            self._template,
            weights,
            x,
            self.n_patches,
            precision=self.precision,
            backend=self.backend,
        )

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"PatchedQuantumLayer(patches={self.n_patches}, "
            f"in={self.input_dim}, out={self.output_dim}, "
            f"stacked={self.stacked})"
        )
