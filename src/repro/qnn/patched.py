"""Patched quantum circuits — the paper's key scaling contribution.

Section III-C: *"we partition the entire feature vector into multiple
equal-sized sub-vectors, and each sub-vector is fed into a quantum
sub-circuit"*.  Compared with the patch-GAN of Huang et al. (which feeds all
features to every sub-circuit), this uses fewer qubits per patch and widens
the output: with ``p`` patches over 1024 features each patch amplitude-embeds
``1024/p`` features into ``log2(1024/p)`` qubits, and the concatenated
per-qubit expectations give a latent space of ``p * log2(1024/p)`` dimensions
(18/32/56/96 for p = 2/4/8/16 — Section IV-D).
"""

from __future__ import annotations

import numpy as np

from ..nn.modules import Module, ModuleList
from ..nn.tensor import Tensor
from ..quantum.circuit import Circuit
from .qlayer import QuantumLayer

__all__ = ["PatchedQuantumLayer", "patched_latent_dim", "patch_qubits"]


def patch_qubits(n_features: int, n_patches: int) -> int:
    """Qubits per patch for amplitude-embedded patches: log2(features/p)."""
    if n_features % n_patches:
        raise ValueError(
            f"{n_features} features do not split into {n_patches} equal patches"
        )
    per_patch = n_features // n_patches
    n_qubits = int(per_patch).bit_length() - 1
    if 2**n_qubits != per_patch:
        raise ValueError(f"patch size {per_patch} is not a power of two")
    return n_qubits


def patched_latent_dim(n_features: int, n_patches: int) -> int:
    """Latent dimension of a patched amplitude encoder: p * log2(features/p)."""
    return n_patches * patch_qubits(n_features, n_patches)


class PatchedQuantumLayer(Module):
    """Split features across ``p`` independent sub-circuits, concat outputs.

    Parameters
    ----------
    circuit_factory:
        Called once per patch as ``circuit_factory(patch_index)`` and must
        return a built :class:`~repro.quantum.circuit.Circuit`.  All patches
        must consume the same number of inputs.
    n_patches:
        Number of sub-circuits ``p``.
    rng:
        Seeded generator; each patch gets independently initialized weights.
    """

    def __init__(
        self,
        circuit_factory,
        n_patches: int,
        rng: np.random.Generator | None = None,
        init_scale: float = np.pi,
    ):
        super().__init__()
        if n_patches < 1:
            raise ValueError("need at least one patch")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.n_patches = n_patches
        # Each QuantumLayer compiles its circuit at construction; structurally
        # identical patch circuits (the common case: one factory with
        # per-patch weights) dedupe to a single shared plan in the engine's
        # structural cache, so p patches pay compilation once.
        self.patches = ModuleList(
            QuantumLayer(circuit_factory(i), rng=rng, init_scale=init_scale)
            for i in range(n_patches)
        )
        in_dims = {patch.circuit.n_inputs for patch in self.patches}
        if len(in_dims) != 1:
            raise ValueError(f"patches disagree on input dim: {sorted(in_dims)}")
        self.inputs_per_patch = in_dims.pop()
        self.output_dim = sum(patch.output_dim for patch in self.patches)

    @property
    def input_dim(self) -> int:
        return self.inputs_per_patch * self.n_patches

    def forward(self, x: Tensor) -> Tensor:
        """Map ``(batch, p * inputs_per_patch)`` to concatenated patch outputs."""
        if x.shape[-1] != self.input_dim:
            raise ValueError(
                f"expected {self.input_dim} features "
                f"({self.n_patches} patches x {self.inputs_per_patch}), "
                f"got {x.shape[-1]}"
            )
        outputs = []
        for index, patch in enumerate(self.patches):
            start = index * self.inputs_per_patch
            chunk = x[:, start : start + self.inputs_per_patch]
            outputs.append(patch(chunk))
        return Tensor.concatenate(outputs, axis=1)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"PatchedQuantumLayer(patches={self.n_patches}, "
            f"in={self.input_dim}, out={self.output_dim})"
        )
