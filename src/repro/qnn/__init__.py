"""Quantum-classical bridge: circuits as differentiable network modules."""

from .circuits import (
    amplitude_encoder_circuit,
    angle_expval_circuit,
    probs_decoder_circuit,
    reuploading_expval_circuit,
)
from .patched import PatchedQuantumLayer, patch_qubits, patched_latent_dim
from .qlayer import QuantumLayer

__all__ = [
    "QuantumLayer",
    "PatchedQuantumLayer",
    "patch_qubits",
    "patched_latent_dim",
    "amplitude_encoder_circuit",
    "probs_decoder_circuit",
    "angle_expval_circuit",
    "reuploading_expval_circuit",
]
