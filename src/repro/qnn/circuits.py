"""Circuit factories for the paper's encoder / decoder blocks.

Section III fixes the repeatable hidden layer to ``Rot`` gates on every qubit
followed by a periodic CNOT layout (strongly entangling layers); what varies
between architectures is the embedding and the measurement:

* baseline encoder  — amplitude embedding, per-qubit Z expectations
  (latent dim = n_wires = log2(features));
* baseline decoder  — angle embedding of the latent, basis probabilities
  (output dim = 2**n_wires);
* scalable encoder/decoder patches — amplitude/angle embedding with
  *expectation* outputs, assembled by
  :class:`repro.qnn.patched.PatchedQuantumLayer`.
"""

from __future__ import annotations

from ..quantum.circuit import Circuit

__all__ = [
    "amplitude_encoder_circuit",
    "probs_decoder_circuit",
    "angle_expval_circuit",
    "reuploading_expval_circuit",
]


def amplitude_encoder_circuit(
    n_wires: int, n_features: int, n_layers: int, zero_fallback: bool = False
) -> Circuit:
    """Amplitude-embed ``n_features`` then measure Z on every wire.

    The qubit-efficient encoder: 64 features -> 6 qubits -> 6 latent values.
    ``zero_fallback`` lets all-zero patch sub-vectors embed as |0...0>
    (needed by the scalable patched encoder on sparse ligand matrices).
    """
    return (
        Circuit(n_wires)
        .amplitude_embedding(n_features, zero_fallback=zero_fallback)
        .strongly_entangling_layers(n_layers)
        .measure_expval()
    )


def probs_decoder_circuit(n_wires: int, n_layers: int) -> Circuit:
    """Angle-embed ``n_wires`` latent values then measure basis probabilities.

    The baseline decoder: 6 latent angles -> 2**6 = 64 probabilities, which
    only reconstructs *normalized* data (outputs sum to 1) — the constraint
    Fig. 4(a) of the paper attributes the baseline's failure on
    original-scale data to.
    """
    return (
        Circuit(n_wires)
        .angle_embedding(n_wires)
        .strongly_entangling_layers(n_layers)
        .measure_probs()
    )


def angle_expval_circuit(n_wires: int, n_features: int, n_layers: int) -> Circuit:
    """Angle-embed ``n_features`` then measure Z on every wire.

    Used by the scalable decoder patches, where probabilities over 1024
    basis states would be "too miniscule to be reconstructed" (Section
    III-C); expectations keep outputs O(1).
    """
    return (
        Circuit(n_wires)
        .angle_embedding(n_features)
        .strongly_entangling_layers(n_layers)
        .measure_expval()
    )


def reuploading_expval_circuit(
    n_wires: int, n_features: int, n_layers: int
) -> Circuit:
    """Data-reuploading variant of :func:`angle_expval_circuit`.

    The same features are re-embedded before every entangling layer — an
    expressivity extension beyond the paper's fixed single embedding,
    exercised by the drop-in-decoder tests and available for SQ decoder
    experiments.
    """
    return (
        Circuit(n_wires)
        .reuploading_layers(n_features, n_layers)
        .measure_expval()
    )
