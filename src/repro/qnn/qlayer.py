"""Hybrid bridge: quantum circuits as differentiable ``repro.nn`` modules.

:class:`QuantumLayer` owns the circuit's trainable rotation angles as a
``Parameter`` tagged ``group='quantum'`` (so the optimizer can apply the
paper's heterogeneous learning rates) and records every execution as a
first-class autodiff primitive (:func:`quantum_execute`): the simulator's
exact vector-Jacobian product is the primitive's registered VJP, so
``no_grad``, ``retain_graph``, precision policy, and gradient accumulation
flow through the same tape walk as the classical ops.  Since the adjoint
unification, that VJP runs on the same block/kernel substrate as the
stacked patched path (:mod:`repro.quantum.engine`): a degenerate ``p = 1``
stack with the checkpointed transition-matrix backward, so single-circuit
layers — the MolQAE-style non-patched autoencoders — train on the same hot
path as the patched ones.

When the backward walk itself is being recorded (``create_graph=True``,
the grad-of-grad path behind :func:`repro.nn.autodiff.hvp`), the adjoint
cache is of no use — it yields numbers, not a differentiable graph.  The
primitive's VJP then switches to the parameter-shift rule: each weight
gradient is expanded into two shifted executions of the *same* recorded
primitive, whose own (fast) VJPs are exact adjoints — so second
derivatives are shift-of-adjoint, exact to machine precision for circuits
whose weight-sourced gates admit the two-term rule (RX/RY/RZ; enforced by
:func:`repro.quantum.shift.require_two_term`).
"""

from __future__ import annotations

import numpy as np

from ..nn.autodiff import Primitive, defvjp_all, is_tensor
from ..nn.init import fresh_rng
from ..nn.modules import Module, Parameter
from ..nn.precision import resolve_precision
from ..nn.tensor import Tensor, is_grad_enabled, tape_record
from ..quantum.autodiff import backward as q_backward
from ..quantum.autodiff import execute as q_execute
from ..quantum.backends import resolve_backend
from ..quantum.circuit import Circuit
from ..quantum.engine import compiled_plan
from ..quantum.shift import _SHIFT, require_two_term

__all__ = ["QuantumLayer", "quantum_execute"]


def _quantum_vjp_all(g, ans, operands, params, argnums):
    if is_tensor(g):
        return _quantum_vjp_graph(g, operands, params, argnums)
    circuit = params["circuit"]
    grad_inputs, grad_weights = q_backward(params["cache"], g)
    grads = []
    for argnum in argnums:
        if argnum == 0:
            grads.append(grad_weights)
        elif grad_inputs is None:  # pragma: no cover - cache always has inputs
            grads.append(None)
        else:
            x_val = operands[1]
            if x_val.shape[1] > circuit.n_inputs:
                full = np.zeros_like(x_val)
                full[:, : circuit.n_inputs] = grad_inputs
                grads.append(full)
            else:
                grads.append(grad_inputs)
    return grads


def _quantum_vjp_graph(g, operands, params, argnums):
    """``create_graph`` VJP: expand weight gradients by parameter shift.

    Each shifted evaluation is itself a recorded quantum primitive, so the
    next backward walk differentiates it with the exact adjoint — second
    derivatives come out as shift-of-adjoint.
    """
    if any(argnum != 0 for argnum in argnums):
        raise NotImplementedError(
            "higher-order gradients w.r.t. quantum-layer inputs are not "
            "supported; only the rotation weights admit the "
            "parameter-shift recursion"
        )
    circuit = params["circuit"]
    require_two_term(circuit)
    weights = operands[0]
    x = operands[1] if len(operands) > 1 else None
    precision, backend = params["precision"], params["backend"]
    n = circuit.n_weights
    cols = []
    for index in range(n):
        shift = np.zeros(n, dtype=weights.dtype)
        shift[index] = _SHIFT
        plus = quantum_execute(
            circuit, weights + shift, x, precision=precision, backend=backend
        )
        minus = quantum_execute(
            circuit, weights - shift, x, precision=precision, backend=backend
        )
        cols.append((g * ((plus - minus) * 0.5)).sum())
    return [Tensor.stack(cols)]


_QEXEC = Primitive("quantum_execute")
defvjp_all(_QEXEC, _quantum_vjp_all)


def quantum_execute(
    circuit: Circuit,
    weights: Tensor,
    x: Tensor | None = None,
    precision=None,
    backend=None,
) -> Tensor:
    """Run ``circuit`` as a recorded tape primitive.

    ``weights`` (and optionally ``x``) are Tensors; the returned
    ``(batch, output_dim)`` Tensor carries a tape node whose VJP is the
    engine's exact adjoint (or the parameter-shift expansion under
    ``create_graph``).  This is the single graph entry point for
    single-circuit layers — :class:`QuantumLayer.forward` is validation
    plus this call.
    """
    precision = resolve_precision(precision)
    inputs = None if x is None else np.asarray(x.data, dtype=precision.real)
    track = is_grad_enabled() and (
        weights.requires_grad or (x is not None and x.requires_grad)
    )
    outputs, cache = q_execute(
        circuit,
        inputs,
        weights.data,
        want_cache=track,
        dtype=precision,
        backend=backend,
    )
    if not track:
        return Tensor(outputs)
    args = (weights,) if x is None else (weights, x)
    return tape_record(
        _QEXEC,
        outputs,
        args,
        {
            "cache": cache,
            "circuit": circuit,
            "precision": precision,
            "backend": backend,
        },
    )


class QuantumLayer(Module):
    """Execute a parameterized circuit as one layer of a hybrid network.

    Parameters
    ----------
    circuit:
        A built circuit template (with a measurement).  The layer allocates
        one flat weight vector matching ``circuit.n_weights``.
    rng:
        Seeded generator for weight initialization.
    init_scale:
        Weights are drawn uniformly from ``[-init_scale, init_scale]``.
        Defaults to pi, covering the full rotation-angle range the paper
        discusses ("quantum parameters fall in the range [-pi, pi]").
    input_prefix:
        Accept inputs wider than ``circuit.n_inputs``: the circuit consumes
        the leading ``circuit.n_inputs`` columns and the extra columns are
        ignored (they receive zero gradient).  Off by default — a width
        mismatch is almost always a wiring bug, and silently training on an
        unintended feature prefix corrupts gradients without any error, so
        the assumption must be opted into explicitly.
    dtype:
        Precision spec (:func:`repro.nn.precision.resolve_precision`)
        resolved at construction: the rotation weights live in its real
        dtype and every execution runs at its paired complex dtype.  None
        follows the active precision policy (float64 by default).
    backend:
        Kernel backend spec (:func:`repro.quantum.backends
        .resolve_backend`).  An explicit backend (``"threaded"``, or an
        instance) pins every execution of this layer to it; None — the
        default — follows the *active* backend policy at each forward, so
        ``with use_backend("threaded"):`` around training accelerates an
        already-built layer.
    """

    def __init__(
        self,
        circuit: Circuit,
        rng: np.random.Generator | None = None,
        init_scale: float = np.pi,
        input_prefix: bool = False,
        dtype=None,
        backend=None,
    ):
        super().__init__()
        if circuit.measurement is None:
            raise ValueError("QuantumLayer requires a measured circuit")
        self.circuit = circuit
        self.input_prefix = bool(input_prefix)
        self.precision = resolve_precision(dtype)
        # None stays None: the layer then follows the active backend policy
        # at call time instead of freezing it at construction.
        self.backend = None if backend is None else resolve_backend(backend)
        # Pay plan compilation at construction; every forward/backward then
        # binds and runs the cached program.
        compiled_plan(circuit)
        rng = fresh_rng(rng)
        self.weights = Parameter(
            rng.uniform(-init_scale, init_scale, size=circuit.n_weights),
            group="quantum",
            dtype=self.precision.real,
        )

    @property
    def output_dim(self) -> int:
        return self.circuit.output_dim

    def forward(self, x: Tensor | None = None) -> Tensor:
        """Run the circuit on a ``(batch, n_inputs)`` tensor (or no input).

        Returns a ``(batch, output_dim)`` tensor wired into the autodiff
        graph: backward computes exact gradients for both the rotation
        weights and (when the circuit embeds inputs) the input features.
        """
        if x is not None and x.shape[-1] != self.circuit.n_inputs:
            if not (self.input_prefix and x.shape[-1] > self.circuit.n_inputs):
                hint = (
                    "; construct the layer with input_prefix=True to "
                    "deliberately feed the circuit a wider tensor's leading "
                    "columns"
                    if x.shape[-1] > self.circuit.n_inputs
                    else ""
                )
                raise ValueError(
                    f"circuit consumes {self.circuit.n_inputs} input "
                    f"feature(s), got {x.shape[-1]}{hint}"
                )
        return quantum_execute(
            self.circuit,
            self.weights,
            x,
            precision=self.precision,
            backend=self.backend,
        )

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"QuantumLayer({self.circuit!r})"
