"""Hybrid bridge: quantum circuits as differentiable ``repro.nn`` modules.

:class:`QuantumLayer` owns the circuit's trainable rotation angles as a
``Parameter`` tagged ``group='quantum'`` (so the optimizer can apply the
paper's heterogeneous learning rates) and splices the simulator's exact
vector-Jacobian product into the autodiff tape.  Since the adjoint
unification, that VJP runs on the same block/kernel substrate as the
stacked patched path (:mod:`repro.quantum.engine`): a degenerate ``p = 1``
stack with the checkpointed transition-matrix backward, so single-circuit
layers — the MolQAE-style non-patched autoencoders — train on the same hot
path as the patched ones.
"""

from __future__ import annotations

import numpy as np

from ..nn.init import fresh_rng
from ..nn.modules import Module, Parameter
from ..nn.precision import resolve_precision
from ..nn.tensor import Tensor, is_grad_enabled
from ..quantum.autodiff import backward as q_backward
from ..quantum.autodiff import execute as q_execute
from ..quantum.backends import resolve_backend
from ..quantum.circuit import Circuit
from ..quantum.engine import compiled_plan

__all__ = ["QuantumLayer"]


class QuantumLayer(Module):
    """Execute a parameterized circuit as one layer of a hybrid network.

    Parameters
    ----------
    circuit:
        A built circuit template (with a measurement).  The layer allocates
        one flat weight vector matching ``circuit.n_weights``.
    rng:
        Seeded generator for weight initialization.
    init_scale:
        Weights are drawn uniformly from ``[-init_scale, init_scale]``.
        Defaults to pi, covering the full rotation-angle range the paper
        discusses ("quantum parameters fall in the range [-pi, pi]").
    input_prefix:
        Accept inputs wider than ``circuit.n_inputs``: the circuit consumes
        the leading ``circuit.n_inputs`` columns and the extra columns are
        ignored (they receive zero gradient).  Off by default — a width
        mismatch is almost always a wiring bug, and silently training on an
        unintended feature prefix corrupts gradients without any error, so
        the assumption must be opted into explicitly.
    dtype:
        Precision spec (:func:`repro.nn.precision.resolve_precision`)
        resolved at construction: the rotation weights live in its real
        dtype and every execution runs at its paired complex dtype.  None
        follows the active precision policy (float64 by default).
    backend:
        Kernel backend spec (:func:`repro.quantum.backends
        .resolve_backend`).  An explicit backend (``"threaded"``, or an
        instance) pins every execution of this layer to it; None — the
        default — follows the *active* backend policy at each forward, so
        ``with use_backend("threaded"):`` around training accelerates an
        already-built layer.
    """

    def __init__(
        self,
        circuit: Circuit,
        rng: np.random.Generator | None = None,
        init_scale: float = np.pi,
        input_prefix: bool = False,
        dtype=None,
        backend=None,
    ):
        super().__init__()
        if circuit.measurement is None:
            raise ValueError("QuantumLayer requires a measured circuit")
        self.circuit = circuit
        self.input_prefix = bool(input_prefix)
        self.precision = resolve_precision(dtype)
        # None stays None: the layer then follows the active backend policy
        # at call time instead of freezing it at construction.
        self.backend = None if backend is None else resolve_backend(backend)
        # Pay plan compilation at construction; every forward/backward then
        # binds and runs the cached program.
        compiled_plan(circuit)
        rng = fresh_rng(rng)
        self.weights = Parameter(
            rng.uniform(-init_scale, init_scale, size=circuit.n_weights),
            group="quantum",
            dtype=self.precision.real,
        )

    @property
    def output_dim(self) -> int:
        return self.circuit.output_dim

    def forward(self, x: Tensor | None = None) -> Tensor:
        """Run the circuit on a ``(batch, n_inputs)`` tensor (or no input).

        Returns a ``(batch, output_dim)`` tensor wired into the autodiff
        graph: backward computes exact gradients for both the rotation
        weights and (when the circuit embeds inputs) the input features.
        """
        inputs = None if x is None else np.asarray(x.data, dtype=self.precision.real)
        if inputs is not None and inputs.shape[-1] != self.circuit.n_inputs:
            if not (self.input_prefix and inputs.shape[-1] > self.circuit.n_inputs):
                hint = (
                    "; construct the layer with input_prefix=True to "
                    "deliberately feed the circuit a wider tensor's leading "
                    "columns"
                    if inputs.shape[-1] > self.circuit.n_inputs
                    else ""
                )
                raise ValueError(
                    f"circuit consumes {self.circuit.n_inputs} input "
                    f"feature(s), got {inputs.shape[-1]}{hint}"
                )
        track = is_grad_enabled() and (
            self.weights.requires_grad or (x is not None and x.requires_grad)
        )
        outputs, cache = q_execute(
            self.circuit,
            inputs,
            self.weights.data,
            want_cache=track,
            dtype=self.precision,
            backend=self.backend,
        )
        out = Tensor(outputs)
        if not track:
            return out

        out.requires_grad = True
        parents = [self.weights]
        if x is not None and x.requires_grad:
            parents.append(x)
        out._prev = tuple(parents)
        weights_param = self.weights
        circuit = self.circuit

        def _backward() -> None:
            grad_inputs, grad_weights = q_backward(cache, out.grad)
            if weights_param.requires_grad:
                weights_param._accumulate(grad_weights)
            if x is not None and x.requires_grad and grad_inputs is not None:
                if x.data.shape[1] > circuit.n_inputs:
                    full = np.zeros_like(x.data)
                    full[:, : circuit.n_inputs] = grad_inputs
                    x._accumulate(full)
                else:
                    x._accumulate(grad_inputs)

        out._backward = _backward
        return out

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"QuantumLayer({self.circuit!r})"
