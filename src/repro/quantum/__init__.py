"""Batched statevector quantum-circuit simulator with exact gradients.

This package replaces PennyLane for the reproduction.  Public surface::

    from repro.quantum import Circuit, execute, backward
    circuit = (Circuit(n_wires=6)
               .amplitude_embedding(64)
               .strongly_entangling_layers(3)
               .measure_expval())
    outputs, cache = execute(circuit, inputs, weights)
    grad_in, grad_w = backward(cache, grad_outputs)

Execution is a compile/bind/run pipeline (:mod:`repro.quantum.engine`):

1. **Compile** — the circuit template is lowered once into a
   :class:`~repro.quantum.engine.CompiledPlan`: runs of single-qubit gates on
   the same wire (adjacent modulo gates on disjoint wires, which commute) are
   fused into one 2x2 instruction — the SEL ``Rot = RZ.RY.RZ`` triple becomes
   a single fused gate — and every instruction is lowered to a specialized
   kernel.  The plan is cached on the :class:`~repro.quantum.circuit.Circuit`
   and reused until its structure changes, so hybrid layers pay compilation
   once, not per batch.
2. **Bind** — each :func:`execute` call resolves the plan against the current
   weights/inputs: fused 2x2 matrices are rebuilt (bulk-vectorized across all
   weight-only runs sharing a gate signature), diagonal gates become phase
   vectors, and — when a backward pass will follow — effective generators
   ``S G S^dagger`` are prepared so adjoint gradients stay exact through the
   fusion.
3. **Run** — kernels execute in order: dense single-qubit matrices via a
   fixed ``(batch, left, 2, right)`` reshape, diagonal gates (RZ/CZ/CRZ/Z) as
   elementwise phase multiplies over precomputed basis-index masks, and
   permutation gates (CNOT/X/SWAP) as precomputed index gathers.  The adjoint
   :func:`backward` walks the same bound program in reverse with daggered
   kernels.

Kernel specialization rules: a lone RZ lowers to a diagonal phase multiply, a
lone Z/CZ to an index-mask sign flip, a lone X/CNOT/SWAP to an index gather,
CRZ to phase multiplies on its |10>/|11> index sets, and everything else —
including every fused run of length > 1 — to the dense single-qubit kernel.
The pre-compilation op-by-op interpreter survives as ``naive_execute`` /
``naive_backward``, the reference implementation that the compiled engine is
property-tested against and benchmarked from.

Kernel *implementations* are pluggable (:mod:`repro.quantum.backends`):
plans are backend-agnostic, and every run binds the active
:class:`~repro.quantum.backends.KernelBackend`'s kernels — the
single-threaded NumPy set by default, or the row-sharding
:class:`~repro.quantum.backends.ThreadedBackend` selected per call
(``backend="threaded"``), per scope (:func:`use_backend`), or process-wide
(``REPRO_BACKEND``).

``p`` structurally identical circuit instances (the patched encoder's
sub-circuits) execute as one stacked ``(p * batch, 2**n)`` pass through a
:class:`~repro.quantum.engine.StackedPlan` via
:func:`~repro.quantum.autodiff.execute_stacked` /
:func:`~repro.quantum.autodiff.backward_stacked`: weight-sourced gates bind
per patch and broadcast along the outermost state axis, adjacent dense runs
merge into 4x4 kron blocks, consecutive permutations compose into single
gathers, and one adjoint walk — one transition-matrix contraction per dense
block — returns every instance's gradients.
"""

from . import gates
from .backends import (
    KernelBackend,
    NumpyBackend,
    ThreadedBackend,
    available_backends,
    default_backend,
    register_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from .autodiff import (
    ExecutionCache,
    StackedExecutionCache,
    backward,
    backward_stacked,
    execute,
    execute_stacked,
    naive_backward,
    naive_execute,
    prepare_amplitude_state,
)
from .circuit import Circuit, Operation, sel_weight_count
from .drawer import draw
from .engine import (
    CompiledPlan,
    StackedPlan,
    compile_circuit,
    compile_stacked,
    compiled_plan,
    stacked_plan,
)
from .noise import NoiseModel, noisy_execute
from .observables import (
    pauli_string_expval,
    pauli_string_variance,
    rotate_to_z_basis,
)
from .sampling import (
    estimate_expval_z,
    estimate_probabilities,
    sample_basis_states,
    shot_noise_std,
)
from .shift import parameter_shift_gradients, parameter_shift_jacobian
from .state import (
    apply_gate,
    basis_state,
    expval_z,
    marginal_probabilities,
    num_wires,
    probabilities,
    z_signs,
    zero_state,
)

__all__ = [
    "gates",
    "Circuit",
    "Operation",
    "sel_weight_count",
    "execute",
    "backward",
    "execute_stacked",
    "backward_stacked",
    "naive_execute",
    "naive_backward",
    "ExecutionCache",
    "StackedExecutionCache",
    "prepare_amplitude_state",
    "CompiledPlan",
    "StackedPlan",
    "compile_circuit",
    "compile_stacked",
    "compiled_plan",
    "stacked_plan",
    "KernelBackend",
    "NumpyBackend",
    "ThreadedBackend",
    "available_backends",
    "default_backend",
    "register_backend",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
    "parameter_shift_gradients",
    "parameter_shift_jacobian",
    "apply_gate",
    "basis_state",
    "expval_z",
    "marginal_probabilities",
    "num_wires",
    "probabilities",
    "zero_state",
    "z_signs",
    "draw",
    "NoiseModel",
    "noisy_execute",
    "sample_basis_states",
    "estimate_expval_z",
    "estimate_probabilities",
    "shot_noise_std",
    "pauli_string_expval",
    "pauli_string_variance",
    "rotate_to_z_basis",
]
