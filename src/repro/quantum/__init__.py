"""Batched statevector quantum-circuit simulator with exact gradients.

This package replaces PennyLane for the reproduction.  Public surface::

    from repro.quantum import Circuit, execute, backward
    circuit = (Circuit(n_wires=6)
               .amplitude_embedding(64)
               .strongly_entangling_layers(3)
               .measure_expval())
    outputs, cache = execute(circuit, inputs, weights)
    grad_in, grad_w = backward(cache, grad_outputs)
"""

from . import gates
from .autodiff import ExecutionCache, backward, execute, prepare_amplitude_state
from .circuit import Circuit, Operation, sel_weight_count
from .drawer import draw
from .noise import NoiseModel, noisy_execute
from .observables import (
    pauli_string_expval,
    pauli_string_variance,
    rotate_to_z_basis,
)
from .sampling import (
    estimate_expval_z,
    estimate_probabilities,
    sample_basis_states,
    shot_noise_std,
)
from .shift import parameter_shift_gradients, parameter_shift_jacobian
from .state import (
    apply_gate,
    basis_state,
    expval_z,
    marginal_probabilities,
    num_wires,
    probabilities,
    z_signs,
    zero_state,
)

__all__ = [
    "gates",
    "Circuit",
    "Operation",
    "sel_weight_count",
    "execute",
    "backward",
    "ExecutionCache",
    "prepare_amplitude_state",
    "parameter_shift_gradients",
    "parameter_shift_jacobian",
    "apply_gate",
    "basis_state",
    "expval_z",
    "marginal_probabilities",
    "num_wires",
    "probabilities",
    "zero_state",
    "z_signs",
    "draw",
    "NoiseModel",
    "noisy_execute",
    "sample_basis_states",
    "estimate_expval_z",
    "estimate_probabilities",
    "shot_noise_std",
    "pauli_string_expval",
    "pauli_string_variance",
    "rotate_to_z_basis",
]
