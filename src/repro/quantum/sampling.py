"""Finite-shot measurement sampling — the NISQ-realism layer.

The paper evaluates on PennyLane's *exact* simulator; real near-term
hardware estimates expectations from a finite number of shots.  This module
adds that layer: sample computational-basis outcomes from a state and
estimate per-wire Pauli-Z expectations or basis probabilities from the
samples.  The ablation benchmark ``bench_ablations.py::bench_shot_noise``
quantifies how shot noise would perturb the paper's encoder outputs.
"""

from __future__ import annotations

import numpy as np

from .state import num_wires, probabilities, z_signs

__all__ = [
    "sample_basis_states",
    "estimate_expval_z",
    "estimate_probabilities",
    "shot_noise_std",
]


def sample_basis_states(
    state: np.ndarray, shots: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``shots`` basis-state indices per batch element: ``(batch, shots)``."""
    if shots < 1:
        raise ValueError("shots must be positive")
    probs = probabilities(state)
    # Guard against tiny negative / rounding drift before sampling.
    probs = np.clip(probs, 0.0, None)
    probs /= probs.sum(axis=1, keepdims=True)
    batch, dim = probs.shape
    out = np.empty((batch, shots), dtype=np.int64)
    for b in range(batch):
        out[b] = rng.choice(dim, size=shots, p=probs[b])
    return out


def estimate_expval_z(
    state: np.ndarray,
    wires: tuple[int, ...],
    shots: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Shot-based estimate of per-wire Z expectations: ``(batch, len(wires))``.

    Unbiased: converges to :func:`repro.quantum.state.expval_z` as shots
    grow, with standard error ``sqrt((1 - <Z>^2) / shots)``.
    """
    n = num_wires(state)
    samples = sample_basis_states(state, shots, rng)
    signs = z_signs(n)
    estimates = np.empty((state.shape[0], len(wires)), dtype=np.float64)
    for column, wire in enumerate(wires):
        estimates[:, column] = signs[wire][samples].mean(axis=1)
    return estimates


def estimate_probabilities(
    state: np.ndarray, shots: int, rng: np.random.Generator
) -> np.ndarray:
    """Shot-based estimate of the basis-probability vector."""
    samples = sample_basis_states(state, shots, rng)
    dim = state.shape[1]
    batch = state.shape[0]
    estimates = np.zeros((batch, dim), dtype=np.float64)
    for b in range(batch):
        counts = np.bincount(samples[b], minlength=dim)
        estimates[b] = counts / shots
    return estimates


def shot_noise_std(expval: np.ndarray, shots: int) -> np.ndarray:
    """Theoretical standard error of a Z-expectation estimate."""
    return np.sqrt(np.clip(1.0 - np.asarray(expval) ** 2, 0.0, None) / shots)
