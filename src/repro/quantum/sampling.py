"""Finite-shot measurement sampling — the NISQ-realism layer.

The paper evaluates on PennyLane's *exact* simulator; real near-term
hardware estimates expectations from a finite number of shots.  This module
adds that layer: sample computational-basis outcomes from a state and
estimate per-wire Pauli-Z expectations or basis probabilities from the
samples.  The ablation benchmark ``bench_ablations.py::bench_shot_noise``
quantifies how shot noise would perturb the paper's encoder outputs.
"""

from __future__ import annotations

import numpy as np

from .state import num_wires, probabilities, z_signs

__all__ = [
    "sample_basis_states",
    "estimate_expval_z",
    "estimate_probabilities",
    "shot_noise_std",
]


def sample_basis_states(
    state: np.ndarray, shots: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``shots`` basis-state indices per batch element: ``(batch, shots)``.

    The draw is a vectorized inverse-CDF lookup: one ``cumsum`` over the
    probability rows and one ``searchsorted`` over all ``batch * shots``
    uniforms (each row's CDF is offset by its row index so a single sorted
    array serves every row) — no per-row Python loop, which is what makes
    ``bench_shot_noise``-style sweeps over many states cheap.
    """
    if shots < 1:
        raise ValueError("shots must be positive")
    probs = probabilities(state)
    # Guard against tiny negative / rounding drift before sampling.
    probs = np.clip(probs, 0.0, None)
    totals = probs.sum(axis=1)
    dead = np.flatnonzero(~np.isfinite(totals) | (totals <= 0.0))
    if dead.size:
        # A zero-mass (or NaN/inf, e.g. from a diverged run) row used to
        # divide to NaN and crash inside rng.choice with an opaque error —
        # or, worse, feed searchsorted an unsorted CDF and return garbage
        # indices; name the offending rows instead.
        raise ValueError(
            f"cannot sample from state row(s) {dead.tolist()}: "
            "probability mass is zero or non-finite (all-zero or diverged "
            "statevector?)"
        )
    batch, dim = probs.shape
    cdf = np.cumsum(probs, axis=1)
    cdf /= cdf[:, -1:].copy()
    cdf[:, -1] = 1.0  # exact upper edge despite rounding
    # Offset row b's CDF (and its uniforms, drawn in [0, 1)) by b: the
    # flattened CDF is globally non-decreasing, so one searchsorted
    # resolves every row's draws at once.
    offsets = np.arange(batch, dtype=np.float64)[:, None]
    flat_cdf = (cdf + offsets).ravel()
    draws = rng.random((batch, shots)) + offsets
    # A draw within half an ulp of 1.0 can round up to exactly the next
    # row boundary (u + b == b + 1), which would walk past row b's CDF
    # segment and return an out-of-range index; clamp each row's draws
    # strictly below its boundary so the worst case resolves to the row's
    # last nonzero-probability state instead.
    np.minimum(draws, np.nextafter(offsets + 1.0, -np.inf), out=draws)
    flat_idx = np.searchsorted(flat_cdf, draws.ravel(), side="right")
    out = flat_idx.reshape(batch, shots) - (np.arange(batch) * dim)[:, None]
    return out.astype(np.int64, copy=False)


def estimate_expval_z(
    state: np.ndarray,
    wires: tuple[int, ...],
    shots: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Shot-based estimate of per-wire Z expectations: ``(batch, len(wires))``.

    Unbiased: converges to :func:`repro.quantum.state.expval_z` as shots
    grow, with standard error ``sqrt((1 - <Z>^2) / shots)``.
    """
    n = num_wires(state)
    samples = sample_basis_states(state, shots, rng)
    signs = z_signs(n)
    estimates = np.empty((state.shape[0], len(wires)), dtype=np.float64)
    for column, wire in enumerate(wires):
        estimates[:, column] = signs[wire][samples].mean(axis=1)
    return estimates


def estimate_probabilities(
    state: np.ndarray, shots: int, rng: np.random.Generator
) -> np.ndarray:
    """Shot-based estimate of the basis-probability vector."""
    samples = sample_basis_states(state, shots, rng)
    dim = state.shape[1]
    batch = state.shape[0]
    # One bincount over row-offset indices replaces the per-row loop.
    offset = samples + (np.arange(batch) * dim)[:, None]
    counts = np.bincount(offset.ravel(), minlength=batch * dim)
    return counts.reshape(batch, dim) / shots


def shot_noise_std(expval: np.ndarray, shots: int) -> np.ndarray:
    """Theoretical standard error of a Z-expectation estimate."""
    return np.sqrt(np.clip(1.0 - np.asarray(expval) ** 2, 0.0, None) / shots)
