"""Stochastic noise channels via quantum-trajectory unraveling.

Exact density-matrix simulation doubles the memory exponent, so noise is
modeled the standard trajectory way: after every gate of a noisy
execution, each qubit independently suffers an error with probability
``p`` (depolarizing: random X/Y/Z; amplitude damping: a jump to |0> with
the appropriate norm bookkeeping).  Averaging observables over
trajectories converges to the channel's true output — the property tests
check depolarizing single-qubit behaviour against the analytic formula
``<Z> -> (1 - 4p/3) <Z>`` per layer.

This layer exists for the NISQ-robustness ablation
(``bench_ablations.py``): the paper simulates noiselessly, and the
ablation quantifies how much of the baseline encoder's latent signal a
depolarizing rate would erase.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import gates as G
from .circuit import Circuit
from .autodiff import execute
from .state import apply_gate, num_wires, probabilities, z_signs, zero_state
from .autodiff import prepare_amplitude_state

__all__ = ["NoiseModel", "noisy_execute"]

_PAULIS = (G.PAULI_X, G.PAULI_Y, G.PAULI_Z)


@dataclass(frozen=True)
class NoiseModel:
    """Per-gate, per-qubit error probabilities."""

    depolarizing: float = 0.0
    amplitude_damping: float = 0.0

    def __post_init__(self) -> None:
        for name in ("depolarizing", "amplitude_damping"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} probability {value} outside [0, 1]")

    @property
    def is_noiseless(self) -> bool:
        return self.depolarizing == 0.0 and self.amplitude_damping == 0.0


def noisy_execute(
    circuit: Circuit,
    inputs: np.ndarray | None,
    weights: np.ndarray,
    noise: NoiseModel,
    n_trajectories: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Trajectory-averaged measurement outputs under the noise model.

    Returns the same ``(batch, output_dim)`` shape as
    :func:`repro.quantum.autodiff.execute`.  With a noiseless model this
    delegates to the exact simulator.
    """
    if n_trajectories < 1:
        raise ValueError("need at least one trajectory")
    if noise.is_noiseless:
        outputs, __ = execute(circuit, inputs, weights, want_cache=False)
        return outputs

    weights = np.asarray(weights, dtype=np.float64)
    accumulated: np.ndarray | None = None
    for _ in range(n_trajectories):
        outputs = _one_trajectory(circuit, inputs, weights, noise, rng)
        accumulated = outputs if accumulated is None else accumulated + outputs
    return accumulated / n_trajectories


def _one_trajectory(
    circuit: Circuit,
    inputs: np.ndarray | None,
    weights: np.ndarray,
    noise: NoiseModel,
    rng: np.random.Generator,
) -> np.ndarray:
    from .autodiff import _gate_matrix  # reuse the template binding

    if inputs is not None:
        inputs = np.asarray(inputs, dtype=np.float64)
        batch = inputs.shape[0]
    else:
        batch = 1

    if circuit.state_prep is not None:
        __, n_features, zero_fallback = circuit.state_prep
        state, _norms = prepare_amplitude_state(
            inputs[:, :n_features], circuit.n_wires, zero_fallback
        )
    else:
        state = zero_state(circuit.n_wires, batch)

    n = circuit.n_wires
    for op in circuit.ops:
        state = apply_gate(state, _gate_matrix(op, inputs, weights), op.wires)
        state = _apply_noise(state, op.wires, noise, rng)

    kind, wires = circuit.measurement
    if kind == "expval":
        signs = z_signs(n)
        return probabilities(state) @ signs[list(wires)].T
    return probabilities(state)


def _apply_noise(
    state: np.ndarray,
    wires: tuple[int, ...],
    noise: NoiseModel,
    rng: np.random.Generator,
) -> np.ndarray:
    for wire in wires:
        if noise.depolarizing > 0.0 and rng.random() < noise.depolarizing:
            pauli = _PAULIS[rng.integers(3)]
            state = apply_gate(state, pauli, (wire,))
        if noise.amplitude_damping > 0.0 and rng.random() < noise.amplitude_damping:
            state = _damp(state, wire, rng)
    return state


def _damp(state: np.ndarray, wire: int, rng: np.random.Generator) -> np.ndarray:
    """One amplitude-damping jump decision on a wire (full damping rate).

    With probability equal to the qubit's |1> population, the trajectory
    jumps to the decayed branch (|1> -> |0>); otherwise the no-jump Kraus
    is applied and renormalized.
    """
    n = num_wires(state)
    # Population of |1> on the wire, per batch element.
    probs = probabilities(state)
    signs = z_signs(n)[wire]
    p_one = (probs * (signs < 0)).sum(axis=1)
    jump = rng.random(state.shape[0]) < p_one

    sigma_minus = np.array([[0, 1], [0, 0]], dtype=np.complex128)  # |0><1|
    keep = np.array([[1, 0], [0, 0]], dtype=np.complex128)  # |0><0| projector
    jumped = apply_gate(state, sigma_minus, (wire,))
    kept = apply_gate(state, keep, (wire,))
    out = np.where(jump[:, None], jumped, kept)
    norms = np.linalg.norm(out, axis=1, keepdims=True)
    # A batch element with p_one == 0 never jumps and keep is the identity
    # on it, so norms stay positive.
    return out / np.where(norms > 1e-300, norms, 1.0)
