"""Quantum gate matrices and their generators.

Conventions follow PennyLane (the paper's simulation platform):

* ``RX/RY/RZ(theta) = exp(-i * theta / 2 * P)`` for Pauli ``P``.
* ``Rot(phi, theta, omega) = RZ(omega) @ RY(theta) @ RZ(phi)`` — the
  three-parameter rotation the paper places on every qubit of each strongly
  entangling layer.
* ``CRZ(theta)`` applies ``RZ(theta)`` on the target conditioned on the
  control (listed in the paper's Fig. 3 gate table).

Each parameterized gate exposes its *generator* ``G`` such that
``dU/dtheta = -i/2 * G @ U(theta)``; the exact backward pass in
:mod:`repro.quantum.autodiff` uses this identity.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "I2",
    "PAULI_X",
    "PAULI_Y",
    "PAULI_Z",
    "HADAMARD",
    "CNOT",
    "CZ",
    "SWAP",
    "rx",
    "ry",
    "rz",
    "rot",
    "crz",
    "generator",
    "PARAMETRIC_GATES",
    "FIXED_GATES",
    "GENERATORS",
]

I2 = np.eye(2, dtype=np.complex128)
PAULI_X = np.array([[0, 1], [1, 0]], dtype=np.complex128)
PAULI_Y = np.array([[0, -1j], [1j, 0]], dtype=np.complex128)
PAULI_Z = np.array([[1, 0], [0, -1]], dtype=np.complex128)
HADAMARD = np.array([[1, 1], [1, -1]], dtype=np.complex128) / np.sqrt(2)

CNOT = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=np.complex128
)
CZ = np.diag([1, 1, 1, -1]).astype(np.complex128)
SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=np.complex128
)

# Generator of CRZ: |1><1| (x) Z, eigenvalues {0, 0, +1, -1}.
_CRZ_GENERATOR = np.diag([0, 0, 1, -1]).astype(np.complex128)


def rx(theta) -> np.ndarray:
    """Rotation about X.  ``theta`` may be a scalar or a batch vector."""
    theta = np.asarray(theta, dtype=np.float64)
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return _assemble_2x2(c, -1j * s, -1j * s, c)


def ry(theta) -> np.ndarray:
    """Rotation about Y."""
    theta = np.asarray(theta, dtype=np.float64)
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return _assemble_2x2(c, -s, s, c)


def rz(theta) -> np.ndarray:
    """Rotation about Z."""
    theta = np.asarray(theta, dtype=np.float64)
    phase = np.exp(-0.5j * theta)
    zero = np.zeros_like(phase)
    return _assemble_2x2(phase, zero, zero, np.conj(phase))


def rot(phi: float, theta: float, omega: float) -> np.ndarray:
    """General single-qubit rotation ``RZ(omega) RY(theta) RZ(phi)``."""
    return rz(omega) @ ry(theta) @ rz(phi)


def crz(theta) -> np.ndarray:
    """Controlled-RZ on (control, target)."""
    theta = np.asarray(theta, dtype=np.float64)
    phase = np.exp(-0.5j * theta)
    if theta.ndim == 0:
        gate = np.eye(4, dtype=np.complex128)
        gate[2, 2] = phase
        gate[3, 3] = np.conj(phase)
        return gate
    gate = np.zeros(theta.shape + (4, 4), dtype=np.complex128)
    gate[..., 0, 0] = 1.0
    gate[..., 1, 1] = 1.0
    gate[..., 2, 2] = phase
    gate[..., 3, 3] = np.conj(phase)
    return gate


def _assemble_2x2(a, b, c, d) -> np.ndarray:
    a = np.asarray(a, dtype=np.complex128)
    if a.ndim == 0:
        return np.array([[a, b], [c, d]], dtype=np.complex128)
    gate = np.empty(a.shape + (2, 2), dtype=np.complex128)
    gate[..., 0, 0] = a
    gate[..., 0, 1] = b
    gate[..., 1, 0] = c
    gate[..., 1, 1] = d
    return gate


PARAMETRIC_GATES = {"RX": rx, "RY": ry, "RZ": rz, "CRZ": crz}
FIXED_GATES = {
    "CNOT": CNOT,
    "CZ": CZ,
    "SWAP": SWAP,
    "H": HADAMARD,
    "X": PAULI_X,
    "Y": PAULI_Y,
    "Z": PAULI_Z,
}

# Public so the compiled engine (repro.quantum.engine) can map generators
# through gate fusion without keeping its own copy of this table.
GENERATORS = {
    "RX": PAULI_X,
    "RY": PAULI_Y,
    "RZ": PAULI_Z,
    "CRZ": _CRZ_GENERATOR,
}


def generator(name: str) -> np.ndarray:
    """Return ``G`` with ``dU/dtheta = -i/2 G U`` for a parametric gate."""
    try:
        return GENERATORS[name]
    except KeyError:
        raise KeyError(f"gate {name!r} has no generator (not parametric)") from None
