"""Quantum gate matrices and their generators.

Conventions follow PennyLane (the paper's simulation platform):

* ``RX/RY/RZ(theta) = exp(-i * theta / 2 * P)`` for Pauli ``P``.
* ``Rot(phi, theta, omega) = RZ(omega) @ RY(theta) @ RZ(phi)`` — the
  three-parameter rotation the paper places on every qubit of each strongly
  entangling layer.
* ``CRZ(theta)`` applies ``RZ(theta)`` on the target conditioned on the
  control (listed in the paper's Fig. 3 gate table).

Each parameterized gate exposes its *generator* ``G`` such that
``dU/dtheta = -i/2 * G @ U(theta)``; the exact backward pass in
:mod:`repro.quantum.autodiff` uses this identity.

Gate construction is dtype-parameterized for the precision policy
(:mod:`repro.nn.precision`): parametric gates follow their angle's real
dtype (``float32`` angles yield ``complex64`` matrices) unless an explicit
``dtype`` is passed, and :func:`fixed_gate` / :func:`generator` hand out
cached casts of the constant matrices, so a ``complex64`` execution never
mixes widths mid-kernel.  The module-level constants stay ``complex128``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "I2",
    "PAULI_X",
    "PAULI_Y",
    "PAULI_Z",
    "HADAMARD",
    "CNOT",
    "CZ",
    "SWAP",
    "rx",
    "ry",
    "rz",
    "rot",
    "crz",
    "fixed_gate",
    "generator",
    "PARAMETRIC_GATES",
    "FIXED_GATES",
    "GENERATORS",
]

I2 = np.eye(2, dtype=np.complex128)
PAULI_X = np.array([[0, 1], [1, 0]], dtype=np.complex128)
PAULI_Y = np.array([[0, -1j], [1j, 0]], dtype=np.complex128)
PAULI_Z = np.array([[1, 0], [0, -1]], dtype=np.complex128)
HADAMARD = np.array([[1, 1], [1, -1]], dtype=np.complex128) / np.sqrt(2)

CNOT = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=np.complex128
)
CZ = np.diag([1, 1, 1, -1]).astype(np.complex128)
SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=np.complex128
)

# Generator of CRZ: |1><1| (x) Z, eigenvalues {0, 0, +1, -1}.
_CRZ_GENERATOR = np.diag([0, 0, 1, -1]).astype(np.complex128)


def _as_angle(theta) -> np.ndarray:
    """Coerce an angle to a floating array, preserving float32/float64."""
    theta = np.asarray(theta)
    if theta.dtype.kind != "f":
        theta = theta.astype(np.float64)
    return theta


def _gate_dtype(theta: np.ndarray, dtype) -> np.dtype:
    """Requested dtype, or the complex counterpart of the angle dtype."""
    if dtype is not None:
        return np.dtype(dtype)
    return np.result_type(theta.dtype, np.complex64)


def rx(theta, dtype=None) -> np.ndarray:
    """Rotation about X.  ``theta`` may be a scalar or a batch vector."""
    theta = _as_angle(theta)
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return _assemble_2x2(c, -1j * s, -1j * s, c, _gate_dtype(theta, dtype))


def ry(theta, dtype=None) -> np.ndarray:
    """Rotation about Y."""
    theta = _as_angle(theta)
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return _assemble_2x2(c, -s, s, c, _gate_dtype(theta, dtype))


def rz(theta, dtype=None) -> np.ndarray:
    """Rotation about Z."""
    theta = _as_angle(theta)
    phase = np.exp(-0.5j * theta)
    zero = np.zeros_like(phase)
    return _assemble_2x2(phase, zero, zero, np.conj(phase), _gate_dtype(theta, dtype))


def rot(phi: float, theta: float, omega: float, dtype=None) -> np.ndarray:
    """General single-qubit rotation ``RZ(omega) RY(theta) RZ(phi)``."""
    return rz(omega, dtype) @ ry(theta, dtype) @ rz(phi, dtype)


def crz(theta, dtype=None) -> np.ndarray:
    """Controlled-RZ on (control, target)."""
    theta = _as_angle(theta)
    out_dtype = _gate_dtype(theta, dtype)
    phase = np.exp(-0.5j * theta)
    if theta.ndim == 0:
        gate = np.eye(4, dtype=out_dtype)
        gate[2, 2] = phase
        gate[3, 3] = np.conj(phase)
        return gate
    gate = np.zeros(theta.shape + (4, 4), dtype=out_dtype)
    gate[..., 0, 0] = 1.0
    gate[..., 1, 1] = 1.0
    gate[..., 2, 2] = phase
    gate[..., 3, 3] = np.conj(phase)
    return gate


def _assemble_2x2(a, b, c, d, dtype=np.complex128) -> np.ndarray:
    a = np.asarray(a)
    if a.ndim == 0:
        return np.array([[a, b], [c, d]], dtype=dtype)
    gate = np.empty(a.shape + (2, 2), dtype=dtype)
    gate[..., 0, 0] = a
    gate[..., 0, 1] = b
    gate[..., 1, 0] = c
    gate[..., 1, 1] = d
    return gate


PARAMETRIC_GATES = {"RX": rx, "RY": ry, "RZ": rz, "CRZ": crz}
FIXED_GATES = {
    "CNOT": CNOT,
    "CZ": CZ,
    "SWAP": SWAP,
    "H": HADAMARD,
    "X": PAULI_X,
    "Y": PAULI_Y,
    "Z": PAULI_Z,
}

# Public so the compiled engine (repro.quantum.engine) can map generators
# through gate fusion without keeping its own copy of this table.
GENERATORS = {
    "RX": PAULI_X,
    "RY": PAULI_Y,
    "RZ": PAULI_Z,
    "CRZ": _CRZ_GENERATOR,
}

# Down-cast constant matrices are cached per (table, name, dtype) so
# lower-precision executions reuse one complex64 copy instead of re-casting
# per bind.
_CAST_CACHE: dict[tuple[int, str, np.dtype], np.ndarray] = {}


def _cached_cast(table: dict, name: str, dtype) -> np.ndarray:
    matrix = table[name]
    dtype = np.dtype(dtype)
    if matrix.dtype == dtype:
        return matrix
    key = (id(table), name, dtype)
    cached = _CAST_CACHE.get(key)
    if cached is None:
        cached = _CAST_CACHE[key] = matrix.astype(dtype)
    return cached


def fixed_gate(name: str, dtype=np.complex128) -> np.ndarray:
    """The constant gate matrix for ``name`` in the given complex dtype."""
    return _cached_cast(FIXED_GATES, name, dtype)


def generator(name: str, dtype=np.complex128) -> np.ndarray:
    """Return ``G`` with ``dU/dtheta = -i/2 G U`` for a parametric gate."""
    try:
        return _cached_cast(GENERATORS, name, dtype)
    except KeyError:
        raise KeyError(f"gate {name!r} has no generator (not parametric)") from None
