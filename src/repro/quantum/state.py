"""Batched statevector representation and gate application.

States are stored as ``(batch, 2**n)`` complex arrays; every operation is
vectorized over the batch, which is what makes training the paper's hybrid
models tractable on a CPU.  Wire 0 is the most significant bit of the
computational-basis index (PennyLane convention).

The state dtype is policy-parameterized (:mod:`repro.nn.precision`):
``complex128`` by default, ``complex64`` when the caller opts into single
precision — measurement helpers derive their real dtype from the state, so
a ``complex64`` pass yields ``float32`` probabilities and expectations.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..nn.precision import real_dtype_for

__all__ = [
    "zero_state",
    "basis_state",
    "num_wires",
    "apply_gate",
    "expval_z",
    "probabilities",
    "marginal_probabilities",
]


def zero_state(n_wires: int, batch: int = 1, dtype=np.complex128) -> np.ndarray:
    """The |0...0> state replicated over a batch."""
    state = np.zeros((batch, 2**n_wires), dtype=dtype)
    state[:, 0] = 1.0
    return state


def basis_state(
    index: int, n_wires: int, batch: int = 1, dtype=np.complex128
) -> np.ndarray:
    """A computational basis state |index>."""
    if not 0 <= index < 2**n_wires:
        raise ValueError(f"basis index {index} out of range for {n_wires} wires")
    state = np.zeros((batch, 2**n_wires), dtype=dtype)
    state[:, index] = 1.0
    return state


def num_wires(state: np.ndarray) -> int:
    """Infer the wire count from a ``(batch, 2**n)`` state."""
    dim = state.shape[-1]
    n = int(dim).bit_length() - 1
    if 2**n != dim:
        raise ValueError(f"state dimension {dim} is not a power of two")
    return n


def apply_gate(
    state: np.ndarray, gate: np.ndarray, wires: Sequence[int]
) -> np.ndarray:
    """Apply a k-qubit gate to the given wires of a batched state.

    ``gate`` is either a ``(2**k, 2**k)`` matrix shared across the batch or a
    ``(batch, 2**k, 2**k)`` stack of per-sample matrices (used by angle
    embedding, where the rotation angle is a data feature).
    """
    batch = state.shape[0]
    n = num_wires(state)
    k = len(wires)
    if len(set(wires)) != k:
        raise ValueError(f"duplicate wires in {wires}")
    if any(not 0 <= w < n for w in wires):
        raise ValueError(f"wires {wires} out of range for {n}-qubit state")
    dim_k = 2**k
    if gate.shape[-2:] != (dim_k, dim_k):
        raise ValueError(f"gate shape {gate.shape} does not act on {k} wires")

    psi = state.reshape((batch,) + (2,) * n)
    source_axes = [w + 1 for w in wires]
    dest_axes = list(range(1, k + 1))
    psi = np.moveaxis(psi, source_axes, dest_axes)
    moved_shape = psi.shape
    psi = psi.reshape(batch, dim_k, -1)

    if gate.ndim == 2:
        psi = np.einsum("ij,bjr->bir", gate, psi)
    elif gate.ndim == 3:
        if gate.shape[0] != batch:
            raise ValueError(
                f"batched gate has batch {gate.shape[0]}, state has {batch}"
            )
        psi = np.einsum("bij,bjr->bir", gate, psi)
    else:
        raise ValueError(f"gate must be 2- or 3-dimensional, got {gate.ndim}")

    psi = psi.reshape(moved_shape)
    psi = np.moveaxis(psi, dest_axes, source_axes)
    return psi.reshape(batch, 2**n)


def expval_z(state: np.ndarray, wires: Sequence[int]) -> np.ndarray:
    """Pauli-Z expectation on each wire: ``(batch, len(wires))`` in [-1, 1].

    This is the measurement the paper uses for encoder outputs (latent
    variables) and for SQ decoder outputs.
    """
    signs = z_signs(num_wires(state), dtype=real_dtype_for(state.dtype))
    return probabilities(state) @ signs[list(wires)].T


def probabilities(state: np.ndarray) -> np.ndarray:
    """Basis-state probabilities |<i|psi>|^2, shape ``(batch, 2**n)``.

    The paper's baseline quantum decoder returns this 2**n-dimensional
    vector as the reconstruction.
    """
    return state.real**2 + state.imag**2


def marginal_probabilities(state: np.ndarray, wires: Sequence[int]) -> np.ndarray:
    """Joint probabilities marginalized onto a subset of wires."""
    batch = state.shape[0]
    n = num_wires(state)
    probs = probabilities(state).reshape((batch,) + (2,) * n)
    keep = [w + 1 for w in wires]
    drop = tuple(axis for axis in range(1, n + 1) if axis not in keep)
    if drop:
        probs = probs.sum(axis=drop)
    order = list(np.argsort(np.argsort(wires)))
    if order != list(range(len(wires))):
        probs = np.moveaxis(
            probs, list(range(1, len(wires) + 1)), [o + 1 for o in order]
        )
    return probs.reshape(batch, 2 ** len(wires))


_Z_SIGN_CACHE: dict[tuple[int, np.dtype], np.ndarray] = {}


def z_signs(n_wires: int, dtype=np.float64) -> np.ndarray:
    """Sign pattern of Z on each wire over basis indices: ``(n, 2**n)`` of +-1."""
    dtype = np.dtype(dtype)
    key = (n_wires, dtype)
    cached = _Z_SIGN_CACHE.get(key)
    if cached is not None:
        return cached
    indices = np.arange(2**n_wires)
    signs = np.empty((n_wires, 2**n_wires), dtype=dtype)
    for w in range(n_wires):
        bit = (indices >> (n_wires - 1 - w)) & 1
        signs[w] = 1.0 - 2.0 * bit
    _Z_SIGN_CACHE[key] = signs
    return signs


__all__.append("z_signs")
