"""General Pauli-string observables: expectations and variances.

Section II-C of the paper defines measurement as returning "expectation,
variance, or probabilities"; the architectures only consume Pauli-Z
expectations and probabilities, so this module completes the measurement
algebra: expectation/variance of arbitrary Pauli strings (e.g. ``"XZY"``)
via basis rotation, without touching the training path.

A Pauli string maps each wire to I/X/Y/Z.  Since every Pauli has
eigenvalues +-1, the observable squares to the identity and
``Var[P] = 1 - <P>^2`` — property-tested against direct sampling.
"""

from __future__ import annotations

import numpy as np

from . import gates as G
from .state import apply_gate, num_wires, probabilities, z_signs

__all__ = [
    "pauli_string_expval",
    "pauli_string_variance",
    "rotate_to_z_basis",
]

# Single-qubit rotations U with U P U^dag = Z.
_HY = (G.HADAMARD @ np.array([[1, 0], [0, -1j]], dtype=np.complex128))


def _basis_change(pauli: str) -> np.ndarray | None:
    if pauli == "Z":
        return None
    if pauli == "X":
        return G.HADAMARD  # H X H = Z
    if pauli == "Y":
        return _HY  # (H S^dag) Y (H S^dag)^dag = Z
    raise ValueError(f"unknown Pauli letter {pauli!r}")


def rotate_to_z_basis(state: np.ndarray, pauli_string: str) -> np.ndarray:
    """Apply the per-wire basis change turning the string into all-Z."""
    n = num_wires(state)
    if len(pauli_string) != n:
        raise ValueError(
            f"Pauli string length {len(pauli_string)} != {n} wires"
        )
    for wire, letter in enumerate(pauli_string.upper()):
        if letter == "I":
            continue
        rotation = _basis_change(letter)
        if rotation is not None:
            state = apply_gate(state, rotation, (wire,))
    return state


def pauli_string_expval(state: np.ndarray, pauli_string: str) -> np.ndarray:
    """<P> for a Pauli string like ``"XZIY"``, shape ``(batch,)`` in [-1, 1]."""
    pauli_string = pauli_string.upper()
    n = num_wires(state)
    rotated = rotate_to_z_basis(state, pauli_string)
    probs = probabilities(rotated)
    signs = np.ones(2**n)
    all_signs = z_signs(n)
    for wire, letter in enumerate(pauli_string):
        if letter != "I":
            signs = signs * all_signs[wire]
    return probs @ signs


def pauli_string_variance(state: np.ndarray, pauli_string: str) -> np.ndarray:
    """Var[P] = <P^2> - <P>^2 = 1 - <P>^2 for any non-identity Pauli string.

    The all-identity string is a constant observable with zero variance.
    """
    if set(pauli_string.upper()) == {"I"}:
        return np.zeros(state.shape[0])
    expval = pauli_string_expval(state, pauli_string)
    return 1.0 - expval**2
