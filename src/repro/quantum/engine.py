"""Compiled circuit execution engine: fused gates, specialized kernels, plans.

The generic interpreter in :mod:`repro.quantum.autodiff` applies every gate
through :func:`repro.quantum.state.apply_gate` — a reshape/moveaxis/einsum
round-trip that treats a CNOT the same as an arbitrary dense two-qubit
matrix.  This module lowers a :class:`~repro.quantum.circuit.Circuit` into a
:class:`CompiledPlan` once, then executes the plan many times:

* **Fusion.**  Runs of single-qubit gates on the same wire — adjacent modulo
  gates on disjoint wires, which commute — collapse into one 2x2 matrix.
  The ``Rot = RZ.RY.RZ`` triple that ``strongly_entangling_layers`` emits on
  every qubit becomes a single fused instruction, cutting the SEL op count
  roughly 3x.  Fused matrices are rebuilt from the current weights at *bind*
  time; the plan itself never changes.
* **Specialized kernels.**  Diagonal gates (RZ, CZ, CRZ, Z) multiply
  precomputed basis-index masks by phases — no matmul.  Permutation gates
  (CNOT, X, SWAP) are precomputed index gathers.  Dense single-qubit gates
  use a fixed ``(batch, left, 2, right)`` reshape with explicit 2x2 row
  arithmetic instead of per-call ``moveaxis`` bookkeeping.
* **Caching.**  :func:`compiled_plan` memoizes the plan on the circuit
  instance keyed by a structural signature, so ``QuantumLayer`` and
  ``PatchedQuantumLayer`` pay compilation once, not per batch.

The adjoint backward pass walks the same fused program in reverse with
daggered kernels.  Gradients of parameters inside a fused block use the
*effective generator* ``G_eff = S G S^dagger``, where ``S`` is the product of
the block's gates applied after the parameterized one: from
``dU/dtheta = S (-i/2 G) P = -i/2 (S G S^dagger) U`` the usual adjoint
identity ``dL/dtheta = Im(<lambda| G_eff |psi>)`` holds at the post-block
state, so fusion preserves exact gradients.  Effective generators for
weight-only ("static") runs are built by one batched matmul sweep over all
runs sharing a gate signature.
"""

from __future__ import annotations

import numpy as np

from . import gates as G
from .circuit import Circuit, Operation

__all__ = ["CompiledPlan", "compile_circuit", "compiled_plan", "circuit_signature"]

_SINGLE_QUBIT = {"RX", "RY", "RZ", "H", "X", "Y", "Z"}
_GENERATORS = G.GENERATORS


def _dagger(mat: np.ndarray) -> np.ndarray:
    return np.conj(np.swapaxes(mat, -1, -2))


# ---------------------------------------------------------------------------
# Single-qubit dense kernel: state viewed as (batch, left, 2, right)
# ---------------------------------------------------------------------------

def _mat_entries(mat: np.ndarray):
    """The four entries of a 2x2 (or batched (b, 2, 2)) matrix, broadcastable
    against a ``(batch, left, right)`` slice of the state."""
    if mat.ndim == 2:
        return mat[0, 0], mat[0, 1], mat[1, 0], mat[1, 1]
    return (
        mat[:, 0, 0, None, None],
        mat[:, 0, 1, None, None],
        mat[:, 1, 0, None, None],
        mat[:, 1, 1, None, None],
    )


def _apply_1q_inplace(state: np.ndarray, mat: np.ndarray, left: int, right: int):
    """Apply a single-qubit matrix in place on a C-contiguous state."""
    psi = state.reshape(state.shape[0], left, 2, right)
    m00, m01, m10, m11 = _mat_entries(mat)
    a = psi[:, :, 0, :]
    b = psi[:, :, 1, :]
    new0 = m00 * a + m01 * b
    psi[:, :, 1, :] = m10 * a + m11 * b
    psi[:, :, 0, :] = new0
    return state


def _apply_1q_copy(state: np.ndarray, mat: np.ndarray, left: int, right: int):
    """Out-of-place single-qubit apply (used for generator insertions)."""
    psi = state.reshape(state.shape[0], left, 2, right)
    m00, m01, m10, m11 = _mat_entries(mat)
    out = np.empty_like(psi)
    a = psi[:, :, 0, :]
    b = psi[:, :, 1, :]
    out[:, :, 0, :] = m00 * a + m01 * b
    out[:, :, 1, :] = m10 * a + m11 * b
    return out.reshape(state.shape)


def _accumulate(source, per_sample, grad_weights, grad_inputs) -> None:
    kind, index = source
    if kind == "weight":
        grad_weights[index] += per_sample.sum()
    else:
        grad_inputs[:, index] += per_sample


# ---------------------------------------------------------------------------
# Instructions
# ---------------------------------------------------------------------------

class _Fused1Q:
    """A fused run of dense single-qubit gates on one wire.

    Static runs (weight/fixed members only) are bound in bulk through a
    :class:`_StaticGroup`; dynamic runs (containing input-sourced members)
    bind per-instruction with batch broadcasting.
    """

    __slots__ = ("wire", "left", "right", "members", "group", "row")

    def __init__(self, wire, left, right, members, group=None, row=0):
        self.wire = wire
        self.left = left
        self.right = right
        self.members = members  # tuple of Operation
        self.group = group
        self.row = row

    def bind(self, inputs, weights, with_grads, group_data):
        if self.group is not None:
            fused, geffs = group_data[self.group]
            matrix = fused[self.row]
            if not with_grads:
                return matrix, ()
            grads = tuple(
                (op.source, geffs[j][self.row])
                for j, op in enumerate(self.members)
                if op.source is not None
            )
            return matrix, grads

        mats = []
        for op in self.members:
            if op.source is None:
                mats.append(G.FIXED_GATES[op.name])
            else:
                kind, index = op.source
                theta = weights[index] if kind == "weight" else inputs[:, index]
                mats.append(G.PARAMETRIC_GATES[op.name](theta))
        suffix = None
        geff_by_pos = {}
        for j in range(len(mats) - 1, -1, -1):
            op = self.members[j]
            if with_grads and op.source is not None:
                gen = _GENERATORS[op.name]
                geff_by_pos[j] = (
                    gen if suffix is None else suffix @ gen @ _dagger(suffix)
                )
            suffix = mats[j] if suffix is None else np.matmul(suffix, mats[j])
        grads = tuple(
            (self.members[j].source, geff_by_pos[j]) for j in sorted(geff_by_pos)
        )
        return suffix, grads

    def apply(self, state, data):
        return _apply_1q_inplace(state, data[0], self.left, self.right)

    def grad_and_unapply(self, psi, lam, data, grad_weights, grad_inputs):
        matrix, grads = data
        if grads:
            lam_conj = np.conj(lam)
            for source, geff in grads:
                gen_psi = _apply_1q_copy(psi, geff, self.left, self.right)
                per_sample = np.einsum("bj,bj->b", lam_conj, gen_psi).imag
                _accumulate(source, per_sample, grad_weights, grad_inputs)
        mat_dag = _dagger(matrix)
        _apply_1q_inplace(psi, mat_dag, self.left, self.right)
        _apply_1q_inplace(lam, mat_dag, self.left, self.right)
        return psi, lam


class _DiagRZ:
    """A lone RZ: elementwise phase multiply over a precomputed bit mask."""

    __slots__ = ("bit", "gdiag", "source")

    def __init__(self, bit, source):
        self.bit = bit  # (dim,) bool — wire bit of each basis index
        self.gdiag = 1.0 - 2.0 * bit  # Z eigenvalues per basis index
        self.source = source

    def bind(self, inputs, weights, with_grads, group_data):
        kind, index = self.source
        theta = weights[index] if kind == "weight" else inputs[:, index]
        half = np.exp(-0.5j * np.asarray(theta))
        if half.ndim == 0:
            return np.where(self.bit, np.conj(half), half)
        return np.where(self.bit[None, :], np.conj(half)[:, None], half[:, None])

    def apply(self, state, data):
        state *= data
        return state

    def grad_and_unapply(self, psi, lam, data, grad_weights, grad_inputs):
        im = lam.real * psi.imag - lam.imag * psi.real  # Im(conj(lam) * psi)
        _accumulate(self.source, im @ self.gdiag, grad_weights, grad_inputs)
        phases_dag = np.conj(data)
        psi *= phases_dag
        lam *= phases_dag
        return psi, lam


class _DiagCRZ:
    """CRZ as phase multiplies on the |10> and |11> index sets."""

    __slots__ = ("idx10", "idx11", "source")

    def __init__(self, idx10, idx11, source):
        self.idx10 = idx10
        self.idx11 = idx11
        self.source = source

    def bind(self, inputs, weights, with_grads, group_data):
        kind, index = self.source
        theta = weights[index] if kind == "weight" else inputs[:, index]
        phase = np.exp(-0.5j * np.asarray(theta))
        return phase if phase.ndim == 0 else phase[:, None]

    def _multiply(self, state, phase):
        state[:, self.idx10] *= phase
        state[:, self.idx11] *= np.conj(phase)
        return state

    def apply(self, state, data):
        return self._multiply(state, data)

    def grad_and_unapply(self, psi, lam, data, grad_weights, grad_inputs):
        # Generator diag is +1 on |c=1,t=0>, -1 on |c=1,t=1>, 0 elsewhere.
        per = (
            (np.conj(lam[:, self.idx10]) * psi[:, self.idx10]).imag.sum(axis=1)
            - (np.conj(lam[:, self.idx11]) * psi[:, self.idx11]).imag.sum(axis=1)
        )
        _accumulate(self.source, per, grad_weights, grad_inputs)
        phase_dag = np.conj(data)
        self._multiply(psi, phase_dag)
        self._multiply(lam, phase_dag)
        return psi, lam


class _DiagSign:
    """Self-inverse diagonal sign flip (CZ, Z) on a precomputed index set."""

    __slots__ = ("idx",)

    def __init__(self, idx):
        self.idx = idx

    def bind(self, inputs, weights, with_grads, group_data):
        return None

    def apply(self, state, data):
        state[:, self.idx] *= -1.0
        return state

    def grad_and_unapply(self, psi, lam, data, grad_weights, grad_inputs):
        self.apply(psi, data)
        self.apply(lam, data)
        return psi, lam


class _Permutation:
    """Self-inverse basis-index gather (CNOT, X, SWAP)."""

    __slots__ = ("perm",)

    def __init__(self, perm):
        self.perm = perm

    def bind(self, inputs, weights, with_grads, group_data):
        return None

    def apply(self, state, data):
        return state[:, self.perm]

    def grad_and_unapply(self, psi, lam, data, grad_weights, grad_inputs):
        return psi[:, self.perm], lam[:, self.perm]


# ---------------------------------------------------------------------------
# Static-run bulk binding
# ---------------------------------------------------------------------------

class _StaticGroup:
    """All weight-only fused runs sharing one (name, source-kind) signature.

    Binding assembles the member matrices of every run in the group at once
    (one vectorized gate construction per position) and computes fused
    matrices plus effective generators with a single batched-matmul sweep.
    """

    __slots__ = ("length", "positions", "count")

    def __init__(self, runs):
        self.count = len(runs)
        self.length = len(runs[0])
        positions = []
        for j in range(self.length):
            op = runs[0][j]
            if op.source is None:
                positions.append((op.name, G.FIXED_GATES[op.name], None))
            else:
                widx = np.array([run[j].source[1] for run in runs], dtype=np.intp)
                positions.append((op.name, None, widx))
        self.positions = positions

    def bind(self, weights, with_grads):
        mats = np.empty((self.count, self.length, 2, 2), dtype=np.complex128)
        for j, (name, const, widx) in enumerate(self.positions):
            mats[:, j] = const if widx is None else G.PARAMETRIC_GATES[name](
                weights[widx]
            )
        suffix = None
        geffs: list[np.ndarray | None] = [None] * self.length
        for j in range(self.length - 1, -1, -1):
            name, const, widx = self.positions[j]
            if with_grads and widx is not None:
                gen = _GENERATORS[name]
                if suffix is None:
                    geffs[j] = np.broadcast_to(gen, (self.count, 2, 2))
                else:
                    geffs[j] = suffix @ gen @ _dagger(suffix)
            layer = np.ascontiguousarray(mats[:, j])
            suffix = layer if suffix is None else np.matmul(suffix, layer)
        return suffix, geffs


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------

class CompiledPlan:
    """A lowered, reusable execution program for one circuit template."""

    __slots__ = ("n_wires", "signature", "instructions", "groups")

    def __init__(self, n_wires, signature, instructions, groups):
        self.n_wires = n_wires
        self.signature = signature
        self.instructions = instructions
        self.groups = groups

    @property
    def n_instructions(self) -> int:
        return len(self.instructions)

    def bind(self, inputs, weights, with_grads) -> list:
        """Resolve the plan against concrete parameters.

        Returns one opaque data blob per instruction: fused matrices (and,
        when ``with_grads``, effective generators) for dense runs, phase
        factors for diagonal gates, None for parameter-free kernels.
        """
        group_data = [g.bind(weights, with_grads) for g in self.groups]
        return [
            instr.bind(inputs, weights, with_grads, group_data)
            for instr in self.instructions
        ]

    def run(self, state: np.ndarray, bound: list) -> np.ndarray:
        """Execute the bound program, mutating ``state`` freely.

        ``state`` must be a fresh C-contiguous ``(batch, 2**n)`` array the
        caller does not need afterwards.
        """
        for instr, data in zip(self.instructions, bound):
            state = instr.apply(state, data)
        return state

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"CompiledPlan(wires={self.n_wires}, "
            f"instructions={len(self.instructions)}, groups={len(self.groups)})"
        )


def circuit_signature(circuit: Circuit) -> tuple:
    """A structural fingerprint; plans are reused while it is unchanged."""
    return (
        circuit.n_wires,
        tuple(circuit.ops),
        circuit.state_prep,
        circuit.measurement,
        circuit.n_weights,
        circuit.n_inputs,
    )


def _wire_bit(n_wires: int, wire: int) -> np.ndarray:
    indices = np.arange(2**n_wires)
    return ((indices >> (n_wires - 1 - wire)) & 1).astype(bool)


def _validate_wires(op: Operation, n_wires: int) -> None:
    if len(set(op.wires)) != len(op.wires):
        raise ValueError(f"duplicate wires in {op.wires}")
    if any(not 0 <= w < n_wires for w in op.wires):
        raise ValueError(f"wires {op.wires} out of range for {n_wires}-qubit state")


def _make_run_instruction(wire, members, n_wires):
    """Lower a flushed run: specialize singletons, fuse longer runs."""
    left, right = 2**wire, 2 ** (n_wires - 1 - wire)
    if len(members) == 1:
        op = members[0]
        if op.name == "RZ":
            return _DiagRZ(_wire_bit(n_wires, wire), op.source)
        if op.name == "Z":
            return _DiagSign(np.nonzero(_wire_bit(n_wires, wire))[0])
        if op.name == "X":
            indices = np.arange(2**n_wires)
            return _Permutation(indices ^ (1 << (n_wires - 1 - wire)))
    return _Fused1Q(wire, left, right, tuple(members))


def _make_two_qubit_instruction(op: Operation, n_wires: int):
    indices = np.arange(2**n_wires)
    shifts = [n_wires - 1 - w for w in op.wires]
    bits = [(indices >> s) & 1 for s in shifts]
    if op.name == "CNOT":
        control, target = bits[0], shifts[1]
        return _Permutation(indices ^ (control << target))
    if op.name == "CZ":
        return _DiagSign(np.nonzero(bits[0] & bits[1])[0])
    if op.name == "SWAP":
        diff = bits[0] ^ bits[1]
        return _Permutation(indices ^ (diff << shifts[0]) ^ (diff << shifts[1]))
    if op.name == "CRZ":
        both = bits[0].astype(bool)
        target = bits[1].astype(bool)
        idx10 = np.nonzero(both & ~target)[0]
        idx11 = np.nonzero(both & target)[0]
        return _DiagCRZ(idx10, idx11, op.source)
    raise ValueError(f"cannot lower two-qubit gate {op.name!r}")  # pragma: no cover


def compile_circuit(circuit: Circuit) -> CompiledPlan:
    """Lower a circuit into a :class:`CompiledPlan` (no caching)."""
    n = circuit.n_wires
    instructions: list = []
    open_runs: dict[int, list[Operation]] = {}
    # Static fused runs grouped by signature for bulk binding.
    group_index: dict[tuple, int] = {}
    group_runs: list[list[tuple[Operation, ...]]] = []

    def flush(wire: int) -> None:
        members = open_runs.pop(wire, None)
        if not members:
            return
        instr = _make_run_instruction(wire, members, n)
        if isinstance(instr, _Fused1Q) and all(
            op.source is None or op.source[0] == "weight" for op in instr.members
        ):
            sig = tuple(
                (op.name, None if op.source is None else op.source[0])
                for op in instr.members
            )
            gid = group_index.setdefault(sig, len(group_runs))
            if gid == len(group_runs):
                group_runs.append([])
            instr.group = gid
            instr.row = len(group_runs[gid])
            group_runs[gid].append(instr.members)
        instructions.append(instr)

    for op in circuit.ops:
        _validate_wires(op, n)
        if len(op.wires) == 1 and op.name in _SINGLE_QUBIT:
            open_runs.setdefault(op.wires[0], []).append(op)
        else:
            for wire in op.wires:
                flush(wire)
            instructions.append(_make_two_qubit_instruction(op, n))
    for wire in sorted(open_runs):
        flush(wire)

    groups = [_StaticGroup(runs) for runs in group_runs]
    return CompiledPlan(n, circuit_signature(circuit), instructions, groups)


# Structural plan cache: patched layers build p identical sub-circuits, which
# all share one plan.  Keyed by the full signature, so it can never hand back
# a stale program; bounded in practice by the handful of circuit shapes a
# model uses.
_PLAN_CACHE: dict[tuple, CompiledPlan] = {}


def compiled_plan(circuit: Circuit) -> CompiledPlan:
    """The circuit's cached plan, recompiled only if its structure changed."""
    cached = getattr(circuit, "_compiled_plan", None)
    signature = circuit_signature(circuit)
    if cached is not None and cached.signature == signature:
        return cached
    plan = _PLAN_CACHE.get(signature)
    if plan is None:
        plan = compile_circuit(circuit)
        _PLAN_CACHE[signature] = plan
    circuit._compiled_plan = plan
    return plan
