"""Compiled circuit execution engine: one block/kernel substrate, two views.

The generic interpreter in :mod:`repro.quantum.autodiff` applies every gate
through :func:`repro.quantum.state.apply_gate` — a reshape/moveaxis/einsum
round-trip that treats a CNOT the same as an arbitrary dense two-qubit
matrix.  This module lowers a :class:`~repro.quantum.circuit.Circuit` into a
reusable plan once, then executes the plan many times.

**Adjoint architecture.**  There is exactly one lowered representation — a
scheduled list of *stacked* instructions — and two plan classes that view it:

* :class:`StackedPlan` runs ``p`` structurally identical weight-bindings of
  the circuit as a single ``(p * batch, 2**n)`` statevector pass (the
  patched layers' fast path).
* :class:`CompiledPlan` is the per-instance view: the degenerate ``p = 1``
  stack.  Same instructions, same kernels, same backward — only the
  entry-point shapes differ (flat weights, plain ``(batch, 2**n)`` state).
  :func:`compiled_plan` and :func:`stacked_plan` share the lowered program,
  so a circuit used both ways is lowered exactly once.

The substrate gives both views the same machinery:

* **Fusion + scheduling.**  Runs of single-qubit gates on one wire collapse
  into a 2x2 matrix (the SEL ``Rot = RZ.RY.RZ`` triple becomes one
  instruction); a commutation-aware peephole pass merges dense runs on
  adjacent wires into 4x4 kron blocks and composes each CNOT ring into a
  single index gather.
* **Specialized kernels.**  Diagonal gates (RZ, CZ, CRZ, Z) multiply
  precomputed basis-index masks by phases; permutation gates (CNOT, X,
  SWAP) are index gathers; dense blocks dispatch by wire geometry to
  batched GEMMs, with short strides (``right`` in {2, 4, 8}) lowered onto
  ``kron(mat, I_right)`` GEMMs over the flattened tail.  The kernel
  *implementations* live behind the :class:`~repro.quantum.backends
  .KernelBackend` vocabulary: plans are backend-agnostic, and ``run`` /
  ``backward_step`` bind the active backend's kernels at run time — the
  single-threaded NumPy set by default, the row-sharding
  :class:`~repro.quantum.backends.ThreadedBackend` (or any registered
  alternative) on request.
* **Checkpointed, transition-matrix backward.**  Instructions are *pure*
  (never mutate their input state), so the forward pass records every
  post-block state by reference; the adjoint backward walks only the
  cotangent and reads the ket side from the checkpoints.  Per dense block
  the backward computes one *transition matrix*
  ``M[a, c] = sum conj(lambda)_a psi_c`` and contracts every member's
  effective generator ``G_eff = S G S^dagger`` against it — one contraction
  per fused block instead of one generator insertion per parameter.  From
  ``dU/dtheta = S (-i/2 G) P = -i/2 (S G S^dagger) U`` the adjoint identity
  ``dL/dtheta = Im(<lambda| G_eff |psi>)`` holds at the post-block state,
  so fusion preserves exact gradients.
* **Bulk binding.**  Weight-only fused runs sharing a gate signature bind
  through one vectorized gate construction and one batched-matmul sweep
  per signature (:class:`_SStaticGroup`).

:func:`repro.quantum.autodiff.execute` / ``backward`` drive the ``p = 1``
view; ``execute_stacked`` / ``backward_stacked`` drive the multi-bind view.
The op-by-op interpreter (``naive_execute`` / ``naive_backward``) remains
the reference both are property-tested against.
"""

from __future__ import annotations

import numpy as np

from . import gates as G
from .backends import resolve_backend
from .circuit import Circuit, Operation

__all__ = [
    "CompiledPlan",
    "StackedPlan",
    "compile_circuit",
    "compiled_plan",
    "circuit_signature",
    "compile_stacked",
    "stacked_plan",
]

_SINGLE_QUBIT = {"RX", "RY", "RZ", "H", "X", "Y", "Z"}


def _dagger(mat: np.ndarray) -> np.ndarray:
    return np.conj(np.swapaxes(mat, -1, -2))


def circuit_signature(circuit: Circuit) -> tuple:
    """A structural fingerprint; plans are reused while it is unchanged."""
    return (
        circuit.n_wires,
        tuple(circuit.ops),
        circuit.state_prep,
        circuit.measurement,
        circuit.n_weights,
        circuit.n_inputs,
    )


def _wire_bit(n_wires: int, wire: int) -> np.ndarray:
    indices = np.arange(2**n_wires)
    return ((indices >> (n_wires - 1 - wire)) & 1).astype(bool)


def _validate_wires(op: Operation, n_wires: int) -> None:
    if len(set(op.wires)) != len(op.wires):
        raise ValueError(f"duplicate wires in {op.wires}")
    if any(not 0 <= w < n_wires for w in op.wires):
        raise ValueError(f"wires {op.wires} out of range for {n_wires}-qubit state")


# ---------------------------------------------------------------------------
# Dense-block kernels
# ---------------------------------------------------------------------------
#
# The state is logically (p, batch, dim) with the patch axis outermost (p = 1
# for the per-instance view); weight-bound gate matrices are (p, d, d) and
# broadcast along that axis, so every patch sees its own angles while each
# numpy operation still covers the whole stack.  Input-bound matrices stay
# per-row, (p * batch, d, d).


def _kron_rows(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise Kronecker product of ``(..., 2, 2)`` stacks -> ``(..., 4, 4)``."""
    out = np.einsum("...ab,...cd->...acbd", a, b)
    return out.reshape(out.shape[:-4] + (4, 4))


class StackedGradContext:
    """Accumulators and scratch threaded through an adjoint walk.

    The cotangent ping-pongs between two preallocated buffers: each
    backward step reads the current ``lam`` array and writes its successor
    into the buffer ``lam`` does not occupy, so the walk allocates no
    full-state arrays after setup.  ``backend`` is the kernel set every
    backward step dispatches through — normally the backend the forward
    pass ran on, so one execution uses one kernel set end to end.
    """

    __slots__ = ("p", "batch", "grad_weights", "grad_inputs", "backend",
                 "_scratch")

    def __init__(self, p, batch, grad_weights, grad_inputs, state_shape,
                 dtype=np.complex128, backend=None):
        self.p = p
        self.batch = batch
        self.grad_weights = grad_weights  # (p, n_weights)
        self.grad_inputs = grad_inputs  # (p * batch, n_inputs) or None
        self.backend = resolve_backend(backend)
        self._scratch = (
            np.empty(state_shape, dtype=dtype),
            np.empty(state_shape, dtype=dtype),
        )

    def out_for(self, lam):
        """The scratch buffer ``lam`` does not currently occupy."""
        return self._scratch[1] if lam is self._scratch[0] else self._scratch[0]


# ---------------------------------------------------------------------------
# Instructions
# ---------------------------------------------------------------------------


class _SDense:
    """A dense block: one fused run, or two merged on adjacent wires.

    ``slots`` holds one entry per wire of the block (1 or 2): the member
    operations of that wire's fused run plus its static-group coordinates
    (or None for dynamic runs, bound per instruction).  A pair block applies
    the kron of its two fused 2x2s as a single 4x4 pass; per-member
    gradients contract the member's 2x2 effective generator against the
    partial trace of the block's 4x4 transition matrix, so merging never
    changes any gradient.
    """

    __slots__ = ("wires", "left", "right", "d", "slots", "touched")

    def __init__(self, wires, left, right, slots):
        self.wires = wires
        self.left = left
        self.right = right
        self.d = 2 ** len(wires)
        self.slots = slots  # tuple of (members, group, row) per wire
        self.touched = frozenset(wires)

    def _bind_slot(
        self, slot, inputs, weights, batch, with_grads, group_data, cdtype
    ):
        members, group, row = slot
        if group is not None:
            fused, geffs = group_data[group]
            matrix = fused[:, row]
            grads = ()
            if with_grads:
                grads = tuple(
                    (op.source, geffs[j][:, row])
                    for j, op in enumerate(members)
                    if op.source is not None
                )
            return matrix, grads, True
        # Dynamic run: at least one member is input-sourced -> per-row mats.
        rows = inputs.shape[0]
        mats = []
        for op in members:
            if op.source is None:
                mats.append(G.fixed_gate(op.name, cdtype))
            else:
                kind, index = op.source
                if kind == "weight":
                    theta = np.repeat(weights[:, index], batch)
                else:
                    theta = inputs[:, index]
                mats.append(G.PARAMETRIC_GATES[op.name](theta, cdtype))
        suffix = None
        geff_by_pos = {}
        for j in range(len(mats) - 1, -1, -1):
            op = members[j]
            if with_grads and op.source is not None:
                gen = G.generator(op.name, cdtype)
                geff = gen if suffix is None else suffix @ gen @ _dagger(suffix)
                if geff.ndim == 2:
                    geff = np.broadcast_to(geff, (rows, 2, 2))
                geff_by_pos[j] = geff
            suffix = mats[j] if suffix is None else np.matmul(suffix, mats[j])
        if suffix.ndim == 2:  # every member fixed: broadcast to per-row
            suffix = np.broadcast_to(suffix, (rows, 2, 2))
        grads = tuple(
            (members[j].source, geff_by_pos[j]) for j in sorted(geff_by_pos)
        )
        return suffix, grads, False

    def bind(self, inputs, weights, p, batch, with_grads, group_data, cdtype):
        bound = [
            self._bind_slot(
                slot, inputs, weights, batch, with_grads, group_data, cdtype
            )
            for slot in self.slots
        ]
        if len(bound) == 1:
            matrix, grads, per_patch = bound[0]
            grads = tuple((source, 0, geff) for source, geff in grads)
            return matrix, grads, per_patch
        (m1, g1, pp1), (m2, g2, pp2) = bound
        if pp1 != pp2:  # mixed static/dynamic pair: expand static to per-row
            if pp1:
                m1 = np.repeat(m1, batch, axis=0)
                g1 = tuple((s, np.repeat(g, batch, axis=0)) for s, g in g1)
            else:
                m2 = np.repeat(m2, batch, axis=0)
                g2 = tuple((s, np.repeat(g, batch, axis=0)) for s, g in g2)
        matrix = _kron_rows(m1, m2)
        grads = tuple((source, 0, geff) for source, geff in g1) + tuple(
            (source, 1, geff) for source, geff in g2
        )
        return matrix, grads, pp1 and pp2

    def apply(self, state, data, p, batch, backend):
        matrix, __, per_patch = data
        return backend.apply_dense(
            state, matrix, p, batch, self.left, self.d, self.right, per_patch
        )

    def needs_state(self, data):
        return bool(data[1])

    def backward_step(self, lam, data, checkpoint, ctx):
        matrix, grads, per_patch = data
        p, batch = ctx.p, ctx.batch
        if grads:
            # One transition matrix per block serves every member gradient;
            # it stays per-patch unless some member needs per-sample values
            # (input-sourced params scatter into per-row input gradients).
            # The ket side comes straight from the forward checkpoint.
            need_rows = not per_patch or any(
                source[0] == "input" for source, __, ___ in grads
            )
            m_block = ctx.backend.transition_matrix(
                checkpoint, lam, p, batch, self.left, self.d, self.right,
                per_patch=not need_rows,
            )
            if self.d == 4:
                m5 = m_block.reshape(m_block.shape[0], 2, 2, 2, 2)
                traces = (
                    np.einsum("paece->pac", m5),
                    np.einsum("paeaf->pef", m5),
                )
            else:
                traces = (m_block,)
            for source, slot, geff in grads:
                kind, index = source
                per = np.einsum("pac,pac->p", geff, traces[slot]).imag
                if kind == "weight":
                    if need_rows:
                        per = per.reshape(p, batch).sum(axis=1)
                    ctx.grad_weights[:, index] += per
                else:
                    ctx.grad_inputs[:, index] += per
        return ctx.backend.apply_dense(
            lam, _dagger(matrix), p, batch, self.left, self.d, self.right,
            per_patch, out=ctx.out_for(lam),
        )


class _SDiagRZ:
    """Lone RZ: per-patch (or per-row) phase multiply on a bit mask."""

    __slots__ = ("bit", "gdiag", "source", "touched")

    def __init__(self, bit, source, wires):
        self.bit = bit
        self.gdiag = 1.0 - 2.0 * bit
        self.source = source
        self.touched = frozenset(wires)

    def bind(self, inputs, weights, p, batch, with_grads, group_data, cdtype):
        kind, index = self.source
        if kind == "weight":
            half = np.exp(-0.5j * weights[:, index])  # (p,)
        else:
            half = np.exp(-0.5j * inputs[:, index])  # (p * batch,)
        half = half.astype(cdtype, copy=False)
        return np.where(self.bit[None, :], np.conj(half)[:, None], half[:, None])

    def apply(self, state, data, p, batch, backend):
        return backend.diag_phase(state, data, p, batch)

    def needs_state(self, data):
        return True

    def backward_step(self, lam, data, checkpoint, ctx):
        psi = checkpoint
        im = lam.real * psi.imag - lam.imag * psi.real
        per = im @ self.gdiag  # (p * batch,)
        kind, index = self.source
        if kind == "weight":
            ctx.grad_weights[:, index] += per.reshape(ctx.p, ctx.batch).sum(axis=1)
        else:
            ctx.grad_inputs[:, index] += per
        return ctx.backend.diag_phase(
            lam, np.conj(data), ctx.p, ctx.batch, out=ctx.out_for(lam)
        )


class _SDiagCRZ:
    """CRZ: phase multiplies on the |10> / |11> index sets."""

    __slots__ = ("idx10", "idx11", "source", "touched")

    def __init__(self, idx10, idx11, source, wires):
        self.idx10 = idx10
        self.idx11 = idx11
        self.source = source
        self.touched = frozenset(wires)

    def bind(self, inputs, weights, p, batch, with_grads, group_data, cdtype):
        kind, index = self.source
        if kind == "weight":
            theta = np.repeat(weights[:, index], batch)
        else:
            theta = inputs[:, index]
        return np.exp(-0.5j * theta).astype(cdtype, copy=False)[:, None]

    def apply(self, state, data, p, batch, backend):
        return backend.crz_phase(state, self.idx10, self.idx11, data)

    def needs_state(self, data):
        return True

    def backward_step(self, lam, data, checkpoint, ctx):
        psi = checkpoint
        per = (
            (np.conj(lam[:, self.idx10]) * psi[:, self.idx10]).imag.sum(axis=1)
            - (np.conj(lam[:, self.idx11]) * psi[:, self.idx11]).imag.sum(axis=1)
        )
        kind, index = self.source
        if kind == "weight":
            ctx.grad_weights[:, index] += per.reshape(ctx.p, ctx.batch).sum(axis=1)
        else:
            ctx.grad_inputs[:, index] += per
        return ctx.backend.crz_phase(
            lam, self.idx10, self.idx11, np.conj(data), out=ctx.out_for(lam)
        )


class _SDiagSign:
    """Self-inverse diagonal sign flip (CZ, Z) on a precomputed index set."""

    __slots__ = ("idx", "touched")

    def __init__(self, idx, wires):
        self.idx = idx
        self.touched = frozenset(wires)

    def bind(self, inputs, weights, p, batch, with_grads, group_data, cdtype):
        return None

    def apply(self, state, data, p, batch, backend):
        return backend.diag_sign(state, self.idx)

    def needs_state(self, data):
        return False

    def backward_step(self, lam, data, checkpoint, ctx):
        return ctx.backend.diag_sign(lam, self.idx, out=ctx.out_for(lam))


class _SPermutation:
    """Basis-index gather (CNOT, X, SWAP); consecutive permutations are
    composed at compile time, so it carries an explicit inverse for the
    backward walk."""

    __slots__ = ("perm", "inv", "touched")

    def __init__(self, perm, wires):
        self.perm = perm
        self.inv = np.argsort(perm)
        self.touched = frozenset(wires)

    def compose(self, later: "_SPermutation") -> "_SPermutation":
        """This permutation followed by ``later`` as one gather."""
        return _SPermutation(
            self.perm[later.perm], self.touched | later.touched
        )

    def bind(self, inputs, weights, p, batch, with_grads, group_data, cdtype):
        return None

    def apply(self, state, data, p, batch, backend):
        return backend.gather(state, self.perm)

    def needs_state(self, data):
        return False

    def backward_step(self, lam, data, checkpoint, ctx):
        return ctx.backend.gather(lam, self.inv, out=ctx.out_for(lam))


class _SStaticGroup:
    """Bulk binding of weight-only fused runs against ``(p, n_weights)``.

    One vectorized gate construction per member position over a
    ``(p, count)`` angle table, one batched-matmul sweep for fused matrices
    and effective generators — all ``(p, count, 2, 2)``.
    """

    __slots__ = ("length", "positions", "count")

    def __init__(self, runs):
        self.count = len(runs)
        self.length = len(runs[0])
        positions = []
        for j in range(self.length):
            op = runs[0][j]
            if op.source is None:
                positions.append((op.name, G.FIXED_GATES[op.name], None))
            else:
                widx = np.array([run[j].source[1] for run in runs], dtype=np.intp)
                positions.append((op.name, None, widx))
        self.positions = positions

    def bind(self, weights, p, with_grads, cdtype):
        mats = np.empty((p, self.count, self.length, 2, 2), dtype=cdtype)
        for j, (name, const, widx) in enumerate(self.positions):
            if widx is None:
                mats[:, :, j] = const
            else:
                mats[:, :, j] = G.PARAMETRIC_GATES[name](weights[:, widx])
        suffix = None
        geffs: list[np.ndarray | None] = [None] * self.length
        for j in range(self.length - 1, -1, -1):
            name, const, widx = self.positions[j]
            if with_grads and widx is not None:
                gen = G.generator(name, cdtype)
                if suffix is None:
                    geffs[j] = np.broadcast_to(gen, (p, self.count, 2, 2))
                else:
                    geffs[j] = suffix @ gen @ _dagger(suffix)
            layer = np.ascontiguousarray(mats[:, :, j])
            suffix = layer if suffix is None else np.matmul(suffix, layer)
        return suffix, geffs


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------


class StackedPlan:
    """A lowered multi-bind program: p instances of one circuit per pass."""

    __slots__ = ("n_wires", "signature", "instructions", "groups")

    def __init__(self, n_wires, signature, instructions, groups):
        self.n_wires = n_wires
        self.signature = signature
        self.instructions = instructions
        self.groups = groups

    @property
    def n_instructions(self) -> int:
        return len(self.instructions)

    def bind(self, inputs, weights, p, batch, with_grads,
             cdtype=np.complex128) -> list:
        """Resolve against ``(p, n_weights)`` weights (and flat inputs).

        ``cdtype`` is the complex dtype of every bound matrix/phase — it
        must match the stacked state the plan will run on.
        """
        cdtype = np.dtype(cdtype)
        group_data = [g.bind(weights, p, with_grads, cdtype) for g in self.groups]
        return [
            instr.bind(inputs, weights, p, batch, with_grads, group_data, cdtype)
            for instr in self.instructions
        ]

    def run(self, state, bound: list, p: int, batch: int, record=None,
            backend=None):
        """Execute the bound program on a ``(p * batch, 2**n)`` state.

        Instructions are *pure* — each apply returns a fresh array and
        never mutates its input.  When ``record`` is a list, the
        post-instruction state is appended (by reference, no copies) for
        every instruction whose backward needs it; the adjoint walk then
        reads the ket side from these checkpoints instead of un-applying
        it, halving the dense work of the backward pass.

        ``backend`` selects the kernel set the instructions dispatch
        through (:mod:`repro.quantum.backends`); None follows the active
        backend policy.  The plan itself is backend-agnostic — the same
        lowered program runs on any registered backend.
        """
        backend = resolve_backend(backend)
        for instr, data in zip(self.instructions, bound):
            state = instr.apply(state, data, p, batch, backend)
            if record is not None:
                record.append(state if instr.needs_state(data) else None)
        return state

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"{type(self).__name__}(wires={self.n_wires}, "
            f"instructions={len(self.instructions)}, groups={len(self.groups)})"
        )


class CompiledPlan(StackedPlan):
    """The per-instance plan: a degenerate ``p = 1`` view of the stack.

    Same instructions, same kernels, same checkpointed transition-matrix
    backward — only the entry-point shapes differ: ``bind`` takes a flat
    ``(n_weights,)`` vector and ``run`` a plain ``(batch, 2**n)`` state.
    :func:`compiled_plan` shares the lowered instruction list with
    :func:`stacked_plan`, so a circuit used both ways is lowered once.
    """

    __slots__ = ()

    def bind(self, inputs, weights, with_grads, cdtype=np.complex128) -> list:
        """Resolve the plan against a flat ``(n_weights,)`` vector.

        Returns one opaque data blob per instruction, exactly as the
        stacked bind does for ``p = 1``.
        """
        batch = 1 if inputs is None else inputs.shape[0]
        return StackedPlan.bind(
            self, inputs, np.asarray(weights)[None, :], 1, batch,
            with_grads, cdtype,
        )

    def run(self, state: np.ndarray, bound: list, record=None,
            backend=None) -> np.ndarray:
        """Execute the bound program on a ``(batch, 2**n)`` state."""
        return StackedPlan.run(
            self, state, bound, 1, state.shape[0], record=record,
            backend=backend,
        )


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------


def _schedule_stacked(instructions: list) -> list:
    """Commutation-aware peephole pass over the lowered instruction list.

    Instructions on disjoint wires commute, which licenses three rewrites
    that shrink the SEL hot loop (where Rot runs interleave with the CNOT
    ring) without changing any output or gradient:

    * a single-wire dense block merges with an earlier adjacent-wire single
      reachable across disjoint instructions, forming one 4x4 kron block;
    * an unmerged dense block slides before a trailing stretch of
      disjoint-wire permutations, clustering the permutations together;
    * consecutive permutations compose into a single index gather (one
      gather per CNOT ring instead of one per CNOT).
    """
    out: list = []

    def merge_pair(target: int, instr: _SDense) -> None:
        prev = out[target]
        low, high = sorted((prev, instr), key=lambda s: s.wires[0])
        out[target] = _SDense(
            (low.wires[0], high.wires[0]),
            low.left,
            high.right,
            (low.slots[0], high.slots[0]),
        )

    for instr in instructions:
        if isinstance(instr, _SDense) and len(instr.wires) == 1:
            wire = instr.wires[0]
            target = None
            for j in range(len(out) - 1, -1, -1):
                prev = out[j]
                if (
                    isinstance(prev, _SDense)
                    and len(prev.wires) == 1
                    and abs(prev.wires[0] - wire) == 1
                ):
                    target = j
                    break
                if wire in prev.touched:
                    break
            if target is not None:
                merge_pair(target, instr)
                continue
            # No partner: slide before trailing disjoint permutations so the
            # ring gathers end up adjacent (and later singles can reach us).
            insert_at = len(out)
            while (
                insert_at > 0
                and isinstance(out[insert_at - 1], _SPermutation)
                and wire not in out[insert_at - 1].touched
            ):
                insert_at -= 1
            out.insert(insert_at, instr)
            continue
        if isinstance(instr, _SPermutation) and out and isinstance(
            out[-1], _SPermutation
        ):
            out[-1] = out[-1].compose(instr)
            continue
        out.append(instr)
    return out


def _lower_two_qubit(op: Operation, n_wires: int):
    indices = np.arange(2**n_wires)
    shifts = [n_wires - 1 - w for w in op.wires]
    bits = [(indices >> s) & 1 for s in shifts]
    if op.name == "CNOT":
        control, target = bits[0], shifts[1]
        return _SPermutation(indices ^ (control << target), op.wires)
    if op.name == "CZ":
        return _SDiagSign(np.nonzero(bits[0] & bits[1])[0], op.wires)
    if op.name == "SWAP":
        diff = bits[0] ^ bits[1]
        return _SPermutation(
            indices ^ (diff << shifts[0]) ^ (diff << shifts[1]), op.wires
        )
    if op.name == "CRZ":
        both = bits[0].astype(bool)
        target = bits[1].astype(bool)
        idx10 = np.nonzero(both & ~target)[0]
        idx11 = np.nonzero(both & target)[0]
        return _SDiagCRZ(idx10, idx11, op.source, op.wires)
    raise ValueError(f"cannot lower two-qubit gate {op.name!r}")  # pragma: no cover


def compile_stacked(circuit: Circuit) -> StackedPlan:
    """Lower a circuit into a :class:`StackedPlan` (no caching)."""
    n = circuit.n_wires
    instructions: list = []
    open_runs: dict[int, list[Operation]] = {}
    group_index: dict[tuple, int] = {}
    group_runs: list[list[tuple[Operation, ...]]] = []

    def flush(wire: int) -> None:
        members = open_runs.pop(wire, None)
        if not members:
            return
        members = tuple(members)
        if len(members) == 1:
            op = members[0]
            if op.name == "RZ":
                instructions.append(
                    _SDiagRZ(_wire_bit(n, wire), op.source, (wire,))
                )
                return
            if op.name == "Z":
                instructions.append(
                    _SDiagSign(np.nonzero(_wire_bit(n, wire))[0], (wire,))
                )
                return
            if op.name == "X":
                indices = np.arange(2**n)
                instructions.append(
                    _SPermutation(indices ^ (1 << (n - 1 - wire)), (wire,))
                )
                return
        static = all(
            op.source is None or op.source[0] == "weight" for op in members
        )
        group = row = None
        if static:
            sig = tuple(
                (op.name, None if op.source is None else op.source[0])
                for op in members
            )
            group = group_index.setdefault(sig, len(group_runs))
            if group == len(group_runs):
                group_runs.append([])
            row = len(group_runs[group])
            group_runs[group].append(members)
        left, right = 2**wire, 2 ** (n - 1 - wire)
        instructions.append(
            _SDense((wire,), left, right, ((members, group, row),))
        )

    for op in circuit.ops:
        _validate_wires(op, n)
        if len(op.wires) == 1 and op.name in _SINGLE_QUBIT:
            open_runs.setdefault(op.wires[0], []).append(op)
        else:
            for wire in op.wires:
                flush(wire)
            instructions.append(_lower_two_qubit(op, n))
    for wire in sorted(open_runs):
        flush(wire)

    instructions = _schedule_stacked(instructions)
    groups = [_SStaticGroup(runs) for runs in group_runs]
    return StackedPlan(n, circuit_signature(circuit), instructions, groups)


def compile_circuit(circuit: Circuit) -> CompiledPlan:
    """Lower a circuit into a :class:`CompiledPlan` (no caching).

    The per-instance plan is the same lowered program as the stacked one,
    re-wrapped in the ``p = 1`` entry points.
    """
    plan = compile_stacked(circuit)
    return CompiledPlan(
        plan.n_wires, plan.signature, plan.instructions, plan.groups
    )


# Structural plan caches: patched layers build p identical sub-circuits,
# which all share one lowered program; the per-instance cache re-wraps the
# stacked program, so a circuit used both ways is lowered exactly once.
# Keyed by the full signature, so they can never hand back a stale program;
# bounded in practice by the handful of circuit shapes a model uses.
_SPLAN_CACHE: dict[tuple, StackedPlan] = {}
_PLAN_CACHE: dict[tuple, CompiledPlan] = {}


def stacked_plan(circuit: Circuit) -> StackedPlan:
    """The circuit's cached stacked plan, recompiled when structure changes."""
    cached = getattr(circuit, "_stacked_plan", None)
    signature = circuit_signature(circuit)
    if cached is not None and cached.signature == signature:
        return cached
    plan = _SPLAN_CACHE.get(signature)
    if plan is None:
        plan = compile_stacked(circuit)
        _SPLAN_CACHE[signature] = plan
    circuit._stacked_plan = plan
    return plan


def compiled_plan(circuit: Circuit) -> CompiledPlan:
    """The circuit's cached plan, recompiled only if its structure changed."""
    cached = getattr(circuit, "_compiled_plan", None)
    signature = circuit_signature(circuit)
    if cached is not None and cached.signature == signature:
        return cached
    plan = _PLAN_CACHE.get(signature)
    if plan is None:
        stacked = stacked_plan(circuit)
        plan = CompiledPlan(
            stacked.n_wires, stacked.signature, stacked.instructions,
            stacked.groups,
        )
        _PLAN_CACHE[signature] = plan
    circuit._compiled_plan = plan
    return plan
