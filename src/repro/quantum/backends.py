"""Pluggable kernel backends for the compiled engine.

The lowered programs in :mod:`repro.quantum.engine` are backend-shaped: a
:class:`~repro.quantum.engine.StackedPlan` is a schedule of *what* to apply
(fused dense blocks, diagonal phases, composed ring gathers), while the
arithmetic that applies it — the kernel set — is a small, closed vocabulary.
This module names that vocabulary as :class:`KernelBackend` and lets the
same plan dispatch onto interchangeable kernel sets at run time, exactly
like the dtype policy: plans stay backend-agnostic and shared, and the
backend is chosen per execution (``execute(..., backend=...)``), per scope
(:func:`use_backend`), or process-wide (:func:`set_default_backend`, seeded
from the ``REPRO_BACKEND`` environment variable).

Two backends ship:

* :class:`NumpyBackend` — the engine's original single-threaded NumPy
  kernels, extracted verbatim.  The default; bit-for-bit identical to the
  pre-backend engine.
* :class:`ThreadedBackend` — shards the stacked ``(p * batch, 2**n)`` row
  dimension across a persistent thread pool for the bandwidth-bound
  kernels (dense applies, transition matrices, diagonal phases, gathers,
  measurement contractions).  NumPy releases the GIL inside the sharded
  ``matmul``/ufunc calls, so shards run on real cores.  Small states fall
  through to the NumPy kernels (sharding overhead would dominate), as does
  a pool resolved to a single worker.

The kernel vocabulary (one method per engine kernel):

=====================  ====================================================
``apply_dense``        fused dense block apply — dispatches by wire
                       geometry onto the dense-1q GEMM (``right == 1``),
                       the kron-GEMM short-stride kernel (``right`` in
                       {2, 4, 8}), and the long-slice batched matmul;
                       covers 2x2 fused runs and adjacent-wire 4x4 blocks
``transition_matrix``  the adjoint's per-block ``M[a, c] = sum
                       conj(lam)_a psi_c`` contraction
``diag_phase``         full-row diagonal phase multiply (lone RZ)
``crz_phase``          phase multiply on the |10> / |11> index sets (CRZ)
``diag_sign``          sign flip on a precomputed index set (Z, CZ)
``gather``             basis-index gather (composed CNOT rings, X, SWAP)
``probabilities``      |amplitude|^2 over the state rows
``expvals``            probability-weighted Pauli-Z sign contraction
``row_norms``          per-row L2 norms (amplitude embedding)
=====================  ====================================================

Adding a backend (a C-extension kernel set, an accelerator) means
subclassing :class:`KernelBackend`, implementing the vocabulary, and
calling :func:`register_backend` — nothing in ``qnn/`` or ``models/``
changes.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager

import numpy as np

__all__ = [
    "KernelBackend",
    "NumpyBackend",
    "ThreadedBackend",
    "register_backend",
    "available_backends",
    "backend_from_descriptor",
    "default_backend",
    "set_default_backend",
    "use_backend",
    "resolve_backend",
]

# Wire-axis strides below this run through the kron-GEMM kernel; at or
# above it the batched (d, d) @ (d, right) matmul wins (the kron padding's
# FLOP overhead outgrows its layout win).  Mirrors the pre-backend engine.
_LONG_STRIDE = 16


def _kron_eye(mat: np.ndarray, right: int) -> np.ndarray:
    """``kron(mat, I_right)``: ``(..., d, d)`` -> ``(..., d*right, d*right)``.

    Lets a block acting on a non-innermost wire axis run as one GEMM over
    the flattened ``(d, right)`` tail (see ``apply_dense``): the identity
    factor absorbs the ``right`` stride.  The ``right``-fold FLOP overhead
    of the block-sparse zeros is far cheaper than the strided broadcast
    arithmetic it replaces for the small ``right`` this is used at.
    """
    d = mat.shape[-1]
    out = np.zeros(mat.shape[:-2] + (d, right, d, right), dtype=mat.dtype)
    idx = np.arange(right)
    # out[..., a, r, c, r] = mat[..., a, c]; the advanced indices land in
    # front, so the target view is (right, ..., d, d) and mat broadcasts.
    out[..., :, idx, :, idx] = mat
    return out.reshape(mat.shape[:-2] + (d * right, d * right))


class KernelBackend:
    """The engine's kernel vocabulary; subclass to supply an implementation.

    Every method takes the stacked ``(p * batch, 2**n)`` state layout the
    plans run on (``p = 1`` for the per-instance view).  Kernels with an
    ``out`` parameter must be *pure* with respect to their inputs: the
    input state is never mutated and the result lands in ``out`` (a fresh
    array when None) — purity is what lets the forward pass checkpoint
    post-block states by reference and the adjoint walk ping-pong between
    two scratch buffers.  ``out``, when given, is C-contiguous and never
    aliases the input.
    """

    name = "abstract"

    # -- dense blocks ---------------------------------------------------
    def apply_dense(self, state, mat, p, batch, left, d, right, per_patch,
                    out=None):
        """Apply a ``d x d`` block to the stacked state.

        ``mat`` is ``(p, d, d)`` when ``per_patch`` (broadcast along the
        outermost axis of the ``(p, batch, ...)`` view) or
        ``(p * batch, d, d)`` otherwise.
        """
        raise NotImplementedError

    def transition_matrix(self, psi, lam, p, batch, left, d, right,
                          per_patch):
        """``M[a, c] = sum conj(lam)[..., a, ...] psi[..., c, ...]``.

        Reduced over every axis except the block's wire axis — and, when
        ``per_patch``, over the batch too.  Returns ``(p, d, d)`` when
        ``per_patch``, ``(p * batch, d, d)`` otherwise.
        """
        raise NotImplementedError

    # -- diagonal / permutation kernels ---------------------------------
    def diag_phase(self, state, phases, p, batch, out=None):
        """Multiply rows by a diagonal phase vector.

        ``phases`` is ``(p * batch, dim)`` per-row or ``(p, dim)``
        per-patch (broadcast over the batch).
        """
        raise NotImplementedError

    def crz_phase(self, state, idx10, idx11, phase, out=None):
        """Multiply the |10> index set by ``phase`` and the |11> set by its
        conjugate; ``phase`` is ``(p * batch, 1)``."""
        raise NotImplementedError

    def diag_sign(self, state, idx, out=None):
        """Flip the sign of the columns in ``idx`` (self-inverse)."""
        raise NotImplementedError

    def gather(self, state, perm, out=None):
        """Permute basis indices: ``out[:, i] = state[:, perm[i]]``."""
        raise NotImplementedError

    # -- measurement / embedding contractions ---------------------------
    def probabilities(self, state):
        """``|amplitude|^2`` per basis state: real ``(rows, dim)``."""
        raise NotImplementedError

    def expvals(self, state, signs):
        """Pauli-Z expectations: ``probabilities(state) @ signs.T`` for a
        ``(n_measured, dim)`` sign table."""
        raise NotImplementedError

    def row_norms(self, rows):
        """Per-row L2 norms of a real ``(rows, d)`` feature block."""
        raise NotImplementedError

    # -- cross-process identity -----------------------------------------
    def descriptor(self) -> dict:
        """A picklable description a fresh process can rebuild this from.

        Backends hold live state that must not cross process boundaries
        (thread pools, locks); a descriptor carries only the name plus
        constructor options, and :func:`backend_from_descriptor` rebuilds
        an equivalent instance on the other side.  Subclasses with
        constructor options override this to include them.
        """
        return {"name": self.name}

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"{type(self).__name__}()"


class NumpyBackend(KernelBackend):
    """The original single-threaded NumPy kernel set (the default).

    These are the pre-backend engine kernels extracted verbatim: results
    are bit-for-bit identical to the engine before backends existed.
    """

    name = "numpy"

    def apply_dense(self, state, mat, p, batch, left, d, right, per_patch,
                    out=None):
        """Three kernels, picked by geometry: a wire axis that sits
        innermost (``right == 1``) dispatches to one batched GEMM per
        matrix, long slices (``right >= 16``) to batched ``(d, d) @
        (d, right)`` matmuls, and the short strides in between (``right``
        in {2, 4, 8} — wire axes are powers of two) to a GEMM over the
        flattened ``(d * right)`` tail against ``kron(mat, I_right)``; the
        identity padding costs ``right``-fold FLOPs on a tiny matrix but
        replaces strided broadcast arithmetic that ran up to 10x slower
        and starved SIMD at complex64.

        ``out`` must be C-contiguous (the reshapes below must be views — a
        silently-copying reshape would discard the writes), which the
        explicit ``np.empty`` here guarantees for the allocating path.
        """
        if out is None:
            out = np.empty(state.shape, dtype=state.dtype)
        if right == 1:
            # Wire axis innermost: (..., K, d) @ (d, d)^T is GEMM-shaped.
            if per_patch:
                psi = state.reshape(p, batch * left, d)
                res = out.reshape(p, batch * left, d)
            else:
                psi = state.reshape(p * batch, left, d)
                res = out.reshape(p * batch, left, d)
            np.matmul(psi, mat.swapaxes(-1, -2), out=res)
            return out
        if right >= _LONG_STRIDE:
            # Long slices: batched (d, d) @ (d, right) GEMMs beat
            # broadcasting.
            if per_patch:
                psi = state.reshape(p, batch, left, d, right)
                res = out.reshape(p, batch, left, d, right)
                np.matmul(mat[:, None, None], psi, out=res)
            else:
                psi = state.reshape(p * batch, left, d, right)
                res = out.reshape(p * batch, left, d, right)
                np.matmul(mat[:, None], psi, out=res)
            return out
        # Short strides: flatten the (d, right) tail and GEMM against
        # kron(mat, I_right), exactly as in the right == 1 kernel.
        dr = d * right
        big = _kron_eye(mat, right)
        if per_patch:
            psi = state.reshape(p, batch * left, dr)
            res = out.reshape(p, batch * left, dr)
        else:
            psi = state.reshape(p * batch, left, dr)
            res = out.reshape(p * batch, left, dr)
        np.matmul(psi, big.swapaxes(-1, -2), out=res)
        return out

    def transition_matrix(self, psi, lam, p, batch, left, d, right,
                          per_patch):
        """When the wire axis is innermost (``right == 1``) the views are
        GEMM-ready and a batched matmul does the whole contraction.  Short
        strides (``right`` in {2, 4, 8}) contract the flattened
        ``(d * right)`` tail with the same GEMM into a ``(d*right,
        d*right)`` matrix whose paired-``right`` diagonal is then traced
        down to ``(d, d)`` — the GEMM does the heavy reduction and the
        trace touches only a tiny array.  Long slices (``right >= 16``)
        keep the in-place einsum, where the kron padding would outgrow its
        win.
        """
        if right == 1:
            if per_patch:
                psi_v = psi.reshape(p, batch * left, d)
                lam_v = lam.reshape(p, batch * left, d)
            else:
                psi_v = psi.reshape(p * batch, left, d)
                lam_v = lam.reshape(p * batch, left, d)
            return np.matmul(np.conj(lam_v.swapaxes(-1, -2)), psi_v)
        if right < _LONG_STRIDE:
            dr = d * right
            if per_patch:
                psi_v = psi.reshape(p, batch * left, dr)
                lam_v = lam.reshape(p, batch * left, dr)
            else:
                psi_v = psi.reshape(p * batch, left, dr)
                lam_v = lam.reshape(p * batch, left, dr)
            full = np.matmul(np.conj(lam_v.swapaxes(-1, -2)), psi_v)
            blocks = full.reshape(full.shape[0], d, right, d, right)
            return np.einsum("...arcr->...ac", blocks)
        lam_c = np.conj(lam)
        if per_patch:
            return np.einsum(
                "pblar,pblcr->pac",
                lam_c.reshape(p, batch, left, d, right),
                psi.reshape(p, batch, left, d, right),
            )
        return np.einsum(
            "blar,blcr->bac",
            lam_c.reshape(p * batch, left, d, right),
            psi.reshape(p * batch, left, d, right),
        )

    def diag_phase(self, state, phases, p, batch, out=None):
        if phases.shape[0] == state.shape[0]:
            if out is None:
                return state * phases
            np.multiply(state, phases, out=out)
            return out
        view = state.reshape(p, batch, -1)
        if out is None:
            return (view * phases[:, None, :]).reshape(state.shape)
        np.multiply(view, phases[:, None, :], out=out.reshape(p, batch, -1))
        return out

    def crz_phase(self, state, idx10, idx11, phase, out=None):
        if out is None:
            out = state.copy()
        else:
            np.copyto(out, state)
        out[:, idx10] *= phase
        out[:, idx11] *= np.conj(phase)
        return out

    def diag_sign(self, state, idx, out=None):
        if out is None:
            out = state.copy()
        else:
            np.copyto(out, state)
        out[:, idx] *= -1.0
        return out

    def gather(self, state, perm, out=None):
        # np.take, not state[:, perm]: fancy indexing along axis 1 yields
        # an F-ordered array, which would poison downstream reshape-view
        # kernels.
        if out is None:
            return np.take(state, perm, axis=1)
        np.take(state, perm, axis=1, out=out)
        return out

    def probabilities(self, state):
        return state.real**2 + state.imag**2

    def expvals(self, state, signs):
        return self.probabilities(state) @ signs.T

    def row_norms(self, rows):
        return np.linalg.norm(rows, axis=1)


class ThreadedBackend(NumpyBackend):
    """Shard the stacked row dimension across a persistent thread pool.

    The stacked kernels are memory-bandwidth-bound: each touches every row
    of the ``(p * batch, 2**n)`` state once with modest arithmetic per
    element, and the rows are independent.  Sharding them across threads
    scales with cores because NumPy releases the GIL inside the ``matmul``
    and ufunc calls that do the work.

    Row shards respect the stack layout: per-patch-bound kernels shard on
    whole patches (each patch's rows are contiguous and see one matrix);
    per-row kernels shard the flat row axis directly.  Gradient shards
    never overlap, so no locks are needed — dense shards write disjoint
    row ranges of ``out`` and transition-matrix shards are reduced by the
    caller thread.

    Parameters
    ----------
    max_workers:
        Worker count; None resolves ``REPRO_BACKEND_WORKERS`` and falls
        back to ``os.cpu_count()``.  A pool of one worker degrades to the
        plain NumPy kernels (zero dispatch overhead).
    min_shard_elements:
        Kernels touching fewer state elements than this per prospective
        shard run unsharded — below it, pool handoff costs more than the
        kernel.  None resolves ``REPRO_BACKEND_MIN_SHARD`` and falls back
        to 8192; the CI threaded matrix leg sets the env var to 1 so the
        whole tier-1 suite exercises the sharded code paths, not the
        fallthrough.
    """

    name = "threaded"

    def __init__(self, max_workers: int | None = None,
                 min_shard_elements: int | None = None):
        if max_workers is None:
            env = os.environ.get("REPRO_BACKEND_WORKERS")
            max_workers = int(env) if env else (os.cpu_count() or 1)
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if min_shard_elements is None:
            env = os.environ.get("REPRO_BACKEND_MIN_SHARD")
            min_shard_elements = int(env) if env else 1 << 13
        self.max_workers = int(max_workers)
        self.min_shard_elements = int(min_shard_elements)
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"ThreadedBackend(max_workers={self.max_workers})"

    def descriptor(self) -> dict:
        """Name plus the resolved pool options (the pool itself stays put)."""
        return {
            "name": self.name,
            "max_workers": self.max_workers,
            "min_shard_elements": self.min_shard_elements,
        }

    # -- pool / shard plumbing ------------------------------------------
    def _executor(self) -> ThreadPoolExecutor:
        # Double-checked under a lock: backend instances are shared (the
        # registry holds one per name), and two threads racing the lazy
        # construction must not orphan a pool full of live workers.
        pool = self._pool
        if pool is None:
            with self._pool_lock:
                pool = self._pool
                if pool is None:
                    pool = ThreadPoolExecutor(
                        max_workers=self.max_workers,
                        thread_name_prefix="repro-kernel",
                    )
                    self._pool = pool
        return pool

    def close(self) -> None:
        """Shut the worker pool down (it is recreated on next use)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def _shards(self, total: int, elements_per_unit: int) -> list[tuple[int, int]] | None:
        """Split ``total`` shardable units into worker ranges.

        Returns None when parallelism cannot pay — one worker, one unit,
        or shards that would fall under the element floor
        (``elements_per_unit`` state elements per unit) — signalling the
        caller to fall through to the unsharded NumPy kernel.
        """
        n = min(self.max_workers, total)
        if n > 1 and total * elements_per_unit < n * self.min_shard_elements:
            n = int(max(1, (total * elements_per_unit) // self.min_shard_elements))
        if n <= 1:
            return None
        step, extra = divmod(total, n)
        shards = []
        lo = 0
        for i in range(n):
            hi = lo + step + (1 if i < extra else 0)
            shards.append((lo, hi))
            lo = hi
        return shards

    def _run(self, fn, shards):
        """Fan ``fn(lo, hi)`` out over the pool; the calling thread takes
        the last shard itself, so ``n`` shards cost ``n - 1`` handoffs and
        the caller's core does real work instead of blocking."""
        futures = [
            self._executor().submit(fn, lo, hi) for lo, hi in shards[:-1]
        ]
        tail = fn(*shards[-1])
        results = [future.result() for future in futures]
        results.append(tail)
        return results

    # -- dense blocks ---------------------------------------------------
    def apply_dense(self, state, mat, p, batch, left, d, right, per_patch,
                    out=None):
        dim = state.shape[1]
        base = super().apply_dense
        if per_patch and p > 1:
            # Patch-sharded: each shard's rows are contiguous and bind the
            # matching slice of the (p, d, d) matrices.
            shards = self._shards(p, batch * dim)
            if shards is None:
                return base(state, mat, p, batch, left, d, right, True,
                            out=out)
            if out is None:
                out = np.empty(state.shape, dtype=state.dtype)

            def run(lo, hi):
                rows = slice(lo * batch, hi * batch)
                base(state[rows], mat[lo:hi], hi - lo, batch, left, d,
                     right, True, out=out[rows])

        else:
            # Per-row matrices — or a p = 1 broadcast, where any row range
            # is its own smaller batch against the same matrix.
            shards = self._shards(state.shape[0], dim)
            if shards is None:
                return base(state, mat, p, batch, left, d, right,
                            per_patch, out=out)
            if out is None:
                out = np.empty(state.shape, dtype=state.dtype)

            def run(lo, hi):
                m = mat if per_patch else mat[lo:hi]
                base(state[lo:hi], m, 1, hi - lo, left, d, right,
                     per_patch, out=out[lo:hi])

        self._run(run, shards)
        return out

    def transition_matrix(self, psi, lam, p, batch, left, d, right,
                          per_patch):
        dim = psi.shape[1]
        base = super().transition_matrix
        if per_patch and p > 1:
            shards = self._shards(p, batch * dim)
            if shards is None:
                return base(psi, lam, p, batch, left, d, right, True)

            def run(lo, hi):
                rows = slice(lo * batch, hi * batch)
                return base(psi[rows], lam[rows], hi - lo, batch, left, d,
                            right, True)

            return np.concatenate(self._run(run, shards), axis=0)
        shards = self._shards(psi.shape[0], dim)
        if shards is None:
            return base(psi, lam, p, batch, left, d, right, per_patch)

        def run(lo, hi):
            return base(psi[lo:hi], lam[lo:hi], 1, hi - lo, left, d, right,
                        per_patch)

        parts = self._run(run, shards)
        if per_patch:
            # p = 1 reduces over the batch: sum the per-shard reductions.
            return sum(parts)
        return np.concatenate(parts, axis=0)

    # -- diagonal / permutation kernels ---------------------------------
    def diag_phase(self, state, phases, p, batch, out=None):
        dim = state.shape[1]
        base = super().diag_phase
        if phases.shape[0] == state.shape[0]:
            shards = self._shards(state.shape[0], dim)
            if shards is None:
                return base(state, phases, p, batch, out=out)
            if out is None:
                out = np.empty(state.shape, dtype=state.dtype)

            def run(lo, hi):
                base(state[lo:hi], phases[lo:hi], 1, hi - lo,
                     out=out[lo:hi])

        elif p > 1:
            shards = self._shards(p, batch * dim)
            if shards is None:
                return base(state, phases, p, batch, out=out)
            if out is None:
                out = np.empty(state.shape, dtype=state.dtype)

            def run(lo, hi):
                rows = slice(lo * batch, hi * batch)
                base(state[rows], phases[lo:hi], hi - lo, batch,
                     out=out[rows])

        else:
            # p = 1 broadcast: any row range is its own smaller batch
            # against the same (1, dim) phase row (as in apply_dense).
            shards = self._shards(state.shape[0], dim)
            if shards is None:
                return base(state, phases, p, batch, out=out)
            if out is None:
                out = np.empty(state.shape, dtype=state.dtype)

            def run(lo, hi):
                base(state[lo:hi], phases, 1, hi - lo, out=out[lo:hi])

        self._run(run, shards)
        return out

    def _row_sharded(self, state, direct, kernel, out):
        """Shard a per-row kernel, or run ``direct`` when sharding can't pay."""
        shards = self._shards(state.shape[0], state.shape[1])
        if shards is None:
            return direct(out)
        if out is None:
            out = np.empty(state.shape, dtype=state.dtype)
        self._run(lambda lo, hi: kernel(lo, hi, out), shards)
        return out

    def crz_phase(self, state, idx10, idx11, phase, out=None):
        base = super().crz_phase
        return self._row_sharded(
            state,
            lambda res: base(state, idx10, idx11, phase, out=res),
            lambda lo, hi, res: base(state[lo:hi], idx10, idx11,
                                     phase[lo:hi], out=res[lo:hi]),
            out,
        )

    def diag_sign(self, state, idx, out=None):
        base = super().diag_sign
        return self._row_sharded(
            state,
            lambda res: base(state, idx, out=res),
            lambda lo, hi, res: base(state[lo:hi], idx, out=res[lo:hi]),
            out,
        )

    def gather(self, state, perm, out=None):
        base = super().gather
        return self._row_sharded(
            state,
            lambda res: base(state, perm, out=res),
            lambda lo, hi, res: base(state[lo:hi], perm, out=res[lo:hi]),
            out,
        )

    # -- measurement contractions ---------------------------------------
    def probabilities(self, state):
        shards = self._shards(state.shape[0], state.shape[1])
        if shards is None:
            return super().probabilities(state)
        out = np.empty(state.shape, dtype=state.real.dtype)

        def run(lo, hi):
            chunk = state[lo:hi]
            np.add(chunk.real**2, chunk.imag**2, out=out[lo:hi])

        self._run(run, shards)
        return out

    # expvals is inherited: it dispatches through self.probabilities, so
    # the sharded kernel above already serves it.


# ---------------------------------------------------------------------------
# Registry and the active-backend policy (mirrors repro.nn.precision)
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, KernelBackend] = {}


def register_backend(backend: KernelBackend, name: str | None = None) -> None:
    """Make a backend resolvable by name (``resolve_backend("name")``)."""
    key = name or backend.name
    if not key or key == KernelBackend.name:
        raise ValueError("backend needs a concrete name to register under")
    _REGISTRY[key] = backend


def available_backends() -> tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(_REGISTRY)


register_backend(NumpyBackend())
register_backend(ThreadedBackend())

# Constructible-by-name backend classes for descriptor round-trips.  The
# registry above holds *instances* (shared pools); this maps a descriptor's
# name to the class a fresh process instantiates from the recorded options.
_DESCRIPTOR_TYPES: dict[str, type] = {
    NumpyBackend.name: NumpyBackend,
    ThreadedBackend.name: ThreadedBackend,
}


def backend_from_descriptor(descriptor: dict) -> KernelBackend:
    """Rebuild the backend a :meth:`KernelBackend.descriptor` describes.

    The worker-process side of the descriptor contract: known backend
    classes are constructed fresh from the recorded options (a new
    process must own its own pools).  A name that is not a known class
    falls back to this process's registry — a custom backend registered
    under the same name in the worker resolves there — and anything else
    raises naming the descriptor.
    """
    if not isinstance(descriptor, dict) or "name" not in descriptor:
        raise ValueError(
            f"backend descriptor must be a dict with a 'name' key, got "
            f"{descriptor!r}"
        )
    options = dict(descriptor)
    name = options.pop("name")
    cls = _DESCRIPTOR_TYPES.get(name)
    if cls is not None:
        return cls(**options)
    backend = _REGISTRY.get(name)
    if backend is not None and not options:
        return backend
    raise ValueError(
        f"cannot rebuild kernel backend from descriptor {descriptor!r}; "
        f"known descriptor types: {sorted(_DESCRIPTOR_TYPES)}, registered "
        f"backends: {sorted(_REGISTRY)}"
    )


def resolve_backend(spec=None) -> KernelBackend:
    """Normalize a backend spec to a :class:`KernelBackend`.

    Accepts None (the active default), a backend instance, or a registered
    name (``"numpy"``, ``"threaded"``).
    """
    if spec is None:
        return default_backend()
    if isinstance(spec, KernelBackend):
        return spec
    if isinstance(spec, str):
        backend = _REGISTRY.get(spec)
        if backend is not None:
            return backend
    raise ValueError(
        f"unknown kernel backend {spec!r}; expected a KernelBackend or one "
        f"of {sorted(_REGISTRY)}"
    )


def _initial_backend() -> KernelBackend:
    """The process default: ``REPRO_BACKEND`` when set, else NumPy.

    An unknown name fails loudly — a CI matrix entry that silently fell
    back to the default backend would test nothing.
    """
    env = os.environ.get("REPRO_BACKEND")
    if not env:
        return _REGISTRY["numpy"]
    return resolve_backend(env)


# A stack so nested ``use_backend`` scopes restore correctly.
_DEFAULT: list[KernelBackend] = [_initial_backend()]


def default_backend() -> KernelBackend:
    """The backend consulted wherever no explicit ``backend=`` was given."""
    return _DEFAULT[-1]


def set_default_backend(spec) -> KernelBackend:
    """Replace the process-wide default backend; returns the previous one."""
    previous = _DEFAULT[-1]
    _DEFAULT[-1] = resolve_backend(spec)
    return previous


@contextmanager
def use_backend(spec):
    """Scope the default backend: ``with use_backend("threaded"): ...``."""
    _DEFAULT.append(resolve_backend(spec))
    try:
        yield _DEFAULT[-1]
    finally:
        _DEFAULT.pop()
