"""ASCII circuit drawing (debugging / documentation aid).

Renders a :class:`~repro.quantum.circuit.Circuit` as one text row per wire,
with parameterized gates annotated by their source slot, e.g.::

    0: --RZ(w0)--RY(w1)--RZ(w2)--o--------x--[Z]
    1: --RZ(w3)--RY(w4)--RZ(w5)--x--o-----|--[Z]
    2: --RZ(w6)--RY(w7)--RZ(w8)-----x--o--[Z]
"""

from __future__ import annotations

from .circuit import Circuit

__all__ = ["draw"]

_CONTROL = "o"
_TARGET = "x"


def draw(circuit: Circuit, max_columns: int | None = None) -> str:
    """Render the circuit; truncates after ``max_columns`` gate columns."""
    columns: list[dict[int, str]] = []
    for op in circuit.ops:
        label = _op_labels(op)
        columns.append(label)
        if max_columns is not None and len(columns) >= max_columns:
            break
    truncated = max_columns is not None and len(circuit.ops) > len(columns)

    lines = []
    for wire in range(circuit.n_wires):
        cells = []
        for column in columns:
            cells.append(column.get(wire, ""))
        width_cells = []
        for column_index, cell in enumerate(cells):
            width = max(
                (len(c) for c in columns[column_index].values()), default=1
            )
            if cell:
                width_cells.append(cell.center(width, "-"))
            elif _spans(columns[column_index], wire):
                width_cells.append("|".center(width, "-"))
            else:
                width_cells.append("-" * width)
        row = f"{wire}: --" + "--".join(width_cells) + "--"
        if truncated:
            row += "..."
        if circuit.measurement is not None:
            kind, wires = circuit.measurement
            if kind == "expval" and wire in wires:
                row += "[Z]"
            elif kind == "probs":
                row += "[P]"
        lines.append(row)

    header = []
    if circuit.state_prep is not None:
        __, n_features, _fallback = circuit.state_prep
        header.append(f"state prep: amplitude embedding of {n_features} features")
    return "\n".join(header + lines)


def _op_labels(op) -> dict[int, str]:
    if op.name in ("CNOT", "CZ"):
        control, target = op.wires
        return {control: _CONTROL, target: _TARGET if op.name == "CNOT" else "z"}
    if op.name == "SWAP":
        a, b = op.wires
        return {a: "x", b: "x"}
    if op.name == "CRZ":
        control, target = op.wires
        return {control: _CONTROL, target: f"RZ({_slot(op)})"}
    if op.source is not None:
        return {op.wires[0]: f"{op.name}({_slot(op)})"}
    return {op.wires[0]: op.name}


def _slot(op) -> str:
    kind, index = op.source
    prefix = "w" if kind == "weight" else "x"
    return f"{prefix}{index}"


def _spans(column: dict[int, str], wire: int) -> bool:
    """Is this wire strictly between the column's occupied wires?"""
    if len(column) < 2:
        return False
    wires = sorted(column)
    return wires[0] < wire < wires[-1]
