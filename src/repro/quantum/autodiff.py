"""Exact execution and reverse-mode differentiation of circuits.

The forward pass simulates the batched statevector; the backward pass uses
the adjoint method: it walks the circuit in reverse, un-applying each unitary
to both the state and the cotangent vector, and reads off parameter gradients
from the generator identity ``dU/dtheta = -i/2 G U``:

    dL/dtheta = Im( <lambda| G |psi> )

where ``|psi>`` is the state *after* the gate and ``<lambda|`` is the
cotangent ``dL/dpsi*`` at the same point.  This is exact (no sampling noise)
and costs O(#gates) state applications — the same trick PennyLane's
``adjoint`` differentiation uses, and it is property-tested against the
parameter-shift rule in :mod:`repro.quantum.shift`.

Both :func:`execute` and :func:`backward` run on the circuit's compiled plan
(:mod:`repro.quantum.engine`) — the degenerate ``p = 1`` view of the same
block/kernel substrate the stacked engine uses.  The forward pass records
post-block checkpoints (instructions are pure), and the backward walks only
the cotangent: per fused block, one transition-matrix contraction serves
every member parameter instead of one generator insertion per parameter.
:func:`execute_stacked` / :func:`backward_stacked` drive the same substrate
for ``p`` weight-bindings at once.  The original op-by-op interpreter is
kept as :func:`naive_execute` / :func:`naive_backward` — it is the
reference the compiled engine is property-tested against, and the baseline
the kernel benchmarks measure speedups from.

These four entry points are also what the hybrid layers register as tape
VJPs: :mod:`repro.qnn.qlayer` and :mod:`repro.qnn.patched` record
executions as :class:`repro.nn.autodiff.Primitive` nodes whose first-order
backward is :func:`backward` / :func:`backward_stacked` on the returned
cache, making the quantum adjoint one more table entry in the classical
autodiff registry.

Both measurement types the paper uses are diagonal in the computational
basis (Pauli-Z expectations and basis probabilities), so the cotangent seed
is ``lambda = v * psi`` with ``v`` the gradient with respect to ``|psi_j|^2``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.precision import Precision, real_dtype_for, resolve_precision
from . import gates as G
from .backends import KernelBackend, resolve_backend
from .circuit import Circuit, Operation
from .engine import (
    CompiledPlan,
    StackedGradContext,
    StackedPlan,
    compiled_plan,
    stacked_plan,
)
from .state import (
    apply_gate,
    expval_z,
    num_wires,
    probabilities,
    z_signs,
    zero_state,
)

__all__ = [
    "ExecutionCache",
    "StackedExecutionCache",
    "execute",
    "backward",
    "execute_stacked",
    "backward_stacked",
    "naive_execute",
    "naive_backward",
    "prepare_amplitude_state",
]


@dataclass
class ExecutionCache:
    """Everything the backward pass needs from a forward execution.

    ``plan``/``bound``/``checkpoints`` are set by the compiled engine;
    ``gate_matrices`` by the naive interpreter (exactly one of the two walks
    is replayed in reverse by :func:`backward`).  ``checkpoints`` holds the
    per-instruction post-states the plan recorded by reference — the ket
    side of the adjoint walk.  ``embedded``/``norms``/``zero_rows`` carry
    the amplitude-embedded initial state so the backward pass never
    recomputes the embedding.  ``backend`` is the kernel set the forward
    pass ran on; the backward walk reuses it, so one execution is served by
    one backend end to end.
    """

    circuit: Circuit
    final_state: np.ndarray  # (batch, 2**n)
    inputs: np.ndarray | None  # (batch, n_inputs)
    weights: np.ndarray  # (n_weights,)
    batch: int
    plan: CompiledPlan | None = None
    bound: list | None = None
    checkpoints: list | None = None  # per-instruction post-states (or None)
    gate_matrices: list[np.ndarray] | None = None  # naive path only
    embedded: np.ndarray | None = None  # (batch, 2**n) amplitude-embedded state
    norms: np.ndarray | None = None  # (batch,) embedding norms
    zero_rows: np.ndarray | None = None  # (batch,) bool, zero-fallback rows
    backend: KernelBackend | None = None  # kernel set of the forward pass


@dataclass
class StackedExecutionCache:
    """Backward bookkeeping for a stacked (multi-instance) execution.

    Mirrors :class:`ExecutionCache` for the stacked engine path: the bound
    :class:`~repro.quantum.engine.StackedPlan`, the flat
    ``(p * batch, 2**n)`` final state, and the embedding carry-over, plus the
    stack layout (``n_patches`` instances of ``batch`` samples each).
    """

    circuit: Circuit
    final_state: np.ndarray  # (p * batch, 2**n)
    weights: np.ndarray  # (p, n_weights)
    n_patches: int
    batch: int
    plan: StackedPlan | None = None
    bound: list | None = None
    checkpoints: list | None = None  # per-instruction post-states (or None)
    embedded: np.ndarray | None = None  # (p * batch, 2**n)
    norms: np.ndarray | None = None  # (p * batch,)
    zero_rows: np.ndarray | None = None  # (p * batch,) bool
    backend: KernelBackend | None = None  # kernel set of the forward pass


def prepare_amplitude_state(
    features: np.ndarray,
    n_wires: int,
    zero_fallback: bool = False,
    dtype=None,
    backend=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Amplitude-embed a ``(batch, d)`` feature block into ``(batch, 2**n)``.

    Features are zero-padded to the state dimension and L2-normalized per
    sample (PennyLane's ``AmplitudeEmbedding(pad_with=0, normalize=True)``).
    Returns the complex state and the per-sample norms (needed for input
    gradients).  All-zero samples raise unless ``zero_fallback`` is set, in
    which case they embed as |0...0> with zero gradient.  ``dtype`` selects
    the precision pair and ``backend`` the kernel set (None follows the
    active policies).
    """
    state, norms, _zero_rows = _prepare_amplitude(
        features, n_wires, zero_fallback, resolve_precision(dtype),
        resolve_backend(backend),
    )
    return state, norms


# Rows with norms below sqrt(tiny) are treated as zero: under that cutoff
# the squared feature values that build the norm are subnormal (or flushed
# to zero outright), so the computed norm has lost most of its mantissa and
# normalizing by it — or dividing gradients by it — is numerically
# meaningless.  The old 1e-300 guard let such rows through.
def _norm_eps(real_dtype) -> float:
    """The subnormal-norm cutoff at the embedding's real precision."""
    return float(np.sqrt(np.finfo(real_dtype).tiny))  # ~1.1e-19 for float32


_NORM_EPS = _norm_eps(np.float64)  # ~1.5e-154, the float64 cutoff


def _prepare_amplitude(
    features: np.ndarray,
    n_wires: int,
    zero_fallback: bool,
    prec: Precision | None = None,
    backend: KernelBackend | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Like :func:`prepare_amplitude_state` but also returns the zero mask.

    ``backend=None`` keeps the plain NumPy norm — the naive interpreter's
    embedding must stay a backend-free reference, exactly like
    :func:`_measure` (callers that want backend kernels resolve first).
    """
    if prec is None:
        prec = resolve_precision(None)
    batch, d = features.shape
    dim = 2**n_wires
    padded = np.zeros((batch, dim), dtype=prec.real)
    padded[:, :d] = features
    norms = (
        np.linalg.norm(padded, axis=1)
        if backend is None
        else backend.row_norms(padded)
    )
    eps = _norm_eps(prec.real)
    zero_rows = norms < eps
    if np.any(zero_rows):
        if not zero_fallback:
            raise ValueError(
                "amplitude embedding requires feature vectors with norm >= "
                f"{eps:.3g} (rows below that cannot be normalized at "
                f"{prec.real} precision); pass zero_fallback=True to embed "
                "them as |0...0>"
            )
        padded[zero_rows, 0] = 1.0
        norms = np.where(zero_rows, prec.real.type(1.0), norms)
    state = (padded / norms[:, None]).astype(prec.complex)
    return state, norms, zero_rows


def _gate_matrix(
    op: Operation,
    inputs: np.ndarray | None,
    weights: np.ndarray,
    cdtype=np.complex128,
) -> np.ndarray:
    if op.source is None:
        return G.fixed_gate(op.name, cdtype)
    kind, index = op.source
    if kind == "weight":
        theta = weights[index]
    else:
        if inputs is None:
            raise ValueError(f"operation {op} needs inputs but none were given")
        theta = inputs[:, index]
    return G.PARAMETRIC_GATES[op.name](theta, cdtype)


def _validate_and_prepare(
    circuit: Circuit,
    inputs: np.ndarray | None,
    weights: np.ndarray,
    prec: Precision,
    backend: KernelBackend | None = None,
):
    """Shared entry checks; returns (inputs, weights, batch, state, embedding).

    ``embedding`` is ``(embedded, norms, zero_rows)`` for amplitude-prepared
    circuits and ``(None, None, None)`` otherwise; ``state`` is a fresh array
    the caller may mutate (for amplitude prep it *is* ``embedded``, so cache
    holders must copy before mutating).  Inputs and weights are cast to the
    policy's real dtype, the state to its complex counterpart.
    """
    if circuit.measurement is None:
        raise ValueError("circuit has no measurement; call measure_* first")
    weights = np.asarray(weights, dtype=prec.real)
    if weights.shape != (circuit.n_weights,):
        raise ValueError(
            f"expected {circuit.n_weights} weights, got shape {weights.shape}"
        )
    if inputs is not None:
        inputs = np.asarray(inputs, dtype=prec.real)
        if inputs.ndim != 2 or inputs.shape[1] < circuit.n_inputs:
            raise ValueError(
                f"inputs must be (batch, >= {circuit.n_inputs}), got "
                f"{None if inputs is None else inputs.shape}"
            )
        batch = inputs.shape[0]
    else:
        if circuit.n_inputs:
            raise ValueError("circuit consumes inputs but none were given")
        batch = 1

    if circuit.state_prep is not None:
        __, n_features, zero_fallback = circuit.state_prep
        state, norms, zero_rows = _prepare_amplitude(
            inputs[:, :n_features], circuit.n_wires, zero_fallback, prec,
            backend,
        )
        embedding = (state, norms, zero_rows)
    else:
        state = zero_state(circuit.n_wires, batch, dtype=prec.complex)
        embedding = (None, None, None)
    return inputs, weights, batch, state, embedding


def _measure(
    circuit: Circuit, state: np.ndarray, backend: KernelBackend | None = None
) -> np.ndarray:
    """Measure through ``backend``'s contraction kernels.

    ``backend=None`` keeps the plain :mod:`repro.quantum.state` helpers —
    the naive interpreter stays a backend-free reference implementation.
    """
    kind, wires = circuit.measurement
    if backend is None:
        if kind == "expval":
            return expval_z(state, wires)
        return probabilities(state)
    if kind == "expval":
        signs = z_signs(num_wires(state), dtype=real_dtype_for(state.dtype))
        return backend.expvals(state, signs[list(wires)])
    return backend.probabilities(state)


def execute(
    circuit: Circuit,
    inputs: np.ndarray | None,
    weights: np.ndarray,
    want_cache: bool = True,
    dtype=None,
    backend=None,
) -> tuple[np.ndarray, ExecutionCache | None]:
    """Run the circuit on a batch via its compiled plan.

    Parameters
    ----------
    circuit:
        A built :class:`~repro.quantum.circuit.Circuit` with a measurement.
        Its compiled plan is cached on the instance and reused across calls.
    inputs:
        ``(batch, n_inputs)`` features for embeddings, or None for a pure
        weight circuit (then batch = 1).
    weights:
        Flat ``(n_weights,)`` trainable angles.
    dtype:
        Precision spec (:func:`repro.nn.precision.resolve_precision`):
        None follows the active policy (float64/complex128 by default);
        ``"float32"`` runs the whole pass at complex64.
    backend:
        Kernel backend spec (:func:`repro.quantum.backends
        .resolve_backend`): None follows the active backend policy;
        ``"threaded"`` shards the row dimension across a worker pool.
        The plan is backend-agnostic — only the kernels change.

    Returns
    -------
    outputs:
        ``(batch, output_dim)`` real measurement results in the policy's
        real dtype.
    cache:
        Pass to :func:`backward`, or None when ``want_cache=False``.
    """
    prec = resolve_precision(dtype)
    backend = resolve_backend(backend)
    inputs, weights, batch, state, embedding = _validate_and_prepare(
        circuit, inputs, weights, prec, backend
    )
    embedded, norms, zero_rows = embedding
    plan = compiled_plan(circuit)
    bound = plan.bind(inputs, weights, with_grads=want_cache, cdtype=prec.complex)
    # Plan instructions are pure, so the embedded state survives the run
    # untouched and post-block states can be checkpointed by reference.
    record: list | None = [] if want_cache else None
    state = plan.run(state, bound, record=record, backend=backend)
    outputs = _measure(circuit, state, backend)
    if not want_cache:
        return outputs, None
    cache = ExecutionCache(
        circuit,
        state,
        inputs,
        weights,
        batch,
        plan=plan,
        bound=bound,
        checkpoints=record,
        embedded=embedded,
        norms=norms,
        zero_rows=zero_rows,
        backend=backend,
    )
    return outputs, cache


def execute_stacked(
    circuit: Circuit,
    inputs: np.ndarray | None,
    weights: np.ndarray,
    want_cache: bool = True,
    dtype=None,
    backend=None,
) -> tuple[np.ndarray, StackedExecutionCache | None]:
    """Run ``p`` weight-bindings of one circuit template as a single pass.

    The paper's patched layers execute ``p`` structurally identical
    sub-circuits that differ only in their weight vectors and input slices.
    This entry point stacks them through the circuit's
    :func:`~repro.quantum.engine.stacked_plan`: the whole ensemble is one
    ``(p * batch, 2**n)`` statevector pass — one engine invocation instead
    of ``p`` — with per-patch weight binding inside the plan's kernels.

    Parameters
    ----------
    circuit:
        The shared circuit template (with a measurement).
    inputs:
        ``(p, batch, n_inputs)`` per-instance features, or None when the
        circuit consumes no inputs (then ``batch = 1``).
    weights:
        ``(p, n_weights)`` per-instance trainable angles; ``p`` is taken
        from this argument.
    dtype:
        Precision spec (:func:`repro.nn.precision.resolve_precision`):
        None follows the active policy; ``"float32"`` runs the stacked
        pass at complex64 — halving the bytes every kernel moves, which is
        the lever on this bandwidth-bound path.
    backend:
        Kernel backend spec (:func:`repro.quantum.backends
        .resolve_backend`): None follows the active backend policy;
        ``"threaded"`` shards the ``p * batch`` row dimension across a
        worker pool — the other lever on the bandwidth-bound stacked path.

    Returns
    -------
    outputs:
        ``(p, batch, output_dim)`` real measurement results.
    cache:
        Pass to :func:`backward_stacked`, or None when ``want_cache=False``.
    """
    prec = resolve_precision(dtype)
    backend = resolve_backend(backend)
    if circuit.measurement is None:
        raise ValueError("circuit has no measurement; call measure_* first")
    weights = np.asarray(weights, dtype=prec.real)
    if weights.ndim != 2 or weights.shape[1] != circuit.n_weights:
        raise ValueError(
            f"stacked weights must be (p, {circuit.n_weights}), "
            f"got shape {weights.shape}"
        )
    p = weights.shape[0]
    if p < 1:
        raise ValueError("stacked execution needs at least one instance")
    n_in = circuit.n_inputs
    if inputs is not None:
        inputs = np.asarray(inputs, dtype=prec.real)
        if inputs.ndim != 3 or inputs.shape[0] != p or inputs.shape[2] != n_in:
            raise ValueError(
                f"stacked inputs must be (p={p}, batch, {n_in}), "
                f"got shape {inputs.shape}"
            )
        batch = inputs.shape[1]
        flat_inputs = np.ascontiguousarray(inputs.reshape(p * batch, n_in))
    else:
        if n_in:
            raise ValueError("circuit consumes inputs but none were given")
        batch = 1
        flat_inputs = None

    if circuit.state_prep is not None:
        __, n_features, zero_fallback = circuit.state_prep
        state, norms, zero_rows = _prepare_amplitude(
            flat_inputs[:, :n_features], circuit.n_wires, zero_fallback, prec,
            backend,
        )
        embedded = state
    else:
        state = zero_state(circuit.n_wires, p * batch, dtype=prec.complex)
        embedded = norms = zero_rows = None

    plan = stacked_plan(circuit)
    bound = plan.bind(
        flat_inputs, weights, p, batch, with_grads=want_cache, cdtype=prec.complex
    )
    # Stacked applies are pure, so the embedded state survives the run
    # untouched and post-block states can be checkpointed by reference.
    record: list | None = [] if want_cache else None
    state = plan.run(state, bound, p, batch, record=record, backend=backend)
    outputs = _measure(circuit, state, backend).reshape(p, batch, -1)
    if not want_cache:
        return outputs, None
    cache = StackedExecutionCache(
        circuit,
        state,
        weights,
        p,
        batch,
        plan=plan,
        bound=bound,
        checkpoints=record,
        embedded=embedded,
        norms=norms,
        zero_rows=zero_rows,
        backend=backend,
    )
    return outputs, cache


def backward_stacked(
    cache: StackedExecutionCache,
    grad_outputs: np.ndarray,
    want_inputs: bool = True,
) -> tuple[np.ndarray | None, np.ndarray]:
    """Per-instance vector-Jacobian product of a stacked execution.

    One adjoint walk over the stacked state serves every instance: weight
    gradients accumulate directly into per-patch rows (via the plan's
    transition-matrix kernels), input gradients come back per sample.

    Parameters
    ----------
    cache:
        Result of :func:`execute_stacked`.
    grad_outputs:
        ``(p, batch, output_dim)`` upstream gradient.
    want_inputs:
        When False, the amplitude-embedding input chain is skipped and
        ``grad_inputs`` is returned as None — the common encoder case where
        the data tensor needs no gradient.

    Returns
    -------
    grad_inputs:
        ``(p, batch, n_inputs)``, or None if the circuit takes no inputs or
        ``want_inputs`` is False.
    grad_weights:
        ``(p, n_weights)``, each row summed over that instance's batch.
    """
    circuit = cache.circuit
    p, batch = cache.n_patches, cache.batch
    grad_outputs = _check_cotangent(
        grad_outputs, (p, batch, circuit.output_dim), cache.final_state.dtype
    )
    lam = _seed_cotangent(cache, grad_outputs.reshape(p * batch, -1))
    # Gradients accumulate in float64 regardless of execution precision:
    # the buffers are tiny next to the statevector, and wide accumulation
    # keeps low-precision runs numerically stable.
    grad_weights = np.zeros((p, circuit.n_weights), dtype=np.float64)
    grad_inputs = (
        np.zeros((p * batch, circuit.n_inputs), dtype=np.float64)
        if circuit.n_inputs
        else None
    )
    ctx = StackedGradContext(
        p,
        batch,
        grad_weights,
        grad_inputs,
        cache.final_state.shape,
        dtype=cache.final_state.dtype,
        backend=cache.backend,
    )
    lam = _adjoint_walk(cache.plan, cache.bound, cache.checkpoints, lam, ctx)
    if want_inputs:
        _amplitude_input_grads(cache, lam, grad_inputs)
    if grad_inputs is None or not want_inputs:
        return None, grad_weights
    return grad_inputs.reshape(p, batch, circuit.n_inputs), grad_weights


def naive_execute(
    circuit: Circuit,
    inputs: np.ndarray | None,
    weights: np.ndarray,
    want_cache: bool = True,
    dtype=None,
) -> tuple[np.ndarray, ExecutionCache | None]:
    """Reference interpreter: apply every op through the generic kernel.

    Kept as the ground truth the compiled engine is tested against and the
    baseline the kernel benchmarks report speedups from.  Same signature and
    semantics as :func:`execute`.
    """
    prec = resolve_precision(dtype)
    inputs, weights, batch, state, embedding = _validate_and_prepare(
        circuit, inputs, weights, prec
    )
    embedded, norms, zero_rows = embedding
    matrices: list[np.ndarray] = []
    for op in circuit.ops:
        gate = _gate_matrix(op, inputs, weights, prec.complex)
        state = apply_gate(state, gate, op.wires)
        if want_cache:
            matrices.append(gate)
    outputs = _measure(circuit, state)
    if not want_cache:
        return outputs, None
    cache = ExecutionCache(
        circuit,
        state,
        inputs,
        weights,
        batch,
        gate_matrices=matrices,
        embedded=embedded,
        norms=norms,
        zero_rows=zero_rows,
    )
    return outputs, cache


def _check_cotangent(
    grad_outputs, expected_shape: tuple, state_dtype
) -> np.ndarray:
    """Validate an upstream gradient before it enters an adjoint walk.

    A malformed cotangent used to surface as an opaque broadcast error deep
    inside a kernel (or, worse, silently broadcast); every backward entry
    point routes through this guard instead, naming the offending shape or
    dtype against what the cached execution expects.
    """
    grad_outputs = np.asarray(grad_outputs)
    if np.iscomplexobj(grad_outputs):
        raise ValueError(
            "grad_outputs must be real (the cotangent of a real "
            f"measurement), got complex dtype {grad_outputs.dtype} for a "
            f"plan bound at {np.dtype(state_dtype)}"
        )
    if grad_outputs.shape != expected_shape:
        raise ValueError(
            f"grad_outputs shape {grad_outputs.shape} does not match the "
            f"cached execution's output shape {expected_shape}"
        )
    return grad_outputs


def _adjoint_walk(plan, bound, checkpoints, lam, ctx) -> np.ndarray:
    """Walk a bound plan in reverse: one ``backward_step`` per instruction.

    Only the cotangent moves; the ket side is read from the forward
    checkpoints (pure applies make them safe to hold by reference).
    Gradients accumulate into ``ctx``; the returned array is the cotangent
    at the initial state.
    """
    for instr, data, checkpoint in zip(
        reversed(plan.instructions), reversed(bound), reversed(checkpoints)
    ):
        lam = instr.backward_step(lam, data, checkpoint, ctx)
    return lam


def _seed_cotangent(
    cache: ExecutionCache, grad_outputs: np.ndarray
) -> np.ndarray:
    """The cotangent ``dL/dpsi*`` at the final state."""
    circuit = cache.circuit
    # Seed at the execution's real precision so the cotangent matches the
    # state dtype (float32 * complex64 stays complex64).
    real = real_dtype_for(cache.final_state.dtype)
    grad_outputs = np.asarray(grad_outputs, dtype=real)
    kind, wires = circuit.measurement
    if kind == "expval":
        signs = z_signs(circuit.n_wires, dtype=real)
        v = grad_outputs @ signs[list(wires)]  # (batch, 2**n)
    else:
        v = grad_outputs
    return v * cache.final_state


def _amplitude_input_grads(
    cache: ExecutionCache, lam: np.ndarray, grad_inputs: np.ndarray | None
) -> None:
    """Chain the cotangent at the initial state through amplitude embedding."""
    circuit = cache.circuit
    if circuit.state_prep is None or grad_inputs is None:
        return
    __, n_features, zero_fallback = circuit.state_prep
    psi0 = cache.embedded.real  # amplitude-embedded states are real
    # dL/dx = (2 Re(lambda_0) - 2 Re(lambda_0 . psi_0) psi_0) / ||x||
    lam_real = 2.0 * np.real(lam)
    radial = np.einsum("bj,bj->b", lam_real, psi0)
    grad_full = (lam_real - radial[:, None] * psi0) / cache.norms[:, None]
    if zero_fallback:
        grad_full[cache.zero_rows] = 0.0
    grad_inputs[:, :n_features] += grad_full[:, :n_features]


def backward(
    cache: ExecutionCache, grad_outputs: np.ndarray
) -> tuple[np.ndarray | None, np.ndarray]:
    """Vector-Jacobian product of a cached execution.

    Dispatches on how the cache was produced: compiled caches walk the
    unified block substrate in reverse as a degenerate ``p = 1`` stack —
    cotangent-only, ket side from the forward checkpoints, one
    transition-matrix contraction per fused block; naive caches replay the
    op list with per-parameter generator insertions.  Both give exact
    gradients.

    Parameters
    ----------
    cache:
        Result of :func:`execute` (or :func:`naive_execute`).
    grad_outputs:
        ``(batch, output_dim)`` upstream gradient.

    Returns
    -------
    grad_inputs:
        ``(batch, n_inputs)`` or None if the circuit takes no inputs.
    grad_weights:
        ``(n_weights,)`` summed over the batch.
    """
    if cache.plan is None:
        return naive_backward(cache, grad_outputs)
    circuit = cache.circuit
    grad_outputs = _check_cotangent(
        grad_outputs, (cache.batch, circuit.output_dim), cache.final_state.dtype
    )
    lam = _seed_cotangent(cache, grad_outputs)
    grad_weights = np.zeros((1, circuit.n_weights), dtype=np.float64)
    grad_inputs = (
        np.zeros((cache.batch, circuit.n_inputs), dtype=np.float64)
        if circuit.n_inputs
        else None
    )
    ctx = StackedGradContext(
        1,
        cache.batch,
        grad_weights,
        grad_inputs,
        cache.final_state.shape,
        dtype=cache.final_state.dtype,
        backend=cache.backend,
    )
    lam = _adjoint_walk(cache.plan, cache.bound, cache.checkpoints, lam, ctx)
    _amplitude_input_grads(cache, lam, grad_inputs)
    return grad_inputs, grad_weights[0]


def naive_backward(
    cache: ExecutionCache, grad_outputs: np.ndarray
) -> tuple[np.ndarray | None, np.ndarray]:
    """Reference adjoint walk over a :func:`naive_execute` cache."""
    if cache.gate_matrices is None:
        raise ValueError("cache was not produced by naive_execute")
    circuit = cache.circuit
    grad_outputs = _check_cotangent(
        grad_outputs, (cache.batch, circuit.output_dim), cache.final_state.dtype
    )
    lam = _seed_cotangent(cache, grad_outputs)
    n = num_wires(cache.final_state)

    grad_weights = np.zeros(circuit.n_weights, dtype=np.float64)
    grad_inputs = (
        np.zeros((cache.batch, circuit.n_inputs), dtype=np.float64)
        if circuit.n_inputs
        else None
    )

    psi = cache.final_state
    cdtype = cache.final_state.dtype
    for op, gate in zip(reversed(circuit.ops), reversed(cache.gate_matrices)):
        if op.source is not None:
            gen = G.generator(op.name, cdtype)
            gen_psi = apply_gate(psi, gen, op.wires)
            # dL/dtheta = Im(<lambda| G |psi>) per batch element.
            per_sample = np.einsum("bj,bj->b", np.conj(lam), gen_psi).imag
            source_kind, index = op.source
            if source_kind == "weight":
                grad_weights[index] += per_sample.sum()
            else:
                grad_inputs[:, index] += per_sample
        gate_dag = np.conj(np.swapaxes(gate, -1, -2))
        psi = apply_gate(psi, gate_dag, op.wires)
        lam = apply_gate(lam, gate_dag, op.wires)

    _amplitude_input_grads(cache, lam, grad_inputs)
    return grad_inputs, grad_weights
