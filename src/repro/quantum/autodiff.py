"""Exact execution and reverse-mode differentiation of circuits.

The forward pass simulates the batched statevector; the backward pass uses
the adjoint method: it walks the circuit in reverse, un-applying each unitary
to both the state and the cotangent vector, and reads off parameter gradients
from the generator identity ``dU/dtheta = -i/2 G U``:

    dL/dtheta = Im( <lambda| G |psi> )

where ``|psi>`` is the state *after* the gate and ``<lambda|`` is the
cotangent ``dL/dpsi*`` at the same point.  This is exact (no sampling noise)
and costs O(#gates) state applications — the same trick PennyLane's
``adjoint`` differentiation uses, and it is property-tested against the
parameter-shift rule in :mod:`repro.quantum.shift`.

Both measurement types the paper uses are diagonal in the computational
basis (Pauli-Z expectations and basis probabilities), so the cotangent seed
is ``lambda = v * psi`` with ``v`` the gradient with respect to ``|psi_j|^2``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import gates as G
from .circuit import Circuit, Operation
from .state import apply_gate, num_wires, probabilities, z_signs, zero_state

__all__ = ["ExecutionCache", "execute", "backward", "prepare_amplitude_state"]


@dataclass
class ExecutionCache:
    """Everything the backward pass needs from a forward execution."""

    circuit: Circuit
    final_state: np.ndarray  # (batch, 2**n)
    gate_matrices: list[np.ndarray]  # per op, (2**k, 2**k) or (batch, 2**k, 2**k)
    inputs: np.ndarray | None  # (batch, n_inputs)
    weights: np.ndarray  # (n_weights,)
    batch: int


def prepare_amplitude_state(
    features: np.ndarray, n_wires: int, zero_fallback: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Amplitude-embed a ``(batch, d)`` feature block into ``(batch, 2**n)``.

    Features are zero-padded to the state dimension and L2-normalized per
    sample (PennyLane's ``AmplitudeEmbedding(pad_with=0, normalize=True)``).
    Returns the complex state and the per-sample norms (needed for input
    gradients).  All-zero samples raise unless ``zero_fallback`` is set, in
    which case they embed as |0...0> with zero gradient.
    """
    batch, d = features.shape
    dim = 2**n_wires
    padded = np.zeros((batch, dim), dtype=np.float64)
    padded[:, :d] = features
    norms = np.linalg.norm(padded, axis=1)
    zero_rows = norms < 1e-300
    if np.any(zero_rows):
        if not zero_fallback:
            raise ValueError("amplitude embedding requires nonzero feature vectors")
        padded[zero_rows, 0] = 1.0
        norms = np.where(zero_rows, 1.0, norms)
    state = (padded / norms[:, None]).astype(np.complex128)
    return state, norms


def _gate_matrix(
    op: Operation, inputs: np.ndarray | None, weights: np.ndarray
) -> np.ndarray:
    if op.source is None:
        return G.FIXED_GATES[op.name]
    kind, index = op.source
    if kind == "weight":
        theta = weights[index]
    else:
        if inputs is None:
            raise ValueError(f"operation {op} needs inputs but none were given")
        theta = inputs[:, index]
    return G.PARAMETRIC_GATES[op.name](theta)


def execute(
    circuit: Circuit,
    inputs: np.ndarray | None,
    weights: np.ndarray,
    want_cache: bool = True,
) -> tuple[np.ndarray, ExecutionCache | None]:
    """Run the circuit on a batch.

    Parameters
    ----------
    circuit:
        A built :class:`~repro.quantum.circuit.Circuit` with a measurement.
    inputs:
        ``(batch, n_inputs)`` features for embeddings, or None for a pure
        weight circuit (then batch = 1).
    weights:
        Flat ``(n_weights,)`` trainable angles.

    Returns
    -------
    outputs:
        ``(batch, output_dim)`` real measurement results.
    cache:
        Pass to :func:`backward`, or None when ``want_cache=False``.
    """
    if circuit.measurement is None:
        raise ValueError("circuit has no measurement; call measure_* first")
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (circuit.n_weights,):
        raise ValueError(
            f"expected {circuit.n_weights} weights, got shape {weights.shape}"
        )
    if inputs is not None:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 2 or inputs.shape[1] < circuit.n_inputs:
            raise ValueError(
                f"inputs must be (batch, >= {circuit.n_inputs}), got "
                f"{None if inputs is None else inputs.shape}"
            )
        batch = inputs.shape[0]
    else:
        if circuit.n_inputs:
            raise ValueError("circuit consumes inputs but none were given")
        batch = 1

    if circuit.state_prep is not None:
        __, n_features, zero_fallback = circuit.state_prep
        state, _norms = prepare_amplitude_state(
            inputs[:, :n_features], circuit.n_wires, zero_fallback
        )
    else:
        state = zero_state(circuit.n_wires, batch)

    matrices: list[np.ndarray] = []
    for op in circuit.ops:
        gate = _gate_matrix(op, inputs, weights)
        state = apply_gate(state, gate, op.wires)
        if want_cache:
            matrices.append(gate)

    kind, wires = circuit.measurement
    if kind == "expval":
        signs = z_signs(circuit.n_wires)
        outputs = probabilities(state) @ signs[list(wires)].T
    else:
        outputs = probabilities(state)

    cache = (
        ExecutionCache(circuit, state, matrices, inputs, weights, batch)
        if want_cache
        else None
    )
    return outputs, cache


def backward(
    cache: ExecutionCache, grad_outputs: np.ndarray
) -> tuple[np.ndarray | None, np.ndarray]:
    """Vector-Jacobian product of a cached execution.

    Parameters
    ----------
    cache:
        Result of :func:`execute`.
    grad_outputs:
        ``(batch, output_dim)`` upstream gradient.

    Returns
    -------
    grad_inputs:
        ``(batch, n_inputs)`` or None if the circuit takes no inputs.
    grad_weights:
        ``(n_weights,)`` summed over the batch.
    """
    circuit = cache.circuit
    state = cache.final_state
    n = num_wires(state)
    grad_outputs = np.asarray(grad_outputs, dtype=np.float64)

    kind, wires = circuit.measurement
    if kind == "expval":
        signs = z_signs(n)
        v = grad_outputs @ signs[list(wires)]  # (batch, 2**n)
    else:
        v = grad_outputs
    lam = v * state  # dL/dpsi*

    grad_weights = np.zeros(circuit.n_weights, dtype=np.float64)
    grad_inputs = (
        np.zeros((cache.batch, circuit.n_inputs), dtype=np.float64)
        if circuit.n_inputs
        else None
    )

    psi = state
    for op, gate in zip(reversed(circuit.ops), reversed(cache.gate_matrices)):
        if op.source is not None:
            gen = G.generator(op.name)
            gen_psi = apply_gate(psi, gen, op.wires)
            # dL/dtheta = Im(<lambda| G |psi>) per batch element.
            per_sample = np.einsum("bj,bj->b", np.conj(lam), gen_psi).imag
            source_kind, index = op.source
            if source_kind == "weight":
                grad_weights[index] += per_sample.sum()
            else:
                grad_inputs[:, index] += per_sample
        gate_dag = np.conj(np.swapaxes(gate, -1, -2))
        psi = apply_gate(psi, gate_dag, op.wires)
        lam = apply_gate(lam, gate_dag, op.wires)

    if circuit.state_prep is not None and grad_inputs is not None:
        __, n_features, zero_fallback = circuit.state_prep
        features = cache.inputs[:, :n_features]
        _state0, norms = prepare_amplitude_state(features, n, zero_fallback)
        psi0 = np.real(_state0)  # amplitude-embedded states are real
        # dL/dx = (2 Re(lambda_0) - 2 Re(lambda_0 . psi_0) psi_0) / ||x||
        lam_real = 2.0 * np.real(lam)
        radial = np.einsum("bj,bj->b", lam_real, psi0)
        grad_full = (lam_real - radial[:, None] * psi0) / norms[:, None]
        if zero_fallback:
            zero_rows = np.linalg.norm(features, axis=1) < 1e-300
            grad_full[zero_rows] = 0.0
        grad_inputs[:, :n_features] += grad_full[:, :n_features]

    return grad_inputs, grad_weights
