"""Circuit intermediate representation and builder.

A :class:`Circuit` is a reusable template: a sequence of operations whose
parameters are *slots* bound at execution time, either to trainable weights
(``('weight', i)``) or to per-sample input features (``('input', i)``, used by
angle embedding).  State preparation is |0...0> by default or amplitude
embedding of the input vector.

The builder exposes exactly the pieces the paper's architectures need:
amplitude/angle embedding, single-qubit rotations, CNOT/CZ entanglers, CRZ,
and the strongly-entangling-layer template (see
:meth:`Circuit.strongly_entangling_layers`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["Operation", "Circuit", "sel_weight_count"]

_PARAMETRIC = {"RX", "RY", "RZ", "CRZ"}
_FIXED = {"CNOT", "CZ", "SWAP", "H", "X", "Y", "Z"}


@dataclass(frozen=True)
class Operation:
    """One gate application: name, target wires, and the parameter source."""

    name: str
    wires: tuple[int, ...]
    source: tuple[str, int] | None = None

    def __post_init__(self) -> None:
        if self.name in _PARAMETRIC and self.source is None:
            raise ValueError(f"{self.name} requires a parameter source")
        if self.name in _FIXED and self.source is not None:
            raise ValueError(f"{self.name} takes no parameter")
        if self.name not in _PARAMETRIC | _FIXED:
            raise ValueError(f"unknown gate {self.name!r}")


class Circuit:
    """Mutable builder for a parameterized quantum circuit template."""

    def __init__(self, n_wires: int):
        if n_wires < 1:
            raise ValueError("a circuit needs at least one wire")
        self.n_wires = n_wires
        self.ops: list[Operation] = []
        self.n_weights = 0
        self.n_inputs = 0
        self.state_prep: tuple[str, int] | None = None  # ("amplitude", n_features)
        self.measurement: tuple[str, tuple[int, ...] | None] | None = None

    # ------------------------------------------------------------------
    # State preparation / embeddings
    # ------------------------------------------------------------------
    def amplitude_embedding(
        self, n_features: int, zero_fallback: bool = False
    ) -> "Circuit":
        """Prepare the state as the L2-normalized, zero-padded input vector.

        Qubit-efficient (log2 features -> wires) but constrains outputs, as
        Section II-C of the paper discusses.  With ``zero_fallback=True`` an
        all-zero feature vector embeds as |0...0> instead of raising — the
        patched encoders need this because sparse ligand matrices produce
        empty patches.
        """
        if self.ops:
            raise ValueError("amplitude embedding must precede all gates")
        if n_features > 2**self.n_wires:
            raise ValueError(
                f"{n_features} features exceed state dimension {2**self.n_wires}"
            )
        if n_features < 1:
            raise ValueError("amplitude embedding needs at least one feature")
        self.state_prep = ("amplitude", n_features, bool(zero_fallback))
        self.n_inputs = max(self.n_inputs, n_features)
        return self

    def angle_embedding(
        self, n_features: int, rotation: str = "RY", reuse_inputs: bool = False
    ) -> "Circuit":
        """Embed feature ``i`` as a ``rotation(x_i)`` on wire ``i``.

        One qubit per feature (not qubit-efficient, as the paper notes), but
        output-unconstrained; the SQ decoder uses it on the latent vector.
        With ``reuse_inputs=True`` the gates re-reference input slots
        ``0..n_features-1`` instead of allocating fresh ones — the
        data-reuploading pattern.
        """
        if rotation not in {"RX", "RY", "RZ"}:
            raise ValueError(f"unsupported embedding rotation {rotation!r}")
        if n_features > self.n_wires:
            raise ValueError(
                f"angle embedding of {n_features} features needs {n_features} "
                f"wires, circuit has {self.n_wires}"
            )
        start = 0 if reuse_inputs else self.n_inputs
        for i in range(n_features):
            self.ops.append(Operation(rotation, (i,), ("input", start + i)))
        self.n_inputs = max(self.n_inputs, start + n_features)
        return self

    def reuploading_layers(
        self, n_features: int, n_layers: int, rotation: str = "RY"
    ) -> "Circuit":
        """Data re-uploading: re-embed the inputs before every SEL layer.

        Perez-Salinas et al. (2020) show interleaving data encodings with
        trainable layers enriches the accessible Fourier spectrum — the
        natural expressivity extension of the paper's fixed-embedding
        architecture (its "strong expressive power" motivation).
        """
        if n_layers < 1:
            raise ValueError("need at least one re-uploading layer")
        for layer in range(n_layers):
            self.angle_embedding(n_features, rotation=rotation,
                                 reuse_inputs=layer > 0)
            self.strongly_entangling_layers(1)
        return self

    # ------------------------------------------------------------------
    # Gates
    # ------------------------------------------------------------------
    def _new_weight(self) -> int:
        index = self.n_weights
        self.n_weights += 1
        return index

    def rx(self, wire: int) -> "Circuit":
        self.ops.append(Operation("RX", (wire,), ("weight", self._new_weight())))
        return self

    def ry(self, wire: int) -> "Circuit":
        self.ops.append(Operation("RY", (wire,), ("weight", self._new_weight())))
        return self

    def rz(self, wire: int) -> "Circuit":
        self.ops.append(Operation("RZ", (wire,), ("weight", self._new_weight())))
        return self

    def rot(self, wire: int) -> "Circuit":
        """Rot(phi, theta, omega) decomposed as RZ(phi), RY(theta), RZ(omega).

        Three fresh weight slots are allocated in (phi, theta, omega) order,
        matching PennyLane's parameter layout for ``Rot``.
        """
        self.rz(wire)
        self.ry(wire)
        self.rz(wire)
        return self

    def crz(self, control: int, target: int) -> "Circuit":
        self.ops.append(
            Operation("CRZ", (control, target), ("weight", self._new_weight()))
        )
        return self

    def cnot(self, control: int, target: int) -> "Circuit":
        self.ops.append(Operation("CNOT", (control, target)))
        return self

    def cz(self, a: int, b: int) -> "Circuit":
        self.ops.append(Operation("CZ", (a, b)))
        return self

    def h(self, wire: int) -> "Circuit":
        self.ops.append(Operation("H", (wire,)))
        return self

    def x(self, wire: int) -> "Circuit":
        self.ops.append(Operation("X", (wire,)))
        return self

    def y(self, wire: int) -> "Circuit":
        self.ops.append(Operation("Y", (wire,)))
        return self

    def z(self, wire: int) -> "Circuit":
        self.ops.append(Operation("Z", (wire,)))
        return self

    def swap(self, a: int, b: int) -> "Circuit":
        self.ops.append(Operation("SWAP", (a, b)))
        return self

    # ------------------------------------------------------------------
    # Templates
    # ------------------------------------------------------------------
    def strongly_entangling_layers(
        self, n_layers: int, ranges: Sequence[int] | int = 1
    ) -> "Circuit":
        """The paper's repeatable hidden layer (Fig. 2b).

        Each layer applies ``Rot(phi, theta, omega)`` on every qubit followed
        by a periodic layout of CNOTs: ``CNOT(w, (w + r) % n)``.  ``ranges``
        may be a single range for all layers (default 1, the nearest-neighbor
        ring shown in the paper) or one per layer (PennyLane's default uses
        ``(layer % (n - 1)) + 1``).
        """
        if n_layers < 1:
            raise ValueError("need at least one entangling layer")
        if isinstance(ranges, int):
            layer_ranges = [ranges] * n_layers
        else:
            layer_ranges = list(ranges)
            if len(layer_ranges) != n_layers:
                raise ValueError("one CNOT range per layer is required")
        for r in layer_ranges:
            if self.n_wires > 1 and not 1 <= r < self.n_wires:
                raise ValueError(f"CNOT range {r} invalid for {self.n_wires} wires")
        for layer_range in layer_ranges:
            for wire in range(self.n_wires):
                self.rot(wire)
            if self.n_wires > 1:
                for wire in range(self.n_wires):
                    self.cnot(wire, (wire + layer_range) % self.n_wires)
        return self

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def measure_expval(self, wires: Sequence[int] | None = None) -> "Circuit":
        """Measure Pauli-Z expectation on each wire (defaults to all)."""
        wires = tuple(range(self.n_wires)) if wires is None else tuple(wires)
        if any(not 0 <= w < self.n_wires for w in wires):
            raise ValueError(f"measurement wires {wires} out of range")
        self.measurement = ("expval", wires)
        return self

    def measure_probs(self) -> "Circuit":
        """Measure the full basis-state probability vector (dimension 2**n)."""
        self.measurement = ("probs", None)
        return self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def output_dim(self) -> int:
        """Dimension of the execution output."""
        if self.measurement is None:
            raise ValueError("circuit has no measurement")
        kind, wires = self.measurement
        return len(wires) if kind == "expval" else 2**self.n_wires

    def weight_shape(self) -> tuple[int]:
        return (self.n_weights,)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"Circuit(wires={self.n_wires}, ops={len(self.ops)}, "
            f"weights={self.n_weights}, inputs={self.n_inputs})"
        )


def sel_weight_count(n_wires: int, n_layers: int) -> int:
    """Weights used by ``strongly_entangling_layers``: 3 per qubit per layer."""
    return 3 * n_wires * n_layers
