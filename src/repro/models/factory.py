"""Name-keyed model construction shared by the CLI and the serving layer.

The paper's eight architectures are addressable by their CLI names
(``ae`` ... ``sq-vae``).  :func:`build_model` turns a name plus the
architecture hyperparameters into a freshly initialized module;
:func:`build_from_metadata` rebuilds the exact architecture a checkpoint
was trained as, straight from the metadata dict ``save_module`` wrote —
including the recorded precision, so a float32 checkpoint rehydrates into
a float32 module instead of a float64 shell around float32 weights.
"""

from __future__ import annotations

import numpy as np

from ..nn.precision import resolve_precision
from .baseline import (
    FullyQuantumAE,
    FullyQuantumVAE,
    HybridQuantumAE,
    HybridQuantumVAE,
)
from .classical import ClassicalAE, ClassicalVAE
from .scalable import ScalableQuantumAE, ScalableQuantumVAE

__all__ = ["MODEL_CHOICES", "build_model", "build_from_metadata",
           "model_metadata"]

MODEL_CHOICES = ("ae", "vae", "f-bq-ae", "f-bq-vae", "h-bq-ae", "h-bq-vae",
                 "sq-ae", "sq-vae")


def build_model(name: str, input_dim: int, n_patches: int, n_layers: int,
                latent_dim: int, seed: int, dtype=None):
    """Construct a freshly initialized model by CLI name.

    ``dtype`` selects the model precision end to end (None follows the
    active policy); unknown names raise ``SystemExit`` listing the choices.
    """
    rng = np.random.default_rng(seed)
    builders = {
        "ae": lambda: ClassicalAE(input_dim=input_dim, latent_dim=latent_dim,
                                  rng=rng, dtype=dtype),
        "vae": lambda: ClassicalVAE(input_dim=input_dim, latent_dim=latent_dim,
                                    rng=rng, noise_seed=seed, dtype=dtype),
        "f-bq-ae": lambda: FullyQuantumAE(input_dim=input_dim,
                                          n_layers=n_layers, rng=rng,
                                          dtype=dtype),
        "f-bq-vae": lambda: FullyQuantumVAE(input_dim=input_dim,
                                            n_layers=n_layers, rng=rng,
                                            noise_seed=seed, dtype=dtype),
        "h-bq-ae": lambda: HybridQuantumAE(input_dim=input_dim,
                                           n_layers=n_layers, rng=rng,
                                           dtype=dtype),
        "h-bq-vae": lambda: HybridQuantumVAE(input_dim=input_dim,
                                             n_layers=n_layers, rng=rng,
                                             noise_seed=seed, dtype=dtype),
        "sq-ae": lambda: ScalableQuantumAE(input_dim=input_dim,
                                           n_patches=n_patches,
                                           n_layers=n_layers, rng=rng,
                                           dtype=dtype),
        "sq-vae": lambda: ScalableQuantumVAE(input_dim=input_dim,
                                             n_patches=n_patches,
                                             n_layers=n_layers, rng=rng,
                                             noise_seed=seed, dtype=dtype),
    }
    try:
        return builders[name]()
    except KeyError:
        raise SystemExit(
            f"unknown model {name!r}; choose from {sorted(builders)}"
        ) from None


def build_from_metadata(metadata: dict):
    """Rebuild the architecture a checkpoint's metadata describes.

    Uses the recorded ``precision`` (older checkpoints without one get the
    historical float64 default) so the module's execution precision matches
    the stored weights.  The returned module still has fresh weights —
    follow with :func:`repro.nn.serialization.load_module`.
    """
    return build_model(
        metadata["model"],
        metadata["input_dim"],
        metadata.get("n_patches", 4),
        metadata.get("n_layers", 2),
        metadata.get("latent_dim") or 16,
        metadata.get("seed", 0),
        dtype=metadata.get("precision"),
    )


# Exact-type lookup for model_metadata: a *subclass* of a factory
# architecture carries behavior build_model cannot rebuild, so it must not
# silently round-trip as its base class.
_METADATA_NAMES = {
    ClassicalAE: "ae",
    ClassicalVAE: "vae",
    FullyQuantumAE: "f-bq-ae",
    FullyQuantumVAE: "f-bq-vae",
    HybridQuantumAE: "h-bq-ae",
    HybridQuantumVAE: "h-bq-vae",
    ScalableQuantumAE: "sq-ae",
    ScalableQuantumVAE: "sq-vae",
}


def model_metadata(model, seed: int = 0) -> dict:
    """Factory metadata that rebuilds a live model's architecture.

    The inverse of :func:`build_from_metadata` for modules of the eight
    factory architectures: data-parallel training workers rebuild the
    model from this dict (plus a parameter sync) instead of pickling the
    live module.  ``seed`` lands in the metadata verbatim — it seeds the
    rebuilt module's weight init (irrelevant once parameters are synced)
    and, for variational models, the reparameterization noise stream.

    Raises ``TypeError`` for anything that is not *exactly* a factory
    class; note the caller still has to verify parameter shapes match
    (e.g. a ``ClassicalAE`` built with custom ``hidden_dims`` rebuilds
    with the default widths).
    """
    name = _METADATA_NAMES.get(type(model))
    if name is None:
        raise TypeError(
            f"{type(model).__name__} is not one of the factory "
            f"architectures ({sorted(_METADATA_NAMES.values())}); it "
            "cannot be rebuilt from metadata in a worker process"
        )
    return {
        "model": name,
        "input_dim": model.input_dim,
        "n_patches": getattr(model, "n_patches", 4),
        "n_layers": getattr(model, "n_layers", 2),
        "latent_dim": model.latent_dim,
        "seed": seed,
        "precision": resolve_precision(getattr(model, "precision", None)).name,
    }
