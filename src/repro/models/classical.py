"""Classical autoencoder baselines (the paper's CVAE / CAE / AE / VAE).

Section III-B fixes the 64-feature architecture: the encoder applies three
hidden linear layers with ReLU reducing to 32, 16, and 6 dimensions; the
decoder mirrors them in reverse.  The VAE adds two Linear(latent, latent)
heads producing mu and log-variance — that head layout is what makes the
paper's Table I parameter arithmetic work out (VAE - AE = 84 at latent 6).

For the 1024-feature PDBbind/CIFAR experiments the same classes are built
with wider hidden dims and the swept latent sizes of Fig. 5(b)/8(a).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..nn.modules import Linear, Module, ReLU, Sequential
from ..nn.precision import resolve_precision
from ..nn.tensor import Tensor
from .base import Autoencoder, VariationalMixin

__all__ = ["ClassicalAE", "ClassicalVAE", "default_hidden_dims"]


def default_hidden_dims(input_dim: int) -> tuple[int, ...]:
    """The paper's hidden widths: (32, 16) at 64 features; scaled at 1024."""
    if input_dim <= 64:
        return (32, 16)
    return (256, 64)


def _mlp(
    dims: Sequence[int],
    rng: np.random.Generator,
    final_activation: bool,
    dtype=None,
) -> Sequential:
    layers: list[Module] = []
    for index in range(len(dims) - 1):
        layers.append(Linear(dims[index], dims[index + 1], rng=rng, dtype=dtype))
        if index < len(dims) - 2 or final_activation:
            layers.append(ReLU())
    return Sequential(*layers)


class ClassicalAE(Autoencoder):
    """Vanilla MLP autoencoder."""

    def __init__(
        self,
        input_dim: int = 64,
        latent_dim: int = 6,
        hidden_dims: Sequence[int] | None = None,
        rng: np.random.Generator | None = None,
        dtype=None,
    ):
        super().__init__(input_dim, latent_dim)
        rng = rng if rng is not None else np.random.default_rng(0)
        precision = resolve_precision(dtype)
        self.precision = precision
        hidden = tuple(
            hidden_dims if hidden_dims is not None else default_hidden_dims(input_dim)
        )
        self.hidden_dims = hidden
        # Encoder: "3 hidden linear layers followed by ReLU activation for
        # reducing the dimensions to 32, 16, and 6" (Section III-B).
        self.encoder = _mlp(
            (input_dim, *hidden, latent_dim), rng, final_activation=True,
            dtype=precision,
        )
        # Decoder mirrors the dims "in a reversed order"; the output layer
        # stays linear so original-scale features are reachable.
        self.decoder = _mlp(
            (latent_dim, *reversed(hidden), input_dim), rng,
            final_activation=False, dtype=precision,
        )

    def encode(self, x: Tensor) -> Tensor:
        return self.encoder(x)

    def decode(self, z: Tensor) -> Tensor:
        return self.decoder(z)

    def output_bias(self):
        return self.decoder.layers[-1].bias


class ClassicalVAE(VariationalMixin, ClassicalAE):
    """Variational MLP autoencoder with Linear(latent, latent) mu/logvar heads."""

    def __init__(
        self,
        input_dim: int = 64,
        latent_dim: int = 6,
        hidden_dims: Sequence[int] | None = None,
        rng: np.random.Generator | None = None,
        noise_seed: int = 0,
        dtype=None,
    ):
        ClassicalAE.__init__(
            self, input_dim, latent_dim, hidden_dims, rng, dtype=dtype
        )
        rng = rng if rng is not None else np.random.default_rng(1)
        self.mu_head = Linear(
            latent_dim, latent_dim, rng=rng, dtype=self.precision
        )
        self.logvar_head = Linear(
            latent_dim, latent_dim, rng=rng, dtype=self.precision
        )
        self.seed_noise(noise_seed)

    def encode_distribution(self, x: Tensor) -> tuple[Tensor, Tensor]:
        hidden = self.encoder(x)
        return self.mu_head(hidden), self.logvar_head(hidden)
