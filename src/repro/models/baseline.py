"""Baseline quantum autoencoders (Section III-B): F-BQ and H-BQ variants.

Architecture (for ``input_dim = 2**n`` features, latent = n qubits):

* encoder — amplitude embedding of the input, L strongly entangling layers,
  per-qubit Pauli-Z expectations (the latent vector);
* decoder — angle embedding of the latent, L strongly entangling layers,
  basis-state probabilities (the ``2**n``-dim reconstruction).

The fully quantum variants (F-BQ) stop there, so their reconstructions are
probability vectors — they can only fit *normalized* data (Fig. 4).  The
hybrid variants (H-BQ) append a final Linear(input, input) classical layer
mapping probabilities back to original scale, plus a Linear(latent, latent)
latent map; VAEs add Linear(latent, latent) mu / logvar heads.  With L = 3
and 64 features this reproduces Table I's parameter counts exactly
(quantum 108; classical 0 / 84 / 4202 / 4286).
"""

from __future__ import annotations

import numpy as np

from ..nn.modules import Linear
from ..nn.precision import resolve_precision
from ..nn.tensor import Tensor
from ..qnn.circuits import amplitude_encoder_circuit, probs_decoder_circuit
from ..qnn.qlayer import QuantumLayer
from .base import Autoencoder, VariationalMixin

__all__ = ["FullyQuantumAE", "FullyQuantumVAE", "HybridQuantumAE", "HybridQuantumVAE"]


def _n_wires_for(input_dim: int) -> int:
    n = int(input_dim).bit_length() - 1
    if 2**n != input_dim:
        raise ValueError(
            f"baseline quantum autoencoders need a power-of-two input "
            f"dimension, got {input_dim}"
        )
    return n


class FullyQuantumAE(Autoencoder):
    """F-BQ-AE: quantum encoder + quantum decoder, zero classical weights."""

    def __init__(
        self,
        input_dim: int = 64,
        n_layers: int = 3,
        rng: np.random.Generator | None = None,
        dtype=None,
    ):
        n_wires = _n_wires_for(input_dim)
        super().__init__(input_dim, latent_dim=n_wires)
        rng = rng if rng is not None else np.random.default_rng(0)
        precision = resolve_precision(dtype)
        self.precision = precision
        self.n_layers = n_layers
        self.encoder_q = QuantumLayer(
            amplitude_encoder_circuit(n_wires, input_dim, n_layers),
            rng=rng,
            dtype=precision,
        )
        self.decoder_q = QuantumLayer(
            probs_decoder_circuit(n_wires, n_layers), rng=rng, dtype=precision
        )

    def encode(self, x: Tensor) -> Tensor:
        return self.encoder_q(x)

    def decode(self, z: Tensor) -> Tensor:
        return self.decoder_q(z)


class FullyQuantumVAE(VariationalMixin, FullyQuantumAE):
    """F-BQ-VAE: adds classical mu / logvar heads (2 x Linear(n, n) = 84 @ n=6)."""

    def __init__(
        self,
        input_dim: int = 64,
        n_layers: int = 3,
        rng: np.random.Generator | None = None,
        noise_seed: int = 0,
        dtype=None,
    ):
        FullyQuantumAE.__init__(self, input_dim, n_layers, rng, dtype=dtype)
        rng = rng if rng is not None else np.random.default_rng(1)
        self.mu_head = Linear(
            self.latent_dim, self.latent_dim, rng=rng, dtype=self.precision
        )
        self.logvar_head = Linear(
            self.latent_dim, self.latent_dim, rng=rng, dtype=self.precision
        )
        self.seed_noise(noise_seed)

    def encode_distribution(self, x: Tensor) -> tuple[Tensor, Tensor]:
        hidden = self.encoder_q(x)
        return self.mu_head(hidden), self.logvar_head(hidden)


class HybridQuantumAE(Autoencoder):
    """H-BQ-AE: F-BQ-AE + latent map + final FC to original feature scale."""

    def __init__(
        self,
        input_dim: int = 64,
        n_layers: int = 3,
        rng: np.random.Generator | None = None,
        dtype=None,
    ):
        n_wires = _n_wires_for(input_dim)
        super().__init__(input_dim, latent_dim=n_wires)
        rng = rng if rng is not None else np.random.default_rng(0)
        precision = resolve_precision(dtype)
        self.precision = precision
        self.n_layers = n_layers
        self.encoder_q = QuantumLayer(
            amplitude_encoder_circuit(n_wires, input_dim, n_layers),
            rng=rng,
            dtype=precision,
        )
        self.decoder_q = QuantumLayer(
            probs_decoder_circuit(n_wires, n_layers), rng=rng, dtype=precision
        )
        self.latent_map = Linear(n_wires, n_wires, rng=rng, dtype=precision)
        self.output_map = Linear(input_dim, input_dim, rng=rng, dtype=precision)

    def encode(self, x: Tensor) -> Tensor:
        return self.latent_map(self.encoder_q(x))

    def decode(self, z: Tensor) -> Tensor:
        return self.output_map(self.decoder_q(z))

    def output_bias(self):
        return self.output_map.bias


class HybridQuantumVAE(VariationalMixin, HybridQuantumAE):
    """H-BQ-VAE: mu/logvar heads + latent-to-decoder map + final FC."""

    def __init__(
        self,
        input_dim: int = 64,
        n_layers: int = 3,
        rng: np.random.Generator | None = None,
        noise_seed: int = 0,
        dtype=None,
    ):
        HybridQuantumAE.__init__(self, input_dim, n_layers, rng, dtype=dtype)
        rng = rng if rng is not None else np.random.default_rng(1)
        self.mu_head = Linear(
            self.latent_dim, self.latent_dim, rng=rng, dtype=self.precision
        )
        self.logvar_head = Linear(
            self.latent_dim, self.latent_dim, rng=rng, dtype=self.precision
        )
        self.seed_noise(noise_seed)

    def encode_distribution(self, x: Tensor) -> tuple[Tensor, Tensor]:
        hidden = self.encoder_q(x)
        return self.mu_head(hidden), self.logvar_head(hidden)

    def decode(self, z: Tensor) -> Tensor:
        return self.output_map(self.decoder_q(self.latent_map(z)))