"""Scalable quantum autoencoders (Section III-C): SQ-AE and SQ-VAE.

The paper's qubit-efficient scaling recipe for 1024-feature ligands:

* **encoder** — a patched quantum circuit: the 1024 features split into
  ``p`` equal sub-vectors; patch ``k`` amplitude-embeds its ``1024/p``
  features into ``log2(1024/p)`` qubits, runs L strongly entangling layers,
  and returns per-qubit Z expectations.  Concatenated, these give the
  latent space of dimension LSD = ``p * log2(1024/p)`` (18/32/56/96 for
  p = 2/4/8/16);
* **decoder** — a second patched circuit: the latent splits into ``p``
  angle-embedded sub-circuits with expectation outputs ("probabilities from
  1024 basis states are too miniscule to be reconstructed"), followed by a
  final classical Linear(LSD, input) mapping measurements back to original
  ligand features;
* the AE adds a Linear(LSD, LSD) latent map (mirroring H-BQ-AE); the VAE
  instead adds Linear(LSD, LSD) mu / logvar heads for reparameterization.
"""

from __future__ import annotations

import numpy as np

from ..nn.modules import Linear
from ..nn.precision import resolve_precision
from ..nn.tensor import Tensor
from ..qnn.circuits import amplitude_encoder_circuit, angle_expval_circuit
from ..qnn.patched import PatchedQuantumLayer, patch_qubits
from .base import Autoencoder, VariationalMixin

__all__ = ["ScalableQuantumAE", "ScalableQuantumVAE"]

DEFAULT_SQ_LAYERS = 5  # selected by the paper's depth ablation (Fig. 6)


class ScalableQuantumAE(Autoencoder):
    """SQ-AE: patched quantum encoder/decoder with a classical output map.

    ``dtype`` selects the model precision end to end (quantum weights and
    statevector passes plus classical maps); None follows the active
    precision policy — float64 by default, ``dtype="float32"`` trains the
    whole autoencoder in single precision.
    """

    def __init__(
        self,
        input_dim: int = 1024,
        n_patches: int = 4,
        n_layers: int = DEFAULT_SQ_LAYERS,
        rng: np.random.Generator | None = None,
        dtype=None,
    ):
        qubits = patch_qubits(input_dim, n_patches)
        latent_dim = n_patches * qubits
        super().__init__(input_dim, latent_dim)
        rng = rng if rng is not None else np.random.default_rng(0)
        precision = resolve_precision(dtype)
        self.precision = precision
        self.n_patches = n_patches
        self.n_layers = n_layers
        self.qubits_per_patch = qubits
        per_patch_features = input_dim // n_patches

        self.encoder_q = PatchedQuantumLayer(
            lambda i: amplitude_encoder_circuit(
                qubits, per_patch_features, n_layers, zero_fallback=True
            ),
            n_patches=n_patches,
            rng=rng,
            dtype=precision,
        )
        self.decoder_q = PatchedQuantumLayer(
            lambda i: angle_expval_circuit(qubits, qubits, n_layers),
            n_patches=n_patches,
            rng=rng,
            dtype=precision,
        )
        self.latent_map = Linear(latent_dim, latent_dim, rng=rng, dtype=precision)
        self.output_map = Linear(latent_dim, input_dim, rng=rng, dtype=precision)

    def encode(self, x: Tensor) -> Tensor:
        return self.latent_map(self.encoder_q(x))

    def decode(self, z: Tensor) -> Tensor:
        return self.output_map(self.decoder_q(z))

    def output_bias(self):
        return self.output_map.bias


class ScalableQuantumVAE(VariationalMixin, ScalableQuantumAE):
    """SQ-VAE: the patched architecture with variational latent heads."""

    def __init__(
        self,
        input_dim: int = 1024,
        n_patches: int = 4,
        n_layers: int = DEFAULT_SQ_LAYERS,
        rng: np.random.Generator | None = None,
        noise_seed: int = 0,
        dtype=None,
    ):
        ScalableQuantumAE.__init__(
            self, input_dim, n_patches, n_layers, rng, dtype=dtype
        )
        rng = rng if rng is not None else np.random.default_rng(1)
        self.mu_head = Linear(
            self.latent_dim, self.latent_dim, rng=rng, dtype=self.precision
        )
        self.logvar_head = Linear(
            self.latent_dim, self.latent_dim, rng=rng, dtype=self.precision
        )
        self.seed_noise(noise_seed)

    def encode_distribution(self, x: Tensor) -> tuple[Tensor, Tensor]:
        hidden = self.encoder_q(x)
        return self.mu_head(hidden), self.logvar_head(hidden)

    def decode(self, z: Tensor) -> Tensor:
        return self.output_map(self.decoder_q(self.latent_map(z)))