"""Autoencoder model zoo: classical, baseline quantum, and scalable quantum.

Naming map to the paper:

=============  ===========================================
Paper name     Class
=============  ===========================================
AE / CAE       :class:`~repro.models.classical.ClassicalAE`
VAE / CVAE     :class:`~repro.models.classical.ClassicalVAE`
F-BQ-AE        :class:`~repro.models.baseline.FullyQuantumAE`
F-BQ-VAE       :class:`~repro.models.baseline.FullyQuantumVAE`
H-BQ-AE        :class:`~repro.models.baseline.HybridQuantumAE`
H-BQ-VAE       :class:`~repro.models.baseline.HybridQuantumVAE`
SQ-AE          :class:`~repro.models.scalable.ScalableQuantumAE`
SQ-VAE         :class:`~repro.models.scalable.ScalableQuantumVAE`
=============  ===========================================
"""

from .base import Autoencoder, AutoencoderOutput, VariationalMixin
from .baseline import (
    FullyQuantumAE,
    FullyQuantumVAE,
    HybridQuantumAE,
    HybridQuantumVAE,
)
from .classical import ClassicalAE, ClassicalVAE, default_hidden_dims
from .factory import (
    MODEL_CHOICES,
    build_from_metadata,
    build_model,
    model_metadata,
)
from .scalable import DEFAULT_SQ_LAYERS, ScalableQuantumAE, ScalableQuantumVAE

__all__ = [
    "MODEL_CHOICES",
    "build_model",
    "build_from_metadata",
    "model_metadata",
    "Autoencoder",
    "AutoencoderOutput",
    "VariationalMixin",
    "ClassicalAE",
    "ClassicalVAE",
    "default_hidden_dims",
    "FullyQuantumAE",
    "FullyQuantumVAE",
    "HybridQuantumAE",
    "HybridQuantumVAE",
    "ScalableQuantumAE",
    "ScalableQuantumVAE",
    "DEFAULT_SQ_LAYERS",
]
