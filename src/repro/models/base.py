"""Common autoencoder interface shared by classical and quantum variants.

Every model implements ``encode`` / ``decode`` / ``forward`` and reports its
latent dimension; variational models additionally support :meth:`sample`
(decode Gaussian prior noise — the red path in the paper's Fig. 2a).
Vanilla AEs deliberately raise on ``sample``: *"AEs support more accurate
reconstruction for the lack of latent variables but do not support sampling
new ligand molecules"* (Section I).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.modules import Module
from ..nn.tensor import Tensor, no_grad

__all__ = ["AutoencoderOutput", "Autoencoder", "VariationalMixin"]


@dataclass
class AutoencoderOutput:
    """Everything a forward pass produces (mu/logvar are None for AEs)."""

    reconstruction: Tensor
    latent: Tensor
    mu: Tensor | None = None
    logvar: Tensor | None = None


class Autoencoder(Module):
    """Base class: deterministic encode -> decode."""

    is_variational = False

    def __init__(self, input_dim: int, latent_dim: int):
        super().__init__()
        self.input_dim = input_dim
        self.latent_dim = latent_dim

    # -- to be implemented by subclasses --------------------------------
    def encode(self, x: Tensor) -> Tensor:
        raise NotImplementedError

    def decode(self, z: Tensor) -> Tensor:
        raise NotImplementedError

    # -- shared behaviour ------------------------------------------------
    def forward(self, x: Tensor) -> AutoencoderOutput:
        z = self.encode(x)
        return AutoencoderOutput(reconstruction=self.decode(z), latent=z)

    def reconstruct(self, features: np.ndarray) -> np.ndarray:
        """Numpy-in / numpy-out reconstruction without gradient tracking."""
        with no_grad():
            output = self.forward(Tensor(np.atleast_2d(features)))
        return output.reconstruction.data

    def sample(self, n_samples: int, rng: np.random.Generator) -> np.ndarray:
        raise TypeError(
            f"{type(self).__name__} is a vanilla autoencoder; only the "
            "variational models support prior sampling (Section I)"
        )

    def output_bias(self):
        """The final output layer's bias parameter, or None if there is none.

        Overridden by models ending in a classical affine layer; the fully
        quantum variants return None (their outputs are probabilities).
        """
        return None

    def init_output_bias(self, mean: np.ndarray) -> bool:
        """Warm-start the output bias at the training-data mean.

        A standard autoencoder initialization: the decoder then starts from
        the data centroid instead of zero, which makes short-budget sampling
        runs (Table II at the fast scale) produce non-empty molecules.
        Returns False when the model has no classical output bias.
        """
        bias = self.output_bias()
        if bias is None:
            return False
        # Cast to the parameter's own dtype: float64 feature means must not
        # silently widen a float32-built model (the checkpoint would then
        # record mixed widths and the sample path would warn on reload).
        mean = np.asarray(mean, dtype=bias.data.dtype)
        if mean.shape != bias.data.shape:
            raise ValueError(
                f"mean shape {mean.shape} != bias shape {bias.data.shape}"
            )
        bias.data = mean.copy()
        return True

    def parameter_count_by_group(self) -> dict[str, int]:
        """Trainable scalar counts split quantum/classical (Table I rows)."""
        counts = {"quantum": 0, "classical": 0}
        for param in self.parameters():
            group = getattr(param, "group", "classical")
            counts[group if group in counts else "classical"] += param.size
        counts["total"] = counts["quantum"] + counts["classical"]
        return counts


class VariationalMixin:
    """Adds reparameterized sampling to an autoencoder.

    Subclasses must define ``encode_distribution(x) -> (mu, logvar)`` and
    may rely on ``reparameterize`` and the shared ``sample``.  The log
    variance is clamped to ``LOGVAR_RANGE`` before use — on original-scale
    data an untrained head can emit values whose ``exp`` overflows the
    reconstruction loss (a standard VAE stabilization).
    """

    is_variational = True
    LOGVAR_RANGE = (-8.0, 8.0)

    def _noise_rng(self) -> np.random.Generator:
        rng = getattr(self, "_rng", None)
        if rng is None:
            rng = np.random.default_rng(0)
            self._rng = rng
        return rng

    def seed_noise(self, seed: int) -> None:
        """Reset the reparameterization noise stream (for reproducibility)."""
        self._rng = np.random.default_rng(seed)

    def encode_distribution(self, x: Tensor) -> tuple[Tensor, Tensor]:
        raise NotImplementedError

    def reparameterize(self, mu: Tensor, logvar: Tensor) -> Tensor:
        """z = mu + sigma * eps with eps ~ N(0, I) from the seeded stream."""
        eps = self._noise_rng().normal(size=mu.shape)
        # Noise adopts the latent dtype so float32 models stay float32.
        return mu + (logvar * 0.5).exp() * Tensor(eps, dtype=mu.dtype)

    def forward(self, x: Tensor) -> AutoencoderOutput:
        mu, logvar = self.encode_distribution(x)
        logvar = logvar.clip(*self.LOGVAR_RANGE)
        z = self.reparameterize(mu, logvar)
        return AutoencoderOutput(
            reconstruction=self.decode(z), latent=z, mu=mu, logvar=logvar
        )

    def encode(self, x: Tensor) -> Tensor:
        """Deterministic encoding = posterior mean."""
        mu, __ = self.encode_distribution(x)
        return mu

    def sample(self, n_samples: int, rng: np.random.Generator) -> np.ndarray:
        """Decode ``n_samples`` draws from the N(0, I) prior."""
        z = rng.normal(size=(n_samples, self.latent_dim))
        with no_grad():
            decoded = self.decode(Tensor(z))
        return decoded.data
