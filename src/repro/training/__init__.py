"""Training runtime: shared loop, pluggable step strategies, histories."""

from .history import EpochRecord, History
from .losses import LossTerms, autoencoder_loss
from .parallel import ParallelTrainStep, ShardedTrainStep
from .strategies import SequentialTrainStep, TrainStep, clip_grad_norm
from .trainer import (
    PAPER_CLASSICAL_LR,
    PAPER_QUANTUM_LR,
    TrainConfig,
    Trainer,
    evaluate_reconstruction,
)

__all__ = [
    "History",
    "EpochRecord",
    "LossTerms",
    "autoencoder_loss",
    "TrainConfig",
    "Trainer",
    "TrainStep",
    "SequentialTrainStep",
    "ShardedTrainStep",
    "ParallelTrainStep",
    "clip_grad_norm",
    "evaluate_reconstruction",
    "PAPER_QUANTUM_LR",
    "PAPER_CLASSICAL_LR",
]
