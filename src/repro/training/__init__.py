"""Training loop, losses, and run histories."""

from .history import EpochRecord, History
from .losses import LossTerms, autoencoder_loss
from .trainer import (
    PAPER_CLASSICAL_LR,
    PAPER_QUANTUM_LR,
    TrainConfig,
    Trainer,
    evaluate_reconstruction,
)

__all__ = [
    "History",
    "EpochRecord",
    "LossTerms",
    "autoencoder_loss",
    "TrainConfig",
    "Trainer",
    "evaluate_reconstruction",
    "PAPER_QUANTUM_LR",
    "PAPER_CLASSICAL_LR",
]
