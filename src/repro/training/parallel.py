"""Shared-memory data-parallel training strategies.

:class:`ParallelTrainStep` shards every mini-batch across ``N`` spawned
worker processes.  The transport is two ``multiprocessing.shared_memory``
blocks:

* a *state* block holding the master's parameters (offset 0) followed by
  one gradient region per worker, laid out by the picklable
  :class:`~repro.nn.flat.FlatLayout` both sides share;
* a *feature* block holding the training matrix once, so a dispatched
  task is just an index array on a queue.

Workers never receive a pickled module.  Each rebuilds the architecture
from :func:`repro.models.factory.model_metadata` and re-enters the run's
execution context from picklable descriptors
(:meth:`repro.nn.precision.Precision.descriptor`,
:meth:`repro.quantum.backends.KernelBackend.descriptor`), then serves a
queue of index batches: sync parameters from the state block, run
forward/loss/backward on its shard, publish gradients into its own
region, and report which parameters actually produced one.

**Reduction-order determinism contract.**  The master reduces shard
gradients and loss terms in fixed worker order with weights
``rows_k / total_rows``::

    acc  = w_0 * g_0
    acc += w_1 * g_1
    ...

For a given worker count the result is a pure function of the model
state and batch — reruns are bit-for-bit identical.  With one worker the
weight is exactly ``1.0`` and the reduction is the identity, so
``workers=1`` reproduces the sequential trainer *bit for bit* (plain
``==`` on parameters and losses) for deterministic models.
:class:`ShardedTrainStep` runs the same shard/reduce pipeline in
process — the reference that ``workers=N`` must match exactly.

Variational models carry per-process noise RNGs: each worker's stream
advances independently, so VAE runs are deterministic per worker count
but do not bitwise-match a single-stream reference.  The equality
anchors therefore use the deterministic (non-variational) models.
"""

from __future__ import annotations

import queue as queue_module
import traceback
from multiprocessing import get_context, shared_memory

import numpy as np

from ..models.factory import build_from_metadata, model_metadata
from ..nn.flat import (
    FlatLayout,
    gradient_layout,
    parameter_layout,
    read_parameters,
    unique_named_parameters,
    write_gradients,
    write_parameters,
)
from ..nn.precision import precision_from_descriptor, use_precision
from ..nn.tensor import Tensor
from ..quantum.backends import backend_from_descriptor, resolve_backend, use_backend
from .losses import LossTerms, autoencoder_loss
from .strategies import TrainStep

__all__ = [
    "ParallelTrainStep",
    "ShardedTrainStep",
    "split_indices",
    "reduce_gradients",
    "reduce_loss_terms",
]

# How long one result-queue poll blocks before re-checking worker
# liveness; bounds how late a hard worker death is noticed.
_POLL_SECONDS = 0.2
# Grace period for an exiting worker's final message to arrive before a
# death is reported without its traceback.
_DRAIN_SECONDS = 1.0
_JOIN_SECONDS = 5.0


def split_indices(indices: np.ndarray, n_shards: int) -> list[np.ndarray]:
    """Contiguously split a batch's index array into ≤ ``n_shards`` shards.

    ``np.array_split`` order — shard boundaries depend only on the batch
    size and shard count, so master and any reference implementation
    agree on them.  Empty shards (batch smaller than the worker pool) are
    dropped; with one shard the batch passes through unchanged.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be positive")
    return [s for s in np.array_split(indices, n_shards) if s.size]


def shard_weights(shards: list[np.ndarray]) -> list[float]:
    """``rows_k / total_rows`` per shard; exactly ``[1.0]`` for one shard."""
    total = sum(s.size for s in shards)
    return [s.size / total for s in shards]


def reduce_gradients(model, shard_grads, weights) -> None:
    """Weighted-sum shard gradients into ``param.grad``, in shard order.

    ``shard_grads`` is a list of ``(present_names, views)`` pairs — the
    tuple :func:`~repro.nn.flat.write_gradients` returned plus a
    name-to-array mapping.  Every unique parameter is assigned: the fixed
    ``w_0*g_0 + w_1*g_1 + ...`` accumulation when any shard produced a
    gradient, or ``None`` when none did (the optimizer then skips it,
    exactly as after a sequential backward that never touched it).
    """
    for name, param in unique_named_parameters(model):
        acc = None
        for (present, views), weight in zip(shard_grads, weights):
            if name not in present:
                continue
            if acc is None:
                acc = weight * views[name]
            else:
                acc += weight * views[name]
        param.grad = acc


def reduce_loss_terms(shard_terms, weights) -> LossTerms:
    """Row-weighted mean of shard loss terms, in shard order from 0.0."""
    total = recon = kl = 0.0
    for (t, r, k), weight in zip(shard_terms, weights):
        total += weight * t
        recon += weight * r
        kl += weight * k
    return LossTerms(total=total, reconstruction=recon, kl=kl)


def _clear_grads(model) -> None:
    """Drop every gradient so the next backward allocates fresh buffers."""
    for _, param in unique_named_parameters(model):
        param.grad = None


def _shard_forward_backward(model, features, indices, real, beta):
    """One shard's gradient computation — the worker and the in-process
    reference run this exact function, so their arithmetic is identical."""
    _clear_grads(model)
    batch = features[indices]
    output = model(Tensor(batch, dtype=real))
    loss, terms = autoencoder_loss(output, Tensor(batch, dtype=real), beta=beta)
    loss.backward()
    return terms


class ShardedTrainStep(TrainStep):
    """In-process reference for the parallel reduction order.

    Runs the shards of each batch sequentially on the master model and
    reduces through the same :func:`reduce_gradients` /
    :func:`reduce_loss_terms` helpers in the same order, so
    ``ParallelTrainStep(n)`` must match it bit for bit (deterministic
    models) — the correctness anchor that separates "parallelism bug"
    from "expected reduction-order float drift" in tests.
    """

    name = "sharded"

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise ValueError("n_shards must be positive")
        self.n_shards = n_shards

    def step(self, indices: np.ndarray) -> LossTerms:
        real = self.precision.real
        shards = split_indices(indices, self.n_shards)
        weights = shard_weights(shards)
        shard_grads = []
        shard_terms = []
        for shard in shards:
            terms = _shard_forward_backward(
                self.model, self.features, shard, real, self.config.beta
            )
            present = []
            views = {}
            for name, param in unique_named_parameters(self.model):
                if param.grad is not None:
                    present.append(name)
                    views[name] = param.grad.copy()
            shard_grads.append((tuple(present), views))
            shard_terms.append((terms.total, terms.reconstruction, terms.kl))
        reduce_gradients(self.model, shard_grads, weights)
        terms = reduce_loss_terms(shard_terms, weights)
        self.apply_update()
        return terms


def _attach_shared_memory(name: str) -> shared_memory.SharedMemory:
    """Attach an existing block; the master owns unlinking.

    Spawned children share the master's ``resource_tracker`` (the fd
    rides along in the spawn preparation data), so the attach-time
    registration this performs is an idempotent no-op on the tracker's
    cache and the master's eventual ``unlink`` clears the single entry.
    Do NOT unregister here: a second unregister for the same name makes
    the shared tracker raise ``KeyError`` when the master unlinks.
    """
    return shared_memory.SharedMemory(name=name)


def _worker_main(payload: dict, work_queue, result_queue) -> None:
    """Worker-process entry point: serve index batches until ``stop``.

    Everything in ``payload`` is picklable by construction — layouts,
    model metadata, precision/backend descriptors — and the model is
    rebuilt here, never unpickled.
    """
    index = payload["index"]
    state_shm = features_shm = None
    try:
        state_shm = _attach_shared_memory(payload["state_shm"])
        features_shm = _attach_shared_memory(payload["features_shm"])
        param_layout: FlatLayout = payload["param_layout"]
        grad_layout: FlatLayout = payload["grad_layout"]
        grad_base: int = payload["grad_base"]
        beta: float = payload["beta"]
        features = np.ndarray(
            payload["features_shape"], dtype=np.float64, buffer=features_shm.buf
        )
        precision = precision_from_descriptor(payload["precision"])
        backend = backend_from_descriptor(payload["backend"])
        with use_precision(precision), use_backend(backend):
            model = build_from_metadata(payload["metadata"])
            model.train()
            real = precision.real
            result_queue.put(("ready", index))
            while True:
                task = work_queue.get()
                if task[0] == "stop":
                    break
                _, step_id, indices = task
                read_parameters(model, param_layout, state_shm.buf)
                terms = _shard_forward_backward(
                    model, features, indices, real, beta
                )
                present = write_gradients(
                    model, grad_layout, state_shm.buf, base=grad_base
                )
                result_queue.put(
                    (
                        "ok",
                        index,
                        step_id,
                        present,
                        (terms.total, terms.reconstruction, terms.kl),
                    )
                )
    except Exception:
        try:
            result_queue.put(("error", index, traceback.format_exc()))
        except Exception:
            pass
    finally:
        for shm in (state_shm, features_shm):
            if shm is not None:
                try:
                    shm.close()
                except Exception:
                    pass


class ParallelTrainStep(TrainStep):
    """Shared-memory data-parallel strategy; see the module docstring.

    ``setup`` owns the expensive part — two shared-memory blocks and
    ``n_workers`` spawned processes, each paying the interpreter+model
    startup cost once per ``fit``.  ``close`` is idempotent, runs on
    every fit exit path (the trainer wraps the epoch loop in
    ``try/finally``), and always releases the shared memory, even when
    workers have to be terminated.
    """

    name = "parallel"

    def __init__(self, n_workers: int):
        if not isinstance(n_workers, int) or n_workers < 1:
            raise ValueError(
                f"n_workers must be a positive integer, got {n_workers!r}"
            )
        self.n_workers = n_workers
        self._closed = True  # nothing to release until setup ran
        self._procs = []
        self._work_queues = []
        self._result_queue = None
        self._shms = []
        self._step_id = 0

    # -- lifecycle ------------------------------------------------------

    def setup(self, trainer, features: np.ndarray) -> None:
        super().setup(trainer, features)
        metadata = model_metadata(self.model, seed=self.config.seed)
        self._validate_rebuild(metadata)
        self.param_layout = parameter_layout(self.model)
        self.grad_layout = gradient_layout(self.model, self.precision)
        # Per-worker gradient regions tile the state block after the
        # parameter region; FlatLayout.nbytes is 16-byte aligned, so
        # every region starts aligned.
        self._grad_bases = [
            self.param_layout.nbytes + k * self.grad_layout.nbytes
            for k in range(self.n_workers)
        ]
        state_bytes = (
            self.param_layout.nbytes
            + self.n_workers * self.grad_layout.nbytes
        )
        features = np.ascontiguousarray(features, dtype=np.float64)
        self.features = features
        self._closed = False
        try:
            ctx = get_context("spawn")
            state_shm = shared_memory.SharedMemory(
                create=True, size=max(state_bytes, 1)
            )
            self._shms.append(state_shm)
            features_shm = shared_memory.SharedMemory(
                create=True, size=max(features.nbytes, 1)
            )
            self._shms.append(features_shm)
            shared_features = np.ndarray(
                features.shape, dtype=np.float64, buffer=features_shm.buf
            )
            shared_features[...] = features
            self._state_shm = state_shm
            self._result_queue = ctx.Queue()
            # setup runs inside fit's precision/backend scopes, so the
            # *resolved* active backend is the one workers must mirror.
            backend_descriptor = resolve_backend(None).descriptor()
            for k in range(self.n_workers):
                work_queue = ctx.Queue()
                payload = {
                    "index": k,
                    "state_shm": state_shm.name,
                    "features_shm": features_shm.name,
                    "param_layout": self.param_layout,
                    "grad_layout": self.grad_layout,
                    "grad_base": self._grad_bases[k],
                    "features_shape": features.shape,
                    "metadata": metadata,
                    "precision": self.precision.descriptor(),
                    "backend": backend_descriptor,
                    "beta": self.config.beta,
                }
                proc = ctx.Process(
                    target=_worker_main,
                    args=(payload, work_queue, self._result_queue),
                    name=f"repro-train-worker-{k}",
                    daemon=True,
                )
                proc.start()
                self._procs.append(proc)
                self._work_queues.append(work_queue)
            self._await_ready()
        except BaseException:
            self.close()
            raise

    def _validate_rebuild(self, metadata: dict) -> None:
        """Fail fast when a worker rebuild would not mirror this model.

        ``model_metadata`` covers the factory hyperparameters, not every
        constructor argument — e.g. a ``ClassicalAE`` built with custom
        ``hidden_dims`` rebuilds with the defaults.  Probe-build once on
        the master and compare parameter layouts before paying for any
        worker spawn.
        """
        probe = build_from_metadata(metadata)
        probe_specs = parameter_layout(probe).specs()
        model_specs = parameter_layout(self.model).specs()
        if probe_specs != model_specs:
            raise ValueError(
                f"cannot data-parallel train this {type(self.model).__name__}:"
                f" rebuilding it from factory metadata {metadata!r} yields "
                "different parameters (e.g. non-default hidden_dims); "
                f"rebuilt {probe_specs!r} vs model {model_specs!r}"
            )

    def _await_ready(self) -> None:
        """Block until every worker finished building its model."""
        ready = set()
        while len(ready) < self.n_workers:
            message = self._next_message()
            if message[0] == "ready":
                ready.add(message[1])
            # anything else ("ok" for a step not yet dispatched) is
            # impossible here; errors raise inside _next_message

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for work_queue, proc in zip(self._work_queues, self._procs):
            if proc.is_alive():
                try:
                    work_queue.put(("stop",))
                except Exception:
                    pass
        for proc in self._procs:
            proc.join(timeout=_JOIN_SECONDS)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=_JOIN_SECONDS)
        queues = list(self._work_queues)
        if self._result_queue is not None:
            queues.append(self._result_queue)
        for q in queues:
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:
                pass
        for shm in self._shms:
            try:
                shm.close()
            except Exception:
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
            except Exception:
                pass
        self._procs = []
        self._work_queues = []
        self._result_queue = None
        self._shms = []

    # -- the step -------------------------------------------------------

    def step(self, indices: np.ndarray) -> LossTerms:
        if self._closed:
            raise RuntimeError("ParallelTrainStep is closed (setup not active)")
        self._step_id += 1
        step_id = self._step_id
        # Publish the authoritative parameters.  They live on the master
        # (Adam rebinds param.data each update, so parameters cannot be
        # long-lived shared-memory views); one copy pass per step.
        write_parameters(self.model, self.param_layout, self._state_shm.buf)
        shards = split_indices(indices, self.n_workers)
        weights = shard_weights(shards)
        for k, shard in enumerate(shards):
            self._work_queues[k].put(("step", step_id, shard))
        results = self._collect(len(shards), step_id)
        shard_grads = []
        shard_terms = []
        for k in range(len(shards)):
            present, terms = results[k]
            views = self.grad_layout.views(
                self._state_shm.buf, base=self._grad_bases[k]
            )
            shard_grads.append((present, views))
            shard_terms.append(terms)
        reduce_gradients(self.model, shard_grads, weights)
        terms = reduce_loss_terms(shard_terms, weights)
        self.apply_update()
        return terms

    def _collect(self, expected: int, step_id: int) -> dict:
        """Gather one result per dispatched shard, keyed by worker index."""
        results: dict = {}
        while len(results) < expected:
            message = self._next_message()
            if message[0] != "ok":
                continue  # late "ready" duplicates are harmless
            _, worker, seen_step, present, terms = message
            if seen_step != step_id:
                continue  # stale result from an aborted step
            results[worker] = (present, terms)
        return results

    def _next_message(self):
        """One result-queue message; raises promptly on worker failure."""
        while True:
            try:
                message = self._result_queue.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                self._check_alive()
                continue
            if message[0] == "error":
                _, worker, tb = message
                proc = self._procs[worker]
                raise RuntimeError(
                    f"data-parallel worker {worker} "
                    f"({proc.name}, pid {proc.pid}) failed:\n{tb}"
                )
            return message

    def _check_alive(self) -> None:
        """Raise naming any dead worker — a crash must never hang ``fit``."""
        dead = [
            (k, proc)
            for k, proc in enumerate(self._procs)
            if not proc.is_alive()
        ]
        if not dead:
            return
        # Give an exiting worker's final error message a moment to land
        # so the traceback makes it into the exception.
        deadline_polls = int(_DRAIN_SECONDS / _POLL_SECONDS)
        for _ in range(deadline_polls):
            try:
                message = self._result_queue.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                break
            if message[0] == "error":
                _, worker, tb = message
                proc = self._procs[worker]
                raise RuntimeError(
                    f"data-parallel worker {worker} "
                    f"({proc.name}, pid {proc.pid}) failed:\n{tb}"
                )
        k, proc = dead[0]
        raise RuntimeError(
            f"data-parallel worker {k} ({proc.name}, pid {proc.pid}) died "
            f"with exit code {proc.exitcode} before returning its gradient "
            "shard"
        )
