"""Pluggable training execution strategies (the ``TrainStep`` seam).

:class:`~repro.training.trainer.Trainer` owns everything that happens
*between* optimizer updates — epoch accounting, the scheduler, early
stopping, history — while a :class:`TrainStep` strategy owns the update
itself.  The contract:

* ``setup(trainer, features)`` binds the strategy to one ``fit`` call:
  the trainer's model/optimizer/config and the training feature matrix.
  It runs inside the fit's precision and backend scopes, so a strategy
  that captures execution context (the parallel one) reads the *resolved*
  policies here.
* ``step(indices)`` performs exactly one optimizer update from the rows
  ``features[indices]`` — forward, loss, backward, optional gradient
  clipping, ``optimizer.step()`` — and returns the batch's
  :class:`~repro.training.losses.LossTerms`.  The trainer's model holds
  the post-update parameters when it returns, whatever machinery computed
  the gradients.
* ``close()`` releases whatever ``setup`` acquired; the trainer calls it
  on every exit path (including a ``step`` raising mid-epoch), and it
  must be idempotent.

:class:`SequentialTrainStep` is the default strategy: the original
single-process loop body, bit-for-bit.  The data-parallel strategies live
in :mod:`repro.training.parallel`.
"""

from __future__ import annotations

import numpy as np

from ..nn.tensor import Tensor
from .losses import LossTerms, autoencoder_loss

__all__ = ["TrainStep", "SequentialTrainStep", "clip_grad_norm"]


def clip_grad_norm(parameters, max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (torch semantics).  Parameters without
    gradients are skipped; a norm *exactly* at ``max_norm`` is left
    untouched.  Scaling happens in place (``out=p.grad``) — one steady
    buffer per parameter instead of a fresh allocation per clipped step.

    The squared temporaries are forced into C order before summing:
    ``.sum()`` reduces in *memory* order, so an F-ordered gradient (a
    matmul VJP is often a transposed view) would otherwise round its
    pairwise sum differently from a C-ordered copy of the same values —
    the norm must not depend on gradient memory layout, or the
    data-parallel strategies (whose reduced gradients are C-contiguous)
    could never bitwise-match the sequential path.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(
        float(np.multiply(p.grad, p.grad, order="C").sum()) for p in params
    )))
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for param in params:
            np.multiply(param.grad, scale, out=param.grad)
    return total


class TrainStep:
    """One optimizer update's execution strategy; see the module docstring."""

    name = "abstract"

    def setup(self, trainer, features: np.ndarray) -> None:
        """Bind to one ``fit`` call (model, optimizer, config, data)."""
        self.model = trainer.model
        self.optimizer = trainer.optimizer
        self.config = trainer.config
        self.precision = trainer.precision
        self.features = features

    def step(self, indices: np.ndarray) -> LossTerms:
        """Run one optimizer update over ``features[indices]``."""
        raise NotImplementedError

    def close(self) -> None:
        """Release per-fit resources; idempotent, called on every exit."""

    # -- shared update tail ---------------------------------------------
    def apply_update(self) -> None:
        """Clip (when configured) and step the optimizer on current grads.

        Every strategy funnels through this once its gradients are in the
        master model's ``param.grad`` buffers, so clipping and the
        optimizer see identical arithmetic whatever computed them.
        """
        if self.config.max_grad_norm is not None:
            clip_grad_norm(self.model.parameters(), self.config.max_grad_norm)
        self.optimizer.step()


class SequentialTrainStep(TrainStep):
    """The default in-process strategy (the historical loop body)."""

    name = "sequential"

    def step(self, indices: np.ndarray) -> LossTerms:
        real = self.precision.real
        batch = self.features[indices]
        # set_to_none pairs with the compiled tape (repro.nn.graph):
        # full-size batches re-record structurally identical tapes, so
        # every backward after the first runs one cached GraphPlan with
        # reused cotangent buffers, and dropping .grad lets leaves adopt
        # the plan's fresh outputs instead of accumulating into stale
        # zeroed buffers.
        self.optimizer.zero_grad(set_to_none=True)
        output = self.model(Tensor(batch, dtype=real))
        loss, terms = autoencoder_loss(
            output, Tensor(batch, dtype=real), beta=self.config.beta
        )
        loss.backward()
        self.apply_update()
        return terms
