"""Autoencoder training objectives.

The paper reports "Train MSE Loss" throughout, i.e. the reconstruction term
is mean squared error; variational models add the KL divergence to the
standard-normal prior (negative ELBO with a Gaussian decoder).  The KL term
is normalized by feature count so reconstruction and regularization stay on
comparable scales across the 64- and 1024-dimensional experiments; ``beta``
rescales it on top (beta = 1 is the plain ELBO up to that normalization).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.base import AutoencoderOutput
from ..nn import functional as F
from ..nn.tensor import Tensor

__all__ = ["LossTerms", "autoencoder_loss"]


@dataclass
class LossTerms:
    """Scalar diagnostics from one loss evaluation."""

    total: float
    reconstruction: float
    kl: float


def autoencoder_loss(
    output: AutoencoderOutput, target: Tensor, beta: float = 1.0
) -> tuple[Tensor, LossTerms]:
    """MSE reconstruction plus (for variational outputs) the KL term.

    Returns the differentiable total loss and detached float diagnostics.
    """
    recon = F.mse_loss(output.reconstruction, target)
    if output.mu is not None and output.logvar is not None:
        n_features = target.shape[-1]
        kl = F.gaussian_kl(output.mu, output.logvar) * (1.0 / n_features)
        total = recon + kl * beta
        return total, LossTerms(total.item(), recon.item(), kl.item())
    return recon, LossTerms(recon.item(), recon.item(), 0.0)
