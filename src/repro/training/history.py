"""Training history records: per-epoch losses and evaluation curves."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EpochRecord", "History"]


@dataclass
class EpochRecord:
    """Mean losses over one epoch (test fields None when not evaluated).

    ``seconds`` is the epoch's wall-clock time as measured by the trainer
    (training steps plus the per-epoch test evaluation); None for records
    built outside the training loop.
    """

    epoch: int
    train_loss: float
    train_reconstruction: float
    train_kl: float
    test_loss: float | None = None
    test_reconstruction: float | None = None
    seconds: float | None = None


@dataclass
class History:
    """Full training trace for one run."""

    epochs: list[EpochRecord] = field(default_factory=list)
    batch_losses: list[float] = field(default_factory=list)

    def append(self, record: EpochRecord) -> None:
        self.epochs.append(record)

    @property
    def train_losses(self) -> list[float]:
        return [r.train_loss for r in self.epochs]

    @property
    def train_reconstructions(self) -> list[float]:
        return [r.train_reconstruction for r in self.epochs]

    @property
    def test_losses(self) -> list[float]:
        return [r.test_loss for r in self.epochs if r.test_loss is not None]

    @property
    def final_train_loss(self) -> float:
        if not self.epochs:
            raise ValueError("history is empty")
        return self.epochs[-1].train_loss

    @property
    def final_test_loss(self) -> float | None:
        if not self.epochs:
            raise ValueError("history is empty")
        return self.epochs[-1].test_loss

    def loss_at_epoch(self, epoch: int, split: str = "train") -> float:
        """Loss after a given 1-based epoch (Fig. 6 reads epochs 5 and 10)."""
        for record in self.epochs:
            if record.epoch == epoch:
                if split == "train":
                    return record.train_loss
                if split == "test":
                    if record.test_loss is None:
                        raise ValueError(f"epoch {epoch} has no test loss")
                    return record.test_loss
                raise ValueError(f"unknown split {split!r}")
        raise KeyError(f"no record for epoch {epoch}")
