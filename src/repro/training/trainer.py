"""Training loop with the paper's optimizer configuration.

Section IV-B: mini-batches of 32, Adam with default betas (0.9, 0.999),
learning rate 0.001 for the depth study, and — after the Fig. 7 ablation —
*heterogeneous* learning rates: 0.03 for quantum rotation angles and 0.01
for classical weights.  :class:`TrainConfig` exposes exactly those knobs.

The loop itself is split in two: :class:`Trainer` runs everything that
happens *between* optimizer updates (epoch accounting, the scheduler,
early stopping, history), while a :class:`~repro.training.strategies
.TrainStep` strategy executes each update.  The default strategy is the
historical in-process loop body; ``TrainConfig.workers`` swaps in the
shared-memory data-parallel strategy from :mod:`repro.training.parallel`.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..data.loader import ArrayDataset, DataLoader
from ..models.base import Autoencoder
from ..nn.optim import Optimizer, heterogeneous_adam
from ..nn.precision import resolve_precision, use_precision
from ..nn.schedulers import LRScheduler
from ..nn.tensor import Tensor, no_grad
from ..quantum.backends import resolve_backend, use_backend
from .history import EpochRecord, History
from .strategies import SequentialTrainStep, TrainStep, clip_grad_norm

__all__ = ["TrainConfig", "Trainer", "evaluate_reconstruction",
           "clip_grad_norm"]

PAPER_QUANTUM_LR = 0.03
PAPER_CLASSICAL_LR = 0.01


@dataclass
class TrainConfig:
    """Hyperparameters for one training run."""

    epochs: int = 20
    batch_size: int = 32
    quantum_lr: float = 0.001
    classical_lr: float = 0.001
    beta: float = 1.0  # KL weight (variational models only)
    seed: int = 0
    shuffle: bool = True
    max_grad_norm: float | None = None  # global-norm gradient clipping
    early_stop_patience: int | None = None  # epochs without test improvement
    # Precision policy for the whole run (None = active policy, float64 by
    # default).  "float32" casts every batch to single precision and scopes
    # the policy over the loop, so gradients/optimizer state follow too —
    # pair with a model built with the same dtype to train fully in float32.
    precision: str | None = None
    # Kernel backend for the whole run (None = active policy, NumPy by
    # default).  "threaded" scopes the row-sharding backend over the loop,
    # so every quantum layer's stacked passes run on the worker pool.
    backend: str | None = None
    # Data-parallel worker processes (None = single-process strategy).
    # Each batch is sharded across N spawned workers that compute
    # gradients against a shared-memory parameter block; the master
    # reduces them in fixed worker order, so a given N is deterministic
    # and workers=1 reproduces the sequential trainer bit for bit.
    workers: int | None = None
    # Learning-rate schedule: a factory called once with the optimizer
    # (e.g. ``lambda opt: StepLR(opt, step_size=5, gamma=0.5)``) and
    # stepped once per epoch.  Schedulers rescale every parameter group
    # relative to its initial lr, so the paper's heterogeneous
    # quantum/classical ratio is preserved across the decay.
    scheduler: Callable[[Optimizer], LRScheduler] | None = None

    @classmethod
    def paper_sq(cls, epochs: int = 20, seed: int = 0) -> "TrainConfig":
        """The final SQ-VAE/AE configuration (Fig. 7's best cell)."""
        return cls(
            epochs=epochs,
            quantum_lr=PAPER_QUANTUM_LR,
            classical_lr=PAPER_CLASSICAL_LR,
            seed=seed,
        )


class Trainer:
    """Fits one autoencoder on one dataset and records the loss trace."""

    def __init__(
        self,
        model: Autoencoder,
        config: TrainConfig,
        strategy: TrainStep | None = None,
    ):
        self.model = model
        self.config = config
        self.precision = resolve_precision(config.precision)
        # None stays None (follow the active backend policy at fit time —
        # a caller's use_backend scope must not be overridden); an
        # explicit config.backend pins the whole run.
        self.backend = (
            None if config.backend is None else resolve_backend(config.backend)
        )
        self.optimizer = heterogeneous_adam(
            model, quantum_lr=config.quantum_lr, classical_lr=config.classical_lr
        )
        self.scheduler = (
            config.scheduler(self.optimizer)
            if config.scheduler is not None
            else None
        )
        if strategy is None:
            if config.workers is None:
                strategy = SequentialTrainStep()
            else:
                from .parallel import ParallelTrainStep

                strategy = ParallelTrainStep(config.workers)
        self.strategy = strategy

    def fit(
        self,
        train_data: ArrayDataset,
        test_data: ArrayDataset | None = None,
    ) -> History:
        """Train for ``config.epochs`` epochs; evaluates test loss per epoch.

        The whole loop runs under the config's precision policy (batches
        are cast to its real dtype and gradient buffers follow its
        accumulation rule) and kernel backend (every quantum execution
        dispatches through it).
        """
        with use_precision(self.precision), self._backend_scope():
            return self._fit(train_data, test_data)

    def _backend_scope(self):
        """The config's backend scope — a no-op when it follows the policy."""
        return nullcontext() if self.backend is None else use_backend(self.backend)

    def _fit(
        self,
        train_data: ArrayDataset,
        test_data: ArrayDataset | None = None,
    ) -> History:
        config = self.config
        # The patience counter only ever advances on test losses; without
        # test data it was silently ignored and training ran every epoch.
        if config.early_stop_patience is not None and test_data is None:
            raise ValueError(
                f"early_stop_patience={config.early_stop_patience} requires "
                "test_data: the patience counter advances on per-epoch test "
                "losses, so without a test set it would silently never stop"
            )
        loader = DataLoader(
            train_data,
            batch_size=config.batch_size,
            shuffle=config.shuffle,
            seed=config.seed,
        )
        # An empty loader used to surface as a bare ZeroDivisionError from
        # the epoch-mean division below; fail up front with the cause.
        if len(loader) == 0:
            raise ValueError(
                f"training loader yields no batches: dataset has "
                f"{len(train_data)} sample(s) at batch_size="
                f"{config.batch_size}"
            )
        history = History()
        best_test = float("inf")
        epochs_since_best = 0
        self.strategy.setup(self, train_data.features)
        try:
            for epoch in range(1, config.epochs + 1):
                started = time.perf_counter()
                epoch_total = epoch_recon = epoch_kl = 0.0
                n_batches = 0
                self.model.train()
                for indices in loader.iter_index_batches():
                    terms = self.strategy.step(indices)
                    epoch_total += terms.total
                    epoch_recon += terms.reconstruction
                    epoch_kl += terms.kl
                    n_batches += 1
                    history.batch_losses.append(terms.total)
                record = EpochRecord(
                    epoch=epoch,
                    train_loss=epoch_total / n_batches,
                    train_reconstruction=epoch_recon / n_batches,
                    train_kl=epoch_kl / n_batches,
                )
                if test_data is not None:
                    record.test_loss = self.evaluate(test_data)
                    record.test_reconstruction = record.test_loss
                record.seconds = time.perf_counter() - started
                history.append(record)
                if self.scheduler is not None:
                    self.scheduler.step()
                if (
                    config.early_stop_patience is not None
                    and record.test_loss is not None
                ):
                    if record.test_loss < best_test - 1e-12:
                        best_test = record.test_loss
                        epochs_since_best = 0
                    else:
                        epochs_since_best += 1
                        if epochs_since_best >= config.early_stop_patience:
                            break
        finally:
            self.strategy.close()
        return history

    def evaluate(self, data: ArrayDataset) -> float:
        """Mean reconstruction MSE over a dataset (no gradient tracking).

        Runs under the config's precision policy *and* backend scope —
        evaluation used to pick up whatever ambient precision the caller
        had active, so a float32-configured trainer evaluated in float64
        when called outside ``fit``.
        """
        with use_precision(self.precision), self._backend_scope():
            return evaluate_reconstruction(
                self.model, data, self.config.batch_size, dtype=self.precision
            )


@no_grad()
def evaluate_reconstruction(
    model: Autoencoder, data: ArrayDataset, batch_size: int = 32, dtype=None
) -> float:
    """Reconstruction MSE of ``model`` on ``data`` (posterior mean path).

    Runs entirely untracked (``no_grad`` in decorator form — nothing here
    needs a tape).  ``dtype`` casts each batch to the policy's real dtype
    before encoding (None follows the active policy); the squared error
    itself accumulates in float64 either way.

    The model's mode is restored on exit: every submodule gets back the
    ``training`` flag it entered with (an unconditional ``model.train()``
    here used to clobber a caller's eval mode).
    """
    if len(data) == 0:
        raise ValueError("cannot evaluate reconstruction on an empty dataset")
    real = resolve_precision(dtype).real
    prior_modes = [(module, module.training) for module in model.modules()]
    model.eval()
    total = 0.0
    count = 0
    try:
        for start in range(0, len(data), batch_size):
            batch = data.features[start : start + batch_size]
            recon = model.decode(model.encode(Tensor(batch, dtype=real)))
            total += float(
                ((recon.data.astype(np.float64) - batch) ** 2).sum()
            )
            count += batch.size
    finally:
        for module, was_training in prior_modes:
            module.training = was_training
    return total / count
