"""JSON-lines TCP front end for :class:`GenerationService`.

The wire protocol is deliberately tiny and dependency-free: one JSON
object per line in each direction, arrays as nested lists.  Requests::

    {"kind": "sample", "count": 8, "seed": 3}
    {"kind": "encode", "features": [[...], ...]}
    {"kind": "score", "matrices": [[[...], ...], ...]}
    {"kind": "ping"} / {"kind": "stats"}

Responses carry ``{"ok": true, ...}`` with the result fields, or
``{"ok": false, "error": <name>, "message": <text>}`` where ``error`` is
one of ``queue_full`` / ``request_timeout`` / ``service_closed`` /
``bad_request`` / ``error`` — :class:`repro.serving.client.NetworkClient`
maps these back onto the :class:`ServingError` hierarchy.

Each connection gets its own handler thread
(``socketserver.ThreadingTCPServer``), so concurrent connections submit
concurrently and the :class:`MicroBatcher` fuses their requests into
stacked passes — the TCP layer is just transport, all batching lives in
the service.
"""

from __future__ import annotations

import json
import socketserver
import threading

import numpy as np

from .batcher import QueueFull, RequestTimeout, ServiceClosed

__all__ = ["GenerationServer"]


def _error_name(exc: Exception) -> str:
    if isinstance(exc, QueueFull):
        return "queue_full"
    if isinstance(exc, RequestTimeout):
        return "request_timeout"
    if isinstance(exc, ServiceClosed):
        return "service_closed"
    if isinstance(exc, (ValueError, TypeError, KeyError)):
        return "bad_request"
    return "error"


class _Handler(socketserver.StreamRequestHandler):
    def handle(self):  # pragma: no cover - exercised via live sockets
        for line in self.rfile:
            line = line.strip()
            if not line:
                continue
            try:
                message = json.loads(line)
            except json.JSONDecodeError as exc:
                response = {"ok": False, "error": "bad_request",
                            "message": f"invalid JSON: {exc}"}
            else:
                response = self.server.dispatch(message)
            self.wfile.write((json.dumps(response) + "\n").encode("utf-8"))
            self.wfile.flush()
            if self.server.count_request():
                return


class GenerationServer(socketserver.ThreadingTCPServer):
    """Threaded TCP server delegating every request to one service.

    ``max_requests > 0`` shuts the server down after serving that many
    requests (pings included) — used by tests and smoke runs to give
    ``serve`` a finite lifetime.  Bind to port 0 to let the OS pick; the
    bound address is ``server_address``.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: tuple[str, int], service,
                 max_requests: int = 0):
        super().__init__(address, _Handler)
        self.service = service
        self.max_requests = max_requests
        self._served = 0
        self._count_lock = threading.Lock()

    # ------------------------------------------------------------------
    def dispatch(self, message: dict) -> dict:
        kind = message.get("kind")
        try:
            if kind == "ping":
                return {"ok": True}
            if kind == "stats":
                return {"ok": True, "stats": self.service.stats()}
            if kind == "sample":
                matrices = self.service.sample(
                    int(message["count"]), seed=int(message.get("seed", 0)),
                    checkpoint=message.get("checkpoint"),
                )
                return {"ok": True, "matrices": matrices.tolist()}
            if kind == "encode":
                latents = self.service.encode(
                    np.asarray(message["features"], dtype=np.float64),
                    checkpoint=message.get("checkpoint"),
                )
                return {"ok": True, "latents": latents.tolist()}
            if kind == "score":
                scores = self.service.score(
                    np.asarray(message["matrices"], dtype=np.float64)
                )
                return {
                    "ok": True,
                    "usable": scores["usable"].tolist(),
                    "qed": scores["qed"].tolist(),
                    "logp": scores["logp"].tolist(),
                    "sa": scores["sa"].tolist(),
                }
            raise ValueError(f"unknown request kind {kind!r}")
        except Exception as exc:  # noqa: BLE001 - every failure goes on the wire
            return {"ok": False, "error": _error_name(exc),
                    "message": str(exc)}

    def count_request(self) -> bool:
        """Count one served request; True when the lifetime budget is spent.

        The shutdown is kicked off from a helper thread because
        ``shutdown()`` blocks until ``serve_forever`` returns — calling it
        from a handler thread of the same server would deadlock the
        handler ``serve_forever`` is joining on.
        """
        if self.max_requests <= 0:
            return False
        with self._count_lock:
            self._served += 1
            spent = self._served >= self.max_requests
        if spent:
            threading.Thread(target=self.shutdown, daemon=True).start()
        return spent
