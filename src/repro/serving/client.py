"""Clients for the generation service.

:class:`Client` is the in-process programmatic client: it binds a
:class:`~repro.serving.service.GenerationService` (and optionally a
default checkpoint) and exposes the three request kinds as plain calls
returning numpy arrays.  Tests drive the service through it.

:class:`NetworkClient` speaks the JSON-lines TCP protocol of
``python -m repro.cli serve`` (see :mod:`repro.serving.server`): one JSON
object per line in, one per line out, arrays as nested lists.  Server-side
failures are re-raised as the matching :class:`ServingError` subclass, so
calling code handles local and remote services identically.
"""

from __future__ import annotations

import json
import socket

import numpy as np

from .batcher import QueueFull, RequestTimeout, ServiceClosed, ServingError

__all__ = ["Client", "NetworkClient"]


class Client:
    """Programmatic in-process client bound to one service."""

    def __init__(self, service, checkpoint=None, timeout: float | None = None):
        self.service = service
        self.checkpoint = checkpoint
        self.timeout = timeout

    def sample(self, count: int, seed: int = 0) -> np.ndarray:
        return self.service.sample(
            count, seed=seed, checkpoint=self.checkpoint, timeout=self.timeout
        )

    def encode(self, features) -> np.ndarray:
        return self.service.encode(
            features, checkpoint=self.checkpoint, timeout=self.timeout
        )

    def score(self, matrices) -> dict[str, np.ndarray]:
        return self.service.score(matrices, timeout=self.timeout)

    def stats(self) -> dict:
        return self.service.stats()


# Wire error name -> exception type (mirrors server._error_name).
_ERRORS = {
    "queue_full": QueueFull,
    "request_timeout": RequestTimeout,
    "service_closed": ServiceClosed,
}


class NetworkClient:
    """JSON-lines TCP client for the ``repro.cli serve`` front end."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rw", encoding="utf-8", newline="\n")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # ------------------------------------------------------------------
    def _request(self, message: dict) -> dict:
        self._file.write(json.dumps(message) + "\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServingError("server closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            kind = _ERRORS.get(response.get("error"), ServingError)
            raise kind(response.get("message", "server error"))
        return response

    def ping(self) -> bool:
        return bool(self._request({"kind": "ping"}).get("ok"))

    def sample(self, count: int, seed: int = 0) -> np.ndarray:
        response = self._request(
            {"kind": "sample", "count": int(count), "seed": int(seed)}
        )
        return np.asarray(response["matrices"], dtype=np.float64)

    def encode(self, features) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        response = self._request(
            {"kind": "encode", "features": features.tolist()}
        )
        return np.asarray(response["latents"], dtype=np.float64)

    def score(self, matrices) -> dict[str, np.ndarray]:
        matrices = np.asarray(matrices, dtype=np.float64)
        response = self._request(
            {"kind": "score", "matrices": matrices.tolist()}
        )
        return {
            "usable": np.asarray(response["usable"], dtype=bool),
            "qed": np.asarray(response["qed"], dtype=np.float64),
            "logp": np.asarray(response["logp"], dtype=np.float64),
            "sa": np.asarray(response["sa"], dtype=np.float64),
        }

    def stats(self) -> dict:
        return self._request({"kind": "stats"})["stats"]
