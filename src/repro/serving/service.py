"""The generation service: registry + micro-batcher behind a simple API.

:class:`GenerationService` accepts three request kinds and executes each
micro-batch as one stacked pass over the engine's batched substrate:

* ``sample``  — decode ``count`` prior draws (from a per-request seeded
  stream) into ``(count, size, size)`` molecule matrices.  All sample
  requests for the same model in a flush share ONE decoder pass: each
  request's latents are drawn from its own ``default_rng(seed)`` exactly
  as ``model.sample`` would, stacked, decoded once, and split back — so
  the draw (and for classical decoders the decoded values, bit-for-bit)
  matches sequential per-request execution.
* ``encode``  — map ``(n, input_dim)`` feature rows to latent codes; all
  encode requests for the same model in a flush run as one stacked
  encoder pass.
* ``score``   — decode ``(n, size, size)`` matrix stacks to molecules,
  sanitize, and return per-row QED / normalized logP / normalized SA
  plus a usable mask.  Scoring is pure packed-array math whose per-row
  values are independent of batch composition (the padding-exactness
  contract of :mod:`repro.chem.batch`), so micro-batched scores equal
  sequential ones with plain ``==``.

Batch groups never mix kinds or models: the batch key is ``(kind,
entry.key)`` (scoring groups by matrix size instead).  Checkpoint
resolution happens on the calling thread via the shared
:class:`~repro.serving.registry.ModelRegistry`, so the worker thread only
ever executes warm models.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..chem.batch import (
    MoleculeBatch,
    qed_batch,
    sanitize_batch,
)
from ..chem.metrics import normalized_logp_batch, normalized_sa_batch
from ..evaluation.sampling import decode_latents, prior_latents
from ..nn.tensor import Tensor, no_grad
from .batcher import MicroBatcher, ServingError
from .registry import ModelEntry, ModelRegistry

__all__ = ["GenerationService", "per_molecule_scores"]


def per_molecule_scores(matrices: np.ndarray) -> dict[str, np.ndarray]:
    """Decode, sanitize, and score a matrix stack row by row.

    Returns aligned ``(n,)`` arrays: ``usable`` (decoded + repaired to a
    non-empty molecule), and ``qed`` / ``logp`` / ``sa`` (0.0 where not
    usable).  Every value is a per-row function of that row alone, so the
    same row scores identically whatever else shares the stack — this is
    the single scoring path used for one request or a fused micro-batch.
    """
    matrices = np.asarray(matrices, dtype=np.float64)
    if matrices.ndim != 3 or matrices.shape[1] != matrices.shape[2]:
        raise ValueError(
            f"expected a (n, size, size) matrix stack, got {matrices.shape}"
        )
    batch = MoleculeBatch.from_matrices(matrices)
    repaired = sanitize_batch(batch)
    usable = np.array([mol.num_atoms > 0 for mol in repaired], dtype=bool)
    n = len(repaired)
    qed = np.zeros(n)
    logp = np.zeros(n)
    sa = np.zeros(n)
    kept = [mol for mol in repaired if mol.num_atoms]
    if kept:
        kept_batch = MoleculeBatch.from_molecules(kept)
        rows = np.flatnonzero(usable)
        qed[rows] = qed_batch(kept_batch)
        logp[rows] = normalized_logp_batch(kept_batch)
        sa[rows] = normalized_sa_batch(kept_batch)
    return {"usable": usable, "qed": qed, "logp": logp, "sa": sa}


class GenerationService:
    """Micro-batching sample/encode/score service over warm checkpoints.

    ``default_checkpoint`` (optional) is loaded eagerly and used whenever
    a call does not name its own.  ``flush_window`` / ``max_batch`` /
    ``max_queue`` / ``default_timeout`` parameterize the
    :class:`~repro.serving.batcher.MicroBatcher`.
    """

    def __init__(self, registry: ModelRegistry | None = None, *,
                 default_checkpoint: str | Path | None = None,
                 flush_window: float = 0.005, max_batch: int = 64,
                 max_queue: int = 256, default_timeout: float | None = 30.0):
        self.registry = registry if registry is not None else ModelRegistry()
        self._default_entry = (
            self.registry.load(default_checkpoint)
            if default_checkpoint is not None else None
        )
        self.batcher = MicroBatcher(
            self._execute, flush_window=flush_window, max_batch=max_batch,
            max_queue=max_queue, default_timeout=default_timeout,
        )

    # ------------------------------------------------------------------
    # Public API (blocking; *_async variants return futures)
    # ------------------------------------------------------------------
    def sample(self, count: int, *, seed: int = 0,
               checkpoint: str | Path | None = None,
               timeout: float | None = None) -> np.ndarray:
        """``(count, size, size)`` matrices decoded from seeded prior noise."""
        key, payload = self._sample_request(count, seed, checkpoint)
        return self.batcher.call(key, payload, timeout)

    def sample_async(self, count: int, *, seed: int = 0,
                     checkpoint: str | Path | None = None,
                     timeout: float | None = None):
        key, payload = self._sample_request(count, seed, checkpoint)
        return self.batcher.submit(key, payload, timeout)

    def encode(self, features: np.ndarray, *,
               checkpoint: str | Path | None = None,
               timeout: float | None = None) -> np.ndarray:
        """Latent codes for ``(n, input_dim)`` feature rows."""
        key, payload = self._encode_request(features, checkpoint)
        return self.batcher.call(key, payload, timeout)

    def encode_async(self, features: np.ndarray, *,
                     checkpoint: str | Path | None = None,
                     timeout: float | None = None):
        key, payload = self._encode_request(features, checkpoint)
        return self.batcher.submit(key, payload, timeout)

    def score(self, matrices: np.ndarray, *,
              timeout: float | None = None) -> dict[str, np.ndarray]:
        """Per-row usable/QED/logP/SA for a ``(n, size, size)`` stack."""
        key, payload = self._score_request(matrices)
        return self.batcher.call(key, payload, timeout)

    def score_async(self, matrices: np.ndarray, *,
                    timeout: float | None = None):
        key, payload = self._score_request(matrices)
        return self.batcher.submit(key, payload, timeout)

    def stats(self) -> dict:
        """Batcher + registry counters (the serve command's /stats)."""
        return {
            "batcher": self.batcher.stats.as_dict(),
            "registry": self.registry.stats.as_dict(),
            "models": len(self.registry),
        }

    def close(self) -> None:
        self.batcher.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # ------------------------------------------------------------------
    # Request construction (calling thread: validation + registry access)
    # ------------------------------------------------------------------
    def _entry(self, checkpoint: str | Path | None) -> ModelEntry:
        if checkpoint is not None:
            return self.registry.load(checkpoint)
        if self._default_entry is None:
            raise ServingError(
                "no checkpoint named and the service has no default; pass "
                "checkpoint= or construct with default_checkpoint="
            )
        return self._default_entry

    def _sample_request(self, count: int, seed: int,
                        checkpoint: str | Path | None):
        if count < 1:
            raise ValueError(f"count must be a positive integer, got {count}")
        entry = self._entry(checkpoint)
        if not entry.is_variational:
            raise TypeError(
                f"{entry.metadata.get('model', type(entry.model).__name__)} "
                "is a vanilla autoencoder; only the variational models "
                "support prior sampling (Section I)"
            )
        entry.matrix_size()  # non-square input dims fail on the caller
        return ("sample", entry.key), (entry, int(count), int(seed))

    def _encode_request(self, features, checkpoint: str | Path | None):
        entry = self._entry(checkpoint)
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if features.ndim != 2 or features.shape[1] != entry.input_dim:
            raise ValueError(
                f"expected (n, {entry.input_dim}) features, got "
                f"{features.shape}"
            )
        return ("encode", entry.key), (entry, features)

    def _score_request(self, matrices):
        matrices = np.asarray(matrices, dtype=np.float64)
        if matrices.ndim != 3 or matrices.shape[1] != matrices.shape[2]:
            raise ValueError(
                f"expected a (n, size, size) matrix stack, got "
                f"{matrices.shape}"
            )
        return ("score", matrices.shape[1]), matrices

    # ------------------------------------------------------------------
    # Batched execution (worker thread: one stacked pass per group)
    # ------------------------------------------------------------------
    def _execute(self, key: tuple, payloads: list):
        kind = key[0]
        if kind == "sample":
            return self._run_sample(payloads)
        if kind == "encode":
            return self._run_encode(payloads)
        if kind == "score":
            return self._run_score(payloads)
        raise ServingError(f"unknown request kind {kind!r}")

    @staticmethod
    def _run_sample(payloads):
        entry = payloads[0][0]
        model = entry.model
        latents = [
            prior_latents(model, count, np.random.default_rng(seed))
            for __, count, seed in payloads
        ]
        with entry.scope():
            flat = decode_latents(model, np.concatenate(latents, axis=0))
        size = entry.matrix_size()
        matrices = flat.reshape(-1, size, size)
        return _split_rows(matrices, [z.shape[0] for z in latents])

    @staticmethod
    def _run_encode(payloads):
        entry = payloads[0][0]
        stacked = np.concatenate([features for __, features in payloads])
        with entry.scope(), no_grad():
            latents = entry.model.encode(Tensor(stacked)).data
        return _split_rows(latents, [f.shape[0] for __, f in payloads])

    @staticmethod
    def _run_score(payloads):
        scores = per_molecule_scores(np.concatenate(payloads, axis=0))
        counts = [stack.shape[0] for stack in payloads]
        split = {name: _split_rows(values, counts)
                 for name, values in scores.items()}
        return [
            {name: split[name][index] for name in scores}
            for index in range(len(payloads))
        ]


def _split_rows(stacked: np.ndarray, counts: list[int]) -> list[np.ndarray]:
    """Undo a concatenation: one array per request, rows in order."""
    return np.split(stacked, np.cumsum(counts)[:-1])
