"""Warm caches of deserialized checkpoints and their compiled plans.

A generation service sits on the checkpoint -> rebuild -> execute path;
paying deserialization, module construction, and circuit/graph-plan
lowering per request would dwarf the actual math.  :class:`ModelRegistry`
pays those costs once per *distinct* checkpoint:

* checkpoints are deserialized once and kept as live modules in an LRU
  cache keyed by :func:`~repro.nn.serialization.module_fingerprint` plus
  the checkpoint metadata that changes execution semantics (model name,
  architecture hyperparameters, recorded precision and backend) — two
  paths to byte-identical checkpoints share one entry;
* the module is rebuilt with the checkpoint's *recorded* precision
  (:func:`repro.models.build_from_metadata`), so a float32 checkpoint
  executes at complex64 instead of silently running float32 weights
  inside a float64-built shell;
* on insertion each entry is warmed with one tiny encode and one tiny
  decode pass, which lowers its circuit plans into the engine's global
  structural cache — by the time the first real request arrives, no
  request ever re-lowers a plan (the same amortize-one-compiled-program
  trick the engine plays across structurally identical circuits).

A fast path avoids even re-reading the file: ``(resolved path, mtime,
size)`` maps straight to the entry, so repeated requests for the same
checkpoint are a dict hit.  Loads of *new* checkpoints happen on the
calling thread — the batch worker never blocks on deserialization.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..evaluation.sampling import decode_latents, matrix_size
from ..nn.precision import Precision, resolve_precision
from ..nn.serialization import (
    load_module,
    module_fingerprint,
    resolve_checkpoint_path,
)
from ..nn.tensor import Tensor, no_grad
from ..models.factory import build_from_metadata
from ..quantum.backends import resolve_backend

__all__ = ["ModelEntry", "ModelRegistry"]

# Metadata fields that change what an entry *executes*, not just how it
# was produced — they join the fingerprint in the cache key.
_KEY_FIELDS = ("model", "input_dim", "n_patches", "n_layers", "latent_dim",
               "precision", "backend")


@dataclass
class ModelEntry:
    """One warm checkpoint: live module + everything requests need."""

    model: object
    metadata: dict
    fingerprint: str
    precision: Precision
    backend: object | None  # resolved KernelBackend, or None = policy
    key: tuple
    path: Path | None = None

    @property
    def is_variational(self) -> bool:
        return bool(self.model.is_variational)

    @property
    def latent_dim(self) -> int:
        return self.model.latent_dim

    @property
    def input_dim(self) -> int:
        return self.model.input_dim

    def matrix_size(self) -> int:
        return matrix_size(self.model)

    def scope(self):
        """Execution scope for this entry (its recorded kernel backend)."""
        from ..quantum.backends import use_backend

        return nullcontext() if self.backend is None else use_backend(self.backend)


@dataclass
class RegistryStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}


@dataclass
class ModelRegistry:
    """LRU cache of :class:`ModelEntry` objects, safe for concurrent use."""

    max_entries: int = 8
    stats: RegistryStats = field(default_factory=RegistryStats)

    def __post_init__(self):
        if self.max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self._entries: OrderedDict[tuple, ModelEntry] = OrderedDict()
        self._by_path: dict[tuple, tuple] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def load(self, checkpoint: str | Path) -> ModelEntry:
        """The warm entry for ``checkpoint``, deserializing at most once.

        Raises ``FileNotFoundError`` (naming the probed path) for missing
        files — callers surface that as their own error type.
        """
        path = resolve_checkpoint_path(checkpoint)
        stat = path.stat()
        path_key = (str(path), stat.st_mtime_ns, stat.st_size)
        with self._lock:
            entry_key = self._by_path.get(path_key)
            if entry_key is not None and entry_key in self._entries:
                self.stats.hits += 1
                self._entries.move_to_end(entry_key)
                return self._entries[entry_key]
        # Miss: deserialize and warm OUTSIDE the lock so a slow load of
        # one checkpoint never stalls hits on the others.
        entry = self._build_entry(path)
        with self._lock:
            existing = self._entries.get(entry.key)
            if existing is not None:
                # Raced with another loader, or a byte-identical copy at a
                # different path: keep the first live module.
                self.stats.hits += 1
                self._entries.move_to_end(entry.key)
                self._by_path[path_key] = entry.key
                return existing
            self.stats.misses += 1
            self._entries[entry.key] = entry
            self._by_path[path_key] = entry.key
            self._evict_locked()
        return entry

    def register(self, model, metadata: dict | None = None) -> ModelEntry:
        """Insert an already-built module (tests and benchmarks).

        The entry is keyed, warmed, and evictable exactly like a
        checkpoint-loaded one; ``metadata`` follows ``save_module``'s
        vocabulary (``precision`` / ``backend`` are honored).
        """
        metadata = dict(metadata or {})
        entry = self._make_entry(model, metadata, path=None)
        with self._lock:
            self.stats.misses += 1
            self._entries[entry.key] = entry
            self._entries.move_to_end(entry.key)
            self._evict_locked()
        return entry

    # ------------------------------------------------------------------
    def _build_entry(self, path: Path) -> ModelEntry:
        model = build_from_metadata(_require_metadata(path))
        metadata = load_module(model, path)
        return self._make_entry(model, metadata, path)

    def _make_entry(self, model, metadata: dict, path: Path | None
                    ) -> ModelEntry:
        fingerprint = module_fingerprint(model)
        precision = resolve_precision(metadata.get("precision"))
        backend_name = metadata.get("backend")
        backend = (resolve_backend(backend_name)
                   if backend_name is not None else None)
        key = (fingerprint,) + tuple(
            metadata.get(name) for name in _KEY_FIELDS
        )
        entry = ModelEntry(
            model=model, metadata=metadata, fingerprint=fingerprint,
            precision=precision, backend=backend, key=key, path=path,
        )
        self._warm(entry)
        return entry

    @staticmethod
    def _warm(entry: ModelEntry) -> None:
        """Lower every plan a request could need with two 1-row passes."""
        model = entry.model
        with entry.scope(), no_grad():
            # Ones, not zeros: amplitude-embedding encoders reject
            # zero-norm rows, and the plan lowered is the same either way.
            model.encode(Tensor(np.ones((1, model.input_dim))))
            decode_latents(model, np.zeros((1, model.latent_dim)))

    def _evict_locked(self) -> None:
        while len(self._entries) > self.max_entries:
            key, __ = self._entries.popitem(last=False)
            self.stats.evictions += 1
            self._by_path = {
                pk: ek for pk, ek in self._by_path.items() if ek != key
            }


def _require_metadata(path: Path) -> dict:
    from ..nn.serialization import read_checkpoint_metadata

    metadata = read_checkpoint_metadata(path)
    if "model" not in metadata:
        raise ValueError(
            f"checkpoint {path} has no architecture metadata; re-save it "
            "with repro.cli train --out (save_module metadata= fields "
            "model/input_dim/n_patches/n_layers/latent_dim/seed)"
        )
    return metadata
