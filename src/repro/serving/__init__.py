"""High-throughput generation service: micro-batched serving over warm models.

Production framing for the ROADMAP's "millions of users" north star: the
engine's stacked ``(p * batch, 2**n)`` substrate executes one big pass as
cheaply per row as many small ones, so the serving layer's whole job is
to *make* big passes out of concurrent small requests:

* :class:`ModelRegistry` — warm LRU cache of deserialized checkpoints
  (rebuilt at their recorded precision) with circuit/graph plans
  pre-lowered, keyed by parameter fingerprint + execution metadata;
* :class:`MicroBatcher` — bounded-queue worker that accumulates requests
  into micro-batches under a max-latency flush window, with per-request
  timeouts and backpressure instead of hangs;
* :class:`GenerationService` — sample / encode / score over both,
  batches split back per request;
* :class:`Client` / :class:`NetworkClient` — in-process and JSON-lines
  TCP clients (the latter pairs with ``python -m repro.cli serve``).
"""

from .batcher import (
    BatcherStats,
    MicroBatcher,
    QueueFull,
    RequestTimeout,
    ServiceClosed,
    ServingError,
)
from .client import Client, NetworkClient
from .registry import ModelEntry, ModelRegistry
from .server import GenerationServer
from .service import GenerationService, per_molecule_scores

__all__ = [
    "ServingError",
    "QueueFull",
    "RequestTimeout",
    "ServiceClosed",
    "BatcherStats",
    "MicroBatcher",
    "ModelEntry",
    "ModelRegistry",
    "GenerationService",
    "GenerationServer",
    "per_molecule_scores",
    "Client",
    "NetworkClient",
]
