"""Micro-batching request queue: many callers, one stacked pass.

The engine's stacked ``(p * batch, 2**n)`` substrate does not care whether
rows come from one caller or a hundred — what it cares about is being
called once.  :class:`MicroBatcher` turns concurrent single-caller
requests into exactly that shape:

1. **submit** — a request (a batch-group key plus an opaque payload) is
   stamped with its timeout deadline and pushed onto a *bounded* queue.
   A full queue raises :class:`QueueFull` immediately instead of letting
   producers outrun the worker into unbounded memory (backpressure).
2. **accumulate** — a single worker thread opens a batch with the first
   pending request, drains whatever backlog is already queued, and then
   keeps the batch open for at most ``flush_window`` seconds or until
   ``max_batch`` requests are collected, whichever comes first.  A zero
   window still batches a backlog — it only stops *waiting* for more.
3. **execute** — the batch is grouped by key (requests for different
   models or different request kinds never mix); each group runs through
   the ``execute`` callable as one stacked pass, and each request's slice
   of the result resolves its future.  Requests whose deadline passed
   while they sat in the queue are failed with :class:`RequestTimeout`
   without paying for execution.
4. **resolve** — callers block on ``Future.result`` (via :meth:`call`)
   and get their own rows back, a :class:`RequestTimeout` after their
   deadline, or the executor's exception verbatim.  They never hang:
   every submitted future is resolved by the worker, by expiry, or by
   :meth:`close`.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field

__all__ = [
    "ServingError",
    "QueueFull",
    "RequestTimeout",
    "ServiceClosed",
    "BatcherStats",
    "MicroBatcher",
]


class ServingError(RuntimeError):
    """Base class for every serving-layer failure."""


class QueueFull(ServingError):
    """The bounded request queue is at capacity (backpressure signal)."""


class RequestTimeout(ServingError):
    """A request's deadline passed before its result was ready."""


class ServiceClosed(ServingError):
    """The batcher was closed; no further requests are accepted."""


_SHUTDOWN = object()


@dataclass
class _Request:
    key: tuple
    payload: object
    future: Future
    deadline: float | None  # monotonic seconds; None = never expires


@dataclass
class BatcherStats:
    """Worker-side counters (written only by the worker thread)."""

    batches: int = 0
    requests: int = 0
    groups: int = 0
    expired: int = 0
    batch_size_max: int = 0
    _sizes: list = field(default_factory=list, repr=False)

    @property
    def mean_batch_size(self) -> float:
        """Requests per flush — the number micro-batching lives or dies by."""
        return self.requests / self.batches if self.batches else 0.0

    def record(self, size: int) -> None:
        self.batches += 1
        self.requests += size
        self.batch_size_max = max(self.batch_size_max, size)
        if len(self._sizes) < 4096:
            self._sizes.append(size)

    def as_dict(self) -> dict:
        return {
            "batches": self.batches,
            "requests": self.requests,
            "groups": self.groups,
            "expired": self.expired,
            "mean_batch_size": round(self.mean_batch_size, 3),
            "batch_size_max": self.batch_size_max,
        }


class MicroBatcher:
    """Accumulates concurrent requests into batches for one executor.

    ``execute(key, payloads)`` receives every payload of one key group and
    must return one result per payload, in order.  ``flush_window`` is the
    max extra latency a request pays waiting for co-riders; ``max_batch``
    caps requests per flush; ``max_queue`` bounds pending requests;
    ``default_timeout`` (seconds, None = wait forever) applies to requests
    submitted without their own.
    """

    def __init__(self, execute, *, flush_window: float = 0.005,
                 max_batch: int = 64, max_queue: int = 256,
                 default_timeout: float | None = 30.0):
        if flush_window < 0:
            raise ValueError("flush_window must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self._execute = execute
        self.flush_window = flush_window
        self.max_batch = max_batch
        self.default_timeout = default_timeout
        self.stats = BatcherStats()
        self._queue: queue.Queue = queue.Queue(maxsize=max_queue)
        self._closed = False
        self._worker = threading.Thread(
            target=self._run, name="repro-microbatcher", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def submit(self, key: tuple, payload, timeout: float | None = None
               ) -> Future:
        """Enqueue one request; returns a future resolving to its result."""
        if self._closed:
            raise ServiceClosed("batcher is closed")
        if timeout is None:
            timeout = self.default_timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        request = _Request(key, payload, Future(), deadline)
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            raise QueueFull(
                f"serving queue is full ({self._queue.maxsize} pending "
                "requests); retry after the backlog drains"
            ) from None
        return request.future

    def call(self, key: tuple, payload, timeout: float | None = None):
        """Submit and block for the result; timeouts raise RequestTimeout."""
        if timeout is None:
            timeout = self.default_timeout
        future = self.submit(key, payload, timeout)
        try:
            return future.result(timeout)
        except FutureTimeout:
            raise RequestTimeout(
                f"request did not complete within {timeout:.3f}s"
            ) from None

    def close(self) -> None:
        """Stop accepting requests, flush the worker, fail anything left."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(_SHUTDOWN)  # wakes the blocking get
        self._worker.join(timeout=30.0)
        while True:  # anything enqueued after the sentinel
            try:
                request = self._queue.get_nowait()
            except queue.Empty:
                break
            if request is not _SHUTDOWN:
                self._set_exception(request, ServiceClosed("batcher closed"))

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            first = self._queue.get()
            if first is _SHUTDOWN:
                return
            batch, saw_shutdown = self._collect(first)
            self._flush(batch)
            if saw_shutdown:
                return

    def _collect(self, first: _Request) -> tuple[list[_Request], bool]:
        """One batch: drain the backlog, then wait out the flush window."""
        batch = [first]
        while len(batch) < self.max_batch:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                return batch, True
            batch.append(item)
        if self.flush_window > 0:
            deadline = time.monotonic() + self.flush_window
            while len(batch) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if item is _SHUTDOWN:
                    return batch, True
                batch.append(item)
        return batch, False

    def _flush(self, batch: list[_Request]) -> None:
        now = time.monotonic()
        groups: dict[tuple, list[_Request]] = {}
        live = 0
        for request in batch:
            if request.deadline is not None and now > request.deadline:
                self.stats.expired += 1
                self._set_exception(request, RequestTimeout(
                    "request expired in the queue before execution"
                ))
                continue
            groups.setdefault(request.key, []).append(request)
            live += 1
        if live:
            self.stats.record(live)
        for key, requests in groups.items():
            self.stats.groups += 1
            try:
                results = self._execute(key, [r.payload for r in requests])
                if len(results) != len(requests):
                    raise ServingError(
                        f"executor returned {len(results)} results for "
                        f"{len(requests)} requests"
                    )
            except BaseException as exc:  # noqa: BLE001 - forwarded verbatim
                for request in requests:
                    self._set_exception(request, exc)
                continue
            for request, result in zip(requests, results):
                if not request.future.cancelled():
                    request.future.set_result(result)

    @staticmethod
    def _set_exception(request: _Request, exc: BaseException) -> None:
        if not request.future.cancelled():
            request.future.set_exception(exc)
