"""Command-line interface for the library.

Subcommands::

    python -m repro.cli train   --model sq-vae --dataset pdbbind \\
                                --samples 96 --epochs 4 --out runs/sq.npz
    python -m repro.cli sample  --checkpoint runs/sq.npz --count 20
    python -m repro.cli serve   --checkpoint runs/sq.npz --port 7411
    python -m repro.cli stats   --dataset qm9 --samples 256
    python -m repro.cli draw    --model f-bq-ae

``train`` checkpoints the model with enough metadata for ``sample`` and
``serve`` to rebuild the same architecture *at the same precision and
kernel backend* (``--precision`` / ``--backend`` are recorded in the
checkpoint); ``sample`` decodes prior noise into molecules and prints
SMILES with QED / logP / SA scores.

``serve`` stands up the micro-batching generation service
(:mod:`repro.serving`) on a JSON-lines TCP socket.  Request lifecycle:
a client connection sends one JSON object per line (``{"kind":
"sample", "count": 8, "seed": 3}``, or ``encode`` with feature rows /
``score`` with matrix stacks); the handler thread validates it, resolves
the checkpoint through the warm :class:`~repro.serving.ModelRegistry`
(deserialization and plan lowering are paid once per model, never per
request), and enqueues it on the bounded micro-batch queue.  The worker
thread accumulates concurrent requests for up to ``--flush-ms``
milliseconds (or ``--max-batch`` requests), executes each model's group
as ONE stacked engine pass, and splits the rows back per request; the
handler writes the JSON response line.  A full queue answers
``queue_full`` (backpressure) and a request that outlives ``--timeout``
answers ``request_timeout`` — callers never hang.
:class:`repro.serving.NetworkClient` speaks this protocol;
:class:`repro.serving.Client` gives the same API in process.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .chem import to_smiles
from .chem.batch import MoleculeBatch, qed_batch, sanitize_batch
from .chem.metrics import normalized_logp_batch, normalized_sa_batch
from .chem.sa import default_fragment_table
from .data import (
    dataset_statistics,
    load_cifar_gray,
    load_digits,
    load_pdbbind_ligands,
    load_qm9,
    train_test_split,
)
from .evaluation.sampling import sample_batch
from .models import MODEL_CHOICES, build_from_metadata, build_model
from .nn.precision import resolve_precision
from .nn.serialization import (
    load_module,
    read_checkpoint_metadata,
    resolve_checkpoint_path,
    save_module,
)
from .quantum.backends import available_backends, resolve_backend, use_backend
from .training import TrainConfig, Trainer

__all__ = ["main"]

_DATASETS = {
    "qm9": (load_qm9, 64),
    "pdbbind": (load_pdbbind_ligands, 1024),
    "digits": (load_digits, 64),
    "cifar": (load_cifar_gray, 1024),
}

_MOLECULE_DATASETS = {"qm9", "pdbbind"}

# Per-patch statevector size the draw command renders sq models at:
# 16 features -> 4 qubits per patch, matching the 64-feature/4-patch
# default shape whatever --patches is.
_DRAW_PATCH_FEATURES = 16


def _positive_int(value: str) -> int:
    """argparse type for flags that must be a positive integer.

    Raising ``ArgumentTypeError`` makes argparse exit with a clear
    message naming the flag (``argument --samples: expected a positive
    integer, got '0'``) instead of the deep traceback a zero batch size
    or sample count used to surface as.
    """
    try:
        number = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value!r}"
        ) from None
    if number < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value!r}"
        )
    return number


def _positive_float(value: str) -> float:
    """argparse type for strictly positive float flags."""
    try:
        number = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {value!r}"
        ) from None
    if number <= 0:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {value!r}"
        )
    return number


def _load_dataset(name: str, n_samples: int, seed: int):
    loader, input_dim = _DATASETS[name]
    return loader(n_samples=n_samples, seed=seed), input_dim


def _cmd_train(args) -> int:
    data, input_dim = _load_dataset(args.dataset, args.samples, args.seed)
    if args.normalize:
        data = data.normalized()
    train, test = train_test_split(data, test_fraction=0.15, seed=args.seed)
    default_layers = 5 if args.model.startswith("sq") else 3
    n_layers = args.layers if args.layers else default_layers
    model = build_model(args.model, input_dim, args.patches, n_layers,
                        args.latent, args.seed, dtype=args.precision)
    if args.warm_start_bias:
        model.init_output_bias(train.features.mean(axis=0))

    config = TrainConfig(
        epochs=args.epochs, batch_size=args.batch_size,
        quantum_lr=args.quantum_lr, classical_lr=args.classical_lr,
        seed=args.seed, precision=args.precision, backend=args.backend,
        workers=args.workers,
    )
    trainer = Trainer(model, config)
    history = trainer.fit(train, test_data=test)
    for record in history.epochs:
        seconds = f" ({record.seconds:.2f}s)" if record.seconds is not None else ""
        print(f"epoch {record.epoch}: train {record.train_loss:.4f} "
              f"test {record.test_loss:.4f}{seconds}")

    if args.out:
        metadata = {
            "model": args.model,
            "input_dim": input_dim,
            "n_patches": args.patches,
            "n_layers": n_layers,
            "latent_dim": args.latent,
            "dataset": args.dataset,
            "seed": args.seed,
            # Execution-semantics fields: sample/serve rebuild the model
            # with the *recorded* dtype and kernel backend, so a float32
            # training run round-trips as a float32 module.
            "precision": resolve_precision(args.precision).name,
            "backend": args.backend,
            "final_train_loss": history.final_train_loss,
        }
        path = save_module(model, args.out, metadata=metadata)
        print(f"checkpoint written to {path}")
    return 0


def _resolve_checkpoint(argument: str):
    """Resolve a CLI checkpoint argument or exit naming the probed path."""
    try:
        return resolve_checkpoint_path(argument)
    except FileNotFoundError as exc:
        raise SystemExit(str(exc)) from None


def _cmd_sample(args) -> int:
    # Rebuild the architecture from checkpoint metadata — at the recorded
    # precision — then load weights and scope the recorded backend.
    path = _resolve_checkpoint(args.checkpoint)
    meta = read_checkpoint_metadata(path)
    model = build_from_metadata(meta)
    load_module(model, path)
    if not model.is_variational:
        raise SystemExit(
            f"{meta['model']} is a vanilla autoencoder; only VAEs sample "
            "(Section I of the paper)"
        )

    # Decode, repair, and score the whole sample set on the batched
    # substrate (values identical to the per-molecule scorers).
    backend = meta.get("backend")
    with use_backend(resolve_backend(backend)):
        batch = sample_batch(model, args.count,
                             np.random.default_rng(args.seed))
    kept = [m for m in sanitize_batch(batch) if m.num_atoms]
    if not kept:
        # Nothing decoded to a usable molecule: skip the scorers and the
        # table header, report cleanly, and exit 0 (an undertrained model
        # is not a CLI failure).
        print(f"0/{args.count} samples decoded to usable molecules")
        return 0
    kept_batch = MoleculeBatch.from_molecules(kept)
    table = default_fragment_table()
    qed_values = qed_batch(kept_batch)
    logp_values = normalized_logp_batch(kept_batch)
    sa_values = normalized_sa_batch(kept_batch, table)
    print(f"{'QED':>6} {'logP':>6} {'SA':>6}  molecule")
    for index, repaired in enumerate(kept):
        smiles = (to_smiles(repaired) if repaired.is_connected()
                  else repaired.molecular_formula())
        print(f"{qed_values[index]:6.3f} {logp_values[index]:6.3f} "
              f"{sa_values[index]:6.3f}  {smiles[:60]}")
    print(f"\n{len(kept)}/{args.count} samples decoded to usable molecules")
    return 0


def _cmd_serve(args) -> int:
    from .serving import GenerationServer, GenerationService

    _resolve_checkpoint(args.checkpoint)
    service = GenerationService(
        default_checkpoint=args.checkpoint,
        flush_window=args.flush_ms / 1000.0,
        max_batch=args.max_batch,
        max_queue=args.max_queue,
        default_timeout=args.timeout,
    )
    server = GenerationServer((args.host, args.port), service,
                              max_requests=args.max_requests)
    host, port = server.server_address[:2]
    print(f"serving {args.checkpoint} on {host}:{port} "
          f"(flush {args.flush_ms:g} ms, max batch {args.max_batch}, "
          f"queue {args.max_queue})")
    if args.ready_file:
        # Readiness handshake for supervisors and tests: the bound
        # address appears in the file only once the socket is listening.
        from pathlib import Path

        Path(args.ready_file).write_text(f"{host} {port}\n")
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        server.server_close()
        service.close()
    return 0


def _cmd_stats(args) -> int:
    if args.dataset not in _MOLECULE_DATASETS:
        raise SystemExit("stats requires a molecule dataset (qm9 or pdbbind)")
    data, __ = _load_dataset(args.dataset, args.samples, args.seed)
    print(dataset_statistics(data).format_table())
    return 0


def _cmd_draw(args) -> int:
    from .quantum import draw

    # sq models patch the input: give them an input dim consistent with
    # --patches (patches x 16-feature patches -> 4 qubits per patch);
    # the non-patched models keep the 64-feature default.  (This used to
    # be a dead `64 if ... else 64` that drew 8-patch models with
    # 8-feature patches.)
    if args.model.startswith("sq"):
        input_dim = _DRAW_PATCH_FEATURES * args.patches
    else:
        input_dim = 64
    model = build_model(args.model, input_dim, args.patches,
                        args.layers or 3, 6, args.seed)
    if hasattr(model, "encoder_q"):
        encoder = model.encoder_q
        circuit = (encoder.patches[0].circuit
                   if hasattr(encoder, "patches") else encoder.circuit)
        print(draw(circuit, max_columns=args.columns))
    else:
        raise SystemExit(f"{args.model} has no quantum encoder to draw")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point: parse ``argv`` (defaults to sys.argv) and dispatch."""
    parser = argparse.ArgumentParser(prog="repro",
                                     description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train an autoencoder")
    train.add_argument("--model", choices=MODEL_CHOICES, required=True)
    train.add_argument("--dataset", choices=sorted(_DATASETS), required=True)
    train.add_argument("--samples", type=_positive_int, default=96)
    train.add_argument("--epochs", type=_positive_int, default=4)
    train.add_argument("--batch-size", type=_positive_int, default=32)
    train.add_argument("--quantum-lr", type=float, default=0.03)
    train.add_argument("--classical-lr", type=float, default=0.01)
    train.add_argument("--patches", type=_positive_int, default=4)
    train.add_argument("--layers", type=int, default=0,
                       help="entangling layers (0 = architecture default)")
    train.add_argument("--latent", type=_positive_int, default=6)
    train.add_argument("--precision",
                       choices=("float64", "float32", "mixed32"),
                       default=None,
                       help="model + training precision policy (recorded "
                            "in the checkpoint; default float64)")
    train.add_argument("--backend", choices=sorted(available_backends()),
                       default=None,
                       help="kernel backend for the run (recorded in the "
                            "checkpoint; default numpy)")
    train.add_argument("--workers", type=_positive_int, default=None,
                       help="data-parallel worker processes sharing the "
                            "batch through shared memory (default: "
                            "single-process training)")
    train.add_argument("--normalize", action="store_true",
                       help="L1-normalize features (F-BQ models need this)")
    train.add_argument("--warm-start-bias", action="store_true")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--out", type=str, default="")
    train.set_defaults(func=_cmd_train)

    sample = sub.add_parser("sample", help="sample molecules from a checkpoint")
    sample.add_argument("--checkpoint", required=True)
    sample.add_argument("--count", type=_positive_int, default=10)
    sample.add_argument("--seed", type=int, default=0)
    sample.set_defaults(func=_cmd_sample)

    serve = sub.add_parser(
        "serve", help="micro-batching generation service over TCP"
    )
    serve.add_argument("--checkpoint", required=True)
    serve.add_argument("--host", type=str, default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7411,
                       help="TCP port (0 = let the OS pick)")
    serve.add_argument("--flush-ms", type=_positive_float, default=5.0,
                       help="micro-batch flush window in milliseconds")
    serve.add_argument("--max-batch", type=_positive_int, default=64,
                       help="max requests fused into one stacked pass")
    serve.add_argument("--max-queue", type=_positive_int, default=256,
                       help="pending-request bound (backpressure)")
    serve.add_argument("--timeout", type=_positive_float, default=30.0,
                       help="per-request timeout in seconds")
    serve.add_argument("--max-requests", type=int, default=0,
                       help="shut down after N requests (0 = serve forever)")
    serve.add_argument("--ready-file", type=str, default="",
                       help="write 'host port' here once listening")
    serve.set_defaults(func=_cmd_serve)

    stats = sub.add_parser("stats", help="dataset composition statistics")
    stats.add_argument("--dataset", choices=sorted(_DATASETS), required=True)
    stats.add_argument("--samples", type=_positive_int, default=128)
    stats.add_argument("--seed", type=int, default=0)
    stats.set_defaults(func=_cmd_stats)

    drawcmd = sub.add_parser("draw", help="ASCII-draw a model's encoder circuit")
    drawcmd.add_argument("--model", choices=MODEL_CHOICES, default="f-bq-ae")
    drawcmd.add_argument("--patches", type=_positive_int, default=4)
    drawcmd.add_argument("--layers", type=int, default=0)
    drawcmd.add_argument("--columns", type=_positive_int, default=12)
    drawcmd.add_argument("--seed", type=int, default=0)
    drawcmd.set_defaults(func=_cmd_draw)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
