"""Command-line interface for the library.

Subcommands::

    python -m repro.cli train   --model sq-vae --dataset pdbbind \\
                                --samples 96 --epochs 4 --out runs/sq.npz
    python -m repro.cli sample  --checkpoint runs/sq.npz --count 20
    python -m repro.cli stats   --dataset qm9 --samples 256
    python -m repro.cli draw    --model f-bq-ae

``train`` checkpoints the model with enough metadata for ``sample`` to
rebuild the same architecture; ``sample`` decodes prior noise into
molecules and prints SMILES with QED / logP / SA scores.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .chem import to_smiles
from .chem.batch import MoleculeBatch, qed_batch, sanitize_batch
from .chem.metrics import normalized_logp_batch, normalized_sa_batch
from .chem.sa import default_fragment_table
from .data import (
    dataset_statistics,
    load_cifar_gray,
    load_digits,
    load_pdbbind_ligands,
    load_qm9,
    train_test_split,
)
from .evaluation.sampling import sample_batch
from .models import (
    ClassicalAE,
    ClassicalVAE,
    FullyQuantumAE,
    FullyQuantumVAE,
    HybridQuantumAE,
    HybridQuantumVAE,
    ScalableQuantumAE,
    ScalableQuantumVAE,
)
from .nn.serialization import load_module, save_module
from .training import TrainConfig, Trainer

__all__ = ["main"]

_DATASETS = {
    "qm9": (load_qm9, 64),
    "pdbbind": (load_pdbbind_ligands, 1024),
    "digits": (load_digits, 64),
    "cifar": (load_cifar_gray, 1024),
}

_MOLECULE_DATASETS = {"qm9", "pdbbind"}


def _build_model(name: str, input_dim: int, n_patches: int, n_layers: int,
                 latent_dim: int, seed: int):
    rng = np.random.default_rng(seed)
    builders = {
        "ae": lambda: ClassicalAE(input_dim=input_dim, latent_dim=latent_dim,
                                  rng=rng),
        "vae": lambda: ClassicalVAE(input_dim=input_dim, latent_dim=latent_dim,
                                    rng=rng, noise_seed=seed),
        "f-bq-ae": lambda: FullyQuantumAE(input_dim=input_dim,
                                          n_layers=n_layers, rng=rng),
        "f-bq-vae": lambda: FullyQuantumVAE(input_dim=input_dim,
                                            n_layers=n_layers, rng=rng,
                                            noise_seed=seed),
        "h-bq-ae": lambda: HybridQuantumAE(input_dim=input_dim,
                                           n_layers=n_layers, rng=rng),
        "h-bq-vae": lambda: HybridQuantumVAE(input_dim=input_dim,
                                             n_layers=n_layers, rng=rng,
                                             noise_seed=seed),
        "sq-ae": lambda: ScalableQuantumAE(input_dim=input_dim,
                                           n_patches=n_patches,
                                           n_layers=n_layers, rng=rng),
        "sq-vae": lambda: ScalableQuantumVAE(input_dim=input_dim,
                                             n_patches=n_patches,
                                             n_layers=n_layers, rng=rng,
                                             noise_seed=seed),
    }
    try:
        return builders[name]()
    except KeyError:
        raise SystemExit(
            f"unknown model {name!r}; choose from {sorted(builders)}"
        ) from None


MODEL_CHOICES = ("ae", "vae", "f-bq-ae", "f-bq-vae", "h-bq-ae", "h-bq-vae",
                 "sq-ae", "sq-vae")


def _load_dataset(name: str, n_samples: int, seed: int):
    loader, input_dim = _DATASETS[name]
    return loader(n_samples=n_samples, seed=seed), input_dim


def _cmd_train(args) -> int:
    data, input_dim = _load_dataset(args.dataset, args.samples, args.seed)
    if args.normalize:
        data = data.normalized()
    train, test = train_test_split(data, test_fraction=0.15, seed=args.seed)
    default_layers = 5 if args.model.startswith("sq") else 3
    n_layers = args.layers if args.layers else default_layers
    model = _build_model(args.model, input_dim, args.patches, n_layers,
                         args.latent, args.seed)
    if args.warm_start_bias:
        model.init_output_bias(train.features.mean(axis=0))

    config = TrainConfig(
        epochs=args.epochs, batch_size=args.batch_size,
        quantum_lr=args.quantum_lr, classical_lr=args.classical_lr,
        seed=args.seed,
    )
    trainer = Trainer(model, config)
    history = trainer.fit(train, test_data=test)
    for record in history.epochs:
        print(f"epoch {record.epoch}: train {record.train_loss:.4f} "
              f"test {record.test_loss:.4f}")

    if args.out:
        metadata = {
            "model": args.model,
            "input_dim": input_dim,
            "n_patches": args.patches,
            "n_layers": n_layers,
            "latent_dim": args.latent,
            "dataset": args.dataset,
            "seed": args.seed,
            "final_train_loss": history.final_train_loss,
        }
        path = save_module(model, args.out, metadata=metadata)
        print(f"checkpoint written to {path}")
    return 0


def _cmd_sample(args) -> int:
    # Rebuild the architecture from checkpoint metadata, then load weights.
    import json
    from pathlib import Path

    path = Path(args.checkpoint)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    if not path.exists():
        raise SystemExit(f"checkpoint not found: {path}")
    with np.load(path) as archive:
        meta = json.loads(bytes(archive["__repro_meta__"]).decode("utf-8"))
    model = _build_model(meta["model"], meta["input_dim"], meta["n_patches"],
                         meta["n_layers"], meta["latent_dim"], meta["seed"])
    load_module(model, path)
    if not model.is_variational:
        raise SystemExit(
            f"{meta['model']} is a vanilla autoencoder; only VAEs sample "
            "(Section I of the paper)"
        )

    # Decode, repair, and score the whole sample set on the batched
    # substrate (values identical to the per-molecule scorers).
    batch = sample_batch(model, args.count, np.random.default_rng(args.seed))
    kept = [m for m in sanitize_batch(batch) if m.num_atoms]
    kept_batch = MoleculeBatch.from_molecules(kept)
    table = default_fragment_table()
    qed_values = qed_batch(kept_batch)
    logp_values = normalized_logp_batch(kept_batch)
    sa_values = normalized_sa_batch(kept_batch, table)
    print(f"{'QED':>6} {'logP':>6} {'SA':>6}  molecule")
    for index, repaired in enumerate(kept):
        smiles = (to_smiles(repaired) if repaired.is_connected()
                  else repaired.molecular_formula())
        print(f"{qed_values[index]:6.3f} {logp_values[index]:6.3f} "
              f"{sa_values[index]:6.3f}  {smiles[:60]}")
    print(f"\n{len(kept)}/{args.count} samples decoded to usable molecules")
    return 0


def _cmd_stats(args) -> int:
    if args.dataset not in _MOLECULE_DATASETS:
        raise SystemExit("stats requires a molecule dataset (qm9 or pdbbind)")
    data, __ = _load_dataset(args.dataset, args.samples, args.seed)
    print(dataset_statistics(data).format_table())
    return 0


def _cmd_draw(args) -> int:
    from .quantum import draw

    model = _build_model(args.model, 64 if not args.model.startswith("sq")
                         else 64, args.patches, args.layers or 3, 6, args.seed)
    if hasattr(model, "encoder_q"):
        encoder = model.encoder_q
        circuit = (encoder.patches[0].circuit
                   if hasattr(encoder, "patches") else encoder.circuit)
        print(draw(circuit, max_columns=args.columns))
    else:
        raise SystemExit(f"{args.model} has no quantum encoder to draw")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point: parse ``argv`` (defaults to sys.argv) and dispatch."""
    parser = argparse.ArgumentParser(prog="repro",
                                     description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train an autoencoder")
    train.add_argument("--model", choices=MODEL_CHOICES, required=True)
    train.add_argument("--dataset", choices=sorted(_DATASETS), required=True)
    train.add_argument("--samples", type=int, default=96)
    train.add_argument("--epochs", type=int, default=4)
    train.add_argument("--batch-size", type=int, default=32)
    train.add_argument("--quantum-lr", type=float, default=0.03)
    train.add_argument("--classical-lr", type=float, default=0.01)
    train.add_argument("--patches", type=int, default=4)
    train.add_argument("--layers", type=int, default=0,
                       help="entangling layers (0 = architecture default)")
    train.add_argument("--latent", type=int, default=6)
    train.add_argument("--normalize", action="store_true",
                       help="L1-normalize features (F-BQ models need this)")
    train.add_argument("--warm-start-bias", action="store_true")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--out", type=str, default="")
    train.set_defaults(func=_cmd_train)

    sample = sub.add_parser("sample", help="sample molecules from a checkpoint")
    sample.add_argument("--checkpoint", required=True)
    sample.add_argument("--count", type=int, default=10)
    sample.add_argument("--seed", type=int, default=0)
    sample.set_defaults(func=_cmd_sample)

    stats = sub.add_parser("stats", help="dataset composition statistics")
    stats.add_argument("--dataset", choices=sorted(_DATASETS), required=True)
    stats.add_argument("--samples", type=int, default=128)
    stats.add_argument("--seed", type=int, default=0)
    stats.set_defaults(func=_cmd_stats)

    drawcmd = sub.add_parser("draw", help="ASCII-draw a model's encoder circuit")
    drawcmd.add_argument("--model", choices=MODEL_CHOICES, default="f-bq-ae")
    drawcmd.add_argument("--patches", type=int, default=4)
    drawcmd.add_argument("--layers", type=int, default=0)
    drawcmd.add_argument("--columns", type=int, default=12)
    drawcmd.add_argument("--seed", type=int, default=0)
    drawcmd.set_defaults(func=_cmd_draw)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
