"""Dataset containers, splits, batching, and the paper's normalization.

The paper trains on flattened molecule matrices / images, optionally
L1-normalized ("directly dividing each non-negative feature value by their
sum", Section III-B) for the fully-quantum baselines whose outputs are
probability vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["ArrayDataset", "train_test_split", "DataLoader", "l1_normalize"]


@dataclass
class ArrayDataset:
    """Feature matrix ``(n_samples, n_features)`` with an optional raw view.

    ``raw`` keeps the un-flattened originals (e.g. ``(n, 32, 32)`` integer
    molecule matrices) so evaluation code can decode molecules without
    re-reshaping heuristics.
    """

    features: np.ndarray
    raw: np.ndarray | None = None
    name: str = "dataset"

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=np.float64)
        if self.features.ndim != 2:
            raise ValueError(
                f"features must be 2-D (samples, features), got "
                f"{self.features.shape}"
            )
        if self.raw is not None and len(self.raw) != len(self.features):
            raise ValueError("raw and features disagree on sample count")

    def __len__(self) -> int:
        return self.features.shape[0]

    @property
    def n_features(self) -> int:
        return self.features.shape[1]

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        raw = self.raw[indices] if self.raw is not None else None
        return ArrayDataset(self.features[indices], raw=raw, name=self.name)

    def normalized(self) -> "ArrayDataset":
        """L1-normalized copy (the paper's normalization for F-BQ models)."""
        return ArrayDataset(
            l1_normalize(self.features), raw=self.raw, name=f"{self.name}-norm"
        )


def l1_normalize(features: np.ndarray) -> np.ndarray:
    """Divide each sample by the sum of its (non-negative) features."""
    features = np.asarray(features, dtype=np.float64)
    sums = features.sum(axis=1, keepdims=True)
    if np.any(sums <= 0):
        raise ValueError("L1 normalization needs positive per-sample sums")
    return features / sums


def train_test_split(
    dataset: ArrayDataset, test_fraction: float = 0.15, seed: int = 0
) -> tuple[ArrayDataset, ArrayDataset]:
    """Shuffled split; the paper uses 85% / 15% (Section IV-A)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset))
    n_test = max(1, int(round(len(dataset) * test_fraction)))
    return dataset.subset(order[n_test:]), dataset.subset(order[:n_test])


class DataLoader:
    """Mini-batch iterator with seeded reshuffling each epoch."""

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int = 32,
        shuffle: bool = True,
        seed: int = 0,
        drop_last: bool = False,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def iter_index_batches(self) -> Iterator[np.ndarray]:
        """Yield the *row indices* of each batch, in iteration order.

        One permutation is drawn per call (exactly as ``__iter__``
        consumes the seeded stream), so driving an epoch through indices
        selects bit-for-bit the same rows as iterating feature batches —
        this is the seam the training strategies use: an index batch is
        cheap to ship to worker processes that already hold the feature
        matrix in shared memory.
        """
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            batch = order[start : start + self.batch_size]
            if self.drop_last and batch.size < self.batch_size:
                return
            yield batch

    def __iter__(self) -> Iterator[np.ndarray]:
        for indices in self.iter_index_batches():
            yield self.dataset.features[indices]
