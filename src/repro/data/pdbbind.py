"""Synthetic PDBbind-2019-refined-like ligand dataset (32x32 matrices).

Section IV-A: the refined PDBbind 2019 set has 4852 protein-ligand
complexes; keeping only ligands with <= 32 heavy atoms drawn from
{C, N, O, F, S} leaves 2492 molecules, encoded as 32x32 (= 1024 = 2**10
feature) matrices and split 85/15.

This module mirrors that *pipeline*, not just its output: it generates a
raw pool of drug-like ligands whose sizes and element palettes overshoot
the filter (mimicking the full refined set), applies the same two filters,
and keeps the first 2492 survivors.
"""

from __future__ import annotations

import numpy as np

from ..chem.generation import MoleculeSpec, random_molecule
from ..chem.matrix import ATOM_CODES, encode_molecule
from ..chem.molecule import Molecule
from .loader import ArrayDataset

__all__ = [
    "PDBBIND_MATRIX_SIZE",
    "PDBBIND_REFINED_COUNT",
    "PDBBIND_FILTERED_COUNT",
    "pdbbind_spec",
    "ligand_passes_filter",
    "iter_pdbbind_matrices",
    "load_pdbbind_ligands",
]

PDBBIND_MATRIX_SIZE = 32
PDBBIND_REFINED_COUNT = 4852
PDBBIND_FILTERED_COUNT = 2492


def pdbbind_spec() -> MoleculeSpec:
    """Raw ligand pool: bigger and more heteroatom-rich than the filter allows."""
    return MoleculeSpec(
        min_atoms=10,
        max_atoms=44,
        hetero_weights={"N": 0.10, "O": 0.13, "F": 0.02, "S": 0.04, "P": 0.01,
                        "Cl": 0.02},
        ring_closure_prob=0.55,
        max_ring_closures=4,
        double_bond_prob=0.22,
        triple_bond_prob=0.02,
        aromatize_prob=0.65,
    )


def ligand_passes_filter(mol: Molecule) -> bool:
    """The paper's filter: <= 32 heavy atoms, only matrix-encodable elements."""
    if mol.num_atoms > PDBBIND_MATRIX_SIZE:
        return False
    return all(symbol in ATOM_CODES for symbol in mol.symbols)


def iter_pdbbind_matrices(
    n_samples: int = PDBBIND_FILTERED_COUNT,
    seed: int = 2019,
    pool_size: int | None = None,
):
    """Yield filtered ligand matrices one at a time (single sequential rng).

    The generate-and-filter loop consumes one rng stream in attempt order,
    so shard-wise grouping of this iterator concatenates to exactly the
    matrices :func:`load_pdbbind_ligands` materializes.  Raises
    ``RuntimeError`` after exhausting the attempt budget with fewer than
    ``n_samples`` survivors (after yielding those it found).
    """
    rng = np.random.default_rng(seed)
    spec = pdbbind_spec()
    if pool_size is None:
        pool_size = max(
            n_samples + 8,
            int(np.ceil(n_samples * PDBBIND_REFINED_COUNT / PDBBIND_FILTERED_COUNT)),
        )
    kept = 0
    attempts = 0
    max_attempts = pool_size * 4
    while kept < n_samples and attempts < max_attempts:
        mol = random_molecule(rng, spec)
        attempts += 1
        if ligand_passes_filter(mol):
            kept += 1
            yield encode_molecule(mol, PDBBIND_MATRIX_SIZE)
    if kept < n_samples:
        raise RuntimeError(
            f"filter accepted only {kept} of {attempts} ligands; "
            "loosen the spec or lower n_samples"
        )


def load_pdbbind_ligands(
    n_samples: int = PDBBIND_FILTERED_COUNT,
    seed: int = 2019,
    pool_size: int | None = None,
) -> ArrayDataset:
    """Generate, filter, and encode the ligand set.

    Parameters
    ----------
    n_samples:
        Ligands to keep after filtering (paper: 2492).  Smaller values give
        the fast benchmark subsets.
    pool_size:
        Size of the raw pre-filter pool; defaults to scaling the paper's
        4852 proportionally to ``n_samples``.
    """
    if n_samples < 1:
        raise ValueError("n_samples must be positive")
    matrices = np.stack(list(iter_pdbbind_matrices(n_samples, seed, pool_size)))
    features = matrices.reshape(n_samples, -1).astype(np.float64)
    return ArrayDataset(features, raw=matrices, name="pdbbind")
