"""Synthetic 8x8 digit images (stand-in for scikit-learn's Digits).

The paper uses the low-resolution Digits set to visualize baseline quantum
autoencoder learning (Fig. 4).  We reproduce the statistics that matter —
8x8 grayscale glyphs with intensities in [0, 16] — from ten hand-drawn
templates plus seeded shift / intensity / noise augmentation.
"""

from __future__ import annotations

import numpy as np

from .loader import ArrayDataset

__all__ = ["DIGIT_SIZE", "digit_template", "load_digits"]

DIGIT_SIZE = 8

# 8x8 glyphs: '#' = full stroke, '+' = half intensity, '.' = background.
_TEMPLATES = {
    0: [
        "..####..",
        ".#....#.",
        "#......#",
        "#......#",
        "#......#",
        "#......#",
        ".#....#.",
        "..####..",
    ],
    1: [
        "...##...",
        "..###...",
        "...##...",
        "...##...",
        "...##...",
        "...##...",
        "...##...",
        ".######.",
    ],
    2: [
        "..####..",
        ".#....#.",
        "......#.",
        ".....#..",
        "....#...",
        "...#....",
        "..#.....",
        ".######.",
    ],
    3: [
        "..####..",
        ".#....#.",
        "......#.",
        "...###..",
        "......#.",
        "......#.",
        ".#....#.",
        "..####..",
    ],
    4: [
        "....##..",
        "...###..",
        "..#.##..",
        ".#..##..",
        "#...##..",
        "########",
        "....##..",
        "....##..",
    ],
    5: [
        ".######.",
        ".#......",
        ".#......",
        ".#####..",
        "......#.",
        "......#.",
        ".#....#.",
        "..####..",
    ],
    6: [
        "..####..",
        ".#......",
        "#.......",
        "#.####..",
        "##....#.",
        "#......#",
        ".#....#.",
        "..####..",
    ],
    7: [
        "########",
        "......#.",
        ".....#..",
        "....#...",
        "...#....",
        "..#.....",
        "..#.....",
        "..#.....",
    ],
    8: [
        "..####..",
        ".#....#.",
        ".#....#.",
        "..####..",
        ".#....#.",
        "#......#",
        ".#....#.",
        "..####..",
    ],
    9: [
        "..####..",
        ".#....#.",
        "#......#",
        ".#....##",
        "..####.#",
        ".......#",
        "......#.",
        "..####..",
    ],
}

_CHAR_INTENSITY = {"#": 16.0, "+": 8.0, ".": 0.0}


def digit_template(digit: int) -> np.ndarray:
    """The clean 8x8 intensity template for one digit class."""
    rows = _TEMPLATES[digit]
    return np.array(
        [[_CHAR_INTENSITY[ch] for ch in row] for row in rows], dtype=np.float64
    )


def load_digits(n_samples: int = 500, seed: int = 8) -> ArrayDataset:
    """Jittered digit images: features ``(n, 64)`` in [0, 16], raw ``(n, 8, 8)``.

    ``raw`` additionally records labels in ``dataset.raw`` via a structured
    trick-free layout: the label of sample i is ``i % 10`` by construction.
    """
    if n_samples < 1:
        raise ValueError("n_samples must be positive")
    rng = np.random.default_rng(seed)
    images = np.empty((n_samples, DIGIT_SIZE, DIGIT_SIZE), dtype=np.float64)
    for index in range(n_samples):
        glyph = digit_template(index % 10)
        shifted = _random_shift(glyph, rng)
        scale = rng.uniform(0.75, 1.0)
        noise = rng.normal(0.0, 1.2, size=glyph.shape)
        images[index] = np.clip(shifted * scale + noise, 0.0, 16.0)
    # Ensure strictly positive L1 norms so the paper's normalization applies.
    images[:, 0, 0] = np.maximum(images[:, 0, 0], 0.05)
    features = images.reshape(n_samples, -1)
    return ArrayDataset(features, raw=images, name="digits")


def _random_shift(image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    dy, dx = int(rng.integers(-1, 2)), int(rng.integers(-1, 2))
    return np.roll(np.roll(image, dy, axis=0), dx, axis=1)
