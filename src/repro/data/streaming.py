"""Constant-memory streaming shard loaders and the streaming scorer.

The in-memory loaders (:func:`repro.data.load_qm9`,
:func:`repro.data.load_pdbbind_ligands`) materialize the whole matrix stack
before anything downstream runs.  For dataset -> scoring sweeps that is the
peak-memory bottleneck: a 32x32 float64 matrix is 8 KiB, so a
paper-scale ligand set holds tens of MiB that the scorer only ever touches
one shard at a time.

This module streams instead: the shared per-matrix generators
(:func:`repro.data.qm9.iter_qm9_matrices`,
:func:`repro.data.pdbbind.iter_pdbbind_matrices`) consume a single
sequential rng, so grouping their output into shards of any size
concatenates to exactly the full-load arrays — shard boundaries never
change a single generated matrix.  :func:`score_matrix_stream` folds shards
through the batched scoring substrate (:mod:`repro.chem.batch`) keeping
only per-molecule metric values and 32-byte canonical signatures, and
returns a :class:`~repro.chem.metrics.MoleculeSetScores` equal to scoring
the concatenated stack in one call.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from ..chem.batch import (
    MoleculeBatch,
    qed_batch,
    sanitize_batch,
    valid_mask,
)
from ..chem.metrics import (
    MoleculeSetScores,
    normalized_logp_batch,
    normalized_sa_batch,
)
from ..chem.sa import FragmentTable
from ..chem.scaffold import canonical_signature
from .pdbbind import iter_pdbbind_matrices
from .qm9 import iter_qm9_matrices

__all__ = [
    "iter_shards",
    "stream_qm9",
    "stream_pdbbind_ligands",
    "score_matrix_stream",
]

DEFAULT_SHARD_SIZE = 256


def iter_shards(
    matrices: Iterable[np.ndarray], shard_size: int = DEFAULT_SHARD_SIZE
) -> Iterator[np.ndarray]:
    """Group an iterable of ``(size, size)`` matrices into stacked shards.

    Yields ``(s, size, size)`` stacks with ``s <= shard_size`` (only the
    final shard is short).  Consumes the source lazily — at most one
    shard's worth of matrices is ever held.
    """
    if shard_size < 1:
        raise ValueError("shard_size must be positive")
    pending: list[np.ndarray] = []
    for matrix in matrices:
        pending.append(matrix)
        if len(pending) == shard_size:
            yield np.stack(pending)
            pending = []
    if pending:
        yield np.stack(pending)


def stream_qm9(
    n_samples: int = 1024,
    seed: int = 2022,
    shard_size: int = DEFAULT_SHARD_SIZE,
) -> Iterator[np.ndarray]:
    """QM9-like matrices as ``(s, 8, 8)`` shards; concatenation equals
    ``load_qm9(n_samples, seed).raw`` exactly."""
    if n_samples < 1:
        raise ValueError("n_samples must be positive")
    return iter_shards(iter_qm9_matrices(n_samples, seed), shard_size)


def stream_pdbbind_ligands(
    n_samples: int = 2492,
    seed: int = 2019,
    pool_size: int | None = None,
    shard_size: int = DEFAULT_SHARD_SIZE,
) -> Iterator[np.ndarray]:
    """Filtered ligand matrices as ``(s, 32, 32)`` shards; concatenation
    equals ``load_pdbbind_ligands(n_samples, seed).raw`` exactly."""
    if n_samples < 1:
        raise ValueError("n_samples must be positive")
    return iter_shards(
        iter_pdbbind_matrices(n_samples, seed, pool_size), shard_size
    )


def score_matrix_stream(
    shards: Iterable[np.ndarray],
    table: FragmentTable | None = None,
    correct: bool = True,
) -> MoleculeSetScores:
    """Score a stream of matrix shards without materializing the stack.

    Equal to ``score_matrices(np.concatenate(shards), ...)``: per-molecule
    metric values are independent of shard boundaries (each scorer only
    reads its own molecule's arrays/graph context), the final means run
    over the concatenated per-molecule values in sample order, and
    uniqueness aggregates canonical signatures — 32 bytes per scored
    molecule — across shards.  Peak memory is one shard plus those
    per-molecule scalars.
    """
    n_total = 0
    strictly_valid = 0
    qed_parts: list[np.ndarray] = []
    logp_parts: list[np.ndarray] = []
    sa_parts: list[np.ndarray] = []
    signatures: set[str] = set()
    n_scored = 0
    for shard in shards:
        batch = MoleculeBatch.from_matrices(np.asarray(shard))
        n_total += len(batch)
        validity = valid_mask(batch)
        strictly_valid += int(validity.sum())
        if correct:
            scored = [
                m for m in sanitize_batch(batch, validity) if m.num_atoms
            ]
        else:
            scored = [
                m for m, ok in zip(batch.molecules, validity.tolist()) if ok
            ]
        if not scored:
            continue
        scored_batch = MoleculeBatch.from_molecules(scored)
        qed_parts.append(qed_batch(scored_batch))
        logp_parts.append(normalized_logp_batch(scored_batch))
        sa_parts.append(normalized_sa_batch(scored_batch, table))
        signatures.update(canonical_signature(m) for m in scored)
        n_scored += len(scored)

    if n_scored == 0:
        return MoleculeSetScores(n_total, 0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return MoleculeSetScores(
        n_total=n_total,
        n_scored=n_scored,
        validity=strictly_valid / n_total if n_total else 0.0,
        qed=float(np.mean(np.concatenate(qed_parts))),
        logp=float(np.mean(np.concatenate(logp_parts))),
        sa=float(np.mean(np.concatenate(sa_parts))),
        uniqueness=len(signatures) / n_scored,
    )
