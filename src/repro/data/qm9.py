"""Synthetic QM9-like small-molecule dataset (8x8 molecule matrices).

The real QM9 holds ~134k organic molecules with up to 9 heavy atoms drawn
from C/N/O/F.  The paper learns the 8x8 (= 64 = 2**6 feature) encoding so
amplitude embedding maps one molecule onto 6 qubits; this generator emits
exactly that encoding for seeded, valence-correct molecules with <= 8 heavy
atoms and a QM9-like element distribution.
"""

from __future__ import annotations

import numpy as np

from ..chem.generation import MoleculeSpec, random_molecule
from ..chem.matrix import encode_molecule
from .loader import ArrayDataset

__all__ = ["QM9_MATRIX_SIZE", "qm9_spec", "iter_qm9_matrices", "load_qm9"]

QM9_MATRIX_SIZE = 8


def qm9_spec() -> MoleculeSpec:
    """Molecule distribution mirroring QM9's composition statistics."""
    return MoleculeSpec(
        min_atoms=4,
        max_atoms=QM9_MATRIX_SIZE,
        hetero_weights={"N": 0.11, "O": 0.15, "F": 0.02},
        ring_closure_prob=0.3,
        max_ring_closures=2,
        double_bond_prob=0.25,
        triple_bond_prob=0.04,
        aromatize_prob=0.5,
    )


def iter_qm9_matrices(n_samples: int, seed: int = 2022):
    """Yield the QM9-like matrices one at a time (single sequential rng).

    Generation consumes one rng stream in sample order, so any shard-wise
    grouping of this iterator concatenates to exactly the matrices
    :func:`load_qm9` materializes — the invariant the streaming loaders in
    :mod:`repro.data.streaming` rely on.
    """
    rng = np.random.default_rng(seed)
    spec = qm9_spec()
    for _ in range(n_samples):
        yield encode_molecule(random_molecule(rng, spec), QM9_MATRIX_SIZE)


def load_qm9(n_samples: int = 1024, seed: int = 2022) -> ArrayDataset:
    """Generate the dataset: features ``(n, 64)`` float, raw ``(n, 8, 8)`` int."""
    if n_samples < 1:
        raise ValueError("n_samples must be positive")
    matrices = np.empty((n_samples, QM9_MATRIX_SIZE, QM9_MATRIX_SIZE), dtype=np.int64)
    for index, matrix in enumerate(iter_qm9_matrices(n_samples, seed)):
        matrices[index] = matrix
    features = matrices.reshape(n_samples, -1).astype(np.float64)
    return ArrayDataset(features, raw=matrices, name="qm9")
