"""Dataset substrate: seeded synthetic stand-ins for the paper's data.

* :func:`load_qm9` — 8x8 molecule matrices (low-dimensional experiments);
* :func:`load_pdbbind_ligands` — 32x32 ligand matrices (scalable experiments);
* :func:`load_digits` — 8x8 digit images (Fig. 4 visualization);
* :func:`load_cifar_gray` — 32x32 grayscale images (Fig. 8 visualization).
"""

from .cifar import CIFAR_SIZE, load_cifar_gray, synth_image
from .digits import DIGIT_SIZE, digit_template, load_digits
from .loader import ArrayDataset, DataLoader, l1_normalize, train_test_split
from .pdbbind import (
    PDBBIND_FILTERED_COUNT,
    PDBBIND_MATRIX_SIZE,
    PDBBIND_REFINED_COUNT,
    iter_pdbbind_matrices,
    ligand_passes_filter,
    load_pdbbind_ligands,
    pdbbind_spec,
)
from .qm9 import QM9_MATRIX_SIZE, iter_qm9_matrices, load_qm9, qm9_spec
from .statistics import MatrixDatasetStats, dataset_statistics
from .streaming import (
    iter_shards,
    score_matrix_stream,
    stream_pdbbind_ligands,
    stream_qm9,
)

__all__ = [
    "ArrayDataset",
    "DataLoader",
    "train_test_split",
    "l1_normalize",
    "load_qm9",
    "qm9_spec",
    "QM9_MATRIX_SIZE",
    "load_pdbbind_ligands",
    "pdbbind_spec",
    "ligand_passes_filter",
    "PDBBIND_MATRIX_SIZE",
    "PDBBIND_REFINED_COUNT",
    "PDBBIND_FILTERED_COUNT",
    "load_digits",
    "digit_template",
    "DIGIT_SIZE",
    "load_cifar_gray",
    "synth_image",
    "CIFAR_SIZE",
    "MatrixDatasetStats",
    "dataset_statistics",
    "iter_qm9_matrices",
    "iter_pdbbind_matrices",
    "iter_shards",
    "stream_qm9",
    "stream_pdbbind_ligands",
    "score_matrix_stream",
]
