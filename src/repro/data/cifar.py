"""Synthetic 32x32 grayscale natural images (stand-in for CIFAR-10).

The paper grayscales CIFAR-10 to visualize SQ-AE reconstruction quality at
the 1024-feature scale (Fig. 8b-c).  Real CIFAR is not downloadable
offline, so we synthesize images with the statistics that matter for a
reconstruction benchmark: strong low-frequency structure (smooth Gaussian
random fields), piecewise objects (random ellipses / rectangles with
intensity gradients), and mild pixel noise, normalized to [0, 1].
"""

from __future__ import annotations

import numpy as np

from .loader import ArrayDataset

__all__ = ["CIFAR_SIZE", "load_cifar_gray", "synth_image"]

CIFAR_SIZE = 32


def synth_image(rng: np.random.Generator, size: int = CIFAR_SIZE) -> np.ndarray:
    """One synthetic grayscale image in [0, 1]."""
    yy, xx = np.mgrid[0:size, 0:size].astype(np.float64) / size

    # Smooth background: sum of a few random low-frequency cosine modes.
    image = np.zeros((size, size))
    for _ in range(int(rng.integers(2, 5))):
        fx, fy = rng.uniform(0.5, 3.0, size=2)
        phase_x, phase_y = rng.uniform(0, 2 * np.pi, size=2)
        amp = rng.uniform(0.2, 0.6)
        image += amp * np.cos(2 * np.pi * fx * xx + phase_x) * np.cos(
            2 * np.pi * fy * yy + phase_y
        )

    # Foreground objects: filled ellipses and axis-aligned rectangles.
    for _ in range(int(rng.integers(1, 4))):
        value = rng.uniform(-1.0, 1.0)
        if rng.random() < 0.5:
            cx, cy = rng.uniform(0.2, 0.8, size=2)
            rx, ry = rng.uniform(0.08, 0.3, size=2)
            mask = ((xx - cx) / rx) ** 2 + ((yy - cy) / ry) ** 2 <= 1.0
        else:
            x0, y0 = rng.uniform(0.0, 0.6, size=2)
            w, h = rng.uniform(0.15, 0.4, size=2)
            mask = (xx >= x0) & (xx <= x0 + w) & (yy >= y0) & (yy <= y0 + h)
        image = np.where(mask, image + value, image)

    image += rng.normal(0.0, 0.03, size=image.shape)
    image -= image.min()
    peak = image.max()
    if peak > 0:
        image /= peak
    return image


def load_cifar_gray(n_samples: int = 256, seed: int = 10) -> ArrayDataset:
    """Image set: features ``(n, 1024)`` in [0, 1], raw ``(n, 32, 32)``."""
    if n_samples < 1:
        raise ValueError("n_samples must be positive")
    rng = np.random.default_rng(seed)
    images = np.stack([synth_image(rng) for _ in range(n_samples)])
    return ArrayDataset(images.reshape(n_samples, -1), raw=images, name="cifar-gray")
