"""Dataset statistics for molecule-matrix datasets.

Quantifies what the generators actually produce — atom/bond composition,
size distribution, sparsity — so DESIGN.md's claim that the synthetic
stand-ins match the paper's data *in the ways the models care about* is
checkable, and so users can compare their own datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..chem.matrix import CODE_TO_ORDER, CODE_TO_SYMBOL
from .loader import ArrayDataset

__all__ = ["MatrixDatasetStats", "dataset_statistics"]

_BOND_NAMES = {1: "single", 2: "double", 3: "triple", 4: "aromatic"}


@dataclass
class MatrixDatasetStats:
    """Composition summary of a molecule-matrix dataset."""

    n_samples: int
    matrix_size: int
    atom_counts: dict[str, int] = field(default_factory=dict)
    bond_counts: dict[str, int] = field(default_factory=dict)
    heavy_atoms_mean: float = 0.0
    heavy_atoms_max: int = 0
    bonds_per_molecule_mean: float = 0.0
    sparsity: float = 0.0  # fraction of zero entries

    def atom_fractions(self) -> dict[str, float]:
        total = sum(self.atom_counts.values())
        if total == 0:
            return {}
        return {k: v / total for k, v in self.atom_counts.items()}

    def bond_fractions(self) -> dict[str, float]:
        total = sum(self.bond_counts.values())
        if total == 0:
            return {}
        return {k: v / total for k, v in self.bond_counts.items()}

    def format_table(self) -> str:
        from ..experiments.tables import format_table

        rows = [
            ["samples", self.n_samples],
            ["matrix size", f"{self.matrix_size}x{self.matrix_size}"],
            ["heavy atoms (mean/max)",
             f"{self.heavy_atoms_mean:.1f} / {self.heavy_atoms_max}"],
            ["bonds per molecule (mean)", f"{self.bonds_per_molecule_mean:.1f}"],
            ["sparsity", f"{self.sparsity:.3f}"],
        ]
        for symbol, fraction in sorted(self.atom_fractions().items()):
            rows.append([f"atom {symbol}", f"{fraction:.3f}"])
        for name, fraction in sorted(self.bond_fractions().items()):
            rows.append([f"bond {name}", f"{fraction:.3f}"])
        return format_table(["Statistic", "Value"], rows,
                            title="Molecule-matrix dataset statistics")


def dataset_statistics(dataset: ArrayDataset) -> MatrixDatasetStats:
    """Compute composition statistics from a dataset's raw matrices."""
    if dataset.raw is None:
        raise ValueError("dataset has no raw matrices; load a molecule dataset")
    matrices = np.asarray(dataset.raw)
    if matrices.ndim != 3 or matrices.shape[1] != matrices.shape[2]:
        raise ValueError(f"raw matrices must be (n, s, s), got {matrices.shape}")

    n, size, __ = matrices.shape
    stats = MatrixDatasetStats(n_samples=n, matrix_size=size)

    diagonals = matrices[:, np.arange(size), np.arange(size)]
    for code, symbol in CODE_TO_SYMBOL.items():
        count = int((diagonals == code).sum())
        if count:
            stats.atom_counts[symbol] = count
    heavy = (diagonals > 0).sum(axis=1)
    stats.heavy_atoms_mean = float(heavy.mean())
    stats.heavy_atoms_max = int(heavy.max())

    upper = np.triu_indices(size, k=1)
    off_diag = matrices[:, upper[0], upper[1]]
    total_bonds = 0
    for code in CODE_TO_ORDER:
        count = int((off_diag == code).sum())
        if count:
            stats.bond_counts[_BOND_NAMES[code]] = count
            total_bonds += count
    stats.bonds_per_molecule_mean = total_bonds / n if n else 0.0
    stats.sparsity = float((matrices == 0).mean())
    return stats
