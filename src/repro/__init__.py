"""repro — reproduction of "Scalable Variational Quantum Circuits for
Autoencoder-based Drug Discovery" (Junde Li and Swaroop Ghosh, DATE 2022).

Subpackages
-----------
``repro.nn``
    Reverse-mode autodiff tensors, modules, and optimizers (PyTorch stand-in).
``repro.quantum``
    Batched statevector simulator with exact adjoint gradients (PennyLane
    stand-in).
``repro.qnn``
    Quantum circuits as differentiable network layers; the paper's patched
    quantum circuit lives here.
``repro.chem``
    Molecule graphs, the molecule-matrix codec, and QED / logP / SA scoring
    (RDKit stand-in).
``repro.data``
    Seeded synthetic QM9 / PDBbind / Digits / CIFAR datasets.
``repro.models``
    The autoencoder zoo: classical AE/VAE, baseline quantum (F-BQ / H-BQ),
    and scalable patched quantum (SQ) variants.
``repro.training``
    Trainer with the paper's heterogeneous learning rates, losses, history.
``repro.evaluation``
    Reconstruction metrics, prior sampling into molecules, ASCII rendering.
``repro.experiments``
    One driver per paper table/figure (Table I/II, Fig. 4-8).

Quickstart
----------
>>> from repro.data import load_qm9
>>> from repro.models import ClassicalVAE
>>> from repro.training import Trainer, TrainConfig
>>> data = load_qm9(n_samples=128, seed=0)
>>> model = ClassicalVAE(input_dim=64, latent_dim=6)
>>> history = Trainer(model, TrainConfig(epochs=3)).fit(data)
"""

__version__ = "1.0.0"

__all__ = [
    "nn",
    "quantum",
    "qnn",
    "chem",
    "data",
    "models",
    "training",
    "evaluation",
    "experiments",
]
