"""Crippen-style atom-contribution logP.

A condensed Wildman & Crippen (1999) model: every heavy atom is assigned to
one of ~15 classes by element, aromaticity, and heteroatom attachment, and
implicit hydrogens contribute per the atom they sit on.  The class
contributions are taken from the published table (collapsing the finer
carbon/nitrogen subtypes onto their most common representative), which keeps
the orderings RDKit's MolLogP produces: hydrocarbons and halogenated
aromatics score high, polar H-bonding molecules score low.
"""

from __future__ import annotations

from .molecule import AROMATIC, Molecule

__all__ = ["crippen_logp", "atom_contribution"]

# Heavy-atom class contributions (condensed Wildman-Crippen values).
_CONTRIB = {
    "C_aliph": 0.1441,  # aliphatic C bonded only to C/H (C1/C2)
    "C_aliph_hetero": -0.2035,  # aliphatic C with heteroatom neighbor (C3)
    "C_arom": 0.2940,  # aromatic CH (C18)
    "C_arom_sub": 0.1581,  # substituted aromatic C (C21/C22)
    "C_arom_hetero": 0.2955,  # aromatic C bonded to aromatic heteroatom (C19)
    "N_amine_primary": -1.0190,  # NH2 (N1)
    "N_amine_secondary": -0.7096,  # NH (N2)
    "N_amine_tertiary": -1.0270,  # N (N7)
    "N_unsaturated": -0.1036,  # imine/nitrile N (N9-ish)
    "N_arom": -0.3239,  # aromatic N (N11/N12)
    "O_hydroxyl": -0.2893,  # OH (O2)
    "O_ether": -0.2057,  # ether/ester O (O3/O4, averaged)
    "O_carbonyl": -0.1188,  # =O (O9-ish)
    "O_arom": 0.1552,  # aromatic O (O1)
    "F": 0.4202,
    "Cl": 0.6895,
    "S": 0.6482,  # thioether/thiol (S1)
    "S_arom": 0.6237,  # aromatic S (S3)
    "P": 0.8612,
}

# Hydrogen contributions by host atom.
_H_ON_CARBON = 0.1230
_H_ON_HETERO = -0.2677


def atom_contribution(mol: Molecule, index: int) -> float:
    """Heavy-atom logP contribution (excluding its hydrogens)."""
    symbol = mol.symbols[index]
    orders = [mol.bond_order(index, nbr) for nbr in mol.neighbors(index)]
    aromatic = any(order == AROMATIC for order in orders)
    hetero_neighbor = any(
        mol.symbols[nbr] not in ("C", "H") for nbr in mol.neighbors(index)
    )

    if symbol == "C":
        if aromatic:
            aromatic_hetero_nbr = any(
                mol.symbols[nbr] in ("N", "O", "S")
                and mol.bond_order(index, nbr) == AROMATIC
                for nbr in mol.neighbors(index)
            )
            if aromatic_hetero_nbr:
                return _CONTRIB["C_arom_hetero"]
            exocyclic = [o for o in orders if o != AROMATIC]
            if exocyclic:
                return _CONTRIB["C_arom_sub"]
            return _CONTRIB["C_arom"]
        if hetero_neighbor:
            return _CONTRIB["C_aliph_hetero"]
        return _CONTRIB["C_aliph"]

    if symbol == "N":
        if aromatic:
            return _CONTRIB["N_arom"]
        if any(order in (2.0, 3.0) for order in orders):
            return _CONTRIB["N_unsaturated"]
        hydrogens = mol.implicit_hydrogens(index)
        if hydrogens >= 2:
            return _CONTRIB["N_amine_primary"]
        if hydrogens == 1:
            return _CONTRIB["N_amine_secondary"]
        return _CONTRIB["N_amine_tertiary"]

    if symbol == "O":
        if aromatic:
            return _CONTRIB["O_arom"]
        if any(order == 2.0 for order in orders):
            return _CONTRIB["O_carbonyl"]
        if mol.implicit_hydrogens(index) >= 1:
            return _CONTRIB["O_hydroxyl"]
        return _CONTRIB["O_ether"]

    if symbol == "S":
        return _CONTRIB["S_arom"] if aromatic else _CONTRIB["S"]

    if symbol in _CONTRIB:
        return _CONTRIB[symbol]
    raise ValueError(f"no Crippen class for element {symbol!r}")


def crippen_logp(mol: Molecule) -> float:
    """Octanol-water partition coefficient estimate (sum of contributions)."""
    total = 0.0
    for index, symbol in enumerate(mol.symbols):
        total += atom_contribution(mol, index)
        h_value = _H_ON_CARBON if symbol == "C" else _H_ON_HETERO
        total += h_value * mol.implicit_hydrogens(index)
    return total
