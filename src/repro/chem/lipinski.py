"""Lipinski's rule of five and related oral-druglikeness filters.

Complements QED (Table II) with the classic hard filters medicinal
chemists apply to generated candidates: molecular weight, logP, H-bond
donors/acceptors, plus the Veber extensions (rotatable bonds, TPSA).
"""

from __future__ import annotations

from dataclasses import dataclass

from .crippen import crippen_logp
from .descriptors import (
    hydrogen_bond_acceptors,
    hydrogen_bond_donors,
    rotatable_bonds,
    tpsa,
)
from .molecule import Molecule

__all__ = ["LipinskiReport", "lipinski_report", "passes_rule_of_five",
           "passes_veber"]


@dataclass(frozen=True)
class LipinskiReport:
    """Descriptor values and which rules they break."""

    molecular_weight: float
    logp: float
    donors: int
    acceptors: int
    rotatable: int
    tpsa: float
    violations: tuple[str, ...]

    @property
    def n_violations(self) -> int:
        return len(self.violations)


def lipinski_report(mol: Molecule) -> LipinskiReport:
    """Evaluate all rule-of-five descriptors and collect violations."""
    weight = mol.molecular_weight()
    logp = crippen_logp(mol)
    donors = hydrogen_bond_donors(mol)
    acceptors = hydrogen_bond_acceptors(mol)
    rotatable = rotatable_bonds(mol)
    polar_area = tpsa(mol)

    violations = []
    if weight > 500.0:
        violations.append("MW > 500")
    if logp > 5.0:
        violations.append("logP > 5")
    if donors > 5:
        violations.append("HBD > 5")
    if acceptors > 10:
        violations.append("HBA > 10")
    return LipinskiReport(
        molecular_weight=weight,
        logp=logp,
        donors=donors,
        acceptors=acceptors,
        rotatable=rotatable,
        tpsa=polar_area,
        violations=tuple(violations),
    )


def passes_rule_of_five(mol: Molecule, allowed_violations: int = 1) -> bool:
    """Lipinski's criterion: at most one rule broken (his original framing)."""
    return lipinski_report(mol).n_violations <= allowed_violations


def passes_veber(mol: Molecule) -> bool:
    """Veber's oral-bioavailability extension: ROTB <= 10 and TPSA <= 140."""
    report = lipinski_report(mol)
    return report.rotatable <= 10 and report.tpsa <= 140.0
