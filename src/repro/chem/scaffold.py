"""Murcko scaffolds and canonical molecule signatures.

Scaffold extraction (Bemis & Murcko, 1996) reduces a molecule to its ring
systems plus the linkers connecting them — the standard way to ask whether
a generative model invents new chemotypes or reshuffles one backbone.

Canonical signatures implement Morgan-style iterative refinement to give a
string invariant under atom renumbering; :func:`same_molecule` and
set-level uniqueness in :mod:`repro.chem.metrics` rely on it.
"""

from __future__ import annotations

import hashlib

from .molecule import Molecule

__all__ = [
    "murcko_scaffold",
    "canonical_signature",
    "same_molecule",
    "scaffold_diversity",
]


def murcko_scaffold(mol: Molecule) -> Molecule:
    """Ring systems plus linkers; empty molecule when there are no rings.

    Computed by iteratively deleting terminal (degree <= 1) atoms that are
    not in any ring until a fixpoint, which leaves exactly the rings and
    the shortest paths connecting them.
    """
    if not mol.rings():
        return Molecule()
    work = mol.copy()
    while True:
        ring_atoms = work.atoms_in_rings()
        terminals = [
            index
            for index in range(work.num_atoms)
            if work.degree(index) <= 1 and index not in ring_atoms
        ]
        if not terminals:
            return work
        keep = set(range(work.num_atoms)) - set(terminals)
        work = work.subgraph(keep)


def canonical_signature(mol: Molecule, rounds: int | None = None) -> str:
    """Renumbering-invariant identifier via Morgan-style refinement.

    Atom invariants start from (symbol, degree, hydrogens) and are
    iteratively hashed with sorted neighbor (bond order, invariant) pairs;
    the final sorted multiset of invariants plus sorted canonical edges is
    hashed into a hex digest.
    """
    n = mol.num_atoms
    if n == 0:
        return "empty"
    rounds = rounds if rounds is not None else max(2, n)
    invariants = [
        _stable_hash(
            f"{mol.symbols[i]}|{mol.degree(i)}|{mol.implicit_hydrogens(i)}"
        )
        for i in range(n)
    ]
    for _ in range(rounds):
        updated = []
        for i in range(n):
            neighbor_part = sorted(
                (mol.bond_order(i, j), invariants[j]) for j in mol.neighbors(i)
            )
            updated.append(_stable_hash(f"{invariants[i]}|{neighbor_part}"))
        if updated == invariants:
            break
        invariants = updated
    edges = sorted(
        tuple(sorted((invariants[i], invariants[j]))) + (order,)
        for i, j, order in mol.bonds()
    )
    payload = f"{sorted(invariants)}|{edges}"
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


def same_molecule(a: Molecule, b: Molecule) -> bool:
    """Graph-identity check up to atom renumbering.

    Uses canonical signatures; Morgan refinement distinguishes everything
    our generators produce (highly symmetric counterexamples would need a
    full isomorphism check, which networkx provides if ever required).
    """
    return canonical_signature(a) == canonical_signature(b)


def scaffold_diversity(molecules: list[Molecule]) -> float:
    """Distinct Murcko scaffolds per molecule (0 when the set is empty).

    Acyclic molecules share the 'empty' scaffold bucket.
    """
    if not molecules:
        return 0.0
    signatures = {canonical_signature(murcko_scaffold(m)) for m in molecules}
    return len(signatures) / len(molecules)


def _stable_hash(payload: str) -> int:
    return int.from_bytes(
        hashlib.blake2b(payload.encode(), digest_size=8).digest(), "big"
    )
