"""Cheminformatics substrate replacing RDKit for the reproduction.

Molecule graphs, the molecule-matrix codec from the paper's Fig. 3, valence
sanitization with lenient repair, SMILES I/O, and the three Table II
property metrics: QED, Crippen logP, and the Ertl-style SA score.
"""

from .batch import (
    MoleculeBatch,
    crippen_logp_batch,
    descriptor_matrix_batch,
    qed_batch,
    sa_score_batch,
    sanitize_batch,
    unique_fraction,
    valid_mask,
)
from .crippen import crippen_logp
from .descriptors import (
    aromatic_ring_count,
    hydrogen_bond_acceptors,
    hydrogen_bond_donors,
    ring_count,
    rotatable_bonds,
    structural_alerts,
    tpsa,
)
from .fingerprints import (
    bulk_tanimoto,
    morgan_fingerprint,
    morgan_fingerprints,
    nearest_neighbor_similarity,
    novelty,
    tanimoto,
    tanimoto_matrix,
)
from .generation import MoleculeSpec, random_molecule, random_molecules
from .lipinski import (
    LipinskiReport,
    lipinski_report,
    passes_rule_of_five,
    passes_veber,
)
from .scaffold import (
    canonical_signature,
    murcko_scaffold,
    same_molecule,
    scaffold_diversity,
)
from .matrix import (
    ATOM_CODES,
    BOND_CODES,
    decode_molecule,
    discretize,
    encode_molecule,
    is_well_formed,
    symmetrize,
)
from .metrics import (
    LOGP_RANGE,
    MoleculeSetScores,
    normalized_logp,
    normalized_logp_batch,
    normalized_sa,
    normalized_sa_batch,
    score_matrices,
    score_matrices_reference,
    score_molecules,
    score_molecules_reference,
    uniqueness,
)
from .molecule import AROMATIC, Molecule
from .periodic import ELEMENTS, Element, element
from .qed import qed, qed_properties
from .sa import FragmentTable, default_fragment_table, sa_score
from .smiles import from_smiles, to_smiles
from .valence import (
    ValenceReport,
    check_valence,
    is_valid,
    largest_fragment,
    sanitize_lenient,
)

__all__ = [
    "AROMATIC",
    "Molecule",
    "Element",
    "ELEMENTS",
    "element",
    "ATOM_CODES",
    "BOND_CODES",
    "encode_molecule",
    "decode_molecule",
    "discretize",
    "symmetrize",
    "is_well_formed",
    "check_valence",
    "is_valid",
    "largest_fragment",
    "sanitize_lenient",
    "ValenceReport",
    "MoleculeSpec",
    "random_molecule",
    "random_molecules",
    "to_smiles",
    "from_smiles",
    "crippen_logp",
    "qed",
    "qed_properties",
    "sa_score",
    "FragmentTable",
    "default_fragment_table",
    "tpsa",
    "hydrogen_bond_acceptors",
    "hydrogen_bond_donors",
    "rotatable_bonds",
    "ring_count",
    "aromatic_ring_count",
    "structural_alerts",
    "LOGP_RANGE",
    "normalized_logp",
    "normalized_sa",
    "score_molecules",
    "score_matrices",
    "uniqueness",
    "MoleculeSetScores",
    "murcko_scaffold",
    "canonical_signature",
    "same_molecule",
    "scaffold_diversity",
    "LipinskiReport",
    "lipinski_report",
    "passes_rule_of_five",
    "passes_veber",
    "morgan_fingerprint",
    "morgan_fingerprints",
    "tanimoto",
    "bulk_tanimoto",
    "tanimoto_matrix",
    "nearest_neighbor_similarity",
    "novelty",
    "MoleculeBatch",
    "qed_batch",
    "crippen_logp_batch",
    "sa_score_batch",
    "descriptor_matrix_batch",
    "sanitize_batch",
    "valid_mask",
    "unique_fraction",
    "normalized_logp_batch",
    "normalized_sa_batch",
    "score_molecules_reference",
    "score_matrices_reference",
]
