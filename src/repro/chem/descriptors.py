"""Molecular descriptors for druglikeness scoring.

These are graph-level re-implementations of the eight QED inputs (Bickerton
et al. 2012): molecular weight, Crippen logP (see :mod:`repro.chem.crippen`),
H-bond acceptors/donors, topological polar surface area, rotatable bonds,
aromatic ring count, and structural-alert count.  TPSA uses a condensed
Ertl contribution table restricted to the N/O/S environments our element set
can produce; ALERTS uses a small Brenk-style pattern set expressible as
graph queries.  Both are documented substitutions for RDKit's versions and
preserve orderings (more polar -> higher TPSA, more reactive -> more alerts).
"""

from __future__ import annotations

from .molecule import AROMATIC, Molecule

__all__ = [
    "hydrogen_bond_acceptors",
    "hydrogen_bond_donors",
    "rotatable_bonds",
    "aromatic_ring_count",
    "ring_count",
    "tpsa",
    "structural_alerts",
    "ALERT_NAMES",
]


def hydrogen_bond_acceptors(mol: Molecule) -> int:
    """Lipinski-style HBA: count of N and O atoms."""
    return sum(1 for s in mol.symbols if s in ("N", "O"))


def hydrogen_bond_donors(mol: Molecule) -> int:
    """Lipinski-style HBD: N/O atoms carrying at least one hydrogen."""
    return sum(
        1
        for i, s in enumerate(mol.symbols)
        if s in ("N", "O") and mol.implicit_hydrogens(i) > 0
    )


def rotatable_bonds(mol: Molecule) -> int:
    """Single, non-ring bonds between two non-terminal heavy atoms."""
    ring = mol.ring_bonds()
    count = 0
    for i, j, order in mol.bonds():
        if order != 1.0 or (i, j) in ring:
            continue
        if mol.degree(i) >= 2 and mol.degree(j) >= 2:
            count += 1
    return count


def ring_count(mol: Molecule) -> int:
    """Number of rings in the minimum cycle basis (SSSR-like)."""
    return len(mol.rings())


def aromatic_ring_count(mol: Molecule) -> int:
    """Rings whose every internal bond is aromatic."""
    count = 0
    for ring in mol.rings():
        ring_set = set(ring)
        edges = [
            (i, j, order)
            for i, j, order in mol.bonds()
            if i in ring_set and j in ring_set
        ]
        if len(edges) == len(ring) and all(order == AROMATIC for *_ij, order in edges):
            count += 1
    return count


# Condensed Ertl TPSA contributions (A^2).  Keys: (symbol, environment).
_TPSA_TABLE = {
    ("N", "NH2"): 26.02,  # primary amine
    ("N", "NH"): 12.03,  # secondary amine
    ("N", "N"): 3.24,  # tertiary amine
    ("N", "N="): 12.36,  # imine-type N
    ("N", "N#"): 23.79,  # nitrile N
    ("N", "n"): 12.89,  # aromatic N
    ("N", "nH"): 15.79,  # aromatic NH (pyrrole)
    ("O", "OH"): 20.23,  # hydroxyl
    ("O", "O"): 9.23,  # ether
    ("O", "O="): 17.07,  # carbonyl O
    ("O", "o"): 13.14,  # aromatic O
    ("S", "SH"): 38.80,  # thiol
    ("S", "S"): 25.30,  # thioether
    ("S", "S="): 32.09,  # thione S
    ("S", "s"): 28.24,  # aromatic S
}


def tpsa(mol: Molecule) -> float:
    """Topological polar surface area from N/O/S environment contributions."""
    total = 0.0
    for index, symbol in enumerate(mol.symbols):
        if symbol not in ("N", "O", "S"):
            continue
        env = _environment(mol, index, symbol)
        total += _TPSA_TABLE.get((symbol, env), 0.0)
    return total


def _environment(mol: Molecule, index: int, symbol: str) -> str:
    orders = [mol.bond_order(index, nbr) for nbr in mol.neighbors(index)]
    hydrogens = mol.implicit_hydrogens(index)
    aromatic = any(order == AROMATIC for order in orders)
    if aromatic:
        key = symbol.lower()
        return key + ("H" if hydrogens else "")
    if any(order == 3.0 for order in orders):
        return symbol + "#"
    if any(order == 2.0 for order in orders):
        return symbol + "="
    if hydrogens >= 2:
        return symbol + "H2"
    if hydrogens == 1:
        return symbol + "H"
    return symbol


# ----------------------------------------------------------------------
# Structural alerts (Brenk-style subset expressible as graph patterns)
# ----------------------------------------------------------------------
ALERT_NAMES = [
    "peroxide (O-O)",
    "disulfide/polysulfide (S-S)",
    "hydrazine (N-N single)",
    "azo (N=N)",
    "three-membered heteroring",
    "aldehyde",
    "thiocarbonyl (C=S)",
    "acyl fluoride",
    "cumulated double bonds",
    "macrocycle (>8-ring)",
]


def structural_alerts(mol: Molecule) -> int:
    """Count distinct alert patterns present (each pattern counted once)."""
    found = 0
    pairs = {("O", "O"): False, ("S", "S"): False}
    nn_single = nn_double = False
    for i, j, order in mol.bonds():
        si, sj = mol.symbols[i], mol.symbols[j]
        key = tuple(sorted((si, sj)))
        if key == ("O", "O"):
            pairs[("O", "O")] = True
        if key == ("S", "S"):
            pairs[("S", "S")] = True
        if key == ("N", "N"):
            if order == 1.0:
                nn_single = True
            elif order == 2.0:
                nn_double = True
    found += pairs[("O", "O")] + pairs[("S", "S")] + nn_single + nn_double
    found += int(_has_three_membered_heteroring(mol))
    found += int(_has_aldehyde(mol))
    found += int(_has_thiocarbonyl(mol))
    found += int(_has_acyl_fluoride(mol))
    found += int(_has_cumulated_double_bonds(mol))
    found += int(any(len(ring) > 8 for ring in mol.rings()))
    return found


def _has_three_membered_heteroring(mol: Molecule) -> bool:
    return any(
        len(ring) == 3 and any(mol.symbols[a] != "C" for a in ring)
        for ring in mol.rings()
    )


def _carbonyl_carbons(mol: Molecule) -> list[int]:
    carbons = []
    for i, j, order in mol.bonds():
        if order != 2.0:
            continue
        si, sj = mol.symbols[i], mol.symbols[j]
        if si == "C" and sj == "O":
            carbons.append(i)
        elif sj == "C" and si == "O":
            carbons.append(j)
    return carbons


def _has_aldehyde(mol: Molecule) -> bool:
    return any(mol.implicit_hydrogens(c) >= 1 for c in _carbonyl_carbons(mol))


def _has_thiocarbonyl(mol: Molecule) -> bool:
    for i, j, order in mol.bonds():
        if order == 2.0 and {mol.symbols[i], mol.symbols[j]} == {"C", "S"}:
            return True
    return False


def _has_acyl_fluoride(mol: Molecule) -> bool:
    for carbon in _carbonyl_carbons(mol):
        if any(mol.symbols[nbr] == "F" for nbr in mol.neighbors(carbon)):
            return True
    return False


def _has_cumulated_double_bonds(mol: Molecule) -> bool:
    for index in range(mol.num_atoms):
        doubles = sum(
            1 for nbr in mol.neighbors(index) if mol.bond_order(index, nbr) == 2.0
        )
        if doubles >= 2:
            return True
    return False
