"""Synthetic accessibility score (Ertl & Schuffenhauer, 2009 style).

SA = fragment score (how common the molecule's atom environments are in a
reference corpus) minus complexity penalties (size, ring bridges/spiro,
macrocycles), rescaled to [1, 10] where 1 = easy to synthesize.

Substitution note: Ertl's published fragment contribution table is derived
from ~1M PubChem molecules, which are not available offline.  We rebuild the
same statistic from a seeded reference corpus drawn from this package's
drug-like molecule generator: each atom's radius-2 environment is hashed,
frequencies are counted, and contributions are the centered log-probability
exactly as in the original method.  Rare/strained environments therefore
still score as hard to synthesize, which is the behaviour Table II's
normalized SA column measures.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

from .generation import MoleculeSpec, random_molecules
from .molecule import Molecule

__all__ = [
    "environment_key",
    "FragmentTable",
    "default_fragment_table",
    "sa_score",
]

_CORPUS_SIZE = 600
_CORPUS_SEED = 20220318


def environment_key(mol: Molecule, index: int, radius: int = 2) -> str:
    """Canonical string for an atom's neighborhood out to ``radius`` bonds.

    A light-weight Morgan-environment stand-in: concentric shells of
    (bond order, element, degree, hydrogens) tuples, each shell sorted so
    the key is invariant to atom numbering.
    """
    shells: list[str] = []
    frontier = {index}
    seen = {index}
    center = (
        f"{mol.symbols[index]}d{mol.degree(index)}h{mol.implicit_hydrogens(index)}"
    )
    shells.append(center)
    for _ in range(radius):
        entries: list[str] = []
        next_frontier: set[int] = set()
        for atom in frontier:
            for nbr in mol.neighbors(atom):
                order = mol.bond_order(atom, nbr)
                entries.append(
                    f"{order:g}{mol.symbols[nbr]}d{mol.degree(nbr)}"
                    f"h{mol.implicit_hydrogens(nbr)}"
                )
                if nbr not in seen:
                    next_frontier.add(nbr)
                    seen.add(nbr)
        shells.append("|".join(sorted(entries)))
        frontier = next_frontier
        if not frontier:
            break
    return ";".join(shells)


class FragmentTable:
    """Log-frequency contributions of atom environments in a corpus."""

    def __init__(self, molecules: list[Molecule], radius: int = 2):
        counts: dict[str, int] = {}
        total = 0
        for mol in molecules:
            for index in range(mol.num_atoms):
                key = environment_key(mol, index, radius)
                counts[key] = counts.get(key, 0) + 1
                total += 1
        if total == 0:
            raise ValueError("fragment table needs a non-empty corpus")
        self.radius = radius
        self._total = total
        # Ertl: contribution = log10(count) - log10(median-ish scale);
        # center on the corpus mean so common fragments score ~0.
        self._log_counts = {k: math.log10(v) for k, v in counts.items()}
        self._center = sum(self._log_counts.values()) / len(self._log_counts)
        # Unseen environments get one log-decade below the rarest seen one.
        self._floor = min(self._log_counts.values()) - 1.0

    def contribution(self, key: str) -> float:
        return self._log_counts.get(key, self._floor) - self._center

    def bulk_contributions(self, keys: list[str]) -> np.ndarray:
        """Vectorized table lookup: ``contribution`` for every key at once.

        Each element equals ``self.contribution(key)`` exactly (same dict
        lookup and subtraction); the batched SA scorer feeds one combined
        environment-key pass through this instead of per-atom calls.
        """
        log_counts = self._log_counts
        floor = self._floor
        center = self._center
        return np.fromiter(
            (log_counts.get(key, floor) - center for key in keys),
            dtype=np.float64,
            count=len(keys),
        )

    def fragment_score(self, mol: Molecule) -> float:
        """Mean environment contribution over the molecule's atoms."""
        if mol.num_atoms == 0:
            return self._floor - self._center
        return sum(
            self.contribution(environment_key(mol, i, self.radius))
            for i in range(mol.num_atoms)
        ) / mol.num_atoms


@lru_cache(maxsize=1)
def default_fragment_table() -> FragmentTable:
    """Reference table built from the seeded drug-like corpus (cached)."""
    spec = MoleculeSpec(
        min_atoms=6,
        max_atoms=28,
        hetero_weights={"N": 0.10, "O": 0.12, "F": 0.02, "S": 0.03},
        ring_closure_prob=0.5,
        max_ring_closures=3,
    )
    return FragmentTable(random_molecules(_CORPUS_SIZE, _CORPUS_SEED, spec))


def _complexity_penalty(mol: Molecule) -> float:
    n = mol.num_atoms
    size_penalty = n**1.005 - n

    rings = mol.rings()
    ring_atoms = [set(r) for r in rings]
    # Spiro atoms: belong to two rings sharing only that atom.
    spiro = 0
    bridge = 0
    for i in range(len(ring_atoms)):
        for j in range(i + 1, len(ring_atoms)):
            shared = ring_atoms[i] & ring_atoms[j]
            if len(shared) == 1:
                spiro += 1
            elif len(shared) > 2:
                bridge += len(shared) - 2
    ring_complexity = math.log10(bridge + 1) + math.log10(spiro + 1)
    macrocycle = math.log10(2) if any(len(r) > 8 for r in rings) else 0.0
    return size_penalty + ring_complexity + macrocycle


def sa_score(mol: Molecule, table: FragmentTable | None = None) -> float:
    """Synthetic accessibility in [1, 10]; lower = easier to make."""
    if mol.num_atoms == 0:
        return 10.0
    table = table if table is not None else default_fragment_table()
    score = table.fragment_score(mol) - _complexity_penalty(mol)
    # Map the raw score onto [1, 10] with the same affine+log squash Ertl
    # uses (raw ~ [-4, 2.5] covers the corpus; rarer/larger -> higher SA).
    smin, smax = -4.0, 2.5
    raw = 11.0 - (score - smin) / (smax - smin) * 9.0
    if raw > 8.0:  # soften the tail exactly like the reference script
        raw = 8.0 + math.log(raw + 1.0 - 9.0)
    return float(min(10.0, max(1.0, raw)))
