"""Molecular graph with implicit hydrogens.

A :class:`Molecule` stores heavy atoms (element symbols) and bonds with
orders 1 (single), 2 (double), 3 (triple) or the sentinel
:data:`AROMATIC` = 1.5.  Implicit hydrogen counts are derived from unused
valence, matching how the paper's molecule matrices omit hydrogens.
"""

from __future__ import annotations

from typing import Iterator

import networkx as nx

from .periodic import HYDROGEN_WEIGHT, element

__all__ = ["AROMATIC", "Molecule", "BondOrder"]

AROMATIC = 1.5
BondOrder = float

_VALID_ORDERS = {1.0, 2.0, 3.0, AROMATIC}


class Molecule:
    """An editable heavy-atom molecular graph."""

    def __init__(self) -> None:
        self.symbols: list[str] = []
        self._bonds: dict[tuple[int, int], float] = {}
        self._adjacency: dict[int, set[int]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_atoms_and_bonds(
        cls, symbols: list[str], bonds: list[tuple[int, int, float]]
    ) -> "Molecule":
        mol = cls()
        for symbol in symbols:
            mol.add_atom(symbol)
        for i, j, order in bonds:
            mol.add_bond(i, j, order)
        return mol

    def add_atom(self, symbol: str) -> int:
        element(symbol)  # validate
        index = len(self.symbols)
        self.symbols.append(symbol)
        self._adjacency[index] = set()
        return index

    def add_bond(self, i: int, j: int, order: float = 1.0) -> None:
        order = float(order)
        if order not in _VALID_ORDERS:
            raise ValueError(f"invalid bond order {order}")
        if i == j:
            raise ValueError("self-bonds are not allowed")
        self._check_atom(i)
        self._check_atom(j)
        key = (min(i, j), max(i, j))
        if key in self._bonds:
            raise ValueError(f"bond {key} already exists")
        self._bonds[key] = order
        self._adjacency[i].add(j)
        self._adjacency[j].add(i)

    def remove_bond(self, i: int, j: int) -> None:
        key = (min(i, j), max(i, j))
        if key not in self._bonds:
            raise KeyError(f"no bond {key}")
        del self._bonds[key]
        self._adjacency[i].discard(j)
        self._adjacency[j].discard(i)

    def set_bond_order(self, i: int, j: int, order: float) -> None:
        if float(order) not in _VALID_ORDERS:
            raise ValueError(f"invalid bond order {order}")
        key = (min(i, j), max(i, j))
        if key not in self._bonds:
            raise KeyError(f"no bond {key}")
        self._bonds[key] = float(order)

    def copy(self) -> "Molecule":
        mol = Molecule()
        mol.symbols = list(self.symbols)
        mol._bonds = dict(self._bonds)
        mol._adjacency = {k: set(v) for k, v in self._adjacency.items()}
        return mol

    def _check_atom(self, index: int) -> None:
        if not 0 <= index < len(self.symbols):
            raise IndexError(f"atom index {index} out of range")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_atoms(self) -> int:
        return len(self.symbols)

    @property
    def num_bonds(self) -> int:
        return len(self._bonds)

    def bonds(self) -> Iterator[tuple[int, int, float]]:
        """Yield (i, j, order) with i < j."""
        for (i, j), order in self._bonds.items():
            yield i, j, order

    def bond_order(self, i: int, j: int) -> float:
        """Bond order between two atoms, 0.0 if not bonded."""
        return self._bonds.get((min(i, j), max(i, j)), 0.0)

    def neighbors(self, index: int) -> set[int]:
        self._check_atom(index)
        return set(self._adjacency[index])

    def degree(self, index: int) -> int:
        """Number of heavy-atom neighbors."""
        return len(self._adjacency[index])

    def valence_used(self, index: int) -> float:
        """Sum of bond orders at an atom (aromatic counts 1.5)."""
        return sum(
            self._bonds[(min(index, j), max(index, j))]
            for j in self._adjacency[index]
        )

    def implicit_hydrogens(self, index: int) -> int:
        """Hydrogens implied by unused valence (never negative).

        Aromatic valence is rounded down: an aromatic carbon with two ring
        bonds (2 x 1.5 = 3.0) carries one hydrogen.
        """
        free = element(self.symbols[index]).max_valence - self.valence_used(index)
        return max(0, int(free + 1e-9))

    def total_hydrogens(self) -> int:
        return sum(self.implicit_hydrogens(i) for i in range(self.num_atoms))

    def molecular_weight(self) -> float:
        """Heavy atoms plus implicit hydrogens."""
        heavy = sum(element(s).atomic_weight for s in self.symbols)
        return heavy + HYDROGEN_WEIGHT * self.total_hydrogens()

    def molecular_formula(self) -> str:
        """Hill-order formula (C first, then H, then alphabetical)."""
        counts: dict[str, int] = {}
        for symbol in self.symbols:
            counts[symbol] = counts.get(symbol, 0) + 1
        h = self.total_hydrogens()
        parts = []
        if "C" in counts:
            c = counts.pop("C")
            parts.append("C" if c == 1 else f"C{c}")
        if h:
            parts.append("H" if h == 1 else f"H{h}")
        for symbol in sorted(counts):
            count = counts[symbol]
            parts.append(symbol if count == 1 else f"{symbol}{count}")
        return "".join(parts)

    # ------------------------------------------------------------------
    # Graph views
    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.Graph:
        """Undirected graph with ``symbol`` node attrs and ``order`` edge attrs."""
        graph = nx.Graph()
        for index, symbol in enumerate(self.symbols):
            graph.add_node(index, symbol=symbol)
        for i, j, order in self.bonds():
            graph.add_edge(i, j, order=order)
        return graph

    def connected_components(self) -> list[set[int]]:
        return [set(c) for c in nx.connected_components(self.to_networkx())]

    def is_connected(self) -> bool:
        if self.num_atoms == 0:
            return False
        return len(self.connected_components()) == 1

    def rings(self) -> list[list[int]]:
        """SSSR-like ring perception (stand-in for RDKit's GetSSSR).

        For every bond on a cycle, find the smallest ring through it (BFS
        between its endpoints with the bond removed), then greedily keep the
        shortest rings that are linearly independent over GF(2) of the edge
        space, up to the cyclomatic number.  This matches
        ``nx.minimum_cycle_basis`` on molecular graphs but is ~50x faster,
        which matters because dataset generation rings thousands of
        molecules.
        """
        target = self.num_bonds - self.num_atoms + len(self.connected_components())
        if target <= 0:
            return []
        candidates: dict[frozenset, list[int]] = {}
        for u, v in self.ring_bonds():
            path = self._shortest_path_avoiding_edge(u, v)
            if path is None:  # pragma: no cover - ring bonds always close
                continue
            edges = frozenset(
                (min(a, b), max(a, b)) for a, b in zip(path, path[1:] + path[:1])
            )
            if edges not in candidates:
                candidates[edges] = path
        ordered = sorted(candidates.values(), key=len)
        edge_index = {key: i for i, key in enumerate(self._bonds)}
        pivots: dict[int, int] = {}
        chosen: list[list[int]] = []
        for cycle in ordered:
            vec = 0
            for a, b in zip(cycle, cycle[1:] + cycle[:1]):
                vec |= 1 << edge_index[(min(a, b), max(a, b))]
            while vec:
                high = vec.bit_length() - 1
                if high not in pivots:
                    pivots[high] = vec
                    chosen.append(cycle)
                    break
                vec ^= pivots[high]
            if len(chosen) == target:
                break
        return chosen

    def _shortest_path_avoiding_edge(
        self, u: int, v: int
    ) -> list[int] | None:
        """Shortest path from u to v not using the direct (u, v) bond."""
        from collections import deque

        prev: dict[int, int | None] = {u: None}
        queue = deque([u])
        while queue:
            node = queue.popleft()
            if node == v:
                break
            for nbr in self._adjacency[node]:
                if {node, nbr} == {u, v}:
                    continue
                if nbr not in prev:
                    prev[nbr] = node
                    queue.append(nbr)
        if v not in prev:
            return None
        path = [v]
        while path[-1] != u:
            path.append(prev[path[-1]])
        return path

    def ring_bonds(self) -> set[tuple[int, int]]:
        """All bonds that participate in at least one ring.

        An edge lies on a cycle if and only if it is not a bridge of its
        connected component, so ring bonds = bonds minus bridges.
        """
        graph = self.to_networkx()
        bridges = {(min(a, b), max(a, b)) for a, b in nx.bridges(graph)}
        return {key for key in self._bonds if key not in bridges}

    def atoms_in_rings(self) -> set[int]:
        return {atom for ring in self.rings() for atom in ring}

    def subgraph(self, atoms: set[int]) -> "Molecule":
        """Induced submolecule with atoms re-indexed contiguously."""
        ordered = sorted(atoms)
        remap = {old: new for new, old in enumerate(ordered)}
        mol = Molecule()
        for old in ordered:
            mol.add_atom(self.symbols[old])
        for i, j, order in self.bonds():
            if i in atoms and j in atoms:
                mol.add_bond(remap[i], remap[j], order)
        return mol

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"Molecule({self.molecular_formula()}, bonds={self.num_bonds})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, Molecule):
            return NotImplemented
        return self.symbols == other.symbols and self._bonds == other._bonds

    def __hash__(self):  # molecules are mutable; identity hash
        return id(self)
