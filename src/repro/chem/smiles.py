"""Minimal SMILES writer and parser for the supported element set.

The writer emits explicit bond symbols (``=``, ``#``, and ``:`` for
aromatic bonds) with uppercase atoms, avoiding kekulization: ``C1:C:C:C:C:C1``
is the benzene output.  The parser accepts the same dialect plus the common
implicit-single-bond form, branches, and two-digit ``%nn`` ring closures.
It exists for tests, examples, and debugging — the learning pipeline itself
works on molecule matrices.
"""

from __future__ import annotations

from .molecule import AROMATIC, Molecule

__all__ = ["to_smiles", "from_smiles"]

_BOND_SYMBOL = {1.0: "", 2.0: "=", 3.0: "#", AROMATIC: ":"}
_SYMBOL_BOND = {"-": 1.0, "=": 2.0, "#": 3.0, ":": AROMATIC}
_TWO_CHAR = {"Cl"}


def to_smiles(mol: Molecule) -> str:
    """Serialize a connected molecule (deterministic DFS from atom 0)."""
    if mol.num_atoms == 0:
        return ""
    if not mol.is_connected():
        raise ValueError("to_smiles requires a connected molecule")

    ring_digits: dict[tuple[int, int], int] = {}
    next_digit = [1]
    visited: set[int] = set()
    tree_edges: set[tuple[int, int]] = set()

    # First pass: find DFS tree edges; everything else is a ring closure.
    stack = [0]
    parent: dict[int, int | None] = {0: None}
    order: list[int] = []
    while stack:
        atom = stack.pop()
        if atom in visited:
            continue
        visited.add(atom)
        order.append(atom)
        for nbr in sorted(mol.neighbors(atom), reverse=True):
            if nbr not in visited:
                parent.setdefault(nbr, atom)
                stack.append(nbr)
    for atom in order:
        p = parent.get(atom)
        if p is not None:
            tree_edges.add((min(atom, p), max(atom, p)))
    for i, j, __ in mol.bonds():
        key = (i, j)
        if key not in tree_edges and key not in ring_digits:
            ring_digits[key] = next_digit[0]
            next_digit[0] += 1

    out: list[str] = []
    seen: set[int] = set()

    def emit(atom: int, from_atom: int | None) -> None:
        if from_atom is not None:
            out.append(_BOND_SYMBOL[mol.bond_order(atom, from_atom)])
        out.append(mol.symbols[atom])
        seen.add(atom)
        for (i, j), digit in ring_digits.items():
            if atom in (i, j):
                out.append(_BOND_SYMBOL[mol.bond_order(i, j)])
                out.append(str(digit) if digit < 10 else f"%{digit}")
        children = [
            nbr
            for nbr in sorted(mol.neighbors(atom))
            if parent.get(nbr) == atom and nbr not in seen
        ]
        for index, child in enumerate(children):
            if index < len(children) - 1:
                out.append("(")
                emit(child, atom)
                out.append(")")
            else:
                emit(child, atom)

    emit(0, None)
    return "".join(out)


def from_smiles(smiles: str) -> Molecule:
    """Parse the dialect emitted by :func:`to_smiles` (plus '-' bonds)."""
    mol = Molecule()
    prev_atom: int | None = None
    pending_bond: float | None = None
    branch_stack: list[int] = []
    open_rings: dict[int, tuple[int, float | None]] = {}

    i = 0
    while i < len(smiles):
        ch = smiles[i]
        if ch in _SYMBOL_BOND:
            pending_bond = _SYMBOL_BOND[ch]
            i += 1
        elif ch == "(":
            if prev_atom is None:
                raise ValueError("branch before any atom")
            branch_stack.append(prev_atom)
            i += 1
        elif ch == ")":
            if not branch_stack:
                raise ValueError("unbalanced ')'")
            prev_atom = branch_stack.pop()
            i += 1
        elif ch.isdigit() or ch == "%":
            if ch == "%":
                digit = int(smiles[i + 1 : i + 3])
                i += 3
            else:
                digit = int(ch)
                i += 1
            if prev_atom is None:
                raise ValueError("ring closure before any atom")
            if digit in open_rings:
                other, bond = open_rings.pop(digit)
                order = bond if bond is not None else (
                    pending_bond if pending_bond is not None else 1.0
                )
                mol.add_bond(prev_atom, other, order)
            else:
                open_rings[digit] = (prev_atom, pending_bond)
            pending_bond = None
        else:
            symbol = None
            for candidate in _TWO_CHAR:
                if smiles.startswith(candidate, i):
                    symbol = candidate
                    break
            if symbol is None:
                symbol = ch
            atom = mol.add_atom(symbol)
            if prev_atom is not None:
                mol.add_bond(
                    prev_atom, atom, pending_bond if pending_bond is not None else 1.0
                )
            prev_atom = atom
            pending_bond = None
            i += len(symbol)
    if branch_stack:
        raise ValueError("unbalanced '('")
    if open_rings:
        raise ValueError(f"unclosed ring digits: {sorted(open_rings)}")
    return mol
