"""Quantitative Estimate of Druglikeness (Bickerton et al., 2012).

QED combines eight descriptors through asymmetric double-sigmoid
desirability functions (ADS) and takes their weighted geometric mean:

    ADS(x) = a + b / (1 + exp(-(x - c + d/2)/e)) *
                 (1 - 1 / (1 + exp(-(x - c - d/2)/f)))
    d_i = ADS_i(x_i) / ADS_i^max
    QED = exp( sum_i w_i ln d_i / sum_i w_i )

The ADS parameters and weights below are the published values (as shipped
in RDKit's ``Chem.QED``).  Descriptor extraction uses this package's
substitutes (Crippen logP, condensed TPSA, Brenk-style alerts), so absolute
QED values can differ slightly from RDKit's, but the desirability geometry
— the part that ranks generated molecules in Table II — is identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .crippen import crippen_logp
from .descriptors import (
    aromatic_ring_count,
    hydrogen_bond_acceptors,
    hydrogen_bond_donors,
    rotatable_bonds,
    structural_alerts,
    tpsa,
)
from .molecule import Molecule

__all__ = ["ADSParams", "ads", "qed", "qed_properties", "QED_WEIGHTS"]


@dataclass(frozen=True)
class ADSParams:
    """Coefficients of one asymmetric double sigmoid."""

    a: float
    b: float
    c: float
    d: float
    e: float
    f: float
    dmax: float


# Published ADS parameter sets, keyed by descriptor name.
ADS_PARAMS: dict[str, ADSParams] = {
    "MW": ADSParams(
        2.817065973, 392.5754953, 290.7489764, 2.419764353,
        49.22325677, 65.37051707, 104.9805561,
    ),
    "ALOGP": ADSParams(
        3.172690585, 137.8624751, 2.534937431, 4.581497897,
        0.822739154, 0.576295591, 131.3186604,
    ),
    "HBA": ADSParams(
        2.948620388, 160.4605972, 3.615294657, 4.435986202,
        0.290141953, 1.300669958, 148.7763046,
    ),
    "HBD": ADSParams(
        1.618662227, 1010.051101, 0.985094388, 0.000000001,
        0.713820843, 0.920922555, 258.1632616,
    ),
    "PSA": ADSParams(
        1.876861559, 125.2232657, 62.90773554, 87.83366614,
        12.01999824, 28.51324732, 104.5686167,
    ),
    "ROTB": ADSParams(
        0.010000051, 272.4121427, 2.558379970, 1.565547684,
        1.271567166, 2.758063707, 105.4420403,
    ),
    "AROM": ADSParams(
        3.217788970, 957.7374108, 2.274627939, 0.000000001,
        1.317690384, 0.375760881, 312.3372610,
    ),
    "ALERTS": ADSParams(
        0.010000000, 1199.094025, -0.09002883, 0.000000001,
        0.185904477, 0.875193782, 417.7253140,
    ),
}

# Published mean weights for the weighted QED (QEDw).
QED_WEIGHTS: dict[str, float] = {
    "MW": 0.66,
    "ALOGP": 0.46,
    "HBA": 0.05,
    "HBD": 0.61,
    "PSA": 0.06,
    "ROTB": 0.65,
    "AROM": 0.48,
    "ALERTS": 0.95,
}

_MIN_DESIRABILITY = 1e-10


def ads(x: float, params: ADSParams) -> float:
    """Evaluate one desirability function, normalized to (0, 1]."""
    rising = 1.0 + math.exp(-(x - params.c + params.d / 2.0) / params.e)
    falling = 1.0 + math.exp(-(x - params.c - params.d / 2.0) / params.f)
    value = params.a + params.b / rising * (1.0 - 1.0 / falling)
    return max(value / params.dmax, _MIN_DESIRABILITY)


def qed_properties(mol: Molecule) -> dict[str, float]:
    """The eight raw QED descriptors for a molecule."""
    return {
        "MW": mol.molecular_weight(),
        "ALOGP": crippen_logp(mol),
        "HBA": float(hydrogen_bond_acceptors(mol)),
        "HBD": float(hydrogen_bond_donors(mol)),
        "PSA": tpsa(mol),
        "ROTB": float(rotatable_bonds(mol)),
        "AROM": float(aromatic_ring_count(mol)),
        "ALERTS": float(structural_alerts(mol)),
    }


def qed(mol: Molecule, weights: dict[str, float] | None = None) -> float:
    """Weighted QED in [0, 1]; higher is more druglike."""
    if mol.num_atoms == 0:
        return 0.0
    weights = weights if weights is not None else QED_WEIGHTS
    properties = qed_properties(mol)
    log_sum = 0.0
    weight_sum = 0.0
    for name, value in properties.items():
        weight = weights[name]
        log_sum += weight * math.log(ads(value, ADS_PARAMS[name]))
        weight_sum += weight
    return math.exp(log_sum / weight_sum)
