"""Molecule-matrix codec (Fig. 3 of the paper).

A molecule with up to N heavy atoms is an N x N symmetric integer matrix:

* diagonal ``M[i, i]`` — encoded atom type: 1-C, 2-N, 3-O, 4-F, 5-S
  (0 = no atom; QM9 uses codes 1-3 plus 4-F);
* off-diagonal ``M[i, j]`` — encoded bond type: 0-NONE, 1-SINGLE, 2-DOUBLE,
  3-TRIPLE, 4-AROMATIC.

Autoencoder outputs are continuous, so :func:`discretize` rounds and clips a
real-valued matrix back onto valid codes before decoding.
"""

from __future__ import annotations

import numpy as np

from .molecule import AROMATIC, Molecule

__all__ = [
    "ATOM_CODES",
    "CODE_TO_SYMBOL",
    "BOND_CODES",
    "CODE_TO_ORDER",
    "encode_molecule",
    "decode_molecule",
    "discretize",
    "symmetrize",
    "is_well_formed",
]

ATOM_CODES: dict[str, int] = {"C": 1, "N": 2, "O": 3, "F": 4, "S": 5}
CODE_TO_SYMBOL: dict[int, str] = {v: k for k, v in ATOM_CODES.items()}

BOND_CODES: dict[float, int] = {1.0: 1, 2.0: 2, 3.0: 3, AROMATIC: 4}
CODE_TO_ORDER: dict[int, float] = {v: k for k, v in BOND_CODES.items()}

MAX_ATOM_CODE = max(ATOM_CODES.values())
MAX_BOND_CODE = max(BOND_CODES.values())


def encode_molecule(mol: Molecule, size: int) -> np.ndarray:
    """Encode a molecule as a ``(size, size)`` integer matrix.

    Atoms occupy the leading diagonal slots in index order; raises if the
    molecule has more atoms than ``size`` or uses an unencodable element.
    """
    if mol.num_atoms > size:
        raise ValueError(f"molecule has {mol.num_atoms} atoms > matrix size {size}")
    matrix = np.zeros((size, size), dtype=np.int64)
    for index, symbol in enumerate(mol.symbols):
        if symbol not in ATOM_CODES:
            raise ValueError(f"element {symbol!r} has no matrix code")
        matrix[index, index] = ATOM_CODES[symbol]
    for i, j, order in mol.bonds():
        code = BOND_CODES[float(order)]
        matrix[i, j] = code
        matrix[j, i] = code
    return matrix


def decode_molecule(matrix: np.ndarray) -> Molecule:
    """Decode an integer matrix into a (possibly invalid) molecule.

    Empty diagonal slots are skipped; bonds touching empty slots are
    dropped; unknown codes raise.  Chemical validity is *not* checked here —
    that is :mod:`repro.chem.valence`'s job.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"molecule matrix must be square, got {matrix.shape}")
    size = matrix.shape[0]
    mol = Molecule()
    slot_to_atom: dict[int, int] = {}
    for slot in range(size):
        code = int(matrix[slot, slot])
        if code == 0:
            continue
        if code not in CODE_TO_SYMBOL:
            raise ValueError(f"unknown atom code {code} at slot {slot}")
        slot_to_atom[slot] = mol.add_atom(CODE_TO_SYMBOL[code])
    for i in range(size):
        for j in range(i + 1, size):
            code = int(matrix[i, j])
            if code == 0:
                continue
            if code not in CODE_TO_ORDER:
                raise ValueError(f"unknown bond code {code} at ({i}, {j})")
            if i in slot_to_atom and j in slot_to_atom:
                mol.add_bond(slot_to_atom[i], slot_to_atom[j], CODE_TO_ORDER[code])
    return mol


def symmetrize(matrix: np.ndarray) -> np.ndarray:
    """Average a real matrix with its transpose (model outputs are free-form)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    return 0.5 * (matrix + matrix.T)


def discretize(matrix: np.ndarray) -> np.ndarray:
    """Project a continuous matrix onto valid integer codes.

    The matrix is symmetrized, then the diagonal is rounded and clipped to
    [0, 5] (atom codes) and off-diagonals to [0, 4] (bond codes).  This is
    the bridge from autoencoder output space back to molecule space used by
    the sampling evaluation (Table II).
    """
    sym = symmetrize(matrix)
    rounded = np.rint(sym).astype(np.int64)
    diag = np.clip(np.diag(rounded), 0, MAX_ATOM_CODE)
    off = np.clip(rounded, 0, MAX_BOND_CODE)
    np.fill_diagonal(off, diag)
    return off


def is_well_formed(matrix: np.ndarray) -> bool:
    """Check a matrix is symmetric with known codes (not chemical validity)."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    if not np.array_equal(matrix, matrix.T):
        return False
    diag = np.diag(matrix)
    if np.any((diag < 0) | (diag > MAX_ATOM_CODE)):
        return False
    off = matrix[~np.eye(matrix.shape[0], dtype=bool)]
    return not np.any((off < 0) | (off > MAX_BOND_CODE))
