"""Fast exact graph primitives for the batched scoring path.

The scalar chem metrics lean on :mod:`networkx` (``connected_components``,
``bridges``) and recompute ring perception several times per molecule.  The
batched pipeline in :mod:`repro.chem.batch` instead computes each graph
quantity **once** per molecule with the dependency-free routines here and
shares the results across every scorer.

Exactness contract: these functions return the *same values* as the
networkx-backed :class:`~repro.chem.molecule.Molecule` methods —

* :func:`connected_components` returns the same family of atom sets
  (component order is irrelevant to every consumer);
* :func:`bridges` returns the same edge set as ``nx.bridges`` (used for
  membership tests only);
* :func:`ring_bonds` rebuilds the set with the same element insertion
  order as ``Molecule.ring_bonds`` (a comprehension over the bond dict),
  so downstream *set iteration order* — which ring perception's
  tie-breaking observes — is identical;
* :func:`rings` re-runs ``Molecule.rings``'s exact algorithm against the
  cached ``ring_bonds``/component count instead of recomputing them.

Keeping iteration orders aligned is what makes the batched scorers
bit-for-bit equal to the scalar reference even for descriptors that depend
on which cycle basis the greedy ring perception picks.
"""

from __future__ import annotations

from .molecule import Molecule

__all__ = [
    "connected_components",
    "bridges",
    "ring_bonds",
    "rings",
]


def connected_components(mol: Molecule) -> list[set[int]]:
    """Connected atom sets via union-find (same sets as the networkx path)."""
    n = mol.num_atoms
    parent = list(range(n))

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    for (i, j) in mol._bonds:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    groups: dict[int, set[int]] = {}
    for atom in range(n):
        groups.setdefault(find(atom), set()).add(atom)
    return list(groups.values())


def bridges(mol: Molecule) -> set[tuple[int, int]]:
    """All bridge edges as ``(min, max)`` tuples (iterative Tarjan DFS).

    An edge is a bridge iff no back-edge spans it; equality with
    ``nx.bridges`` follows because the bridge set of a graph is unique.
    Parallel edges cannot occur (``Molecule`` stores one order per pair).
    """
    n = mol.num_atoms
    adjacency = mol._adjacency
    disc = [-1] * n  # discovery times
    low = [0] * n
    out: set[tuple[int, int]] = set()
    time = 0
    for start in range(n):
        if disc[start] != -1:
            continue
        # Stack frames: (node, parent, iterator over neighbors).
        stack = [(start, -1, iter(adjacency[start]))]
        disc[start] = low[start] = time
        time += 1
        while stack:
            node, parent, neighbors = stack[-1]
            advanced = False
            for nbr in neighbors:
                if disc[nbr] == -1:
                    disc[nbr] = low[nbr] = time
                    time += 1
                    stack.append((nbr, node, iter(adjacency[nbr])))
                    advanced = True
                    break
                if nbr != parent:
                    low[node] = min(low[node], disc[nbr])
            if advanced:
                continue
            stack.pop()
            if stack:
                parent_node = stack[-1][0]
                low[parent_node] = min(low[parent_node], low[node])
                if low[node] > disc[parent_node]:
                    out.add((min(parent_node, node), max(parent_node, node)))
    return out


def ring_bonds(mol: Molecule, bridge_set: set[tuple[int, int]] | None = None
               ) -> set[tuple[int, int]]:
    """Bonds on at least one cycle: the molecule's bonds minus its bridges.

    Built exactly like ``Molecule.ring_bonds`` — a set comprehension over
    the bond dict — so the resulting set's internal layout (and therefore
    iteration order) matches the scalar path's, which ring perception's
    candidate ordering depends on.
    """
    if bridge_set is None:
        bridge_set = bridges(mol)
    return {key for key in mol._bonds if key not in bridge_set}


def rings(
    mol: Molecule,
    ring_bond_set: set[tuple[int, int]],
    n_components: int,
) -> list[list[int]]:
    """``Molecule.rings()`` with its two graph sweeps supplied from cache.

    This is the exact algorithm from :meth:`Molecule.rings` — smallest
    cycle through every ring bond, then a greedy GF(2)-independent basis —
    with ``ring_bonds()`` and ``connected_components()`` replaced by the
    precomputed arguments.  BFS tie-breaking goes through the molecule's
    own adjacency sets, so the returned cycles are identical to the
    scalar path's.
    """
    target = mol.num_bonds - mol.num_atoms + n_components
    if target <= 0:
        return []
    candidates: dict[frozenset, list[int]] = {}
    for u, v in ring_bond_set:
        path = mol._shortest_path_avoiding_edge(u, v)
        if path is None:  # pragma: no cover - ring bonds always close
            continue
        edges = frozenset(
            (min(a, b), max(a, b)) for a, b in zip(path, path[1:] + path[:1])
        )
        if edges not in candidates:
            candidates[edges] = path
    ordered = sorted(candidates.values(), key=len)
    edge_index = {key: i for i, key in enumerate(mol._bonds)}
    pivots: dict[int, int] = {}
    chosen: list[list[int]] = []
    for cycle in ordered:
        vec = 0
        for a, b in zip(cycle, cycle[1:] + cycle[:1]):
            vec |= 1 << edge_index[(min(a, b), max(a, b))]
        while vec:
            high = vec.bit_length() - 1
            if high not in pivots:
                pivots[high] = vec
                chosen.append(cycle)
                break
            vec ^= pivots[high]
        if len(chosen) == target:
            break
    return chosen
