"""Normalized drug-property metrics for generated molecule sets (Table II).

The paper reports QED, logP, and SA for sampled ligands on a [0, 1] scale
(e.g. logP 0.357-0.780).  That is the MolGAN-style normalization the
authors' companion work uses:

* QED is already in [0, 1];
* logP is min-max normalized over the empirical drug range
  [-2.12178879609, 6.0429063424] and clipped;
* SA is mapped as (10 - SA) / 9 so that *higher is better* (easier to
  synthesize).

Set-level metrics aggregate over molecules decoded from generated matrices,
after lenient validity correction (see :mod:`repro.chem.valence`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .batch import (
    MoleculeBatch,
    crippen_logp_batch,
    qed_batch,
    sa_score_batch,
    sanitize_batch,
    unique_fraction,
    valid_mask,
)
from .crippen import crippen_logp
from .matrix import decode_molecule, discretize
from .molecule import Molecule
from .qed import qed
from .sa import FragmentTable, sa_score
from .scaffold import canonical_signature
from .valence import is_valid, sanitize_lenient

__all__ = [
    "LOGP_RANGE",
    "normalized_logp",
    "normalized_sa",
    "normalized_logp_batch",
    "normalized_sa_batch",
    "MoleculeSetScores",
    "score_molecules",
    "score_molecules_reference",
    "score_matrices",
    "score_matrices_reference",
    "uniqueness",
]

LOGP_RANGE = (-2.12178879609, 6.0429063424)


def normalized_logp(mol: Molecule) -> float:
    """Min-max normalized Crippen logP, clipped to [0, 1]."""
    low, high = LOGP_RANGE
    return float(np.clip((crippen_logp(mol) - low) / (high - low), 0.0, 1.0))


def normalized_sa(mol: Molecule, table: FragmentTable | None = None) -> float:
    """(10 - SA)/9 in [0, 1]; higher = more synthesizable."""
    return float(np.clip((10.0 - sa_score(mol, table)) / 9.0, 0.0, 1.0))


def normalized_logp_batch(molecules) -> np.ndarray:
    """:func:`normalized_logp` over a set (same clip arithmetic, batched)."""
    low, high = LOGP_RANGE
    return np.clip((crippen_logp_batch(molecules) - low) / (high - low),
                   0.0, 1.0)


def normalized_sa_batch(molecules, table: FragmentTable | None = None
                        ) -> np.ndarray:
    """:func:`normalized_sa` over a set (same clip arithmetic, batched)."""
    return np.clip((10.0 - sa_score_batch(molecules, table)) / 9.0, 0.0, 1.0)


@dataclass
class MoleculeSetScores:
    """Aggregate metrics over a generated molecule set."""

    n_total: int
    n_scored: int
    validity: float  # fraction strictly valid before correction
    qed: float
    logp: float
    sa: float
    uniqueness: float

    def as_row(self) -> dict[str, float]:
        return {
            "QED": self.qed,
            "logP": self.logp,
            "SA": self.sa,
            "validity": self.validity,
            "uniqueness": self.uniqueness,
        }


def score_molecules(
    molecules: list[Molecule] | MoleculeBatch,
    table: FragmentTable | None = None,
    correct: bool = True,
) -> MoleculeSetScores:
    """Mean normalized QED / logP / SA over a molecule set.

    With ``correct=True`` (Table II mode) every molecule is repaired via
    lenient sanitization first and empty repairs are skipped; strict
    validity is still reported.  With ``correct=False`` only strictly valid
    molecules are scored.

    Runs on the batched substrate (:mod:`repro.chem.batch`): validity is
    computed in one vectorized pass and reused for both the reported
    fraction and the sanitize/score filter, and the scorers share one set
    of packed arrays and per-molecule graph contexts.  Results are
    bit-for-bit equal to :func:`score_molecules_reference`.  Accepts a
    pre-packed :class:`MoleculeBatch` to avoid re-packing.
    """
    batch = (
        molecules
        if isinstance(molecules, MoleculeBatch)
        else MoleculeBatch.from_molecules(list(molecules))
    )
    n_total = len(batch)
    validity = valid_mask(batch)
    strictly_valid = int(validity.sum())
    if correct:
        scored = [m for m in sanitize_batch(batch, validity) if m.num_atoms]
    else:
        # is_valid implies non-empty, so the validity pass is the filter.
        scored = [
            m for m, ok in zip(batch.molecules, validity.tolist()) if ok
        ]

    if not scored:
        return MoleculeSetScores(n_total, 0, 0.0, 0.0, 0.0, 0.0, 0.0)

    scored_batch = MoleculeBatch.from_molecules(scored)
    qed_values = qed_batch(scored_batch)
    logp_values = normalized_logp_batch(scored_batch)
    sa_values = normalized_sa_batch(scored_batch, table)
    return MoleculeSetScores(
        n_total=n_total,
        n_scored=len(scored),
        validity=strictly_valid / n_total if n_total else 0.0,
        qed=float(np.mean(qed_values)),
        logp=float(np.mean(logp_values)),
        sa=float(np.mean(sa_values)),
        uniqueness=unique_fraction(scored_batch),
    )


def score_molecules_reference(
    molecules: list[Molecule],
    table: FragmentTable | None = None,
    correct: bool = True,
) -> MoleculeSetScores:
    """Per-molecule reference implementation of :func:`score_molecules`.

    Kept as the bit-for-bit oracle for the batched path (differential
    tests, pipeline benchmarks).  Validity is evaluated once per molecule
    and reused for both the reported fraction and the ``correct=False``
    filter.
    """
    n_total = len(molecules)
    validity = [is_valid(m) for m in molecules]
    strictly_valid = sum(validity)
    scored: list[Molecule] = []
    for mol, valid in zip(molecules, validity):
        candidate = sanitize_lenient(mol) if correct else mol
        if candidate.num_atoms == 0:
            continue
        if not correct and not valid:
            continue
        scored.append(candidate)

    if not scored:
        return MoleculeSetScores(n_total, 0, 0.0, 0.0, 0.0, 0.0, 0.0)

    qed_values = [qed(m) for m in scored]
    logp_values = [normalized_logp(m) for m in scored]
    sa_values = [normalized_sa(m, table) for m in scored]
    return MoleculeSetScores(
        n_total=n_total,
        n_scored=len(scored),
        validity=strictly_valid / n_total if n_total else 0.0,
        qed=float(np.mean(qed_values)),
        logp=float(np.mean(logp_values)),
        sa=float(np.mean(sa_values)),
        uniqueness=uniqueness(scored),
    )


def score_matrices(
    matrices: np.ndarray,
    table: FragmentTable | None = None,
    correct: bool = True,
) -> MoleculeSetScores:
    """Decode a stack of (possibly continuous) matrices and score the set.

    The whole stack is discretized and decoded in one vectorized pass
    (:meth:`MoleculeBatch.from_matrices`) and scored on the batched
    substrate; equal to :func:`score_matrices_reference` bit for bit.
    """
    return score_molecules(
        MoleculeBatch.from_matrices(np.asarray(matrices)),
        table=table, correct=correct,
    )


def score_matrices_reference(
    matrices: np.ndarray,
    table: FragmentTable | None = None,
    correct: bool = True,
) -> MoleculeSetScores:
    """Per-matrix reference path: loop ``decode_molecule(discretize(...))``."""
    molecules = [
        decode_molecule(discretize(matrix)) for matrix in np.asarray(matrices)
    ]
    return score_molecules_reference(molecules, table=table, correct=correct)


def uniqueness(molecules: list[Molecule]) -> float:
    """Fraction of distinct molecules (by canonical graph signature).

    Per-molecule reference; :func:`repro.chem.batch.unique_fraction`
    computes the same value with signature hashing only inside
    cheap-invariant collision groups.
    """
    if not molecules:
        return 0.0
    keys = {canonical_signature(m) for m in molecules}
    return len(keys) / len(molecules)
