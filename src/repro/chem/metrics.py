"""Normalized drug-property metrics for generated molecule sets (Table II).

The paper reports QED, logP, and SA for sampled ligands on a [0, 1] scale
(e.g. logP 0.357-0.780).  That is the MolGAN-style normalization the
authors' companion work uses:

* QED is already in [0, 1];
* logP is min-max normalized over the empirical drug range
  [-2.12178879609, 6.0429063424] and clipped;
* SA is mapped as (10 - SA) / 9 so that *higher is better* (easier to
  synthesize).

Set-level metrics aggregate over molecules decoded from generated matrices,
after lenient validity correction (see :mod:`repro.chem.valence`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .crippen import crippen_logp
from .matrix import decode_molecule, discretize
from .molecule import Molecule
from .qed import qed
from .sa import FragmentTable, sa_score
from .valence import is_valid, sanitize_lenient

__all__ = [
    "LOGP_RANGE",
    "normalized_logp",
    "normalized_sa",
    "MoleculeSetScores",
    "score_molecules",
    "score_matrices",
    "uniqueness",
]

LOGP_RANGE = (-2.12178879609, 6.0429063424)


def normalized_logp(mol: Molecule) -> float:
    """Min-max normalized Crippen logP, clipped to [0, 1]."""
    low, high = LOGP_RANGE
    return float(np.clip((crippen_logp(mol) - low) / (high - low), 0.0, 1.0))


def normalized_sa(mol: Molecule, table: FragmentTable | None = None) -> float:
    """(10 - SA)/9 in [0, 1]; higher = more synthesizable."""
    return float(np.clip((10.0 - sa_score(mol, table)) / 9.0, 0.0, 1.0))


@dataclass
class MoleculeSetScores:
    """Aggregate metrics over a generated molecule set."""

    n_total: int
    n_scored: int
    validity: float  # fraction strictly valid before correction
    qed: float
    logp: float
    sa: float
    uniqueness: float

    def as_row(self) -> dict[str, float]:
        return {
            "QED": self.qed,
            "logP": self.logp,
            "SA": self.sa,
            "validity": self.validity,
            "uniqueness": self.uniqueness,
        }


def score_molecules(
    molecules: list[Molecule],
    table: FragmentTable | None = None,
    correct: bool = True,
) -> MoleculeSetScores:
    """Mean normalized QED / logP / SA over a molecule set.

    With ``correct=True`` (Table II mode) every molecule is repaired via
    lenient sanitization first and empty repairs are skipped; strict
    validity is still reported.  With ``correct=False`` only strictly valid
    molecules are scored.
    """
    n_total = len(molecules)
    strictly_valid = sum(1 for m in molecules if is_valid(m))
    scored: list[Molecule] = []
    for mol in molecules:
        candidate = sanitize_lenient(mol) if correct else mol
        if candidate.num_atoms == 0:
            continue
        if not correct and not is_valid(candidate):
            continue
        scored.append(candidate)

    if not scored:
        return MoleculeSetScores(n_total, 0, 0.0, 0.0, 0.0, 0.0, 0.0)

    qed_values = [qed(m) for m in scored]
    logp_values = [normalized_logp(m) for m in scored]
    sa_values = [normalized_sa(m, table) for m in scored]
    return MoleculeSetScores(
        n_total=n_total,
        n_scored=len(scored),
        validity=strictly_valid / n_total if n_total else 0.0,
        qed=float(np.mean(qed_values)),
        logp=float(np.mean(logp_values)),
        sa=float(np.mean(sa_values)),
        uniqueness=uniqueness(scored),
    )


def score_matrices(
    matrices: np.ndarray,
    table: FragmentTable | None = None,
    correct: bool = True,
) -> MoleculeSetScores:
    """Decode a stack of (possibly continuous) matrices and score the set."""
    molecules = [
        decode_molecule(discretize(matrix)) for matrix in np.asarray(matrices)
    ]
    return score_molecules(molecules, table=table, correct=correct)


def uniqueness(molecules: list[Molecule]) -> float:
    """Fraction of distinct molecules (by canonical graph signature)."""
    from .scaffold import canonical_signature

    if not molecules:
        return 0.0
    keys = {canonical_signature(m) for m in molecules}
    return len(keys) / len(molecules)
