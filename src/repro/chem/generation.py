"""Seeded random generator of valence-correct drug-like molecules.

This is the data substrate standing in for QM9 and the PDBbind ligand set
(neither is downloadable offline).  Molecules are *valid by construction*:

1. grow a random heavy-atom tree of carbons with degree <= 4;
2. close rings by joining atoms at short graph distance;
3. relabel a fraction of atoms to heteroatoms that can absorb the atom's
   current valence;
4. upgrade some bonds to double/triple where both endpoints have free
   valence;
5. aromatize eligible 5- and 6-rings (all-carbon or C/N, enough free
   valence on every ring atom).

The resulting distribution has the properties the paper's pipelines care
about: sparse symmetric molecule matrices, realistic ring/heteroatom
content, and RDKit-style property spreads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .molecule import AROMATIC, Molecule
from .periodic import element
from .valence import check_valence

__all__ = ["MoleculeSpec", "random_molecule", "random_molecules"]


@dataclass(frozen=True)
class MoleculeSpec:
    """Tunable knobs for the random molecule distribution."""

    min_atoms: int = 4
    max_atoms: int = 9
    # Relabeling probabilities per element (carbon keeps the rest).
    hetero_weights: dict = field(
        default_factory=lambda: {"N": 0.12, "O": 0.14, "F": 0.03}
    )
    ring_closure_prob: float = 0.35
    max_ring_closures: int = 2
    double_bond_prob: float = 0.25
    triple_bond_prob: float = 0.03
    aromatize_prob: float = 0.6
    branch_bias: float = 0.6  # 1.0 = attach uniformly; <1 favors chain ends


def random_molecule(rng: np.random.Generator, spec: MoleculeSpec) -> Molecule:
    """Draw one valid molecule from the spec's distribution."""
    n_atoms = int(rng.integers(spec.min_atoms, spec.max_atoms + 1))
    mol = _grow_carbon_tree(rng, n_atoms, spec.branch_bias)
    _close_rings(rng, mol, spec)
    _relabel_heteroatoms(rng, mol, spec)
    _upgrade_bonds(rng, mol, spec)
    _aromatize(rng, mol, spec)
    report = check_valence(mol)
    if not report.ok:  # pragma: no cover - generator is valid by construction
        raise AssertionError(f"generator produced invalid molecule: {report.problems}")
    return mol


def random_molecules(
    count: int, seed: int, spec: MoleculeSpec | None = None
) -> list[Molecule]:
    """Generate a reproducible list of molecules."""
    spec = spec if spec is not None else MoleculeSpec()
    rng = np.random.default_rng(seed)
    return [random_molecule(rng, spec) for _ in range(count)]


def _grow_carbon_tree(
    rng: np.random.Generator, n_atoms: int, branch_bias: float
) -> Molecule:
    mol = Molecule()
    mol.add_atom("C")
    for _ in range(1, n_atoms):
        candidates = [
            i
            for i in range(mol.num_atoms)
            if mol.valence_used(i) < 4 - 1e-9 and mol.degree(i) < 4
        ]
        weights = np.array(
            [branch_bias ** mol.degree(i) for i in candidates], dtype=np.float64
        )
        weights /= weights.sum()
        parent = int(rng.choice(candidates, p=weights))
        atom = mol.add_atom("C")
        mol.add_bond(parent, atom, 1.0)
    return mol


def _close_rings(rng: np.random.Generator, mol: Molecule, spec: MoleculeSpec) -> None:
    from collections import deque

    for _ in range(spec.max_ring_closures):
        if rng.random() > spec.ring_closure_prob:
            continue
        anchors = [
            i for i in range(mol.num_atoms) if mol.valence_used(i) < 4 - 1e-9
        ]
        rng.shuffle(anchors)
        for anchor in anchors[:4]:  # a few tries, then give up this closure
            # BFS to depth 5 from the anchor.
            depth = {anchor: 0}
            queue = deque([anchor])
            while queue:
                node = queue.popleft()
                if depth[node] >= 5:
                    continue
                for nbr in mol.neighbors(node):
                    if nbr not in depth:
                        depth[nbr] = depth[node] + 1
                        queue.append(nbr)
            candidates = [
                j
                for j, d in depth.items()
                if 2 <= d <= 5
                and mol.bond_order(anchor, j) == 0.0
                and mol.valence_used(j) < 4 - 1e-9
            ]
            if candidates:
                j = candidates[int(rng.integers(len(candidates)))]
                mol.add_bond(anchor, j, 1.0)
                break


def _relabel_heteroatoms(
    rng: np.random.Generator, mol: Molecule, spec: MoleculeSpec
) -> None:
    symbols = list(spec.hetero_weights)
    probs = np.array([spec.hetero_weights[s] for s in symbols])
    carbon_prob = 1.0 - probs.sum()
    if carbon_prob < 0:
        raise ValueError("hetero weights sum beyond 1")
    for index in range(mol.num_atoms):
        draw = rng.random()
        cumulative = 0.0
        chosen = "C"
        for symbol, p in zip(symbols, probs):
            cumulative += p
            if draw < cumulative:
                chosen = symbol
                break
        if chosen == "C":
            continue
        if mol.valence_used(index) <= element(chosen).max_valence + 1e-9:
            mol.symbols[index] = chosen


def _upgrade_bonds(rng: np.random.Generator, mol: Molecule, spec: MoleculeSpec) -> None:
    for i, j, order in list(mol.bonds()):
        if order != 1.0:
            continue
        free_i = element(mol.symbols[i]).max_valence - mol.valence_used(i)
        free_j = element(mol.symbols[j]).max_valence - mol.valence_used(j)
        draw = rng.random()
        if draw < spec.triple_bond_prob and free_i >= 2 and free_j >= 2:
            mol.set_bond_order(i, j, 3.0)
        elif draw < spec.triple_bond_prob + spec.double_bond_prob:
            if free_i >= 1 and free_j >= 1:
                mol.set_bond_order(i, j, 2.0)


def _aromatize(rng: np.random.Generator, mol: Molecule, spec: MoleculeSpec) -> None:
    for ring in mol.rings():
        if len(ring) not in (5, 6):
            continue
        if rng.random() > spec.aromatize_prob:
            continue
        if not all(mol.symbols[a] in ("C", "N") for a in ring):
            continue
        ring_set = set(ring)
        ring_edges = [
            (i, j)
            for i, j, __ in mol.bonds()
            if i in ring_set and j in ring_set
        ]
        # Only aromatize simple rings (exactly len(ring) internal edges).
        if len(ring_edges) != len(ring):
            continue
        # Every ring atom must afford 2 aromatic bonds (3.0) plus its
        # existing exocyclic valence.
        feasible = True
        for atom in ring:
            exo = sum(
                mol.bond_order(atom, nbr)
                for nbr in mol.neighbors(atom)
                if nbr not in ring_set
            )
            in_ring_current = sum(
                mol.bond_order(atom, nbr)
                for nbr in mol.neighbors(atom)
                if nbr in ring_set
            )
            if in_ring_current != 2.0:  # only aromatize rings of single bonds
                feasible = False
                break
            if exo + 2 * AROMATIC > element(mol.symbols[atom]).max_valence + 1e-9:
                feasible = False
                break
        if not feasible:
            continue
        for i, j in ring_edges:
            mol.set_bond_order(i, j, AROMATIC)
