"""Packed molecule-set representation and vectorized set-level scorers.

The Table II evaluation path — decode -> sanitize -> QED/logP/SA ->
uniqueness — was written one molecule at a time; at generation-service
throughput those Python loops dominate wall-clock (see ROADMAP, "Scale the
data/eval pipeline").  This module packs a molecule set into padded arrays

* ``codes``  — ``(n, A)`` atomic numbers, atoms compacted to the leading
  slots, 0-padded;
* ``orders`` — ``(n, A, A)`` symmetric bond-order tensor (1 / 2 / 3 / 1.5);
* ``counts`` — ``(n,)`` heavy-atom counts,

and computes every array-friendly descriptor (Crippen logP, molecular
weight, TPSA, H-bond donors/acceptors, valences, implicit hydrogens,
validity screens) as whole-set array ops.  Ring-dependent descriptors reuse
one cached graph context per molecule (components / bridges / ring bonds /
ring perception, via :mod:`repro.chem.graphs`) instead of the scalar path's
~6 recomputations.

Exactness contract: every scorer here is **bit-for-bit equal** to looping
the scalar reference functions (:func:`repro.chem.qed.qed`,
:func:`repro.chem.crippen.crippen_logp`, :func:`repro.chem.sa.sa_score`,
...) over the set.  Floating-point accumulations replay the scalar
summation order (sequential over atoms, via column-wise accumulation over
the padded axis — adding the 0.0 padding terms is exact), final
sigmoid/log/exp transforms go through :mod:`math` per molecule exactly as
the reference does, and graph tie-breaking is aligned as documented in
:mod:`repro.chem.graphs`.  The randomized differential suite in
``tests/chem/test_batch_equivalence.py`` enforces this.
"""

from __future__ import annotations

import math

import numpy as np

from .matrix import CODE_TO_SYMBOL, MAX_ATOM_CODE, MAX_BOND_CODE
from .molecule import AROMATIC, Molecule
from .periodic import ELEMENTS, HYDROGEN_WEIGHT
from .qed import ADS_PARAMS, QED_WEIGHTS, ads
from .scaffold import canonical_signature
from .valence import sanitize_lenient
from . import graphs

__all__ = [
    "MoleculeBatch",
    "qed_batch",
    "crippen_logp_batch",
    "sa_score_batch",
    "descriptor_matrix_batch",
    "sanitize_batch",
    "valid_mask",
    "unique_fraction",
]

# ----------------------------------------------------------------------
# Element lookup tables, indexed by atomic number.
# ----------------------------------------------------------------------
_MAX_Z = max(e.atomic_number for e in ELEMENTS.values())
_SYMBOL_BY_Z = [""] * (_MAX_Z + 1)
_MAX_VALENCE = np.zeros(_MAX_Z + 1, dtype=np.int64)
_ATOMIC_WEIGHT = np.zeros(_MAX_Z + 1, dtype=np.float64)
for _element in ELEMENTS.values():
    _SYMBOL_BY_Z[_element.atomic_number] = _element.symbol
    _MAX_VALENCE[_element.atomic_number] = _element.max_valence
    _ATOMIC_WEIGHT[_element.atomic_number] = _element.atomic_weight
_Z_BY_SYMBOL = {s: e.atomic_number for s, e in ELEMENTS.items()}

# Matrix atom code (1..5) -> atomic number; bond code (1..4) -> order.
_CODE_TO_Z = np.zeros(MAX_ATOM_CODE + 1, dtype=np.int64)
for _code, _symbol in CODE_TO_SYMBOL.items():
    _CODE_TO_Z[_code] = _Z_BY_SYMBOL[_symbol]
_CODE_TO_ORDER = np.zeros(MAX_BOND_CODE + 1, dtype=np.float64)
for _order, _code in ((1.0, 1), (2.0, 2), (3.0, 3), (AROMATIC, 4)):
    _CODE_TO_ORDER[_code] = _order

# ``f"{order:g}"`` prefixes for environment-key entries.
_ORDER_PREFIX = {1.0: "1", 2.0: "2", 3.0: "3", AROMATIC: "1.5"}

_Z_C, _Z_N, _Z_O, _Z_F, _Z_P, _Z_S, _Z_CL = 6, 7, 8, 9, 15, 16, 17


class _Context:
    """Cached per-molecule graph quantities, each computed exactly once."""

    __slots__ = ("mol", "components", "bridges", "ring_bonds", "_rings")

    def __init__(self, mol: Molecule):
        self.mol = mol
        self.components = graphs.connected_components(mol)
        self.bridges = graphs.bridges(mol)
        self.ring_bonds = graphs.ring_bonds(mol, self.bridges)
        self._rings: list[list[int]] | None = None

    @property
    def rings(self) -> list[list[int]]:
        if self._rings is None:
            self._rings = graphs.rings(
                self.mol, self.ring_bonds, len(self.components)
            )
        return self._rings


class MoleculeBatch:
    """A molecule set packed into padded arrays plus cached graph contexts.

    Construct via :meth:`from_molecules` or :meth:`from_matrices`; the
    original :class:`Molecule` objects remain available as ``.molecules``
    (reconstructed with the same atom/bond insertion order as
    :func:`repro.chem.matrix.decode_molecule` when built from matrices, so
    graph tie-breaking matches the scalar decode path).
    """

    def __init__(self, molecules: list[Molecule], codes: np.ndarray,
                 orders: np.ndarray, counts: np.ndarray):
        self.molecules = molecules
        self.codes = codes
        self.orders = orders
        self.counts = counts
        self._cache: dict[str, np.ndarray] = {}
        self._contexts: list[_Context | None] = [None] * len(molecules)
        self._entry_strings: list[tuple[list[str], list[list[tuple[int, str]]]] | None]
        self._entry_strings = [None] * len(molecules)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.molecules)

    @property
    def width(self) -> int:
        """Padded atom axis length."""
        return self.codes.shape[1]

    @classmethod
    def from_molecules(cls, molecules: list[Molecule]) -> "MoleculeBatch":
        """Pack existing molecule graphs (atoms keep their index order)."""
        molecules = list(molecules)
        n = len(molecules)
        width = max((m.num_atoms for m in molecules), default=0)
        width = max(width, 1)
        codes = np.zeros((n, width), dtype=np.int64)
        orders = np.zeros((n, width, width), dtype=np.float64)
        counts = np.zeros(n, dtype=np.int64)
        for index, mol in enumerate(molecules):
            counts[index] = mol.num_atoms
            if mol.num_atoms:
                codes[index, : mol.num_atoms] = [
                    _Z_BY_SYMBOL[s] for s in mol.symbols
                ]
            for (i, j), order in mol._bonds.items():
                orders[index, i, j] = order
                orders[index, j, i] = order
        return cls(molecules, codes, orders, counts)

    @classmethod
    def from_matrices(cls, matrices: np.ndarray) -> "MoleculeBatch":
        """Vectorized decode of a ``(n, size, size)`` continuous matrix stack.

        Applies :func:`repro.chem.matrix.discretize` to the whole stack at
        once (symmetrize, round, clip), drops empty diagonal slots, and
        rebuilds molecules with the same construction order as
        ``decode_molecule(discretize(matrix))`` per matrix.
        """
        matrices = np.asarray(matrices, dtype=np.float64)
        if matrices.ndim == 1 and matrices.size == 0:
            matrices = matrices.reshape(0, 1, 1)
        if matrices.ndim != 3 or matrices.shape[1] != matrices.shape[2]:
            raise ValueError(
                f"expected a (n, size, size) matrix stack, got {matrices.shape}"
            )
        n, size, _ = matrices.shape
        if n == 0:
            return cls([], np.zeros((0, 1), np.int64),
                       np.zeros((0, 1, 1), np.float64), np.zeros(0, np.int64))

        # discretize(), batched: same elementwise ops as the scalar codec.
        sym = 0.5 * (matrices + matrices.transpose(0, 2, 1))
        rounded = np.rint(sym).astype(np.int64)
        diag = np.clip(np.diagonal(rounded, axis1=1, axis2=2), 0, MAX_ATOM_CODE)
        bond_codes = np.clip(rounded, 0, MAX_BOND_CODE)

        present = diag > 0
        counts = present.sum(axis=1)
        width = max(int(counts.max()), 1)
        # Stable compaction: occupied slots first, in slot order.
        order = np.argsort(~present, axis=1, kind="stable")
        rows = np.arange(n)[:, None]
        # Empty slots carry code 0, which maps to atomic number 0 (padding).
        packed_codes = np.take_along_axis(diag, order, axis=1)[:, :width]
        packed_codes = _CODE_TO_Z[packed_codes]

        gathered = bond_codes[rows[:, :, None], order[:, :, None],
                              order[:, None, :]][:, :width, :width]
        orders_arr = _CODE_TO_ORDER[gathered]
        occupied = packed_codes > 0
        orders_arr *= occupied[:, :, None] & occupied[:, None, :]
        diag_idx = np.arange(width)
        orders_arr[:, diag_idx, diag_idx] = 0.0

        molecules = [
            _molecule_from_packed(packed_codes[i], orders_arr[i],
                                  int(counts[i]))
            for i in range(n)
        ]
        return cls(molecules, packed_codes, orders_arr,
                   counts.astype(np.int64))

    # ------------------------------------------------------------------
    # Cached derived arrays
    # ------------------------------------------------------------------
    def _derived(self, name: str) -> np.ndarray:
        cached = self._cache.get(name)
        if cached is None:
            cached = getattr(self, f"_compute_{name}")()
            self._cache[name] = cached
        return cached

    def _compute_bonded(self) -> np.ndarray:
        return self.orders > 0

    def _compute_degree(self) -> np.ndarray:
        return self._derived("bonded").sum(axis=2)

    def _compute_valence(self) -> np.ndarray:
        # Bond orders are exact binary fractions (multiples of 0.5), so the
        # sum equals the scalar path's regardless of accumulation order.
        return self.orders.sum(axis=2)

    def _compute_max_valence(self) -> np.ndarray:
        return _MAX_VALENCE[self.codes]

    def _compute_hydrogens(self) -> np.ndarray:
        # max(0, int(free + 1e-9)) with int()'s truncation semantics.
        free = self._derived("max_valence") - self._derived("valence")
        return np.maximum(np.trunc(free + 1e-9), 0.0).astype(np.int64)

    def _compute_aromatic_atom(self) -> np.ndarray:
        return (self.orders == AROMATIC).any(axis=2)

    def _compute_any_double(self) -> np.ndarray:
        return (self.orders == 2.0).any(axis=2)

    def _compute_any_triple(self) -> np.ndarray:
        return (self.orders == 3.0).any(axis=2)

    def context(self, index: int) -> _Context:
        ctx = self._contexts[index]
        if ctx is None:
            ctx = _Context(self.molecules[index])
            self._contexts[index] = ctx
        return ctx

    # ------------------------------------------------------------------
    # Environment keys (shared by SA scoring and bulk fingerprints)
    # ------------------------------------------------------------------
    def _entries(self, index: int):
        """Per-atom labels and per-directed-edge entry strings, cached.

        ``labels[a]`` is the reference ``f"{sym}d{deg}h{h}"`` atom label;
        ``edges[a]`` lists ``(neighbor, f"{order:g}" + labels[neighbor])``
        pairs — the exact entry strings ``environment_key`` rebuilds from
        scratch for every shell visit.
        """
        cached = self._entry_strings[index]
        if cached is not None:
            return cached
        count = int(self.counts[index])
        degree = self._derived("degree")[index]
        hydrogens = self._derived("hydrogens")[index]
        symbols = self.molecules[index].symbols
        labels = [
            f"{symbols[a]}d{degree[a]}h{hydrogens[a]}" for a in range(count)
        ]
        orders = self.orders[index]
        edges: list[list[tuple[int, str]]] = []
        for a in range(count):
            nbrs = np.nonzero(orders[a, :count])[0]
            edges.append(
                [(int(b), _ORDER_PREFIX[orders[a, b]] + labels[b])
                 for b in nbrs]
            )
        cached = (labels, edges)
        self._entry_strings[index] = cached
        return cached

    def atom_shells(self, index: int, radius: int) -> list[list[str]]:
        """For every atom: its environment shell strings out to ``radius``.

        ``";".join(shells[:r + 1])`` reproduces
        :func:`repro.chem.sa.environment_key` at radius ``r`` for every
        ``r <= radius`` (shells are radius-prefix-stable; the list is
        truncated where the BFS frontier empties, exactly like the
        reference's early break).
        """
        labels, edges = self._entries(index)
        out: list[list[str]] = []
        for atom in range(int(self.counts[index])):
            shells = [labels[atom]]
            frontier = {atom}
            seen = {atom}
            for _ in range(radius):
                entries: list[str] = []
                next_frontier: set[int] = set()
                for a in frontier:
                    for b, entry in edges[a]:
                        entries.append(entry)
                        if b not in seen:
                            next_frontier.add(b)
                            seen.add(b)
                shells.append("|".join(sorted(entries)))
                frontier = next_frontier
                if not frontier:
                    break
            out.append(shells)
        return out

    def environment_keys(self, index: int, radius: int) -> list[str]:
        """``environment_key(mol, a, radius)`` for every atom, in one pass."""
        return [
            ";".join(shells[: radius + 1])
            for shells in self.atom_shells(index, radius)
        ]


def _molecule_from_packed(codes: np.ndarray, orders: np.ndarray,
                          count: int) -> Molecule:
    """Rebuild a Molecule with ``decode_molecule``'s construction order.

    Atoms are added in slot order and bonds in row-major ``(i, j)`` order
    with the same ``add``-per-endpoint adjacency updates, so internal dict
    and set layouts match a scalar ``decode_molecule`` result exactly
    (ring-perception tie-breaking observes those layouts).
    """
    mol = Molecule()
    symbols = mol.symbols
    adjacency = mol._adjacency
    for slot in range(count):
        symbols.append(_SYMBOL_BY_Z[codes[slot]])
        adjacency[slot] = set()
    bonds = mol._bonds
    ii, jj = np.nonzero(np.triu(orders[:count, :count], 1))
    for i, j in zip(ii.tolist(), jj.tolist()):
        bonds[(i, j)] = float(orders[i, j])
        adjacency[i].add(j)
        adjacency[j].add(i)
    return mol


def _as_batch(molecules) -> MoleculeBatch:
    if isinstance(molecules, MoleculeBatch):
        return molecules
    return MoleculeBatch.from_molecules(molecules)


def _column_sum(values: np.ndarray) -> np.ndarray:
    """Sequential left-to-right per-molecule sum over the padded atom axis.

    Matches ``builtins.sum``'s accumulation order in the scalar reference;
    padding columns add exact ``0.0`` terms.
    """
    total = np.zeros(values.shape[0], dtype=np.float64)
    for column in range(values.shape[1]):
        total += values[:, column]
    return total


# ----------------------------------------------------------------------
# Array-tier descriptors
# ----------------------------------------------------------------------
def molecular_weight_batch(molecules) -> np.ndarray:
    """``Molecule.molecular_weight`` over the set, as one array op chain."""
    batch = _as_batch(molecules)
    heavy = _column_sum(_ATOMIC_WEIGHT[batch.codes])
    total_h = batch._derived("hydrogens").sum(axis=1)
    return heavy + HYDROGEN_WEIGHT * total_h


def crippen_logp_batch(molecules) -> np.ndarray:
    """Vectorized Crippen logP (see :func:`repro.chem.crippen.crippen_logp`).

    Atom-class assignment becomes boolean masks over the packed arrays;
    per-molecule totals accumulate in the reference's atom order
    (contribution then hydrogen term, atom by atom).
    """
    from .crippen import _CONTRIB, _H_ON_CARBON, _H_ON_HETERO

    batch = _as_batch(molecules)
    codes = batch.codes
    if np.any(codes == 1):
        raise ValueError("no Crippen class for element 'H'")
    orders = batch.orders
    bonded = batch._derived("bonded")
    arom = batch._derived("aromatic_atom")
    any2 = batch._derived("any_double")
    any3 = batch._derived("any_triple")
    hydrogens = batch._derived("hydrogens")

    neighbor_z = codes[:, None, :]
    hetero_nbr = (bonded & (neighbor_z != _Z_C) & (neighbor_z > 1)).any(axis=2)
    arom_hetero_nbr = (
        (orders == AROMATIC)
        & np.isin(neighbor_z, (_Z_N, _Z_O, _Z_S))
    ).any(axis=2)
    exocyclic = (bonded & (orders != AROMATIC)).any(axis=2)

    is_c = codes == _Z_C
    is_n = codes == _Z_N
    is_o = codes == _Z_O
    is_s = codes == _Z_S
    contrib = np.select(
        [
            is_c & arom & arom_hetero_nbr,
            is_c & arom & exocyclic,
            is_c & arom,
            is_c & hetero_nbr,
            is_c,
            is_n & arom,
            is_n & (any2 | any3),
            is_n & (hydrogens >= 2),
            is_n & (hydrogens == 1),
            is_n,
            is_o & arom,
            is_o & any2,
            is_o & (hydrogens >= 1),
            is_o,
            is_s & arom,
            is_s,
            codes == _Z_F,
            codes == _Z_CL,
            codes == _Z_P,
        ],
        [
            _CONTRIB["C_arom_hetero"],
            _CONTRIB["C_arom_sub"],
            _CONTRIB["C_arom"],
            _CONTRIB["C_aliph_hetero"],
            _CONTRIB["C_aliph"],
            _CONTRIB["N_arom"],
            _CONTRIB["N_unsaturated"],
            _CONTRIB["N_amine_primary"],
            _CONTRIB["N_amine_secondary"],
            _CONTRIB["N_amine_tertiary"],
            _CONTRIB["O_arom"],
            _CONTRIB["O_carbonyl"],
            _CONTRIB["O_hydroxyl"],
            _CONTRIB["O_ether"],
            _CONTRIB["S_arom"],
            _CONTRIB["S"],
            _CONTRIB["F"],
            _CONTRIB["Cl"],
            _CONTRIB["P"],
        ],
        default=0.0,
    )
    h_value = np.where(is_c, _H_ON_CARBON, _H_ON_HETERO)
    h_term = np.where(codes > 0, h_value * hydrogens, 0.0)

    total = np.zeros(len(batch), dtype=np.float64)
    for column in range(batch.width):
        total += contrib[:, column]
        total += h_term[:, column]
    return total


# Condensed TPSA contributions by (atomic number, environment class); the
# classes mirror ``descriptors._environment``'s decision order: aromatic
# (without/with H), triple, double, >=2 H, 1 H, bare.  Combinations absent
# from the scalar table contribute 0.0, matching its ``dict.get`` default.
_TPSA_CLASSES = {
    _Z_N: (12.89, 15.79, 23.79, 12.36, 26.02, 12.03, 3.24),
    _Z_O: (13.14, 0.0, 0.0, 17.07, 0.0, 20.23, 9.23),
    _Z_S: (28.24, 0.0, 0.0, 32.09, 0.0, 38.80, 25.30),
}


def tpsa_batch(molecules) -> np.ndarray:
    """Vectorized condensed-Ertl TPSA (see :func:`descriptors.tpsa`)."""
    batch = _as_batch(molecules)
    codes = batch.codes
    arom = batch._derived("aromatic_atom")
    any2 = batch._derived("any_double")
    any3 = batch._derived("any_triple")
    hydrogens = batch._derived("hydrogens")

    contrib = np.zeros_like(batch.orders[:, :, 0])
    for z, values in _TPSA_CLASSES.items():
        mask = codes == z
        contrib += mask * np.select(
            [
                arom & (hydrogens == 0),
                arom,
                any3,
                any2,
                hydrogens >= 2,
                hydrogens == 1,
            ],
            values[:6],
            default=values[6],
        )
    return _column_sum(contrib)


def hydrogen_bond_acceptors_batch(molecules) -> np.ndarray:
    batch = _as_batch(molecules)
    return np.isin(batch.codes, (_Z_N, _Z_O)).sum(axis=1)


def hydrogen_bond_donors_batch(molecules) -> np.ndarray:
    batch = _as_batch(molecules)
    donors = np.isin(batch.codes, (_Z_N, _Z_O)) & (
        batch._derived("hydrogens") > 0
    )
    return donors.sum(axis=1)


# ----------------------------------------------------------------------
# Ring-tier descriptors (one cached graph context per molecule)
# ----------------------------------------------------------------------
def _ring_tier(batch: MoleculeBatch) -> dict[str, np.ndarray]:
    """Ring-dependent descriptor columns, one graph context per molecule.

    Replays the scalar logic of ``rotatable_bonds``, ``ring_count``,
    ``aromatic_ring_count``, ``structural_alerts``'s ring patterns, and
    ``sa._complexity_penalty`` against cached rings/ring-bonds instead of
    recomputing them per descriptor.
    """
    cached = batch._cache.get("ring_tier")
    if cached is not None:
        return cached  # type: ignore[return-value]
    n = len(batch)
    degree = batch._derived("degree")
    rotatable = np.zeros(n, dtype=np.int64)
    ring_count = np.zeros(n, dtype=np.int64)
    aromatic_rings = np.zeros(n, dtype=np.int64)
    ring_alerts = np.zeros(n, dtype=np.int64)
    complexity = np.zeros(n, dtype=np.float64)
    for index, mol in enumerate(batch.molecules):
        ctx = batch.context(index)
        rings = ctx.rings
        ring_bond_set = ctx.ring_bonds
        bonds_list = list(mol._bonds.items())

        count = 0
        deg = degree[index]
        for (i, j), order in bonds_list:
            if order != 1.0 or (i, j) in ring_bond_set:
                continue
            if deg[i] >= 2 and deg[j] >= 2:
                count += 1
        rotatable[index] = count

        ring_count[index] = len(rings)

        arom_count = 0
        for ring in rings:
            ring_set = set(ring)
            edges = [
                ((i, j), order)
                for (i, j), order in bonds_list
                if i in ring_set and j in ring_set
            ]
            if len(edges) == len(ring) and all(
                order == AROMATIC for _, order in edges
            ):
                arom_count += 1
        aromatic_rings[index] = arom_count

        symbols = mol.symbols
        ring_alerts[index] = int(
            any(
                len(ring) == 3 and any(symbols[a] != "C" for a in ring)
                for ring in rings
            )
        ) + int(any(len(ring) > 8 for ring in rings))

        atoms = int(batch.counts[index])
        size_penalty = atoms**1.005 - atoms
        ring_atoms = [set(r) for r in rings]
        spiro = 0
        bridge = 0
        for i in range(len(ring_atoms)):
            for j in range(i + 1, len(ring_atoms)):
                shared = ring_atoms[i] & ring_atoms[j]
                if len(shared) == 1:
                    spiro += 1
                elif len(shared) > 2:
                    bridge += len(shared) - 2
        ring_complexity = math.log10(bridge + 1) + math.log10(spiro + 1)
        macrocycle = (
            math.log10(2) if any(len(r) > 8 for r in rings) else 0.0
        )
        complexity[index] = size_penalty + ring_complexity + macrocycle

    cached = {
        "rotatable": rotatable,
        "ring_count": ring_count,
        "aromatic_rings": aromatic_rings,
        "ring_alerts": ring_alerts,
        "complexity": complexity,
    }
    batch._cache["ring_tier"] = cached  # type: ignore[assignment]
    return cached


def structural_alerts_batch(molecules) -> np.ndarray:
    """Vectorized Brenk-style alert count (see ``descriptors``)."""
    batch = _as_batch(molecules)
    codes = batch.codes
    orders = batch.orders
    bonded = batch._derived("bonded")
    hydrogens = batch._derived("hydrogens")
    pair_o = codes == _Z_O
    pair_s = codes == _Z_S
    pair_n = codes == _Z_N

    def _pair(mask_a, mask_b, bond_mask):
        return (bond_mask & mask_a[:, :, None] & mask_b[:, None, :]).any(
            axis=(1, 2)
        )

    oo = _pair(pair_o, pair_o, bonded)
    ss = _pair(pair_s, pair_s, bonded)
    nn_single = _pair(pair_n, pair_n, orders == 1.0)
    nn_double = _pair(pair_n, pair_n, orders == 2.0)

    is_c = codes == _Z_C
    double = orders == 2.0
    carbonyl_c = is_c & (
        (double & (codes[:, None, :] == _Z_O)).any(axis=2)
    )
    aldehyde = (carbonyl_c & (hydrogens >= 1)).any(axis=1)
    thiocarbonyl = _pair(is_c, pair_s, double) | _pair(pair_s, is_c, double)
    fluoro_nbr = (bonded & (codes[:, None, :] == _Z_F)).any(axis=2)
    acyl_fluoride = (carbonyl_c & fluoro_nbr).any(axis=1)
    cumulated = (double.sum(axis=2) >= 2).any(axis=1)

    ring_alerts = _ring_tier(batch)["ring_alerts"]
    return (
        oo.astype(np.int64)
        + ss
        + nn_single
        + nn_double
        + aldehyde
        + thiocarbonyl
        + acyl_fluoride
        + cumulated
        + ring_alerts
    )


# ----------------------------------------------------------------------
# Composite scorers
# ----------------------------------------------------------------------
_QED_ORDER = ("MW", "ALOGP", "HBA", "HBD", "PSA", "ROTB", "AROM", "ALERTS")


def qed_batch(molecules) -> np.ndarray:
    """Vectorized QED: array-tier descriptor extraction, scalar ADS squash.

    The eight descriptors come from the batched extractors above; the
    final desirability transform runs through :func:`repro.chem.qed.ads`
    and :mod:`math` per molecule — the same calls the scalar reference
    makes — so results match it bit for bit.
    """
    batch = _as_batch(molecules)
    ring_tier = _ring_tier(batch)
    columns = {
        "MW": molecular_weight_batch(batch),
        "ALOGP": crippen_logp_batch(batch),
        "HBA": hydrogen_bond_acceptors_batch(batch),
        "HBD": hydrogen_bond_donors_batch(batch),
        "PSA": tpsa_batch(batch),
        "ROTB": ring_tier["rotatable"],
        "AROM": ring_tier["aromatic_rings"],
        "ALERTS": structural_alerts_batch(batch),
    }
    out = np.zeros(len(batch), dtype=np.float64)
    weights = [QED_WEIGHTS[name] for name in _QED_ORDER]
    params = [ADS_PARAMS[name] for name in _QED_ORDER]
    values = [columns[name] for name in _QED_ORDER]
    for index in range(len(batch)):
        if batch.counts[index] == 0:
            continue
        log_sum = 0.0
        weight_sum = 0.0
        for weight, param, column in zip(weights, params, values):
            log_sum += weight * math.log(ads(float(column[index]), param))
            weight_sum += weight
        out[index] = math.exp(log_sum / weight_sum)
    return out


def sa_score_batch(molecules, table=None) -> np.ndarray:
    """Vectorized SA score: one bulk environment-key pass per molecule.

    Environment keys for all atoms are extracted in a single shell pass
    (entry strings shared across atoms), contributions come from the
    fragment table's vectorized lookup, and the complexity penalty reuses
    the cached ring tier.  Matches :func:`repro.chem.sa.sa_score` exactly.
    """
    from .sa import default_fragment_table

    batch = _as_batch(molecules)
    table = table if table is not None else default_fragment_table()
    complexity = _ring_tier(batch)["complexity"]
    out = np.zeros(len(batch), dtype=np.float64)
    smin, smax = -4.0, 2.5
    for index in range(len(batch)):
        atoms = int(batch.counts[index])
        if atoms == 0:
            out[index] = 10.0
            continue
        keys = batch.environment_keys(index, table.radius)
        fragment = sum(table.bulk_contributions(keys).tolist()) / atoms
        score = fragment - complexity[index]
        raw = 11.0 - (score - smin) / (smax - smin) * 9.0
        if raw > 8.0:
            raw = 8.0 + math.log(raw + 1.0 - 9.0)
        out[index] = min(10.0, max(1.0, raw))
    return out


def descriptor_matrix_batch(molecules) -> np.ndarray:
    """Batched :func:`repro.evaluation.distribution.descriptor_matrix`."""
    batch = _as_batch(molecules)
    ring_tier = _ring_tier(batch)
    columns = [
        batch.counts,
        molecular_weight_batch(batch),
        crippen_logp_batch(batch),
        qed_batch(batch),
        ring_tier["ring_count"],
        ring_tier["aromatic_rings"],
        hydrogen_bond_acceptors_batch(batch),
        hydrogen_bond_donors_batch(batch),
        ring_tier["rotatable"],
    ]
    return np.stack(
        [np.asarray(c, dtype=np.float64) for c in columns], axis=1
    ).reshape(-1, len(columns))


# ----------------------------------------------------------------------
# Validity, sanitization, uniqueness
# ----------------------------------------------------------------------
def valid_mask(molecules) -> np.ndarray:
    """``is_valid`` over the set: vectorized valence screen + cached graphs."""
    batch = _as_batch(molecules)
    valence_ok = ~(
        batch._derived("valence")
        > batch._derived("max_valence") + 1e-9
    ).any(axis=1)
    has_aromatic = batch._derived("aromatic_atom").any(axis=1)
    out = np.zeros(len(batch), dtype=bool)
    for index, mol in enumerate(batch.molecules):
        if batch.counts[index] == 0 or not valence_ok[index]:
            continue
        ctx = batch.context(index)
        if len(ctx.components) != 1:
            continue
        if has_aromatic[index]:
            ring_bond_set = ctx.ring_bonds
            if any(
                order == AROMATIC and key not in ring_bond_set
                for key, order in mol._bonds.items()
            ):
                continue
        out[index] = True
    return out


def sanitize_batch(molecules, validity: np.ndarray | None = None
                   ) -> list[Molecule]:
    """``sanitize_lenient`` over the set, with a vectorized clean fast path.

    Strictly valid molecules take the O(atoms + bonds) subgraph copy that
    ``sanitize_lenient`` reduces to when no repair fires (identical output,
    including internal construction order); only molecules that actually
    need repair run the scalar repair loop.
    """
    batch = _as_batch(molecules)
    if validity is None:
        validity = valid_mask(batch)
    out: list[Molecule] = []
    for index, mol in enumerate(batch.molecules):
        if validity[index]:
            out.append(mol.subgraph(set(range(mol.num_atoms))))
        else:
            out.append(sanitize_lenient(mol))
    return out


def _invariant_keys(batch: MoleculeBatch) -> list[bytes]:
    """Cheap renumbering-invariant key per molecule, from the packed arrays.

    Sorted multiset of per-atom ``(z, degree, hydrogens)`` triples plus the
    sorted multiset of ``(order, z_lo, z_hi)`` bond descriptors.  Two
    isomorphic molecules always collide; distinct keys imply distinct
    canonical signatures, so signature hashing is only needed inside key
    groups (see :func:`unique_fraction`).
    """
    codes = batch.codes
    atom_part = (
        codes * 10_000
        + batch._derived("degree") * 100
        + batch._derived("hydrogens")
    )
    atom_part = np.sort(atom_part, axis=1)
    mids, iis, jjs = np.nonzero(np.triu(batch.orders, 1))
    bond_orders = (batch.orders[mids, iis, jjs] * 2).astype(np.int64)
    z_i = codes[mids, iis]
    z_j = codes[mids, jjs]
    bond_part = (
        bond_orders * 10_000
        + np.minimum(z_i, z_j) * 100
        + np.maximum(z_i, z_j)
    )
    keys: list[bytes] = []
    for index in range(len(batch)):
        own = np.sort(bond_part[mids == index])
        keys.append(
            bytes((int(batch.counts[index]),))
            + atom_part[index].tobytes()
            + own.tobytes()
        )
    return keys


def unique_fraction(molecules) -> float:
    """Fraction of distinct molecules, equal to the reference ``uniqueness``.

    Cheap invariant grouping first; canonical signatures (the reference's
    equality oracle) are computed only inside groups with a potential
    duplicate, which skips the signature pass entirely for sets of
    pairwise-distinguishable molecules.
    """
    batch = _as_batch(molecules)
    if len(batch) == 0:
        return 0.0
    groups: dict[bytes, list[int]] = {}
    for index, key in enumerate(_invariant_keys(batch)):
        groups.setdefault(key, []).append(index)
    unique = 0
    for members in groups.values():
        if len(members) == 1:
            unique += 1
        else:
            unique += len(
                {canonical_signature(batch.molecules[i]) for i in members}
            )
    return unique / len(batch)
