"""Morgan-style hashed fingerprints and Tanimoto similarity.

Supports the novelty/similarity analyses of generated molecule sets: each
atom environment (radius 0..r) hashes into a fixed-width bit vector, and
Tanimoto similarity compares molecules the way RDKit's Morgan fingerprints
would (same construction, our hash).

Two tiers share one definition: :func:`morgan_fingerprint` /
:func:`bulk_tanimoto` are the per-molecule reference, and
:func:`morgan_fingerprints` / :func:`tanimoto_matrix` compute identical
values set-at-a-time — one environment-shell pass per molecule (radius-r
keys are shell-list prefixes) and one generated x reference bit-matrix
GEMM.  ``nearest_neighbor_similarity`` / ``novelty`` run on the bulk tier
and accept a precomputed reference fingerprint matrix so repeated calls
stop re-fingerprinting the pool.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .molecule import Molecule
from .sa import environment_key

__all__ = [
    "morgan_fingerprint",
    "morgan_fingerprints",
    "tanimoto",
    "bulk_tanimoto",
    "tanimoto_matrix",
    "nearest_neighbor_similarity",
    "nearest_neighbor_similarity_reference",
    "novelty",
]


def morgan_fingerprint(
    mol: Molecule, n_bits: int = 1024, radius: int = 2
) -> np.ndarray:
    """Binary fingerprint: one bit per hashed atom environment, radii 0..r."""
    if n_bits < 8:
        raise ValueError("n_bits must be at least 8")
    bits = np.zeros(n_bits, dtype=bool)
    for index in range(mol.num_atoms):
        for r in range(radius + 1):
            key = environment_key(mol, index, radius=r)
            bits[hash_to_bit(key, n_bits)] = True
    return bits


def hash_to_bit(key: str, n_bits: int) -> int:
    """Stable (process-independent) hash of an environment key to a bit index."""
    import hashlib

    digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") % n_bits


# Environment keys repeat heavily across a molecule set (common functional
# groups hash to the same strings); caching the digest is exact.
_hash_to_bit_cached = lru_cache(maxsize=1 << 16)(hash_to_bit)


def morgan_fingerprints(
    molecules, n_bits: int = 1024, radius: int = 2
) -> np.ndarray:
    """Bulk fingerprinting: ``(n, n_bits)`` boolean matrix, one row per
    molecule, each row bit-for-bit equal to :func:`morgan_fingerprint`.

    One environment-shell BFS per atom covers all radii at once — the
    radius-``r`` key is the ``r + 1``-shell prefix of the full shell list —
    instead of the reference's per-radius re-walk, and hashed bit indices
    are cached across the whole set.  Accepts a molecule list or a
    :class:`repro.chem.batch.MoleculeBatch` (reusing its cached shell
    entry strings, shared with the SA scorer).
    """
    from .batch import MoleculeBatch

    if n_bits < 8:
        raise ValueError("n_bits must be at least 8")
    batch = (
        molecules
        if isinstance(molecules, MoleculeBatch)
        else MoleculeBatch.from_molecules(list(molecules))
    )
    bits = np.zeros((len(batch), n_bits), dtype=bool)
    for index in range(len(batch)):
        row = bits[index]
        for shells in batch.atom_shells(index, radius):
            for r in range(radius + 1):
                key = ";".join(shells[: r + 1])
                row[_hash_to_bit_cached(key, n_bits)] = True
    return bits


def tanimoto_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All-pairs Tanimoto of two fingerprint matrices via bit-matrix GEMM.

    ``out[i, j] == tanimoto(a[i], b[j])`` exactly: the float64 GEMM sums
    0/1 products (integer-exact well below 2**53), and the final division
    matches :func:`bulk_tanimoto`'s guarded ``where``.
    """
    a = np.asarray(a, dtype=bool)
    b = np.asarray(b, dtype=bool)
    a_f = a.astype(np.float64)
    b_f = b.astype(np.float64)
    intersections = a_f @ b_f.T
    pop_a = a_f.sum(axis=1)
    pop_b = b_f.sum(axis=1)
    unions = pop_a[:, None] + pop_b[None, :] - intersections
    return np.where(unions > 0, intersections / np.maximum(unions, 1), 0.0)


def tanimoto(a: np.ndarray, b: np.ndarray) -> float:
    """Jaccard similarity of two binary fingerprints in [0, 1]."""
    a = np.asarray(a, dtype=bool)
    b = np.asarray(b, dtype=bool)
    union = np.logical_or(a, b).sum()
    if union == 0:
        return 0.0
    return float(np.logical_and(a, b).sum() / union)


def bulk_tanimoto(query: np.ndarray, pool: np.ndarray) -> np.ndarray:
    """Tanimoto of one query fingerprint against ``(n, bits)`` pool rows."""
    query = np.asarray(query, dtype=bool)
    pool = np.asarray(pool, dtype=bool)
    intersections = np.logical_and(pool, query).sum(axis=1)
    unions = np.logical_or(pool, query).sum(axis=1)
    return np.where(unions > 0, intersections / np.maximum(unions, 1), 0.0)


def nearest_neighbor_similarity(
    generated: list[Molecule],
    reference: list[Molecule] | None = None,
    n_bits: int = 1024,
    reference_fingerprints: np.ndarray | None = None,
) -> np.ndarray:
    """For each generated molecule, its max Tanimoto to the reference set.

    Computed as one generated x reference :func:`tanimoto_matrix` row-max
    instead of the reference implementation's per-molecule
    ``bulk_tanimoto`` loop.  Pass ``reference_fingerprints`` (a
    ``morgan_fingerprints`` matrix) to skip re-fingerprinting the pool
    across repeated calls.
    """
    if reference_fingerprints is None:
        if not reference:
            raise ValueError("reference set must be non-empty")
        reference_fingerprints = morgan_fingerprints(reference, n_bits)
    elif len(reference_fingerprints) == 0:
        raise ValueError("reference set must be non-empty")
    fps = morgan_fingerprints(generated, n_bits)
    if len(fps) == 0:
        return np.zeros(0, dtype=np.float64)
    # A zero-atom molecule's all-false row yields 0.0 everywhere, matching
    # the reference's explicit zero — no special case needed.
    return tanimoto_matrix(fps, reference_fingerprints).max(axis=1)


def nearest_neighbor_similarity_reference(
    generated: list[Molecule], reference: list[Molecule], n_bits: int = 1024
) -> np.ndarray:
    """Per-molecule reference path kept for equivalence tests and benches."""
    if not reference:
        raise ValueError("reference set must be non-empty")
    pool = np.stack([morgan_fingerprint(m, n_bits) for m in reference])
    return np.array(
        [
            bulk_tanimoto(morgan_fingerprint(m, n_bits), pool).max()
            if m.num_atoms
            else 0.0
            for m in generated
        ]
    )


def novelty(
    generated: list[Molecule],
    reference: list[Molecule] | None = None,
    threshold: float = 1.0,
    n_bits: int = 1024,
    reference_fingerprints: np.ndarray | None = None,
) -> float:
    """Fraction of generated molecules not (near-)duplicating the reference.

    With the default ``threshold=1.0`` a molecule only counts as known when
    some reference fingerprint matches exactly; lower thresholds treat
    close analogues as known too (MolGAN-style novelty).  Like
    :func:`nearest_neighbor_similarity`, accepts a precomputed
    ``reference_fingerprints`` matrix.
    """
    if not generated:
        return 0.0
    similarity = nearest_neighbor_similarity(
        generated, reference, n_bits,
        reference_fingerprints=reference_fingerprints,
    )
    return float((similarity < threshold).mean())
