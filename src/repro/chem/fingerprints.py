"""Morgan-style hashed fingerprints and Tanimoto similarity.

Supports the novelty/similarity analyses of generated molecule sets: each
atom environment (radius 0..r) hashes into a fixed-width bit vector, and
Tanimoto similarity compares molecules the way RDKit's Morgan fingerprints
would (same construction, our hash).
"""

from __future__ import annotations

import numpy as np

from .molecule import Molecule
from .sa import environment_key

__all__ = [
    "morgan_fingerprint",
    "tanimoto",
    "bulk_tanimoto",
    "nearest_neighbor_similarity",
    "novelty",
]


def morgan_fingerprint(
    mol: Molecule, n_bits: int = 1024, radius: int = 2
) -> np.ndarray:
    """Binary fingerprint: one bit per hashed atom environment, radii 0..r."""
    if n_bits < 8:
        raise ValueError("n_bits must be at least 8")
    bits = np.zeros(n_bits, dtype=bool)
    for index in range(mol.num_atoms):
        for r in range(radius + 1):
            key = environment_key(mol, index, radius=r)
            bits[hash_to_bit(key, n_bits)] = True
    return bits


def hash_to_bit(key: str, n_bits: int) -> int:
    """Stable (process-independent) hash of an environment key to a bit index."""
    import hashlib

    digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") % n_bits


def tanimoto(a: np.ndarray, b: np.ndarray) -> float:
    """Jaccard similarity of two binary fingerprints in [0, 1]."""
    a = np.asarray(a, dtype=bool)
    b = np.asarray(b, dtype=bool)
    union = np.logical_or(a, b).sum()
    if union == 0:
        return 0.0
    return float(np.logical_and(a, b).sum() / union)


def bulk_tanimoto(query: np.ndarray, pool: np.ndarray) -> np.ndarray:
    """Tanimoto of one query fingerprint against ``(n, bits)`` pool rows."""
    query = np.asarray(query, dtype=bool)
    pool = np.asarray(pool, dtype=bool)
    intersections = np.logical_and(pool, query).sum(axis=1)
    unions = np.logical_or(pool, query).sum(axis=1)
    return np.where(unions > 0, intersections / np.maximum(unions, 1), 0.0)


def nearest_neighbor_similarity(
    generated: list[Molecule], reference: list[Molecule], n_bits: int = 1024
) -> np.ndarray:
    """For each generated molecule, its max Tanimoto to the reference set."""
    if not reference:
        raise ValueError("reference set must be non-empty")
    pool = np.stack([morgan_fingerprint(m, n_bits) for m in reference])
    return np.array(
        [
            bulk_tanimoto(morgan_fingerprint(m, n_bits), pool).max()
            if m.num_atoms
            else 0.0
            for m in generated
        ]
    )


def novelty(
    generated: list[Molecule],
    reference: list[Molecule],
    threshold: float = 1.0,
    n_bits: int = 1024,
) -> float:
    """Fraction of generated molecules not (near-)duplicating the reference.

    With the default ``threshold=1.0`` a molecule only counts as known when
    some reference fingerprint matches exactly; lower thresholds treat
    close analogues as known too (MolGAN-style novelty).
    """
    if not generated:
        return 0.0
    similarity = nearest_neighbor_similarity(generated, reference, n_bits)
    return float((similarity < threshold).mean())
