"""Valence checking, sanitization, and validity repair.

Two entry points:

* :func:`check_valence` / :func:`is_valid` — strict sanitization in the
  spirit of RDKit's ``SanitizeMol``: valences within element maxima,
  aromatic bonds only inside rings, non-empty, connected.
* :func:`sanitize_lenient` — *validity correction*: repair a decoded matrix
  molecule by demoting non-ring aromatic bonds to single, shedding excess
  bonds at overloaded atoms, and keeping the largest connected fragment.
  Generated molecules from an undertrained model rarely pass strict
  sanitization, and the paper's companion work (Li et al., "Quantum
  generative models for small molecule drug discovery") scores samples
  after exactly this kind of correction; Table II is reproduced the same
  way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .molecule import AROMATIC, Molecule
from .periodic import element

__all__ = [
    "ValenceReport",
    "check_valence",
    "is_valid",
    "largest_fragment",
    "sanitize_lenient",
]


@dataclass
class ValenceReport:
    """Outcome of strict sanitization."""

    ok: bool
    problems: list[str] = field(default_factory=list)


def check_valence(mol: Molecule) -> ValenceReport:
    """Strictly validate a molecule; returns every problem found."""
    problems: list[str] = []
    if mol.num_atoms == 0:
        problems.append("molecule has no atoms")
        return ValenceReport(False, problems)

    for index in range(mol.num_atoms):
        used = mol.valence_used(index)
        max_valence = element(mol.symbols[index]).max_valence
        if used > max_valence + 1e-9:
            problems.append(
                f"atom {index} ({mol.symbols[index]}) valence {used} "
                f"exceeds {max_valence}"
            )

    ring_bonds = mol.ring_bonds()
    for i, j, order in mol.bonds():
        if order == AROMATIC and (i, j) not in ring_bonds:
            problems.append(f"aromatic bond ({i}, {j}) outside any ring")

    if not mol.is_connected():
        problems.append(
            f"molecule has {len(mol.connected_components())} fragments"
        )
    return ValenceReport(not problems, problems)


def is_valid(mol: Molecule) -> bool:
    """True when the molecule passes strict sanitization."""
    return check_valence(mol).ok


def largest_fragment(mol: Molecule) -> Molecule:
    """Keep only the connected component with the most atoms (ties: lowest index)."""
    components = mol.connected_components()
    if not components:
        return Molecule()
    best = max(components, key=lambda atoms: (len(atoms), -min(atoms)))
    return mol.subgraph(best)


def sanitize_lenient(mol: Molecule) -> Molecule:
    """Repair a molecule into a strictly valid one (or an empty one).

    Steps, all deterministic:

    1. Demote aromatic bonds that are not in rings to single bonds.
    2. While any atom exceeds its maximum valence, demote its highest-order
       bond one step (3 -> 2 -> 1); if all its bonds are single, remove the
       bond to the highest-index neighbor.
    3. Re-demote any aromatic bonds newly outside rings (bond removal can
       break rings).
    4. Keep the largest connected fragment.
    """
    if mol.num_atoms == 0:
        return Molecule()
    work = mol.copy()

    _demote_nonring_aromatics(work)

    changed = True
    while changed:
        changed = False
        for index in range(work.num_atoms):
            max_valence = element(work.symbols[index]).max_valence
            while work.valence_used(index) > max_valence + 1e-9:
                _shed_one_bond(work, index)
                changed = True
        if changed:
            _demote_nonring_aromatics(work)

    fragment = largest_fragment(work)
    _demote_nonring_aromatics(fragment)
    return fragment


def _demote_nonring_aromatics(mol: Molecule) -> None:
    ring_bonds = mol.ring_bonds()
    for i, j, order in list(mol.bonds()):
        if order == AROMATIC and (i, j) not in ring_bonds:
            mol.set_bond_order(i, j, 1.0)


def _shed_one_bond(mol: Molecule, index: int) -> None:
    """Reduce valence pressure at one atom by one demotion or removal."""
    incident = sorted(
        ((mol.bond_order(index, nbr), nbr) for nbr in mol.neighbors(index)),
        key=lambda pair: (-pair[0], -pair[1]),
    )
    if not incident:  # pragma: no cover - cannot exceed valence with no bonds
        return
    order, neighbor = incident[0]
    if order > 1.0 and order != AROMATIC:
        mol.set_bond_order(index, neighbor, order - 1.0)
    elif order == AROMATIC:
        mol.set_bond_order(index, neighbor, 1.0)
    else:
        mol.remove_bond(index, neighbor)
