"""Table II — drug properties of ligands sampled from SQ-VAEs vs VAEs.

For each latent-space dimension (18/32/56/96, i.e. 2/4/8/16 circuit
patches), train both generative models on the PDBbind ligand set for the
epoch budget, sample molecules from the Gaussian prior, and report the
normalized QED / logP / SA means over the (validity-corrected) sets —
exactly the paper's evaluation protocol with 1000 samples and 20 epochs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..chem.metrics import score_matrices
from ..chem.sa import default_fragment_table
from ..data import load_pdbbind_ligands, train_test_split
from ..evaluation.sampling import sample_matrices
from ..models import ClassicalVAE, ScalableQuantumVAE
from ..training import TrainConfig, Trainer
from .config import Scale, get_scale
from .tables import format_table

__all__ = ["Table2Config", "Table2Cell", "Table2Result", "run_table2",
           "PAPER_TABLE2"]

# Paper values: {(model, metric): {lsd: value}}.
PAPER_TABLE2 = {
    ("VAE", "QED"): {18: 0.138, 32: 0.179, 56: 0.139, 96: 0.142},
    ("SQ-VAE", "QED"): {18: 0.153, 32: 0.177, 56: 0.204, 96: 0.167},
    ("VAE", "logP"): {18: 0.357, 32: 0.472, 56: 0.496, 96: 0.761},
    ("SQ-VAE", "logP"): {18: 0.780, 32: 0.616, 56: 0.709, 96: 0.740},
    ("VAE", "SA"): {18: 0.192, 32: 0.292, 56: 0.307, 96: 0.599},
    ("SQ-VAE", "SA"): {18: 0.626, 32: 0.479, 56: 0.534, 96: 0.547},
}

_LSD_TO_PATCHES = {18: 2, 32: 4, 56: 8, 96: 16}


@dataclass
class Table2Config:
    lsds: tuple[int, ...] = (18, 32, 56, 96)
    n_ligands: int = 96
    n_samples: int = 60
    epochs: int = 4
    sq_layers: int = 5
    batch_size: int = 32
    seed: int = 0

    @classmethod
    def from_scale(cls, scale: Scale | None = None, seed: int = 0) -> "Table2Config":
        scale = scale if scale is not None else get_scale()
        return cls(
            n_ligands=scale.pdbbind_samples,
            n_samples=scale.table2_samples,
            epochs=scale.epochs,
            sq_layers=scale.sq_layers,
            batch_size=scale.batch_size,
            seed=seed,
        )


@dataclass
class Table2Cell:
    model: str
    lsd: int
    qed: float
    logp: float
    sa: float
    validity: float
    uniqueness: float


@dataclass
class Table2Result:
    cells: list[Table2Cell] = field(default_factory=list)
    config: Table2Config | None = None

    def value(self, model: str, metric: str, lsd: int) -> float:
        for cell in self.cells:
            if cell.model == model and cell.lsd == lsd:
                return getattr(cell, metric.lower().replace("logp", "logp"))
        raise KeyError((model, metric, lsd))

    def format_table(self) -> str:
        lsds = sorted({c.lsd for c in self.cells})
        rows = []
        for metric in ("qed", "logp", "sa"):
            for model in ("VAE", "SQ-VAE"):
                label = f"{model}-{metric.upper() if metric != 'logp' else 'logP'}"
                row = [label]
                for lsd in lsds:
                    row.append(self.value(model, metric, lsd))
                paper = PAPER_TABLE2.get(
                    (model, "logP" if metric == "logp" else metric.upper())
                )
                row.append(
                    " / ".join(f"{paper[lsd]:.3f}" for lsd in lsds if lsd in paper)
                    if paper
                    else "-"
                )
                rows.append(row)
        headers = ["Metric"] + [f"LSD-{lsd}" for lsd in lsds] + ["Paper"]
        return format_table(
            headers, rows,
            title="Table II: drug properties of sampled ligands",
        )


def run_table2(config: Table2Config | None = None) -> Table2Result:
    """Train VAE + SQ-VAE per LSD, sample from each prior, score the sets."""
    config = config if config is not None else Table2Config.from_scale()
    dataset = load_pdbbind_ligands(n_samples=config.n_ligands, seed=config.seed)
    train, __ = train_test_split(dataset, test_fraction=0.15, seed=config.seed)
    table = default_fragment_table()
    result = Table2Result(config=config)

    for lsd in config.lsds:
        patches = _LSD_TO_PATCHES[lsd]
        rng = np.random.default_rng(config.seed + lsd)
        models = {
            "VAE": ClassicalVAE(
                input_dim=1024, latent_dim=lsd, rng=rng,
                noise_seed=config.seed + lsd,
            ),
            "SQ-VAE": ScalableQuantumVAE(
                input_dim=1024, n_patches=patches, n_layers=config.sq_layers,
                rng=rng, noise_seed=config.seed + lsd,
            ),
        }
        for name, model in models.items():
            # Warm-start both decoders at the ligand-matrix mean so short
            # training budgets still sample non-empty molecules (applied to
            # classical and quantum models alike; see DESIGN.md).
            model.init_output_bias(train.features.mean(axis=0))
            train_config = TrainConfig.paper_sq(
                epochs=config.epochs, seed=config.seed
            )
            train_config.batch_size = config.batch_size
            Trainer(model, train_config).fit(train)
            name_offset = sum(map(ord, name))  # deterministic, unlike hash()
            # Sample the prior as one matrix stack and score it through the
            # batched decode -> sanitize -> score pipeline.
            matrices = sample_matrices(
                model, config.n_samples,
                np.random.default_rng(config.seed + lsd + name_offset),
            )
            scores = score_matrices(matrices, table=table)
            result.cells.append(
                Table2Cell(
                    model=name,
                    lsd=lsd,
                    qed=scores.qed,
                    logp=scores.logp,
                    sa=scores.sa,
                    validity=scores.validity,
                    uniqueness=scores.uniqueness,
                )
            )
    return result
