"""Experiment drivers: one module per table/figure of the paper.

============  ================================================
Experiment    Entry point
============  ================================================
Table I       :func:`repro.experiments.table1.run_table1`
Table II      :func:`repro.experiments.table2.run_table2`
Fig. 4        :func:`repro.experiments.fig4.run_fig4`
Fig. 5        :func:`repro.experiments.fig5.run_fig5`
Fig. 6        :func:`repro.experiments.fig6.run_fig6`
Fig. 7        :func:`repro.experiments.fig7.run_fig7`
Fig. 8        :func:`repro.experiments.fig8.run_fig8`
============  ================================================

All drivers read workload sizes from :func:`repro.experiments.config.get_scale`
(``REPRO_FULL=1`` for paper-scale runs) and can also be invoked from the
command line: ``python -m repro.experiments.run fig6``.
"""

from .config import FAST, FULL, Scale, get_scale
from .fig4 import Fig4Config, Fig4Result, run_fig4
from .fig5 import Fig5Config, Fig5Result, run_fig5
from .fig6 import Fig6Config, Fig6Result, run_fig6
from .fig7 import Fig7Config, Fig7Result, run_fig7
from .fig8 import Fig8Config, Fig8Result, run_fig8
from .table1 import Table1Result, run_table1
from .table2 import Table2Config, Table2Result, run_table2

__all__ = [
    "Scale",
    "FAST",
    "FULL",
    "get_scale",
    "run_table1",
    "Table1Result",
    "run_table2",
    "Table2Config",
    "Table2Result",
    "run_fig4",
    "Fig4Config",
    "Fig4Result",
    "run_fig5",
    "Fig5Config",
    "Fig5Result",
    "run_fig6",
    "Fig6Config",
    "Fig6Result",
    "run_fig7",
    "Fig7Config",
    "Fig7Result",
    "run_fig8",
    "Fig8Config",
    "Fig8Result",
]
