"""Fig. 4 — baseline quantum vs classical VAEs on Digits and QM9.

* (a) train MSE on **original-scale** data: the F-BQ-VAE's probability
  outputs cannot reach original feature magnitudes, so the classical VAE
  wins decisively;
* (b) train MSE on **L1-normalized** data: the quantum model now fits the
  (probability-simplex-valued) targets directly and learns faster per
  epoch — the paper's claimed quantum advantage regime;
* (c) qualitative digit reconstructions and prior samples from the BQ-VAE;
* (d) one QM9 molecule reconstructed from original vs normalized input.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..chem.matrix import discretize
from ..data import ArrayDataset, load_digits, load_qm9
from ..evaluation.reconstruction import reconstruct_samples
from ..evaluation.sampling import sample_matrices
from ..evaluation.visualize import ascii_image, render_molecule_matrix, side_by_side
from ..models import ClassicalVAE, FullyQuantumVAE
from ..training import History, TrainConfig, Trainer
from .config import Scale, get_scale
from .tables import format_series

__all__ = ["Fig4Config", "Fig4Result", "run_fig4"]


@dataclass
class Fig4Config:
    n_samples: int = 160
    epochs: int = 4
    bq_layers: int = 3
    batch_size: int = 32
    lr: float = 0.01
    seed: int = 0
    render_samples: int = 3

    @classmethod
    def from_scale(cls, scale: Scale | None = None, seed: int = 0) -> "Fig4Config":
        scale = scale if scale is not None else get_scale()
        # The 64-feature models are cheap, so even the fast scale affords
        # enough epochs to show the classical model overtaking the quantum
        # plateau on original-scale data (the paper's panel (a) crossover).
        return cls(
            n_samples=min(scale.digits_samples, scale.qm9_samples),
            epochs=max(scale.epochs, 10),
            bq_layers=scale.bq_layers,
            batch_size=scale.batch_size,
            seed=seed,
        )


@dataclass
class Fig4Result:
    # Panel (a): original scale; panel (b): normalized.  Keys are curve
    # names matching the paper's legend.
    original_curves: dict[str, list[float]] = field(default_factory=dict)
    normalized_curves: dict[str, list[float]] = field(default_factory=dict)
    digit_panel: str = ""
    molecule_panel: str = ""

    def quantum_wins_normalized(self, dataset: str = "QM9") -> bool:
        """Does BQ-VAE reach a lower final loss than CVAE on normalized data?"""
        quantum = self.normalized_curves[f"BQ-VAE-{dataset}"][-1]
        classical = self.normalized_curves[f"CVAE-{dataset}"][-1]
        return quantum < classical

    def classical_wins_original(self, dataset: str = "QM9") -> bool:
        quantum = self.original_curves[f"BQ-VAE-{dataset}"][-1]
        classical = self.original_curves[f"CVAE-{dataset}"][-1]
        return classical < quantum

    def format_table(self) -> str:
        lines = ["Fig. 4(a): train MSE per epoch (original scale)"]
        for name, curve in self.original_curves.items():
            lines.append("  " + format_series(name, curve))
        lines.append("Fig. 4(b): train MSE per epoch (L1-normalized)")
        for name, curve in self.normalized_curves.items():
            lines.append("  " + format_series(name, curve))
        return "\n".join(lines)


def _train_pair(
    data: ArrayDataset, config: Fig4Config, tag: str
) -> dict[str, History]:
    histories: dict[str, History] = {}
    rng = np.random.default_rng(config.seed)
    quantum = FullyQuantumVAE(
        input_dim=data.n_features, n_layers=config.bq_layers, rng=rng,
        noise_seed=config.seed,
    )
    classical = ClassicalVAE(
        input_dim=data.n_features, latent_dim=quantum.latent_dim, rng=rng,
        noise_seed=config.seed,
    )
    for name, model in [(f"BQ-VAE-{tag}", quantum), (f"CVAE-{tag}", classical)]:
        train_config = TrainConfig(
            epochs=config.epochs, batch_size=config.batch_size,
            quantum_lr=config.lr, classical_lr=config.lr, seed=config.seed,
        )
        histories[name] = Trainer(model, train_config).fit(data)
    return histories


def run_fig4(config: Fig4Config | None = None) -> Fig4Result:
    """Train the four model/dataset pairs at both scales; render panels."""
    config = config if config is not None else Fig4Config.from_scale()
    result = Fig4Result()

    qm9 = load_qm9(n_samples=config.n_samples, seed=config.seed)
    digits = load_digits(n_samples=config.n_samples, seed=config.seed)
    # Scale digit intensities to [0, 1] (standard image preprocessing; the
    # L1-normalized panel is invariant to this because x/sum(x) is
    # scale-free).  "Original scale" here means not L1-normalized.
    digits = ArrayDataset(digits.features / 16.0, raw=digits.raw,
                          name=digits.name)

    for tag, data in [("QM9", qm9), ("Digits", digits)]:
        for name, history in _train_pair(data, config, tag).items():
            result.original_curves[name] = [
                r.train_reconstruction for r in history.epochs
            ]
        for name, history in _train_pair(data.normalized(), config, tag).items():
            result.normalized_curves[name] = [
                r.train_reconstruction for r in history.epochs
            ]

    # Panel (c): digit reconstructions + samples from a BQ-VAE trained on
    # normalized digits.
    rng = np.random.default_rng(config.seed)
    bq = FullyQuantumVAE(input_dim=64, n_layers=config.bq_layers, rng=rng,
                         noise_seed=config.seed)
    norm_digits = digits.normalized()
    Trainer(
        bq,
        TrainConfig(epochs=config.epochs, batch_size=config.batch_size,
                    quantum_lr=config.lr, classical_lr=config.lr,
                    seed=config.seed),
    ).fit(norm_digits)
    originals, recons = reconstruct_samples(
        bq, norm_digits, n_samples=config.render_samples, seed=config.seed
    )
    samples = sample_matrices(bq, config.render_samples,
                              np.random.default_rng(config.seed + 1))
    result.digit_panel = side_by_side(
        [
            "\n\n".join(ascii_image(img) for img in originals),
            "\n\n".join(ascii_image(img) for img in recons),
            "\n\n".join(ascii_image(img) for img in samples),
        ],
        titles=["Input digits", "BQ-VAE reconstruction", "BQ-VAE samples"],
    )

    # Panel (d): one QM9 molecule from original and normalized training.
    bq_orig = FullyQuantumVAE(input_dim=64, n_layers=config.bq_layers,
                              rng=np.random.default_rng(config.seed),
                              noise_seed=config.seed)
    Trainer(
        bq_orig,
        TrainConfig(epochs=config.epochs, batch_size=config.batch_size,
                    quantum_lr=config.lr, classical_lr=config.lr,
                    seed=config.seed),
    ).fit(qm9)
    molecule = qm9.features[:1]
    recon_original = bq_orig.reconstruct(molecule)[0].reshape(8, 8)
    bq_norm = FullyQuantumVAE(input_dim=64, n_layers=config.bq_layers,
                              rng=np.random.default_rng(config.seed),
                              noise_seed=config.seed)
    qm9_norm = qm9.normalized()
    Trainer(
        bq_norm,
        TrainConfig(epochs=config.epochs, batch_size=config.batch_size,
                    quantum_lr=config.lr, classical_lr=config.lr,
                    seed=config.seed),
    ).fit(qm9_norm)
    recon_norm = bq_norm.reconstruct(qm9_norm.features[:1])[0].reshape(8, 8)
    result.molecule_panel = side_by_side(
        [
            render_molecule_matrix(molecule[0].reshape(8, 8)),
            render_molecule_matrix(discretize(recon_original)),
            render_molecule_matrix(discretize(recon_norm * molecule[0].sum())),
        ],
        titles=["Input molecule", "Recon (original)", "Recon (normalized)"],
    )
    return result
