"""Plain-text table formatting for experiment outputs."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str | None = None
) -> str:
    """Align ``rows`` under ``headers``; floats are printed with 4 decimals."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in rendered)) if rendered
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, values: Sequence[float]) -> str:
    """One labelled loss curve, e.g. for the figure reproductions."""
    body = ", ".join(f"{v:.4f}" for v in values)
    return f"{name}: [{body}]"


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
