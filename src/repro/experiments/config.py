"""Experiment scaling: paper-scale ("full") vs laptop-scale ("fast") runs.

Every experiment driver reads its workload sizes from a :class:`Scale`.
``fast`` (the default) subsamples datasets and epochs so the entire
benchmark suite finishes in minutes on a CPU; ``full`` restores the paper's
settings (2492 ligands, 20 epochs, 1000 sampled molecules, ...).  Select
with the ``REPRO_FULL=1`` environment variable or by passing a scale
explicitly.

The quantities reproduced are *shapes* (orderings, crossovers, win/loss),
which are stable under this subsampling; EXPERIMENTS.md records both the
paper's values and ours.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["Scale", "FAST", "FULL", "get_scale"]


@dataclass(frozen=True)
class Scale:
    """Workload knobs shared by the experiment drivers."""

    name: str
    qm9_samples: int
    digits_samples: int
    pdbbind_samples: int
    cifar_samples: int
    epochs: int  # stands in for the paper's 20-epoch budget
    ablation_epochs: int  # stands in for Fig. 6's 10-epoch budget
    eval_epochs: tuple[int, int]  # Fig. 6 reads losses at these epochs
    table2_samples: int  # molecules sampled per model (paper: 1000)
    lr_grid_samples: int  # training subset for the 5x5 Fig. 7 grid
    batch_size: int = 32
    bq_layers: int = 3
    sq_layers: int = 5

    @property
    def is_full(self) -> bool:
        return self.name == "full"


FAST = Scale(
    name="fast",
    qm9_samples=160,
    digits_samples=160,
    pdbbind_samples=96,
    cifar_samples=64,
    epochs=4,
    ablation_epochs=4,
    eval_epochs=(2, 4),
    table2_samples=60,
    lr_grid_samples=48,
)

FULL = Scale(
    name="full",
    qm9_samples=1024,
    digits_samples=500,
    pdbbind_samples=2492,
    cifar_samples=256,
    epochs=20,
    ablation_epochs=10,
    eval_epochs=(5, 10),
    table2_samples=1000,
    lr_grid_samples=512,
)


def get_scale() -> Scale:
    """FULL when ``REPRO_FULL`` is a truthy env value, else FAST."""
    value = os.environ.get("REPRO_FULL", "").strip().lower()
    return FULL if value not in ("", "0", "false", "no") else FAST
