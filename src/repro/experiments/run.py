"""Command-line experiment runner.

Usage::

    python -m repro.experiments.run table1
    python -m repro.experiments.run fig6 --seed 3
    REPRO_FULL=1 python -m repro.experiments.run table2

Prints the same rows/series the paper's table or figure reports.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import (
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_table1,
    run_table2,
    get_scale,
)
from .fig4 import Fig4Config
from .fig5 import Fig5Config
from .fig6 import Fig6Config
from .fig7 import Fig7Config
from .fig8 import Fig8Config
from .table2 import Table2Config

__all__ = ["main"]


def _run_table1(seed: int):
    return run_table1(seed=seed)


def _run_table2(seed: int):
    return run_table2(Table2Config.from_scale(seed=seed))


def _run_fig4(seed: int):
    return run_fig4(Fig4Config.from_scale(seed=seed))


def _run_fig5(seed: int):
    return run_fig5(Fig5Config.from_scale(seed=seed))


def _run_fig6(seed: int):
    return run_fig6(Fig6Config.from_scale(seed=seed))


def _run_fig7(seed: int):
    return run_fig7(Fig7Config.from_scale(seed=seed))


def _run_fig8(seed: int):
    return run_fig8(Fig8Config.from_scale(seed=seed))


EXPERIMENTS = {
    "table1": _run_table1,
    "table2": _run_table2,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.run",
        description="Reproduce one table/figure from the paper.",
    )
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"])
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    scale = get_scale()
    print(f"scale: {scale.name} (set REPRO_FULL=1 for paper-scale runs)")
    for name in names:
        start = time.time()
        result = EXPERIMENTS[name](args.seed)
        elapsed = time.time() - start
        print(f"\n=== {name} ({elapsed:.1f}s) ===")
        print(result.format_table())
        for attr in ("digit_panel", "molecule_panel", "cifar_panel"):
            panel = getattr(result, attr, "")
            if panel:
                print(f"\n--- {attr} ---\n{panel}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
