"""Fig. 8 — scalable quantum autoencoders at scale, plus CIFAR visuals.

* (a) final train MSE on PDBbind vs latent dimension: classical VAE at LSD
  {16, 32, 64, 128} against SQ-VAE / SQ-AE at the patched LSDs
  {18, 32, 56, 96} (p = 2/4/8/16);
* (b) train-loss curves on grayscale CIFAR-10 for SQ-VAE / CVAE / SQ-AE /
  CAE at LSD 18 (p = 2), where the paper reports rough parity;
* (c) qualitative CIFAR reconstructions from the classical AE and SQ-AE.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data import load_cifar_gray, load_pdbbind_ligands, train_test_split
from ..evaluation.reconstruction import reconstruct_samples
from ..evaluation.visualize import ascii_image, side_by_side
from ..models import (
    ClassicalAE,
    ClassicalVAE,
    ScalableQuantumAE,
    ScalableQuantumVAE,
)
from ..training import TrainConfig, Trainer
from .config import Scale, get_scale
from .tables import format_series, format_table

__all__ = ["Fig8Config", "Fig8Result", "run_fig8"]

_SQ_LSDS = {18: 2, 32: 4, 56: 8, 96: 16}
_VAE_LSDS = (16, 32, 64, 128)


@dataclass
class Fig8Config:
    n_ligands: int = 96
    n_images: int = 64
    epochs: int = 4
    sq_layers: int = 5
    cifar_patches: int = 2  # LSD 18
    batch_size: int = 32
    seed: int = 0
    render_samples: int = 3
    # Panel (a) sweeps; the defaults are the paper's tick marks.
    sq_lsds: tuple[int, ...] = (18, 32, 56, 96)
    vae_lsds: tuple[int, ...] = _VAE_LSDS

    @classmethod
    def from_scale(cls, scale: Scale | None = None, seed: int = 0) -> "Fig8Config":
        scale = scale if scale is not None else get_scale()
        return cls(
            n_ligands=scale.pdbbind_samples,
            n_images=scale.cifar_samples,
            epochs=scale.epochs,
            sq_layers=scale.sq_layers,
            batch_size=scale.batch_size,
            seed=seed,
        )


@dataclass
class Fig8Result:
    # Panel (a): {model: {lsd: final train loss}}.
    lsd_losses: dict[str, dict[int, float]] = field(default_factory=dict)
    # Panel (b): {model: per-epoch train loss}.
    cifar_curves: dict[str, list[float]] = field(default_factory=dict)
    cifar_panel: str = ""

    def sq_ae_beats_sq_vae(self) -> bool:
        """Vanilla reconstructs better than variational (extra latent noise)."""
        sq_ae = self.lsd_losses["SQ-AE"]
        sq_vae = self.lsd_losses["SQ-VAE"]
        common = set(sq_ae) & set(sq_vae)
        wins = sum(1 for lsd in common if sq_ae[lsd] < sq_vae[lsd])
        return wins >= len(common) / 2

    def format_table(self) -> str:
        lines = []
        rows = []
        for model, losses in self.lsd_losses.items():
            for lsd, loss in sorted(losses.items()):
                rows.append([model, lsd, loss])
        lines.append(
            format_table(
                ["Model", "LSD", "Final train MSE"], rows,
                title="Fig. 8(a): train loss vs latent dimension (PDBbind)",
            )
        )
        lines.append("Fig. 8(b): train MSE per epoch (grayscale CIFAR-10)")
        for name, curve in self.cifar_curves.items():
            lines.append("  " + format_series(name, curve))
        return "\n".join(lines)


def run_fig8(config: Fig8Config | None = None) -> Fig8Result:
    """Run the LSD sweep, the CIFAR curve comparison, and the render panel."""
    config = config if config is not None else Fig8Config.from_scale()
    result = Fig8Result()
    pdbbind = load_pdbbind_ligands(n_samples=config.n_ligands, seed=config.seed)
    train, __ = train_test_split(pdbbind, test_fraction=0.15, seed=config.seed)

    def fit(model) -> list[float]:
        trainer = Trainer(
            model,
            TrainConfig.paper_sq(epochs=config.epochs, seed=config.seed),
        )
        history = trainer.fit(train)
        return [r.train_reconstruction for r in history.epochs]

    # Panel (a): VAE at the paper's tick LSDs; SQ models at patched LSDs.
    result.lsd_losses = {"VAE": {}, "SQ-VAE": {}, "SQ-AE": {}}
    for lsd in config.vae_lsds:
        model = ClassicalVAE(input_dim=1024, latent_dim=lsd,
                             rng=np.random.default_rng(config.seed + lsd),
                             noise_seed=config.seed)
        result.lsd_losses["VAE"][lsd] = fit(model)[-1]
    for lsd, patches in ((l, _SQ_LSDS[l]) for l in config.sq_lsds):
        rng = np.random.default_rng(config.seed + lsd)
        sq_vae = ScalableQuantumVAE(input_dim=1024, n_patches=patches,
                                    n_layers=config.sq_layers, rng=rng,
                                    noise_seed=config.seed)
        result.lsd_losses["SQ-VAE"][lsd] = fit(sq_vae)[-1]
        sq_ae = ScalableQuantumAE(input_dim=1024, n_patches=patches,
                                  n_layers=config.sq_layers,
                                  rng=np.random.default_rng(config.seed + lsd))
        result.lsd_losses["SQ-AE"][lsd] = fit(sq_ae)[-1]

    # Panel (b): CIFAR-10 curves at LSD 18.
    cifar = load_cifar_gray(n_samples=config.n_images, seed=config.seed)
    rng = np.random.default_rng(config.seed)
    cifar_models = {
        "SQ-VAE": ScalableQuantumVAE(input_dim=1024,
                                     n_patches=config.cifar_patches,
                                     n_layers=config.sq_layers, rng=rng,
                                     noise_seed=config.seed),
        "CVAE": ClassicalVAE(input_dim=1024, latent_dim=18, rng=rng,
                             noise_seed=config.seed),
        "SQ-AE": ScalableQuantumAE(input_dim=1024,
                                   n_patches=config.cifar_patches,
                                   n_layers=config.sq_layers, rng=rng),
        "CAE": ClassicalAE(input_dim=1024, latent_dim=18, rng=rng),
    }
    for name, model in cifar_models.items():
        trainer = Trainer(
            model, TrainConfig.paper_sq(epochs=config.epochs, seed=config.seed)
        )
        history = trainer.fit(cifar)
        result.cifar_curves[name] = [r.train_reconstruction for r in history.epochs]

    # Panel (c): input / CAE / SQ-AE reconstructions.
    originals, cae_recons = reconstruct_samples(
        cifar_models["CAE"], cifar, n_samples=config.render_samples,
        seed=config.seed,
    )
    sq_recons = cifar_models["SQ-AE"].reconstruct(originals)
    result.cifar_panel = side_by_side(
        [
            "\n\n".join(ascii_image(img) for img in originals),
            "\n\n".join(ascii_image(img) for img in cae_recons),
            "\n\n".join(ascii_image(img) for img in sq_recons),
        ],
        titles=["Input images", "Classical AE recon", "SQ-AE recon"],
    )
    return result
