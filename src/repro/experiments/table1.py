"""Table I — trainable-parameter comparison, classical vs baseline quantum.

Builds each 64-feature architecture (L = 3 entangling layers, latent 6) and
counts quantum / classical / total trainable scalars, next to the numbers
printed in the paper.  Everything except the classical MLP's +132 delta
(see DESIGN.md) reproduces exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..models import (
    ClassicalAE,
    ClassicalVAE,
    FullyQuantumAE,
    FullyQuantumVAE,
    HybridQuantumAE,
    HybridQuantumVAE,
)
from .tables import format_table

__all__ = ["Table1Row", "Table1Result", "run_table1", "PAPER_TABLE1"]

# Paper values: {model: (quantum, classical, total)}.
PAPER_TABLE1 = {
    "VAE": (0, 5694, 5694),
    "AE": (0, 5610, 5610),
    "F-BQ-VAE": (108, 84, 192),
    "F-BQ-AE": (108, 0, 108),
    "H-BQ-VAE": (108, 4286, 4394),
    "H-BQ-AE": (108, 4202, 4310),
}


@dataclass
class Table1Row:
    model: str
    quantum: int
    classical: int
    total: int
    paper_quantum: int
    paper_classical: int
    paper_total: int

    @property
    def matches_paper(self) -> bool:
        return (self.quantum, self.classical, self.total) == (
            self.paper_quantum,
            self.paper_classical,
            self.paper_total,
        )


@dataclass
class Table1Result:
    rows: list[Table1Row] = field(default_factory=list)

    def format_table(self) -> str:
        return format_table(
            ["Model", "Quantum", "Classical", "Total",
             "Paper(Q)", "Paper(C)", "Paper(T)", "Match"],
            [
                [r.model, r.quantum, r.classical, r.total,
                 r.paper_quantum, r.paper_classical, r.paper_total,
                 "yes" if r.matches_paper else "no"]
                for r in self.rows
            ],
            title="Table I: trainable parameters (64 features, L=3, latent 6)",
        )


def run_table1(seed: int = 0) -> Table1Result:
    """Instantiate every Table I architecture and count parameters."""
    rng = np.random.default_rng(seed)
    builders = {
        "VAE": lambda: ClassicalVAE(rng=rng),
        "AE": lambda: ClassicalAE(rng=rng),
        "F-BQ-VAE": lambda: FullyQuantumVAE(rng=rng),
        "F-BQ-AE": lambda: FullyQuantumAE(rng=rng),
        "H-BQ-VAE": lambda: HybridQuantumVAE(rng=rng),
        "H-BQ-AE": lambda: HybridQuantumAE(rng=rng),
    }
    result = Table1Result()
    for name, build in builders.items():
        counts = build().parameter_count_by_group()
        paper_q, paper_c, paper_t = PAPER_TABLE1[name]
        result.rows.append(
            Table1Row(
                model=name,
                quantum=counts["quantum"],
                classical=counts["classical"],
                total=counts["total"],
                paper_quantum=paper_q,
                paper_classical=paper_c,
                paper_total=paper_t,
            )
        )
    return result
