"""Fig. 7 — heterogeneous learning-rate grid for the hybrid SQ-AE.

Quantum rotation angles live in [-pi, pi] while classical weights roam an
unbounded space, so a single learning rate can't suit both.  The paper
sweeps {0.001, 0.003, 0.01, 0.03, 0.1} for each parameter family (a 5x5
grid of SQ-AE runs) and picks quantum 0.03 / classical 0.01 — the
configuration every following experiment uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data import load_pdbbind_ligands
from ..models import ScalableQuantumAE
from ..training import TrainConfig, Trainer
from .config import Scale, get_scale
from .tables import format_table

__all__ = ["Fig7Config", "Fig7Result", "run_fig7", "PAPER_BEST_LRS"]

PAPER_LR_GRID = (0.001, 0.003, 0.01, 0.03, 0.1)
PAPER_BEST_LRS = {"quantum": 0.03, "classical": 0.01}


@dataclass
class Fig7Config:
    quantum_lrs: tuple[float, ...] = PAPER_LR_GRID
    classical_lrs: tuple[float, ...] = PAPER_LR_GRID
    n_ligands: int = 48
    n_patches: int = 4
    n_layers: int = 5
    epochs: int = 2
    batch_size: int = 32
    seed: int = 0

    @classmethod
    def from_scale(cls, scale: Scale | None = None, seed: int = 0) -> "Fig7Config":
        scale = scale if scale is not None else get_scale()
        return cls(
            n_ligands=scale.lr_grid_samples,
            n_layers=scale.sq_layers,
            epochs=max(2, scale.epochs // 2),
            batch_size=scale.batch_size,
            seed=seed,
        )


@dataclass
class Fig7Result:
    # losses[(quantum_lr, classical_lr)] = final train loss
    losses: dict[tuple[float, float], float] = field(default_factory=dict)

    def best_combination(self) -> tuple[float, float]:
        """(quantum_lr, classical_lr) with the lowest training loss."""
        return min(self.losses, key=self.losses.get)

    def loss_grid(self) -> np.ndarray:
        q_values = sorted({q for q, __ in self.losses})
        c_values = sorted({c for __, c in self.losses})
        grid = np.empty((len(c_values), len(q_values)))
        for i, c in enumerate(c_values):
            for j, q in enumerate(q_values):
                grid[i, j] = self.losses[(q, c)]
        return grid

    def format_table(self) -> str:
        q_values = sorted({q for q, __ in self.losses})
        c_values = sorted({c for __, c in self.losses})
        rows = []
        for c in c_values:
            rows.append([f"c={c:g}"] + [self.losses[(q, c)] for q in q_values])
        table = format_table(
            ["Classical \\ Quantum"] + [f"q={q:g}" for q in q_values],
            rows,
            title="Fig. 7: SQ-AE train loss over learning-rate combinations",
        )
        best_q, best_c = self.best_combination()
        return (
            f"{table}\nbest: quantum lr {best_q:g}, classical lr {best_c:g} "
            f"(paper: quantum {PAPER_BEST_LRS['quantum']}, "
            f"classical {PAPER_BEST_LRS['classical']})"
        )


def run_fig7(config: Fig7Config | None = None) -> Fig7Result:
    """Train one SQ-AE per learning-rate pair; record final train loss."""
    config = config if config is not None else Fig7Config.from_scale()
    dataset = load_pdbbind_ligands(n_samples=config.n_ligands, seed=config.seed)
    result = Fig7Result()
    for quantum_lr in config.quantum_lrs:
        for classical_lr in config.classical_lrs:
            model = ScalableQuantumAE(
                input_dim=1024, n_patches=config.n_patches,
                n_layers=config.n_layers,
                rng=np.random.default_rng(config.seed),
            )
            trainer = Trainer(
                model,
                TrainConfig(epochs=config.epochs, batch_size=config.batch_size,
                            quantum_lr=quantum_lr, classical_lr=classical_lr,
                            seed=config.seed),
            )
            history = trainer.fit(dataset)
            result.losses[(quantum_lr, classical_lr)] = history.final_train_loss
    return result
