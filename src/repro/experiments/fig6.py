"""Fig. 6 — quantum layer depth ablation for the scalable autoencoder.

Sweeps the number of strongly entangling layers L = 1..9 in an SQ-AE on
PDBbind ligands and records train/test reconstruction MSE at two epoch
checkpoints.  The paper finds a U-shape: "too few quantum layers hurts
expressive power, whereas too many layers possibly create unwanted number
of spurious local minima", with L = 5 the best test loss — the depth every
later SQ experiment uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data import load_pdbbind_ligands, train_test_split
from ..models import ScalableQuantumAE
from ..training import TrainConfig, Trainer
from .config import Scale, get_scale
from .tables import format_table

__all__ = ["Fig6Config", "Fig6Result", "run_fig6"]


@dataclass
class Fig6Config:
    depths: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8, 9)
    n_ligands: int = 96
    n_patches: int = 4
    epochs: int = 4
    eval_epochs: tuple[int, int] = (2, 4)
    batch_size: int = 32
    lr: float = 0.001  # Section IV-B: lr 0.001 for the depth tuning
    seed: int = 0

    @classmethod
    def from_scale(cls, scale: Scale | None = None, seed: int = 0) -> "Fig6Config":
        scale = scale if scale is not None else get_scale()
        return cls(
            n_ligands=scale.pdbbind_samples,
            epochs=scale.ablation_epochs,
            eval_epochs=scale.eval_epochs,
            batch_size=scale.batch_size,
            seed=seed,
        )


@dataclass
class Fig6Result:
    # {depth: {"train@e1": ..., "test@e1": ..., "train@e2": ..., "test@e2": ...}}
    losses: dict[int, dict[str, float]] = field(default_factory=dict)
    eval_epochs: tuple[int, int] = (2, 4)

    def best_depth(self, key: str | None = None) -> int:
        """Depth with the lowest loss for the given column (default: final test)."""
        key = key if key is not None else f"test@{self.eval_epochs[1]}"
        return min(self.losses, key=lambda depth: self.losses[depth][key])

    def format_table(self) -> str:
        e1, e2 = self.eval_epochs
        headers = ["Layers", f"Train@{e1}", f"Test@{e1}", f"Train@{e2}",
                   f"Test@{e2}"]
        rows = [
            [depth, row[f"train@{e1}"], row[f"test@{e1}"],
             row[f"train@{e2}"], row[f"test@{e2}"]]
            for depth, row in sorted(self.losses.items())
        ]
        table = format_table(
            headers, rows,
            title="Fig. 6: SQ-AE reconstruction MSE vs quantum layer depth",
        )
        return f"{table}\nbest depth by final test loss: {self.best_depth()}"


def run_fig6(config: Fig6Config | None = None) -> Fig6Result:
    """Train one SQ-AE per depth and checkpoint losses at two epochs."""
    config = config if config is not None else Fig6Config.from_scale()
    dataset = load_pdbbind_ligands(n_samples=config.n_ligands, seed=config.seed)
    train, test = train_test_split(dataset, test_fraction=0.15, seed=config.seed)
    e1, e2 = config.eval_epochs
    if not 1 <= e1 < e2 <= config.epochs:
        raise ValueError(
            f"eval epochs {config.eval_epochs} must fit within {config.epochs}"
        )
    result = Fig6Result(eval_epochs=config.eval_epochs)

    for depth in config.depths:
        model = ScalableQuantumAE(
            input_dim=1024, n_patches=config.n_patches, n_layers=depth,
            rng=np.random.default_rng(config.seed + depth),
        )
        trainer = Trainer(
            model,
            TrainConfig(epochs=config.epochs, batch_size=config.batch_size,
                        quantum_lr=config.lr, classical_lr=config.lr,
                        seed=config.seed),
        )
        history = trainer.fit(train, test_data=test)
        row: dict[str, float] = {}
        for epoch in (e1, e2):
            row[f"train@{epoch}"] = history.loss_at_epoch(epoch, "train")
            row[f"test@{epoch}"] = history.loss_at_epoch(epoch, "test")
        result.losses[depth] = row
    return result
