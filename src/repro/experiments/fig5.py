"""Fig. 5 — baseline quantum autoencoders fail on 1024-dim PDBbind ligands.

* (a) reconstruction loss curves for F-BQ-AE, H-BQ-AE, and a classical AE,
  all squeezed through a 10-dimensional latent space: the fully quantum
  variant "hardly learns" (probability outputs cannot match original-scale
  ligand matrices) and the hybrid only partly compensates;
* (b) classical AEs improve with larger latent spaces (10 -> 128) while
  VAEs stay nearly flat — the motivation for growing LSD via patches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data import load_pdbbind_ligands, train_test_split
from ..models import ClassicalAE, ClassicalVAE, FullyQuantumAE, HybridQuantumAE
from ..training import TrainConfig, Trainer
from .config import Scale, get_scale
from .tables import format_series, format_table

__all__ = ["Fig5Config", "Fig5Result", "run_fig5"]


@dataclass
class Fig5Config:
    n_ligands: int = 96
    epochs: int = 6
    # Panel (b) knobs: the MLPs are cheap and the latent-capacity effect
    # only appears near convergence, so the sweep gets a bigger budget and
    # a faster learning rate than the panel (a) curve comparison.
    classical_epochs: int = 20
    classical_lr: float = 0.01
    bq_layers: int = 3
    latent_sweep: tuple[int, ...] = (10, 16, 32, 64, 128)
    batch_size: int = 32
    lr: float = 0.001
    seed: int = 0

    @classmethod
    def from_scale(cls, scale: Scale | None = None, seed: int = 0) -> "Fig5Config":
        scale = scale if scale is not None else get_scale()
        return cls(
            n_ligands=scale.pdbbind_samples,
            epochs=max(scale.epochs, 6),
            classical_epochs=max(scale.epochs, 20),
            bq_layers=scale.bq_layers,
            batch_size=scale.batch_size,
            seed=seed,
        )


@dataclass
class Fig5Result:
    curves: dict[str, list[float]] = field(default_factory=dict)  # panel (a)
    lsd_losses: dict[str, dict[int, float]] = field(default_factory=dict)  # (b)

    def baseline_quantum_fails(self) -> bool:
        """Panel (a)'s finding: the classical AE beats both BQ variants."""
        ae = self.curves["AE 10D"][-1]
        return ae < self.curves["F-BQ-AE 10D"][-1] and ae < self.curves[
            "H-BQ-AE 10D"
        ][-1]

    def ae_improves_with_lsd(self) -> bool:
        """Panel (b)'s finding: AE test loss falls as LSD grows."""
        losses = self.lsd_losses["AE"]
        lsds = sorted(losses)
        return losses[lsds[-1]] < losses[lsds[0]]

    def vae_flatter_than_ae(self) -> bool:
        """Panel (b): the VAE's LSD response is much flatter than the AE's."""
        ae = self.lsd_losses["AE"]
        vae = self.lsd_losses["VAE"]
        lsds = sorted(ae)
        ae_drop = ae[lsds[0]] - ae[lsds[-1]]
        vae_drop = vae[lsds[0]] - vae[lsds[-1]]
        return abs(vae_drop) < abs(ae_drop)

    def format_table(self) -> str:
        lines = ["Fig. 5(a): reconstruction MSE per epoch (PDBbind, LSD 10)"]
        for name, curve in self.curves.items():
            lines.append("  " + format_series(name, curve))
        lsds = sorted(next(iter(self.lsd_losses.values())))
        rows = [
            [model] + [self.lsd_losses[model][lsd] for lsd in lsds]
            for model in self.lsd_losses
        ]
        lines.append(
            format_table(
                ["Model"] + [f"LSD-{lsd}" for lsd in lsds],
                rows,
                title="Fig. 5(b): test reconstruction MSE vs latent dimension",
            )
        )
        return "\n".join(lines)


def run_fig5(config: Fig5Config | None = None) -> Fig5Result:
    """Train the panel (a) trio and the panel (b) LSD sweep."""
    config = config if config is not None else Fig5Config.from_scale()
    result = Fig5Result()
    dataset = load_pdbbind_ligands(n_samples=config.n_ligands, seed=config.seed)
    train, test = train_test_split(dataset, test_fraction=0.15, seed=config.seed)

    def train_config() -> TrainConfig:
        return TrainConfig(
            epochs=config.epochs, batch_size=config.batch_size,
            quantum_lr=config.lr, classical_lr=config.lr, seed=config.seed,
        )

    # Panel (a): LSD-10 models on 1024 features.
    rng = np.random.default_rng(config.seed)
    panel_a = {
        "F-BQ-AE 10D": FullyQuantumAE(input_dim=1024, n_layers=config.bq_layers,
                                      rng=rng),
        "H-BQ-AE 10D": HybridQuantumAE(input_dim=1024, n_layers=config.bq_layers,
                                       rng=rng),
        "AE 10D": ClassicalAE(input_dim=1024, latent_dim=10, rng=rng),
    }
    for name, model in panel_a.items():
        history = Trainer(model, train_config()).fit(train)
        result.curves[name] = [r.train_reconstruction for r in history.epochs]

    # Panel (b): classical AE/VAE latent sweep, test loss after the budget.
    sweep_config = TrainConfig(
        epochs=config.classical_epochs, batch_size=config.batch_size,
        quantum_lr=config.classical_lr, classical_lr=config.classical_lr,
        seed=config.seed,
    )
    for model_name in ("AE", "VAE"):
        result.lsd_losses[model_name] = {}
        for lsd in config.latent_sweep:
            rng = np.random.default_rng(config.seed + lsd)
            if model_name == "AE":
                model = ClassicalAE(input_dim=1024, latent_dim=lsd, rng=rng)
            else:
                model = ClassicalVAE(input_dim=1024, latent_dim=lsd, rng=rng,
                                     noise_seed=config.seed)
            trainer = Trainer(model, sweep_config)
            trainer.fit(train)
            result.lsd_losses[model_name][lsd] = trainer.evaluate(test)
    return result
