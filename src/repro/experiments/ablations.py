"""Ablation studies beyond the paper's figures.

The paper motivates several design choices without isolating them; these
drivers measure each one under controlled conditions:

* :func:`run_patched_vs_monolithic` — the scaling contribution itself: a
  patched encoder (p sub-circuits, LSD = p*log2(d/p)) against the
  monolithic baseline encoder (one log2(d)-qubit circuit, LSD = log2(d))
  on the same ligand data;
* :func:`run_cnot_range_ablation` — the paper's periodic range-1 CNOT ring
  vs PennyLane's increasing-range default in the entangling layers;
* :func:`run_shot_noise_ablation` — how many measurement shots the
  encoder latent needs before it is indistinguishable from the exact
  simulator the paper uses;
* :func:`run_noise_robustness` — depolarizing-error sensitivity of the
  latent (the NISQ gap the paper's noiseless simulation sidesteps);
* :func:`run_beta_ablation` — the KL weight behind the paper's AE-vs-VAE
  reconstruction/sampling trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data import load_pdbbind_ligands, load_qm9, train_test_split
from ..models import ClassicalVAE, HybridQuantumAE, ScalableQuantumAE
from ..nn.tensor import Tensor
from ..quantum import NoiseModel, noisy_execute
from ..quantum.autodiff import execute
from ..quantum.circuit import Circuit
from ..quantum.sampling import estimate_expval_z
from ..training import TrainConfig, Trainer
from .tables import format_table

__all__ = [
    "PatchAblationResult",
    "run_patched_vs_monolithic",
    "RangeAblationResult",
    "run_cnot_range_ablation",
    "ShotNoiseResult",
    "run_shot_noise_ablation",
    "NoiseRobustnessResult",
    "run_noise_robustness",
    "BetaAblationResult",
    "run_beta_ablation",
]


# ----------------------------------------------------------------------
# 1. Patched vs monolithic encoder
# ----------------------------------------------------------------------
@dataclass
class PatchAblationResult:
    losses: dict[str, float] = field(default_factory=dict)  # final train MSE
    latent_dims: dict[str, int] = field(default_factory=dict)

    def patched_wins(self) -> bool:
        patched = [v for k, v in self.losses.items() if k.startswith("SQ-AE")]
        return min(patched) < self.losses["H-BQ-AE (monolithic)"]

    def format_table(self) -> str:
        rows = [
            [name, self.latent_dims[name], self.losses[name]]
            for name in self.losses
        ]
        return format_table(
            ["Encoder", "LSD", "Final train MSE"], rows,
            title="Ablation: patched vs monolithic quantum encoder (PDBbind)",
        )


def run_patched_vs_monolithic(
    n_ligands: int = 64,
    epochs: int = 3,
    patch_counts: tuple[int, ...] = (4, 16),
    seed: int = 0,
) -> PatchAblationResult:
    """Train the monolithic H-BQ-AE and SQ-AEs on the same ligand set."""
    dataset = load_pdbbind_ligands(n_samples=n_ligands, seed=seed)
    train, __ = train_test_split(dataset, test_fraction=0.15, seed=seed)
    result = PatchAblationResult()

    def fit(model) -> float:
        config = TrainConfig.paper_sq(epochs=epochs, seed=seed)
        history = Trainer(model, config).fit(train)
        return history.final_train_loss

    monolithic = HybridQuantumAE(input_dim=1024, n_layers=3,
                                 rng=np.random.default_rng(seed))
    result.losses["H-BQ-AE (monolithic)"] = fit(monolithic)
    result.latent_dims["H-BQ-AE (monolithic)"] = monolithic.latent_dim

    for patches in patch_counts:
        model = ScalableQuantumAE(input_dim=1024, n_patches=patches,
                                  n_layers=5,
                                  rng=np.random.default_rng(seed + patches))
        name = f"SQ-AE (p={patches})"
        result.losses[name] = fit(model)
        result.latent_dims[name] = model.latent_dim
    return result


# ----------------------------------------------------------------------
# 2. CNOT range in the strongly entangling layers
# ----------------------------------------------------------------------
@dataclass
class RangeAblationResult:
    losses: dict[str, list[float]] = field(default_factory=dict)

    def format_table(self) -> str:
        rows = [[name, curve[0], curve[-1]] for name, curve in self.losses.items()]
        return format_table(
            ["CNOT layout", "First-epoch MSE", "Final MSE"], rows,
            title="Ablation: periodic r=1 ring vs increasing ranges",
        )


def run_cnot_range_ablation(
    n_ligands: int = 64, epochs: int = 3, n_patches: int = 4, seed: int = 0
) -> RangeAblationResult:
    """Compare the paper's r=1 ring against PennyLane-style ranges."""
    from ..nn.modules import Linear, Module
    from ..qnn.patched import PatchedQuantumLayer, patch_qubits

    dataset = load_pdbbind_ligands(n_samples=n_ligands, seed=seed)
    train, __ = train_test_split(dataset, test_fraction=0.15, seed=seed)
    qubits = patch_qubits(1024, n_patches)
    n_layers = 5

    def encoder_factory(ranges):
        def build(_index: int) -> Circuit:
            return (
                Circuit(qubits)
                .amplitude_embedding(1024 // n_patches, zero_fallback=True)
                .strongly_entangling_layers(n_layers, ranges=ranges)
                .measure_expval()
            )

        return build

    class RangeAE(Module):
        """Patched encoder + linear decoder, minimal on purpose."""

        def __init__(self, ranges, rng):
            super().__init__()
            self.encoder = PatchedQuantumLayer(
                encoder_factory(ranges), n_patches=n_patches, rng=rng
            )
            self.head = Linear(self.encoder.output_dim, 1024, rng=rng)

        def forward(self, x: Tensor) -> Tensor:
            return self.head(self.encoder(x))

    pennylane_ranges = [(layer % (qubits - 1)) + 1 for layer in range(n_layers)]
    variants = {
        "periodic r=1 (paper)": 1,
        "increasing ranges (PennyLane)": pennylane_ranges,
    }
    result = RangeAblationResult()
    for name, ranges in variants.items():
        model = RangeAE(ranges, np.random.default_rng(seed))
        from ..nn.optim import heterogeneous_adam
        from ..nn import functional as F
        from ..data.loader import DataLoader

        optimizer = heterogeneous_adam(model, quantum_lr=0.03, classical_lr=0.01)
        loader = DataLoader(train, batch_size=32, seed=seed)
        curve = []
        for _ in range(epochs):
            epoch_loss, batches = 0.0, 0
            for batch in loader:
                optimizer.zero_grad()
                loss = F.mse_loss(model(Tensor(batch)), Tensor(batch))
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            curve.append(epoch_loss / batches)
        result.losses[name] = curve
    return result


# ----------------------------------------------------------------------
# 3. Shot noise on the encoder latent
# ----------------------------------------------------------------------
@dataclass
class ShotNoiseResult:
    rmse_by_shots: dict[int, float] = field(default_factory=dict)

    def shots_for(self, tolerance: float) -> int | None:
        """Smallest tested shot count whose latent RMSE is under tolerance."""
        for shots in sorted(self.rmse_by_shots):
            if self.rmse_by_shots[shots] <= tolerance:
                return shots
        return None

    def format_table(self) -> str:
        rows = [[shots, rmse] for shots, rmse in sorted(self.rmse_by_shots.items())]
        return format_table(
            ["Shots", "Latent RMSE vs exact"], rows,
            title="Ablation: finite-shot estimation of the encoder latent",
        )


def run_shot_noise_ablation(
    shot_counts: tuple[int, ...] = (16, 64, 256, 1024, 4096),
    n_molecules: int = 16,
    seed: int = 0,
) -> ShotNoiseResult:
    """RMSE between shot-estimated and exact latents of a BQ encoder."""
    data = load_qm9(n_samples=n_molecules, seed=seed)
    circuit = (
        Circuit(6)
        .amplitude_embedding(64)
        .strongly_entangling_layers(3)
        .measure_expval()
    )
    rng = np.random.default_rng(seed)
    weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
    exact, cache = execute(circuit, data.features, weights)

    result = ShotNoiseResult()
    for shots in shot_counts:
        estimate = estimate_expval_z(
            cache.final_state, tuple(range(6)), shots,
            np.random.default_rng(seed + shots),
        )
        result.rmse_by_shots[shots] = float(
            np.sqrt(((estimate - exact) ** 2).mean())
        )
    return result


# ----------------------------------------------------------------------
# 4. Depolarizing-noise robustness
# ----------------------------------------------------------------------
@dataclass
class NoiseRobustnessResult:
    rmse_by_rate: dict[float, float] = field(default_factory=dict)

    def degrades_monotonically(self) -> bool:
        rates = sorted(self.rmse_by_rate)
        values = [self.rmse_by_rate[r] for r in rates]
        return all(b >= a - 0.02 for a, b in zip(values, values[1:]))

    def format_table(self) -> str:
        rows = [[rate, rmse] for rate, rmse in sorted(self.rmse_by_rate.items())]
        return format_table(
            ["Depolarizing rate", "Latent RMSE vs noiseless"], rows,
            title="Ablation: NISQ noise sensitivity of the encoder latent",
        )


def run_noise_robustness(
    rates: tuple[float, ...] = (0.0, 0.01, 0.05, 0.1, 0.25),
    n_molecules: int = 8,
    n_trajectories: int = 60,
    seed: int = 0,
) -> NoiseRobustnessResult:
    """Latent corruption as a function of per-gate depolarizing rate."""
    data = load_qm9(n_samples=n_molecules, seed=seed)
    circuit = (
        Circuit(6)
        .amplitude_embedding(64)
        .strongly_entangling_layers(3)
        .measure_expval()
    )
    rng = np.random.default_rng(seed)
    weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
    exact, __ = execute(circuit, data.features, weights, want_cache=False)

    result = NoiseRobustnessResult()
    for rate in rates:
        noisy = noisy_execute(
            circuit, data.features, weights, NoiseModel(depolarizing=rate),
            n_trajectories, np.random.default_rng(seed + int(rate * 1000)),
        )
        result.rmse_by_rate[rate] = float(np.sqrt(((noisy - exact) ** 2).mean()))
    return result


# ----------------------------------------------------------------------
# 5. KL weight (beta) in the VAE objective
# ----------------------------------------------------------------------
@dataclass
class BetaAblationResult:
    # {beta: (reconstruction MSE, mean latent |mu|)}
    rows: dict[float, tuple[float, float]] = field(default_factory=dict)

    def reconstruction_degrades_with_beta(self) -> bool:
        betas = sorted(self.rows)
        return self.rows[betas[-1]][0] >= self.rows[betas[0]][0]

    def posterior_shrinks_with_beta(self) -> bool:
        betas = sorted(self.rows)
        return self.rows[betas[-1]][1] <= self.rows[betas[0]][1]

    def format_table(self) -> str:
        rows = [
            [beta, values[0], values[1]] for beta, values in sorted(self.rows.items())
        ]
        return format_table(
            ["beta", "Recon MSE", "mean |mu|"], rows,
            title="Ablation: KL weight vs reconstruction/posterior collapse",
        )


def run_beta_ablation(
    betas: tuple[float, ...] = (0.1, 1.0, 10.0, 100.0),
    n_molecules: int = 96,
    epochs: int = 8,
    seed: int = 0,
) -> BetaAblationResult:
    """Sweep the KL weight on a QM9 classical VAE."""
    data = load_qm9(n_samples=n_molecules, seed=seed).normalized()
    result = BetaAblationResult()
    for beta in betas:
        model = ClassicalVAE(input_dim=64, latent_dim=6,
                             rng=np.random.default_rng(seed), noise_seed=seed)
        config = TrainConfig(epochs=epochs, batch_size=32, classical_lr=0.01,
                             beta=beta, seed=seed)
        trainer = Trainer(model, config)
        history = trainer.fit(data)
        mu, __ = model.encode_distribution(Tensor(data.features))
        result.rows[beta] = (
            history.epochs[-1].train_reconstruction,
            float(np.abs(mu.data).mean()),
        )
    return result
