"""Tests for the hybrid quantum-classical bridge (QuantumLayer, patches)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import Adam, Linear, Sequential, Tensor, functional as F
from repro.qnn import (
    PatchedQuantumLayer,
    QuantumLayer,
    amplitude_encoder_circuit,
    angle_expval_circuit,
    patch_qubits,
    patched_latent_dim,
    probs_decoder_circuit,
)
from repro.quantum import Circuit


def _fd_loss_grad(loss_fn, array, eps=1e-6):
    grad = np.zeros_like(array)
    flat_g, flat_x = grad.reshape(-1), array.reshape(-1)
    for i in range(flat_x.size):
        orig = flat_x[i]
        flat_x[i] = orig + eps
        hi = loss_fn()
        flat_x[i] = orig - eps
        lo = loss_fn()
        flat_x[i] = orig
        flat_g[i] = (hi - lo) / (2 * eps)
    return grad


class TestQuantumLayer:
    def test_forward_shape_expval(self):
        layer = QuantumLayer(
            angle_expval_circuit(3, 3, 2), rng=np.random.default_rng(0)
        )
        out = layer(Tensor(np.zeros((5, 3))))
        assert out.shape == (5, 3)

    def test_forward_shape_probs(self):
        layer = QuantumLayer(probs_decoder_circuit(3, 2), rng=np.random.default_rng(0))
        out = layer(Tensor(np.zeros((2, 3))))
        assert out.shape == (2, 8)
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(2), atol=1e-10)

    def test_weights_are_quantum_group(self):
        layer = QuantumLayer(angle_expval_circuit(2, 2, 1))
        assert layer.weights.group == "quantum"
        assert layer.num_parameters() == layer.circuit.n_weights

    def test_requires_measured_circuit(self):
        with pytest.raises(ValueError):
            QuantumLayer(Circuit(2).ry(0))

    def test_weight_gradient_through_loss(self):
        rng = np.random.default_rng(1)
        layer = QuantumLayer(angle_expval_circuit(2, 2, 1), rng=rng)
        x = Tensor(rng.uniform(-1, 1, (3, 2)))
        target = rng.uniform(-1, 1, (3, 2))

        loss = F.mse_loss(layer(x), Tensor(target))
        loss.backward()
        analytic = layer.weights.grad.copy()

        def loss_value():
            out, __ = _np_forward(layer, x.data)
            return ((out - target) ** 2).mean()

        fd = _fd_loss_grad(lambda: loss_value(), layer.weights.data)
        np.testing.assert_allclose(analytic, fd, atol=1e-6)

    def test_input_gradient_through_loss(self):
        rng = np.random.default_rng(2)
        layer = QuantumLayer(angle_expval_circuit(2, 2, 1), rng=rng)
        x = Tensor(rng.uniform(-1, 1, (3, 2)), requires_grad=True)
        target = rng.uniform(-1, 1, (3, 2))
        F.mse_loss(layer(x), Tensor(target)).backward()
        analytic = x.grad.copy()

        def loss_value():
            out, __ = _np_forward(layer, x.data)
            return ((out - target) ** 2).mean()

        fd = _fd_loss_grad(lambda: loss_value(), x.data)
        np.testing.assert_allclose(analytic, fd, atol=1e-6)

    def test_no_grad_tracking_in_eval(self):
        from repro.nn import no_grad

        layer = QuantumLayer(angle_expval_circuit(2, 2, 1))
        with no_grad():
            out = layer(Tensor(np.zeros((1, 2))))
        assert not out.requires_grad

    def test_hybrid_chain_trains(self):
        # quantum encoder -> classical head: loss must decrease.
        rng = np.random.default_rng(3)
        layer = QuantumLayer(amplitude_encoder_circuit(3, 8, 2), rng=rng)
        head = Linear(3, 8, rng=rng)
        x = Tensor(rng.uniform(0.1, 1.0, (16, 8)))
        opt = Adam(list(layer.parameters()) + list(head.parameters()), lr=0.05)
        first = None
        for _ in range(30):
            opt.zero_grad()
            loss = F.mse_loss(head(layer(x)), x)
            loss.backward()
            opt.step()
            first = loss.item() if first is None else first
        assert loss.item() < first * 0.8

    def test_wider_input_rejected_by_default(self):
        # Feeding more features than the circuit consumes is a wiring bug:
        # the layer must error loudly instead of silently training on a
        # feature prefix.
        rng = np.random.default_rng(4)
        layer = QuantumLayer(angle_expval_circuit(2, 2, 1), rng=rng)
        x = Tensor(rng.uniform(-1, 1, (2, 5)), requires_grad=True)
        with pytest.raises(ValueError, match="input_prefix"):
            layer(x)

    def test_narrower_input_rejected(self):
        layer = QuantumLayer(angle_expval_circuit(3, 3, 1))
        with pytest.raises(ValueError, match="consumes 3"):
            layer(Tensor(np.zeros((2, 2))))

    def test_wider_input_with_prefix_opt_in(self):
        # With input_prefix=True the extra columns are ignored but still get
        # a (zero) gradient entry.
        rng = np.random.default_rng(4)
        layer = QuantumLayer(
            angle_expval_circuit(2, 2, 1), rng=rng, input_prefix=True
        )
        x = Tensor(rng.uniform(-1, 1, (2, 5)), requires_grad=True)
        layer(x).sum().backward()
        assert x.grad.shape == (2, 5)
        np.testing.assert_allclose(x.grad[:, 2:], 0.0)
        # The prefix columns must match the exact-width gradient.
        exact = Tensor(x.data[:, :2].copy(), requires_grad=True)
        QuantumLayer(
            angle_expval_circuit(2, 2, 1), rng=np.random.default_rng(4)
        )(exact).sum().backward()
        np.testing.assert_allclose(x.grad[:, :2], exact.grad, atol=1e-12)


def _np_forward(layer, inputs):
    from repro.quantum import execute

    return execute(layer.circuit, inputs, layer.weights.data, want_cache=False)


class TestPatchedLayer:
    def test_patch_qubits(self):
        assert patch_qubits(1024, 2) == 9
        assert patch_qubits(1024, 4) == 8
        assert patch_qubits(1024, 8) == 7
        assert patch_qubits(1024, 16) == 6

    def test_paper_latent_dims(self):
        # Section IV-D: LSD 18/32/56/96 for p = 2/4/8/16.
        assert patched_latent_dim(1024, 2) == 18
        assert patched_latent_dim(1024, 4) == 32
        assert patched_latent_dim(1024, 8) == 56
        assert patched_latent_dim(1024, 16) == 96

    def test_patch_validation(self):
        with pytest.raises(ValueError):
            patch_qubits(1024, 3)
        with pytest.raises(ValueError):
            patch_qubits(96, 2)

    def test_forward_shape(self):
        rng = np.random.default_rng(0)
        layer = PatchedQuantumLayer(
            lambda i: amplitude_encoder_circuit(3, 8, 1), n_patches=4, rng=rng
        )
        assert layer.input_dim == 32
        assert layer.output_dim == 12
        out = layer(Tensor(np.abs(rng.normal(size=(2, 32))) + 0.1))
        assert out.shape == (2, 12)

    def test_wrong_input_dim_raises(self):
        layer = PatchedQuantumLayer(
            lambda i: amplitude_encoder_circuit(2, 4, 1), n_patches=2
        )
        with pytest.raises(ValueError):
            layer(Tensor(np.ones((1, 9))))

    def test_patches_have_independent_weights(self):
        layer = PatchedQuantumLayer(
            lambda i: amplitude_encoder_circuit(2, 4, 1),
            n_patches=3,
            rng=np.random.default_rng(1),
        )
        w = [p.weights.data for p in layer.patches]
        assert not np.allclose(w[0], w[1])
        assert layer.num_parameters() == 3 * layer.patches[0].circuit.n_weights

    def test_patch_outputs_are_local(self):
        # Changing features of patch 1 must not affect patch 0 outputs.
        rng = np.random.default_rng(2)
        layer = PatchedQuantumLayer(
            lambda i: amplitude_encoder_circuit(2, 4, 1), n_patches=2, rng=rng
        )
        x = np.abs(rng.normal(size=(1, 8))) + 0.1
        base = layer(Tensor(x)).data
        x2 = x.copy()
        x2[0, 5] += 1.0  # amplitude embedding is scale-invariant per patch,
        x2[0, 6] -= 0.05  # so perturb the direction, not the overall scale
        out2 = layer(Tensor(x2)).data
        np.testing.assert_allclose(base[0, :2], out2[0, :2], atol=1e-12)
        assert not np.allclose(base[0, 2:], out2[0, 2:])

    def test_gradients_flow_through_patches(self):
        rng = np.random.default_rng(3)
        layer = PatchedQuantumLayer(
            lambda i: angle_expval_circuit(2, 2, 1), n_patches=2, rng=rng
        )
        x = Tensor(rng.uniform(-1, 1, (2, 4)), requires_grad=True)
        layer(x).sum().backward()
        assert x.grad.shape == (2, 4)
        for patch in layer.patches:
            assert patch.weights.grad is not None

    @settings(max_examples=10, deadline=None)
    @given(
        n_patches=st.sampled_from([2, 4]),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_patched_expval_outputs_bounded(self, n_patches, seed):
        rng = np.random.default_rng(seed)
        layer = PatchedQuantumLayer(
            lambda i: amplitude_encoder_circuit(
                patch_qubits(16, n_patches), 16 // n_patches, 1
            ),
            n_patches=n_patches,
            rng=rng,
        )
        x = Tensor(np.abs(rng.normal(size=(3, 16))) + 0.05)
        out = layer(x)
        assert np.all(np.abs(out.data) <= 1.0 + 1e-10)
