"""End-to-end tests for the patched layer's stacked execution path.

The stacked fast path (one engine invocation for all p patches) must be a
drop-in replacement for the sequential per-patch loop: same outputs, same
weight gradients, same input gradients — and both must agree with the
parameter-shift rule.  Layers whose patches are not structurally identical
must fall back to the loop silently and keep working.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import Tensor, functional as F
from repro.qnn import (
    PatchedQuantumLayer,
    amplitude_encoder_circuit,
    angle_expval_circuit,
    patch_qubits,
)


def _both_modes(factory, n_patches, x_data, seed=0):
    """Run one forward+backward in stacked and sequential mode on layers
    with identical weights; returns (out, x_grad, weight_grads) per mode."""
    results = []
    for stacked in (True, False):
        rng = np.random.default_rng(seed)
        layer = PatchedQuantumLayer(
            factory, n_patches=n_patches, rng=rng, stacked=stacked
        )
        assert layer.stacked == stacked
        x = Tensor(x_data.copy(), requires_grad=True)
        out = layer(x)
        out.sum().backward()
        results.append(
            (out.data, x.grad.copy(), [p.weights.grad.copy() for p in layer.patches])
        )
    return results


class TestStackedEqualsSequential:
    @settings(max_examples=8, deadline=None)
    @given(
        n_patches=st.sampled_from([1, 2, 4]),
        batch=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=500),
    )
    def test_amplitude_patches(self, n_patches, batch, seed):
        rng = np.random.default_rng(seed)
        x = np.abs(rng.normal(size=(batch, n_patches * 8))) + 0.05
        (o1, gx1, gw1), (o2, gx2, gw2) = _both_modes(
            lambda i: amplitude_encoder_circuit(3, 8, 2, zero_fallback=True),
            n_patches, x, seed=seed,
        )
        np.testing.assert_allclose(o1, o2, atol=1e-10)
        np.testing.assert_allclose(gx1, gx2, atol=1e-10)
        for a, b in zip(gw1, gw2):
            np.testing.assert_allclose(a, b, atol=1e-10)

    def test_angle_patches(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(-1, 1, (3, 6))
        (o1, gx1, gw1), (o2, gx2, gw2) = _both_modes(
            lambda i: angle_expval_circuit(2, 2, 2), 3, x, seed=3
        )
        np.testing.assert_allclose(o1, o2, atol=1e-10)
        np.testing.assert_allclose(gx1, gx2, atol=1e-10)
        for a, b in zip(gw1, gw2):
            np.testing.assert_allclose(a, b, atol=1e-10)

    def test_sparse_patches_hit_zero_fallback(self):
        # An all-zero patch sub-vector (sparse ligand rows) must flow
        # through the stacked path identically to the sequential one.
        rng = np.random.default_rng(4)
        x = np.abs(rng.normal(size=(2, 16))) + 0.05
        x[0, 4:8] = 0.0  # patch 1 of sample 0 is empty
        (o1, gx1, __), (o2, gx2, ___) = _both_modes(
            lambda i: amplitude_encoder_circuit(2, 4, 1, zero_fallback=True),
            4, x, seed=4,
        )
        np.testing.assert_allclose(o1, o2, atol=1e-10)
        np.testing.assert_allclose(gx1, gx2, atol=1e-10)

    def test_weight_gradients_match_parameter_shift(self, gradcheck_shift):
        rng = np.random.default_rng(5)
        layer = PatchedQuantumLayer(
            lambda i: amplitude_encoder_circuit(2, 4, 1), n_patches=2, rng=rng
        )
        assert layer.stacked
        x = Tensor(np.abs(rng.normal(size=(3, 8))) + 0.1)
        out = layer(x)
        out.sum().backward()
        for index, patch in enumerate(layer.patches):
            chunk = x.data[:, index * 4 : (index + 1) * 4]
            gradcheck_shift(
                patch.circuit,
                chunk,
                patch.weights.data,
                np.ones((3, patch.output_dim)),
                patch.weights.grad,
                atol=1e-8,
            )

    def test_loss_training_path_matches(self):
        rng = np.random.default_rng(6)
        x_data = np.abs(rng.normal(size=(4, 16))) + 0.05
        target = rng.normal(size=(4, 6))
        losses = []
        for stacked in (True, False):
            layer = PatchedQuantumLayer(
                lambda i: amplitude_encoder_circuit(3, 8, 2, zero_fallback=True),
                n_patches=2,
                rng=np.random.default_rng(6),
                stacked=stacked,
            )
            loss = F.mse_loss(layer(Tensor(x_data)), Tensor(target))
            loss.backward()
            losses.append(
                (loss.item(), [p.weights.grad.copy() for p in layer.patches])
            )
        assert losses[0][0] == pytest.approx(losses[1][0], abs=1e-12)
        for a, b in zip(losses[0][1], losses[1][1]):
            np.testing.assert_allclose(a, b, atol=1e-10)


class TestStackedFallbacks:
    def test_uneven_outputs_fall_back_to_sequential(self):
        # Patches with different measurement widths are not structurally
        # identical: the layer must silently run the per-patch loop.
        def factory(i):
            circuit = amplitude_encoder_circuit(2, 4, 1)
            circuit.measurement = ("expval", (0,) if i == 0 else (0, 1))
            return circuit

        layer = PatchedQuantumLayer(
            factory, n_patches=2, rng=np.random.default_rng(7)
        )
        assert not layer.stacked
        assert layer.output_dim == 3
        x = Tensor(
            np.abs(np.random.default_rng(8).normal(size=(2, 8))) + 0.1,
            requires_grad=True,
        )
        out = layer(x)
        assert out.shape == (2, 3)
        out.sum().backward()
        assert x.grad.shape == (2, 8)
        for patch in layer.patches:
            assert patch.weights.grad is not None

    def test_stacked_false_forces_sequential(self):
        layer = PatchedQuantumLayer(
            lambda i: amplitude_encoder_circuit(2, 4, 1),
            n_patches=2,
            stacked=False,
        )
        assert not layer.stacked

    def test_no_grad_forward_is_untracked(self):
        from repro.nn import no_grad

        layer = PatchedQuantumLayer(
            lambda i: amplitude_encoder_circuit(2, 4, 1), n_patches=2
        )
        with no_grad():
            out = layer(Tensor(np.ones((1, 8))))
        assert not out.requires_grad


class TestPatchQubitsGuards:
    def test_degenerate_single_feature_patches_rejected(self):
        # n_features == n_patches used to slip through as 0-qubit circuits
        # (per_patch = 1 passes the power-of-two check).
        with pytest.raises(ValueError, match="0-qubit"):
            patch_qubits(16, 16)

    def test_two_features_per_patch_is_the_minimum(self):
        assert patch_qubits(32, 16) == 1

    def test_existing_validations_still_hold(self):
        with pytest.raises(ValueError):
            patch_qubits(1024, 3)
        with pytest.raises(ValueError):
            patch_qubits(96, 2)
