"""Grad-of-grad through quantum layers vs parameter-shift second derivatives.

The quantum primitives' ``create_graph`` VJP expands each weight gradient
into parameter-shifted executions whose own backward is the exact adjoint,
so tape second derivatives should match the shift-of-shift Hessian
(:func:`repro.quantum.shift.parameter_shift_hessian`) to machine precision
in float64 — the acceptance anchor is 1e-8.
"""

import numpy as np
import pytest

from repro.nn import Tensor, grad, hvp
from repro.qnn.circuits import amplitude_encoder_circuit, angle_expval_circuit
from repro.qnn.patched import PatchedQuantumLayer
from repro.qnn.qlayer import QuantumLayer
from repro.quantum.circuit import Circuit
from repro.quantum.shift import (
    parameter_shift_hessian,
    parameter_shift_jacobian,
    require_two_term,
)


def _weights_only_layer(seed=7):
    circuit = Circuit(2)
    circuit.strongly_entangling_layers(1)
    circuit.measure_expval()
    return QuantumLayer(circuit, rng=np.random.default_rng(seed))


class TestParameterShiftHessian:
    def test_hessian_is_symmetric(self):
        layer = _weights_only_layer()
        hessian = parameter_shift_hessian(layer.circuit, None, layer.weights.data)
        np.testing.assert_allclose(
            hessian, np.swapaxes(hessian, 2, 3), atol=1e-12
        )

    def test_hessian_diagonal_matches_double_shift_identity(self):
        # For a two-term gate, d2f/dtheta_i2 = (f(+pi) - 2 f(0) + f(-pi)) / 4
        # ... which parameter_shift_hessian must reproduce exactly.
        layer = _weights_only_layer(seed=3)
        circuit, w = layer.circuit, layer.weights.data
        hessian = parameter_shift_hessian(circuit, None, w)
        from repro.quantum.autodiff import execute

        base, __ = execute(circuit, None, w, want_cache=False)
        for i in range(circuit.n_weights):
            shifted = w.copy()
            shifted[i] = w[i] + np.pi
            hi, __ = execute(circuit, None, shifted, want_cache=False)
            shifted[i] = w[i] - np.pi
            lo, __ = execute(circuit, None, shifted, want_cache=False)
            np.testing.assert_allclose(
                hessian[:, :, i, i], (hi - 2 * base + lo) / 4.0, atol=1e-12
            )

    def test_require_two_term_rejects_crz(self):
        circuit = Circuit(2)
        circuit.crz(0, 1)
        circuit.measure_expval()
        with pytest.raises(ValueError, match="two-term"):
            require_two_term(circuit)


class TestQuantumGradOfGrad:
    def test_create_graph_first_order_matches_plain_backward(self):
        layer = _weights_only_layer()
        loss = layer(None).sum()
        (g,) = grad(loss, [layer.weights], create_graph=True, retain_graph=True)
        loss.backward()
        np.testing.assert_allclose(g.data, layer.weights.grad, atol=1e-12)

    def test_hvp_matches_parameter_shift_hessian(self):
        layer = _weights_only_layer()
        w = layer.weights
        loss = layer(None).sum()
        rng = np.random.default_rng(11)
        v = rng.normal(size=w.shape)
        h = hvp(loss, w, v)
        hessian = parameter_shift_hessian(layer.circuit, None, w.data)[0]
        reference = np.einsum("oij,j->i", hessian, v)
        np.testing.assert_allclose(h.data, reference, atol=1e-8)

    def test_hvp_with_inputs_matches_parameter_shift_hessian(self):
        circuit = angle_expval_circuit(2, 2, 1)
        layer = QuantumLayer(circuit, rng=np.random.default_rng(5))
        rng = np.random.default_rng(13)
        x = Tensor(rng.normal(size=(3, 2)))  # constant inputs, batched
        loss = (layer(x) ** 2).sum()
        v = rng.normal(size=layer.weights.shape)
        h = hvp(loss, layer.weights, v)

        # d2L/dw2 for L = sum f_bo^2: 2 (J^T J + sum_bo f_bo H_bo).
        outputs = layer(x).data
        jac = parameter_shift_jacobian(circuit, x.data, layer.weights.data)
        hess = parameter_shift_hessian(circuit, x.data, layer.weights.data)
        full = 2.0 * (
            np.einsum("boi,boj->ij", jac, jac)
            + np.einsum("bo,boij->ij", outputs, hess)
        )
        np.testing.assert_allclose(h.data, full @ v, atol=1e-8)

    def test_second_order_wrt_inputs_raises(self):
        circuit = angle_expval_circuit(2, 2, 1)
        layer = QuantumLayer(circuit, rng=np.random.default_rng(5))
        x = Tensor(np.random.default_rng(1).normal(size=(2, 2)), requires_grad=True)
        loss = layer(x).sum()
        with pytest.raises(NotImplementedError, match="inputs"):
            grad(grad(loss, x, create_graph=True).sum(), x)

    def test_graph_mode_rejects_crz_weights(self):
        circuit = Circuit(2)
        circuit.rx(0)
        circuit.crz(0, 1)
        circuit.measure_expval()
        layer = QuantumLayer(circuit, rng=np.random.default_rng(2))
        loss = layer(None).sum()
        with pytest.raises(ValueError, match="two-term"):
            grad(grad(loss, layer.weights, create_graph=True).sum(), layer.weights)


class TestPatchedGradOfGrad:
    @pytest.fixture()
    def layer_and_input(self):
        layer = PatchedQuantumLayer(
            lambda i: amplitude_encoder_circuit(2, 4, 1),
            n_patches=2,
            rng=np.random.default_rng(3),
        )
        rng = np.random.default_rng(5)
        x = Tensor(rng.normal(size=(3, 8)) + 2.0)  # away from zero-norm patches
        return layer, x

    def test_stacked_hvp_matches_per_patch_hessians(self, layer_and_input):
        layer, x = layer_and_input
        assert layer.stacked
        loss = layer(x).sum()
        params = [patch.weights for patch in layer.patches]
        rng = np.random.default_rng(17)
        vs = [rng.normal(size=p.shape) for p in params]
        hs = hvp(loss, params, vs)
        # Patches are independent, so the full Hessian is block-diagonal:
        # each patch's HVP is its own shift-of-shift Hessian applied to v_k.
        per_in = layer.inputs_per_patch
        for k, (patch, v, h) in enumerate(zip(layer.patches, vs, hs)):
            chunk = x.data[:, k * per_in : (k + 1) * per_in]
            hessian = parameter_shift_hessian(
                patch.circuit, chunk, patch.weights.data
            )
            reference = np.einsum("boij,j->i", hessian, v)
            np.testing.assert_allclose(h.data, reference, atol=1e-8)

    def test_stacked_matches_sequential_second_order(self, layer_and_input):
        layer, x = layer_and_input
        params = [patch.weights for patch in layer.patches]
        vs = [
            np.random.default_rng(23 + k).normal(size=p.shape)
            for k, p in enumerate(params)
        ]
        h_stacked = hvp((layer(x) ** 2).sum(), params, vs)
        layer.stacked = False
        h_seq = hvp((layer(x) ** 2).sum(), params, vs)
        layer.stacked = True
        for hs, hq in zip(h_stacked, h_seq):
            np.testing.assert_allclose(hs.data, hq.data, atol=1e-10)

    def test_patched_second_order_wrt_inputs_raises(self, layer_and_input):
        layer, x = layer_and_input
        x.requires_grad = True
        loss = layer(x).sum()
        with pytest.raises(NotImplementedError, match="inputs"):
            grad(grad(loss, x, create_graph=True).sum(), x)
