"""Tests for the qnn circuit factories and remaining loader/model edges."""

import numpy as np
import pytest

from repro.data import ArrayDataset, DataLoader
from repro.models import FullyQuantumAE, ScalableQuantumVAE
from repro.nn import Tensor
from repro.qnn import (
    amplitude_encoder_circuit,
    angle_expval_circuit,
    probs_decoder_circuit,
    reuploading_expval_circuit,
)
from repro.quantum import execute


class TestFactories:
    def test_amplitude_encoder_structure(self):
        circuit = amplitude_encoder_circuit(6, 64, 3)
        assert circuit.n_wires == 6
        assert circuit.state_prep == ("amplitude", 64, False)
        assert circuit.measurement == ("expval", tuple(range(6)))
        assert circuit.n_weights == 3 * 6 * 3

    def test_amplitude_encoder_zero_fallback_flag(self):
        circuit = amplitude_encoder_circuit(3, 8, 1, zero_fallback=True)
        assert circuit.state_prep[2] is True
        outputs, __ = execute(circuit, np.zeros((1, 8)),
                              np.zeros(circuit.n_weights))
        np.testing.assert_allclose(outputs, [[1.0, 1.0, 1.0]])

    def test_probs_decoder_structure(self):
        circuit = probs_decoder_circuit(6, 3)
        assert circuit.measurement == ("probs", None)
        assert circuit.output_dim == 64
        assert circuit.n_inputs == 6

    def test_angle_expval_structure(self):
        circuit = angle_expval_circuit(4, 4, 2)
        assert circuit.output_dim == 4
        assert circuit.n_inputs == 4

    def test_reuploading_factory_inputs(self):
        circuit = reuploading_expval_circuit(3, 3, 4)
        assert circuit.n_inputs == 3  # slots shared across uploads
        uploads = sum(1 for op in circuit.ops
                      if op.source and op.source[0] == "input")
        assert uploads == 3 * 4

    def test_encoder_decoder_compose(self):
        # Chaining encoder -> decoder must be dimension-consistent, the
        # core wiring of every baseline model.
        encoder = amplitude_encoder_circuit(3, 8, 1)
        decoder = probs_decoder_circuit(3, 1)
        rng = np.random.default_rng(0)
        x = np.abs(rng.normal(size=(2, 8))) + 0.1
        latent, __ = execute(encoder, x,
                             rng.uniform(-np.pi, np.pi, encoder.n_weights))
        recon, __ = execute(decoder, latent,
                            rng.uniform(-np.pi, np.pi, decoder.n_weights))
        assert recon.shape == (2, 8)
        np.testing.assert_allclose(recon.sum(axis=1), np.ones(2), atol=1e-10)


class TestLoaderEdges:
    def test_batch_larger_than_dataset(self):
        loader = DataLoader(ArrayDataset(np.zeros((3, 2))), batch_size=10,
                            shuffle=False)
        batches = list(loader)
        assert len(batches) == 1
        assert batches[0].shape == (3, 2)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(ArrayDataset(np.zeros((3, 2))), batch_size=0)

    def test_drop_last_with_exact_multiple(self):
        loader = DataLoader(ArrayDataset(np.zeros((6, 1))), batch_size=3,
                            drop_last=True)
        assert sum(len(b) for b in loader) == 6

    def test_reshuffles_between_epochs(self):
        data = ArrayDataset(np.arange(16.0).reshape(16, 1))
        loader = DataLoader(data, batch_size=16, seed=0)
        first = np.concatenate(list(loader)).ravel()
        second = np.concatenate(list(loader)).ravel()
        assert not np.allclose(first, second)  # epoch order differs


class TestModelReproducibility:
    def test_quantum_models_seeded(self):
        a = FullyQuantumAE(rng=np.random.default_rng(5))
        b = FullyQuantumAE(rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a.encoder_q.weights.data,
                                      b.encoder_q.weights.data)

    def test_different_seeds_different_weights(self):
        a = FullyQuantumAE(rng=np.random.default_rng(5))
        b = FullyQuantumAE(rng=np.random.default_rng(6))
        assert not np.allclose(a.encoder_q.weights.data,
                               b.encoder_q.weights.data)

    def test_sq_vae_forward_deterministic_given_noise_seed(self):
        def run():
            model = ScalableQuantumVAE(input_dim=16, n_patches=2, n_layers=1,
                                       rng=np.random.default_rng(1),
                                       noise_seed=7)
            x = Tensor(np.abs(np.random.default_rng(2).normal(size=(2, 16))))
            return model(x).reconstruction.data

        np.testing.assert_array_equal(run(), run())

    def test_quantum_weight_init_within_range(self):
        model = FullyQuantumAE(rng=np.random.default_rng(8))
        for layer in (model.encoder_q, model.decoder_q):
            assert np.all(np.abs(layer.weights.data) <= np.pi)
