"""Layer-level precision-knob tests: QuantumLayer / PatchedQuantumLayer."""

import numpy as np

from repro.nn import Tensor, use_precision
from repro.qnn import PatchedQuantumLayer, QuantumLayer, amplitude_encoder_circuit


def _layers(dtype):
    rng = np.random.default_rng(0)
    return PatchedQuantumLayer(
        lambda i: amplitude_encoder_circuit(3, 8, 2, zero_fallback=True),
        n_patches=2,
        rng=rng,
        dtype=dtype,
    )


class TestLayerPrecision:
    def test_float32_layer_outputs_and_grads(self):
        layer = _layers("float32")
        assert all(p.weights.data.dtype == np.float32 for p in layer.patches)
        x = Tensor(
            np.abs(np.random.default_rng(1).normal(size=(4, 16))) + 0.05,
            requires_grad=True,
            dtype=np.float32,
        )
        out = layer(x)
        assert out.dtype == np.float32
        out.sum().backward()
        assert x.grad is not None
        assert all(p.weights.grad is not None for p in layer.patches)

    def test_float32_matches_float64_layer(self):
        l32, l64 = _layers("float32"), _layers("float64")
        # Same seed stream -> identical weights up to the float32 cast.
        for p32, p64 in zip(l32.patches, l64.patches):
            np.testing.assert_allclose(
                p32.weights.data, p64.weights.data, atol=1e-6
            )
        x = np.abs(np.random.default_rng(2).normal(size=(4, 16))) + 0.05
        out32 = l32(Tensor(x, dtype=np.float32))
        out64 = l64(Tensor(x))
        np.testing.assert_allclose(out32.data, out64.data, atol=1e-5)

    def test_policy_scope_sets_layer_precision(self):
        with use_precision("float32"):
            layer = QuantumLayer(
                amplitude_encoder_circuit(3, 8, 1, zero_fallback=True),
                rng=np.random.default_rng(3),
            )
        assert layer.precision.real == np.float32
        assert layer.weights.data.dtype == np.float32
        # Inputs of any dtype are cast at the layer boundary.
        out = layer(Tensor(np.abs(np.random.default_rng(4).normal(size=(2, 8))) + 0.1))
        assert out.dtype == np.float32
