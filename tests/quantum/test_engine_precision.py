"""Property tests for float32/complex64 execution against float64.

The precision policy threads a paired real/complex dtype through the
compiled, naive, and stacked engine paths.  Single-precision execution is a
*numerical* approximation of the float64 reference — same circuits, same
kernels, half the mantissa — so forward outputs and adjoint gradients must
agree across precisions within calibrated float32 tolerances, and the
float64 default must remain bit-identical to the pre-policy behavior.

Tolerance calibration: outputs are bounded ([-1, 1] expectations or
probabilities) and a 5-layer SEL circuit applies a few hundred complex64
operations, so forward error sits near 1e-6 and accumulated gradient error
near 1e-4 — the asserted bounds leave an order of magnitude of headroom.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.precision import FLOAT32, FLOAT64
from repro.quantum import (
    Circuit,
    backward,
    backward_stacked,
    execute,
    execute_stacked,
    naive_backward,
    naive_execute,
    parameter_shift_gradients,
)

# Calibrated cross-precision tolerances (see module docstring).
FWD_ATOL = 1e-5
GRAD_ATOL = 1e-3


def _sel_circuit(n_wires=4, layers=2, embedding="amplitude"):
    circuit = Circuit(n_wires)
    if embedding == "amplitude":
        circuit.amplitude_embedding(2**n_wires)
    else:
        circuit.angle_embedding(n_wires)
    return circuit.strongly_entangling_layers(layers).measure_expval()


def _case(seed, n_wires=4, layers=2, batch=6, embedding="amplitude"):
    rng = np.random.default_rng(seed)
    circuit = _sel_circuit(n_wires, layers, embedding)
    weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
    if embedding == "amplitude":
        inputs = np.abs(rng.normal(size=(batch, 2**n_wires))) + 0.05
    else:
        inputs = rng.uniform(-np.pi, np.pi, (batch, n_wires))
    return circuit, inputs, weights, rng


class TestDtypePlumbing:
    def test_float32_execution_dtypes(self):
        circuit, inputs, weights, __ = _case(0)
        out, cache = execute(circuit, inputs, weights, dtype="float32")
        assert out.dtype == np.float32
        assert cache.final_state.dtype == np.complex64
        assert cache.weights.dtype == np.float32
        grad_in, grad_w = backward(cache, np.ones_like(out))
        assert grad_w.shape == (circuit.n_weights,)

    def test_float64_default_unchanged(self):
        # No dtype and explicit float64 must be bit-identical.
        circuit, inputs, weights, rng = _case(1)
        out_default, cache_d = execute(circuit, inputs, weights)
        out_f64, cache_e = execute(circuit, inputs, weights, dtype=FLOAT64)
        np.testing.assert_array_equal(out_default, out_f64)
        assert cache_d.final_state.dtype == np.complex128
        grad_out = rng.normal(size=out_default.shape)
        gi_d, gw_d = backward(cache_d, grad_out)
        gi_e, gw_e = backward(cache_e, grad_out)
        np.testing.assert_array_equal(gw_d, gw_e)
        np.testing.assert_array_equal(gi_d, gi_e)

    def test_probs_measurement_float32(self):
        circuit = (
            Circuit(3).angle_embedding(3).strongly_entangling_layers(1)
            .measure_probs()
        )
        rng = np.random.default_rng(2)
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        inputs = rng.uniform(-np.pi, np.pi, (4, 3))
        out, __ = execute(circuit, inputs, weights, dtype="float32",
                          want_cache=False)
        assert out.dtype == np.float32
        np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=1e-5)


class TestCompiledEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        embedding=st.sampled_from(["amplitude", "angle"]),
    )
    def test_forward_and_adjoint_match_across_precisions(self, seed, embedding):
        circuit, inputs, weights, rng = _case(seed, embedding=embedding)
        out64, cache64 = execute(circuit, inputs, weights)
        out32, cache32 = execute(circuit, inputs, weights, dtype="float32")
        np.testing.assert_allclose(out32, out64, atol=FWD_ATOL)
        grad_out = rng.normal(size=out64.shape)
        gi64, gw64 = backward(cache64, grad_out)
        gi32, gw32 = backward(cache32, grad_out)
        np.testing.assert_allclose(gw32, gw64, atol=GRAD_ATOL)
        np.testing.assert_allclose(gi32, gi64, atol=GRAD_ATOL)

    def test_naive_interpreter_matches_compiled_at_float32(self):
        circuit, inputs, weights, rng = _case(3)
        out_c, cache_c = execute(circuit, inputs, weights, dtype="float32")
        out_n, cache_n = naive_execute(circuit, inputs, weights, dtype="float32")
        assert out_n.dtype == np.float32
        np.testing.assert_allclose(out_n, out_c, atol=FWD_ATOL)
        grad_out = rng.normal(size=out_c.shape)
        __, gw_c = backward(cache_c, grad_out)
        __, gw_n = naive_backward(cache_n, grad_out)
        np.testing.assert_allclose(gw_n, gw_c, atol=GRAD_ATOL)

    def test_deep_circuit_forward_error_stays_small(self):
        # The paper-scale encoder patch: 8 qubits, 5 SEL layers.
        circuit, inputs, weights, __ = _case(4, n_wires=8, layers=5, batch=8)
        out64, __ = execute(circuit, inputs, weights, want_cache=False)
        out32, __ = execute(circuit, inputs, weights, want_cache=False,
                            dtype="float32")
        np.testing.assert_allclose(out32, out64, atol=FWD_ATOL)


class TestStackedEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        p=st.sampled_from([2, 3]),
    )
    def test_stacked_matches_float64_stacked(self, seed, p):
        circuit, inputs, weights, rng = _case(seed)
        inputs = np.stack([inputs + 0.01 * k for k in range(p)])
        weights = np.stack(
            [rng.uniform(-np.pi, np.pi, circuit.n_weights) for _ in range(p)]
        )
        out64, cache64 = execute_stacked(circuit, inputs, weights)
        out32, cache32 = execute_stacked(circuit, inputs, weights,
                                         dtype="float32")
        assert cache32.final_state.dtype == np.complex64
        np.testing.assert_allclose(out32, out64, atol=FWD_ATOL)
        grad_out = rng.normal(size=out64.shape)
        gi64, gw64 = backward_stacked(cache64, grad_out)
        gi32, gw32 = backward_stacked(cache32, grad_out)
        np.testing.assert_allclose(gw32, gw64, atol=GRAD_ATOL)
        np.testing.assert_allclose(gi32, gi64, atol=GRAD_ATOL)

    def test_stacked_float32_matches_per_instance_float32(self):
        # The stacked fast path and the per-instance compiled path must
        # agree *within* float32 as tightly as they do within float64.
        circuit, base_inputs, __, rng = _case(5)
        p = 3
        inputs = np.stack([base_inputs * (1.0 + 0.1 * k) for k in range(p)])
        weights = np.stack(
            [rng.uniform(-np.pi, np.pi, circuit.n_weights) for _ in range(p)]
        )
        out_s, cache_s = execute_stacked(circuit, inputs, weights,
                                         dtype="float32")
        grad_out = rng.normal(size=out_s.shape)
        gi_s, gw_s = backward_stacked(cache_s, grad_out)
        for k in range(p):
            out_k, cache_k = execute(circuit, inputs[k], weights[k],
                                     dtype="float32")
            np.testing.assert_allclose(out_s[k], out_k, atol=1e-6)
            gi_k, gw_k = backward(cache_k, grad_out[k])
            np.testing.assert_allclose(gw_s[k], gw_k, atol=1e-4)
            np.testing.assert_allclose(gi_s[k], gi_k, atol=1e-4)


class TestParameterShiftCrossCheck:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_adjoint_matches_parameter_shift_at_float32(self, seed):
        # The shift rule stays exact under fusion at any precision; at
        # float32 both sides carry ~1e-6 noise, so the agreement tolerance
        # relaxes from machine-epsilon to GRAD_ATOL.
        circuit, inputs, weights, rng = _case(seed, n_wires=3, layers=1,
                                              batch=4)
        out, cache = execute(circuit, inputs, weights, dtype="float32")
        grad_out = rng.normal(size=out.shape)
        __, adjoint = backward(cache, grad_out)
        shift = parameter_shift_gradients(circuit, inputs, weights, grad_out,
                                          dtype="float32")
        np.testing.assert_allclose(adjoint, shift, atol=GRAD_ATOL)

    def test_float64_cross_check_still_machine_precision(self):
        circuit, inputs, weights, rng = _case(6, n_wires=3, layers=1, batch=4)
        out, cache = execute(circuit, inputs, weights)
        grad_out = rng.normal(size=out.shape)
        __, adjoint = backward(cache, grad_out)
        shift = parameter_shift_gradients(circuit, inputs, weights, grad_out)
        np.testing.assert_allclose(adjoint, shift, atol=1e-10)


class TestAmplitudeEmbeddingPrecision:
    def test_float32_norm_guard_uses_float32_cutoff(self):
        # Norms that underflow float32 (but not float64) must hit the
        # fallback/raise path when embedding at single precision.
        features = np.full((1, 4), 1e-25)
        out64, __ = execute(_sel_circuit(2, 1), features,
                            np.zeros(_sel_circuit(2, 1).n_weights),
                            want_cache=False)  # fine at float64
        circuit = _sel_circuit(2, 1)
        with pytest.raises(ValueError, match="zero_fallback"):
            execute(circuit, features, np.zeros(circuit.n_weights),
                    dtype="float32", want_cache=False)

    def test_float32_zero_fallback_embeds_basis_state(self):
        circuit = (
            Circuit(2).amplitude_embedding(4, zero_fallback=True)
            .strongly_entangling_layers(1).measure_expval()
        )
        weights = np.zeros(circuit.n_weights)
        features = np.zeros((2, 4))
        features[1] = 0.5
        out, cache = execute(circuit, features, weights, dtype="float32")
        assert cache.embedded.dtype == np.complex64
        # Row 0 fell back to |00>: with zero weights the SEL layer is a
        # CNOT ring on |00>, so all expectations stay +1.
        np.testing.assert_allclose(out[0], 1.0, atol=1e-6)
