"""Property tests for the compiled execution engine.

The compiled plan (fused single-qubit runs, diagonal/permutation kernels,
bulk-bound static groups) must be *indistinguishable* from the naive op-by-op
interpreter: identical forward outputs and identical adjoint gradients, to
near machine precision, across randomized circuits covering every gate in
``_PARAMETRIC | _FIXED``, both embeddings, both measurement kinds, and both
shared and per-sample (batched) gate parameters.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quantum import (
    Circuit,
    Operation,
    backward,
    compile_circuit,
    compiled_plan,
    execute,
    naive_backward,
    naive_execute,
    parameter_shift_gradients,
)
from repro.quantum.engine import _DiagCRZ, _DiagRZ, _DiagSign, _Fused1Q, _Permutation

_ALL_GATES = ["RX", "RY", "RZ", "CRZ", "CNOT", "CZ", "SWAP", "H", "X", "Y", "Z"]


def _random_circuit(rng, n_wires, n_ops, embedding, measurement, reupload):
    """A random circuit over the full gate set.

    ``reupload`` sprinkles input-sourced rotations through the body so fused
    runs mix batched (per-sample) and shared matrices.
    """
    circuit = Circuit(n_wires)
    if embedding == "amplitude":
        circuit.amplitude_embedding(2**n_wires)
    elif embedding == "angle":
        circuit.angle_embedding(n_wires, rotation=str(rng.choice(["RX", "RY", "RZ"])))
    for _ in range(n_ops):
        name = _ALL_GATES[rng.integers(len(_ALL_GATES))]
        if name in {"CRZ", "CNOT", "CZ", "SWAP"} and n_wires < 2:
            name = "RY"
        if name in {"CRZ", "CNOT", "CZ", "SWAP"}:
            a, b = rng.choice(n_wires, size=2, replace=False)
            wires = (int(a), int(b))
        else:
            wires = (int(rng.integers(n_wires)),)
        if name in {"RX", "RY", "RZ"}:
            if reupload and circuit.n_inputs and rng.random() < 0.3:
                source = ("input", int(rng.integers(circuit.n_inputs)))
            else:
                source = ("weight", circuit._new_weight())
        elif name == "CRZ":
            source = ("weight", circuit._new_weight())
        else:
            source = None
        circuit.ops.append(Operation(name, wires, source))
    if measurement == "expval":
        n_meas = int(rng.integers(1, n_wires + 1))
        circuit.measure_expval(tuple(sorted(rng.choice(n_wires, n_meas, replace=False).tolist())))
    else:
        circuit.measure_probs()
    return circuit


def _compare(circuit, inputs, weights, rng, atol=1e-10):
    out_c, cache_c = execute(circuit, inputs, weights)
    out_n, cache_n = naive_execute(circuit, inputs, weights)
    np.testing.assert_allclose(out_c, out_n, atol=atol)
    grad_outputs = rng.normal(size=out_c.shape)
    gi_c, gw_c = backward(cache_c, grad_outputs)
    gi_n, gw_n = naive_backward(cache_n, grad_outputs)
    np.testing.assert_allclose(gw_c, gw_n, atol=atol)
    if gi_n is None:
        assert gi_c is None
    else:
        np.testing.assert_allclose(gi_c, gi_n, atol=atol)
    return grad_outputs, gw_c


class TestCompiledMatchesNaive:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        n_wires=st.integers(min_value=1, max_value=4),
        n_ops=st.integers(min_value=0, max_value=25),
        embedding=st.sampled_from(["none", "amplitude", "angle"]),
        measurement=st.sampled_from(["expval", "probs"]),
        batch=st.integers(min_value=1, max_value=4),
        reupload=st.booleans(),
    )
    def test_random_circuits(
        self, seed, n_wires, n_ops, embedding, measurement, batch, reupload
    ):
        rng = np.random.default_rng(seed)
        circuit = _random_circuit(rng, n_wires, n_ops, embedding, measurement, reupload)
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        if circuit.n_inputs:
            inputs = rng.uniform(0.1, 2.0, size=(batch, circuit.n_inputs))
        else:
            inputs = None
        _compare(circuit, inputs, weights, rng)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        n_wires=st.integers(min_value=2, max_value=4),
        n_layers=st.integers(min_value=1, max_value=3),
    )
    def test_sel_circuits_match_parameter_shift(self, seed, n_wires, n_layers):
        rng = np.random.default_rng(seed)
        circuit = (
            Circuit(n_wires)
            .amplitude_embedding(2**n_wires)
            .strongly_entangling_layers(n_layers)
            .measure_expval()
        )
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        inputs = rng.uniform(0.1, 2.0, size=(3, 2**n_wires))
        grad_outputs, gw_c = _compare(circuit, inputs, weights, rng)
        shift = parameter_shift_gradients(circuit, inputs, weights, grad_outputs)
        np.testing.assert_allclose(gw_c, shift, atol=1e-9)

    def test_reuploading_circuit(self):
        rng = np.random.default_rng(11)
        circuit = Circuit(3).reuploading_layers(3, 2).measure_expval()
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        inputs = rng.uniform(-1, 1, size=(4, 3))
        _compare(circuit, inputs, weights, rng)

    def test_every_specialized_kernel(self):
        """One circuit hitting every lowering rule, batched and unbatched."""
        rng = np.random.default_rng(12)
        circuit = Circuit(3)
        circuit.rz(0)            # lone RZ -> diagonal phase kernel
        circuit.z(1)             # lone Z -> sign kernel
        circuit.x(2)             # lone X -> permutation kernel
        circuit.h(0).y(0)        # fused dense run
        circuit.rot(1)           # fused Rot triple
        circuit.cnot(0, 2)       # permutation
        circuit.cz(1, 2)         # sign
        circuit.swap(0, 1)       # permutation
        circuit.crz(2, 0)        # CRZ diagonal
        circuit.rx(2).ry(2)      # fused parametric run
        circuit.measure_probs()
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        _compare(circuit, None, weights, rng)

    def test_zero_fallback_rows_match(self):
        rng = np.random.default_rng(13)
        circuit = (
            Circuit(2)
            .amplitude_embedding(4, zero_fallback=True)
            .strongly_entangling_layers(2)
            .measure_expval()
        )
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        inputs = rng.uniform(0.1, 1.0, size=(3, 4))
        inputs[1] = 0.0  # a zero row exercises the fallback gradient mask
        _compare(circuit, inputs, weights, rng)


class TestPlanLowering:
    def test_sel_rot_triples_fuse(self):
        circuit = Circuit(4).strongly_entangling_layers(2).measure_expval()
        plan = compile_circuit(circuit)
        fused = [i for i in plan.instructions if isinstance(i, _Fused1Q)]
        perms = [i for i in plan.instructions if isinstance(i, _Permutation)]
        # 2 layers x 4 wires: each Rot triple is one fused instruction.
        assert len(fused) == 8
        assert all(len(i.members) == 3 for i in fused)
        assert len(perms) == 8  # the CNOT rings
        assert plan.n_instructions == 16 < len(circuit.ops) == 32
        # All Rot runs share one signature -> one bulk-bound static group.
        assert len(plan.groups) == 1
        assert plan.groups[0].count == 8

    def test_commuting_gates_fuse_across_other_wires(self):
        # RY(0), CNOT(1,2), RY(0): the CNOT does not touch wire 0, so the
        # two RYs fuse into a single run.
        circuit = Circuit(3).ry(0).cnot(1, 2).ry(0).measure_expval()
        plan = compile_circuit(circuit)
        fused = [i for i in plan.instructions if isinstance(i, _Fused1Q)]
        assert len(fused) == 1
        assert len(fused[0].members) == 2

    def test_two_qubit_gate_breaks_runs_on_its_wires(self):
        circuit = Circuit(2).ry(0).cnot(0, 1).ry(0).measure_expval()
        plan = compile_circuit(circuit)
        fused = [i for i in plan.instructions if isinstance(i, _Fused1Q)]
        assert len(fused) == 2

    def test_kernel_specialization(self):
        circuit = (
            Circuit(3).rz(0).z(1).x(2).cz(0, 1).cnot(0, 2).crz(0, 1)
            .measure_probs()
        )
        plan = compile_circuit(circuit)
        kinds = [type(i).__name__ for i in plan.instructions]
        assert kinds == [
            "_DiagRZ", "_DiagSign", "_DiagSign",
            "_Permutation", "_Permutation", "_DiagCRZ",
        ]

    def test_bad_wires_rejected_at_compile(self):
        circuit = Circuit(2).ry(1).measure_expval()
        circuit.ops.append(Operation("CNOT", (0, 5)))
        with pytest.raises(ValueError):
            execute(circuit, None, np.zeros(1))
        circuit.ops[-1] = Operation("CNOT", (1, 1))
        with pytest.raises(ValueError):
            execute(circuit, None, np.zeros(1))


class TestPlanCaching:
    def test_plan_cached_on_circuit(self):
        circuit = Circuit(3).strongly_entangling_layers(1).measure_expval()
        assert compiled_plan(circuit) is compiled_plan(circuit)

    def test_mutation_invalidates_plan(self):
        circuit = Circuit(3).strongly_entangling_layers(1).measure_expval()
        plan = compiled_plan(circuit)
        circuit.ry(0)
        new_plan = compiled_plan(circuit)
        assert new_plan is not plan
        assert new_plan.n_instructions != plan.n_instructions

    def test_identical_structures_share_a_plan(self):
        def make():
            return Circuit(3).strongly_entangling_layers(2).measure_expval()

        assert compiled_plan(make()) is compiled_plan(make())

    def test_execute_reuses_plan(self):
        circuit = Circuit(2).strongly_entangling_layers(1).measure_expval()
        weights = np.linspace(-1, 1, circuit.n_weights)
        execute(circuit, None, weights, want_cache=False)
        plan = circuit._compiled_plan
        execute(circuit, None, weights, want_cache=False)
        assert circuit._compiled_plan is plan


class TestCacheCarriesEmbedding:
    def test_embedded_state_and_norms_cached(self):
        rng = np.random.default_rng(21)
        circuit = (
            Circuit(3)
            .amplitude_embedding(8)
            .strongly_entangling_layers(1)
            .measure_expval()
        )
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        inputs = rng.uniform(0.1, 1.0, size=(4, 8))
        __, cache = execute(circuit, inputs, weights)
        assert cache.embedded is not None
        assert cache.norms.shape == (4,)
        np.testing.assert_allclose(
            np.linalg.norm(cache.embedded, axis=1), np.ones(4), atol=1e-12
        )
        np.testing.assert_allclose(cache.norms, np.linalg.norm(inputs, axis=1))
        # The cached embedding must be the pristine pre-circuit state, not
        # the (in-place mutated) final state.
        assert cache.embedded is not cache.final_state

    def test_backward_twice_is_deterministic(self):
        rng = np.random.default_rng(22)
        circuit = (
            Circuit(2)
            .amplitude_embedding(4)
            .strongly_entangling_layers(2)
            .measure_probs()
        )
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        inputs = rng.uniform(0.1, 1.0, size=(2, 4))
        outputs, cache = execute(circuit, inputs, weights)
        grad_outputs = rng.normal(size=outputs.shape)
        first = backward(cache, grad_outputs)
        second = backward(cache, grad_outputs)
        np.testing.assert_array_equal(first[0], second[0])
        np.testing.assert_array_equal(first[1], second[1])
