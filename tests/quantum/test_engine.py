"""Property tests for the compiled execution engine.

The compiled plan — since the unification, the degenerate ``p = 1`` view of
the stacked block/kernel substrate (fused runs, adjacent-wire 4x4 kron
pairs, diagonal/permutation kernels, composed ring gathers, checkpointed
transition-matrix backward) — must be *indistinguishable* from the naive
op-by-op interpreter: identical forward outputs and identical adjoint
gradients, to near machine precision, across randomized circuits covering
every gate in ``_PARAMETRIC | _FIXED``, both embeddings, both measurement
kinds, and both shared and per-sample (batched) gate parameters.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quantum import (
    Circuit,
    Operation,
    StackedPlan,
    backward,
    compile_circuit,
    compiled_plan,
    execute,
    naive_backward,
    naive_execute,
    stacked_plan,
)
from repro.quantum.engine import _SDense, _SDiagRZ, _SPermutation


def _compare(circuit, inputs, weights, rng, atol=1e-10):
    out_c, cache_c = execute(circuit, inputs, weights)
    out_n, cache_n = naive_execute(circuit, inputs, weights)
    np.testing.assert_allclose(out_c, out_n, atol=atol)
    grad_outputs = rng.normal(size=out_c.shape)
    gi_c, gw_c = backward(cache_c, grad_outputs)
    gi_n, gw_n = naive_backward(cache_n, grad_outputs)
    np.testing.assert_allclose(gw_c, gw_n, atol=atol)
    if gi_n is None:
        assert gi_c is None
    else:
        np.testing.assert_allclose(gi_c, gi_n, atol=atol)
    return grad_outputs, gw_c


class TestCompiledMatchesNaive:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        n_wires=st.integers(min_value=1, max_value=4),
        n_ops=st.integers(min_value=0, max_value=25),
        embedding=st.sampled_from(["none", "amplitude", "angle"]),
        measurement=st.sampled_from(["expval", "probs"]),
        batch=st.integers(min_value=1, max_value=4),
        reupload=st.booleans(),
    )
    def test_random_circuits(
        self, random_circuit, seed, n_wires, n_ops, embedding, measurement,
        batch, reupload
    ):
        rng = np.random.default_rng(seed)
        circuit = random_circuit(
            rng, n_wires, n_ops, embedding, measurement, reupload
        )
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        if circuit.n_inputs:
            inputs = rng.uniform(0.1, 2.0, size=(batch, circuit.n_inputs))
        else:
            inputs = None
        _compare(circuit, inputs, weights, rng)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        n_wires=st.integers(min_value=2, max_value=4),
        n_layers=st.integers(min_value=1, max_value=3),
    )
    def test_sel_circuits_match_parameter_shift(
        self, gradcheck_shift, seed, n_wires, n_layers
    ):
        rng = np.random.default_rng(seed)
        circuit = (
            Circuit(n_wires)
            .amplitude_embedding(2**n_wires)
            .strongly_entangling_layers(n_layers)
            .measure_expval()
        )
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        inputs = rng.uniform(0.1, 2.0, size=(3, 2**n_wires))
        grad_outputs, gw_c = _compare(circuit, inputs, weights, rng)
        gradcheck_shift(circuit, inputs, weights, grad_outputs, gw_c)

    def test_reuploading_circuit(self):
        rng = np.random.default_rng(11)
        circuit = Circuit(3).reuploading_layers(3, 2).measure_expval()
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        inputs = rng.uniform(-1, 1, size=(4, 3))
        _compare(circuit, inputs, weights, rng)

    def test_every_specialized_kernel(self):
        """One circuit hitting every lowering rule, batched and unbatched."""
        rng = np.random.default_rng(12)
        circuit = Circuit(3)
        circuit.rz(0)            # lone RZ -> diagonal phase kernel
        circuit.z(1)             # lone Z -> sign kernel
        circuit.x(2)             # lone X -> permutation kernel
        circuit.h(0).y(0)        # fused dense run
        circuit.rot(1)           # fused Rot triple
        circuit.cnot(0, 2)       # permutation
        circuit.cz(1, 2)         # sign
        circuit.swap(0, 1)       # permutation
        circuit.crz(2, 0)        # CRZ diagonal
        circuit.rx(2).ry(2)      # fused parametric run
        circuit.measure_probs()
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        _compare(circuit, None, weights, rng)

    def test_zero_fallback_rows_match(self):
        rng = np.random.default_rng(13)
        circuit = (
            Circuit(2)
            .amplitude_embedding(4, zero_fallback=True)
            .strongly_entangling_layers(2)
            .measure_expval()
        )
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        inputs = rng.uniform(0.1, 1.0, size=(3, 4))
        inputs[1] = 0.0  # a zero row exercises the fallback gradient mask
        _compare(circuit, inputs, weights, rng)


class TestPlanLowering:
    def test_sel_rot_triples_fuse_into_pair_blocks(self):
        circuit = Circuit(4).strongly_entangling_layers(2).measure_expval()
        plan = compile_circuit(circuit)
        dense = [i for i in plan.instructions if isinstance(i, _SDense)]
        perms = [i for i in plan.instructions if isinstance(i, _SPermutation)]
        # 2 layers x 4 wires: each layer's Rot triples merge into two 4x4
        # kron pair blocks, and each CNOT ring composes into one gather.
        assert len(dense) == 4
        assert all(i.d == 4 for i in dense)
        assert all(len(slot[0]) == 3 for i in dense for slot in i.slots)
        assert len(perms) == 2
        assert plan.n_instructions == 6 < len(circuit.ops) == 32
        # All Rot runs share one signature -> one bulk-bound static group.
        assert len(plan.groups) == 1
        assert plan.groups[0].count == 8

    def test_commuting_gates_fuse_across_other_wires(self):
        # RY(0), CNOT(1,2), RY(0): the CNOT does not touch wire 0, so the
        # two RYs fuse into a single run.
        circuit = Circuit(3).ry(0).cnot(1, 2).ry(0).measure_expval()
        plan = compile_circuit(circuit)
        dense = [i for i in plan.instructions if isinstance(i, _SDense)]
        assert len(dense) == 1
        assert len(dense[0].slots[0][0]) == 2

    def test_two_qubit_gate_breaks_runs_on_its_wires(self):
        circuit = Circuit(2).ry(0).cnot(0, 1).ry(0).measure_expval()
        plan = compile_circuit(circuit)
        dense = [i for i in plan.instructions if isinstance(i, _SDense)]
        assert len(dense) == 2

    def test_kernel_specialization(self):
        circuit = (
            Circuit(3).rz(0).z(1).x(2).cz(0, 1).cnot(0, 2).crz(0, 1)
            .measure_probs()
        )
        plan = compile_circuit(circuit)
        kinds = [type(i).__name__ for i in plan.instructions]
        # The lone X and the CNOT compose into a single gather.
        assert kinds == [
            "_SDiagRZ", "_SDiagSign", "_SDiagSign",
            "_SPermutation", "_SDiagCRZ",
        ]
        assert isinstance(plan.instructions[0], _SDiagRZ)

    def test_bad_wires_rejected_at_compile(self):
        circuit = Circuit(2).ry(1).measure_expval()
        circuit.ops.append(Operation("CNOT", (0, 5)))
        with pytest.raises(ValueError):
            execute(circuit, None, np.zeros(1))
        circuit.ops[-1] = Operation("CNOT", (1, 1))
        with pytest.raises(ValueError):
            execute(circuit, None, np.zeros(1))


class TestUnifiedSubstrate:
    """The per-instance plan IS the stacked substrate at p = 1."""

    def test_compiled_plan_is_a_stacked_plan(self):
        circuit = Circuit(3).strongly_entangling_layers(2).measure_expval()
        assert isinstance(compiled_plan(circuit), StackedPlan)

    def test_compiled_and_stacked_share_the_lowered_program(self):
        # One lowering serves both views: the instruction list and static
        # groups are the *same objects*, not structurally equal copies.
        circuit = Circuit(4).strongly_entangling_layers(3).measure_expval()
        cplan = compiled_plan(circuit)
        splan = stacked_plan(circuit)
        assert cplan.instructions is splan.instructions
        assert cplan.groups is splan.groups

    def test_single_circuit_equals_p1_stack(self):
        from repro.quantum import backward_stacked, execute_stacked

        rng = np.random.default_rng(31)
        circuit = (
            Circuit(3)
            .amplitude_embedding(8)
            .strongly_entangling_layers(2)
            .measure_expval()
        )
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        inputs = rng.uniform(0.1, 1.0, size=(4, 8))
        out_c, cache_c = execute(circuit, inputs, weights)
        out_s, cache_s = execute_stacked(circuit, inputs[None], weights[None])
        np.testing.assert_array_equal(out_c, out_s[0])
        grad_outputs = rng.normal(size=out_c.shape)
        gi_c, gw_c = backward(cache_c, grad_outputs)
        gi_s, gw_s = backward_stacked(cache_s, grad_outputs[None])
        np.testing.assert_array_equal(gw_c, gw_s[0])
        np.testing.assert_array_equal(gi_c, gi_s[0])


class TestPlanCaching:
    def test_plan_cached_on_circuit(self):
        circuit = Circuit(3).strongly_entangling_layers(1).measure_expval()
        assert compiled_plan(circuit) is compiled_plan(circuit)

    def test_mutation_invalidates_plan(self):
        circuit = Circuit(3).strongly_entangling_layers(1).measure_expval()
        plan = compiled_plan(circuit)
        circuit.ry(0)
        new_plan = compiled_plan(circuit)
        assert new_plan is not plan
        assert new_plan.n_instructions != plan.n_instructions

    def test_identical_structures_share_a_plan(self):
        def make():
            return Circuit(3).strongly_entangling_layers(2).measure_expval()

        assert compiled_plan(make()) is compiled_plan(make())

    def test_execute_reuses_plan(self):
        circuit = Circuit(2).strongly_entangling_layers(1).measure_expval()
        weights = np.linspace(-1, 1, circuit.n_weights)
        execute(circuit, None, weights, want_cache=False)
        plan = circuit._compiled_plan
        execute(circuit, None, weights, want_cache=False)
        assert circuit._compiled_plan is plan


class TestCacheCarriesEmbedding:
    def test_embedded_state_and_norms_cached(self):
        rng = np.random.default_rng(21)
        circuit = (
            Circuit(3)
            .amplitude_embedding(8)
            .strongly_entangling_layers(1)
            .measure_expval()
        )
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        inputs = rng.uniform(0.1, 1.0, size=(4, 8))
        __, cache = execute(circuit, inputs, weights)
        assert cache.embedded is not None
        assert cache.norms.shape == (4,)
        np.testing.assert_allclose(
            np.linalg.norm(cache.embedded, axis=1), np.ones(4), atol=1e-12
        )
        np.testing.assert_allclose(cache.norms, np.linalg.norm(inputs, axis=1))
        # The cached embedding must be the pristine pre-circuit state, not
        # the final state (pure applies never touch it).
        assert cache.embedded is not cache.final_state
        np.testing.assert_allclose(
            np.linalg.norm(cache.embedded, axis=1), np.ones(4), atol=1e-12
        )

    def test_backward_twice_is_deterministic(self):
        rng = np.random.default_rng(22)
        circuit = (
            Circuit(2)
            .amplitude_embedding(4)
            .strongly_entangling_layers(2)
            .measure_probs()
        )
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        inputs = rng.uniform(0.1, 1.0, size=(2, 4))
        outputs, cache = execute(circuit, inputs, weights)
        grad_outputs = rng.normal(size=outputs.shape)
        first = backward(cache, grad_outputs)
        second = backward(cache, grad_outputs)
        np.testing.assert_array_equal(first[0], second[0])
        np.testing.assert_array_equal(first[1], second[1])
