"""Tests for finite-shot sampling, noise trajectories, and the drawer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quantum import (
    Circuit,
    NoiseModel,
    apply_gate,
    draw,
    estimate_expval_z,
    estimate_probabilities,
    execute,
    expval_z,
    gates,
    noisy_execute,
    sample_basis_states,
    shot_noise_std,
    zero_state,
)


def plus_state(batch=1):
    return apply_gate(zero_state(1, batch), gates.HADAMARD, (0,))


class TestShotSampling:
    def test_sample_shapes(self):
        samples = sample_basis_states(plus_state(3), 100, np.random.default_rng(0))
        assert samples.shape == (3, 100)
        assert set(np.unique(samples)) <= {0, 1}

    def test_sample_deterministic_state(self):
        samples = sample_basis_states(zero_state(2), 50, np.random.default_rng(1))
        assert (samples == 0).all()

    def test_shots_must_be_positive(self):
        with pytest.raises(ValueError):
            sample_basis_states(zero_state(1), 0, np.random.default_rng(0))

    def test_expval_estimate_converges(self):
        theta = 0.8
        state = apply_gate(zero_state(1), gates.ry(theta), (0,))
        estimate = estimate_expval_z(state, (0,), 40_000, np.random.default_rng(2))
        np.testing.assert_allclose(estimate, [[np.cos(theta)]], atol=0.02)

    def test_probability_estimate_converges(self):
        state = plus_state()
        estimate = estimate_probabilities(state, 40_000, np.random.default_rng(3))
        np.testing.assert_allclose(estimate, [[0.5, 0.5]], atol=0.02)

    def test_probability_estimate_normalized(self):
        state = plus_state(2)
        estimate = estimate_probabilities(state, 128, np.random.default_rng(4))
        np.testing.assert_allclose(estimate.sum(axis=1), [1.0, 1.0])

    def test_shot_noise_std_formula(self):
        np.testing.assert_allclose(shot_noise_std(0.0, 100), 0.1)
        np.testing.assert_allclose(shot_noise_std(1.0, 100), 0.0)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000), shots=st.sampled_from([64, 256]))
    def test_estimates_within_statistical_error(self, seed, shots):
        rng = np.random.default_rng(seed)
        circuit = Circuit(3).strongly_entangling_layers(2).measure_expval()
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        outputs, cache = execute(circuit, None, weights)
        estimate = estimate_expval_z(
            cache.final_state, (0, 1, 2), shots, np.random.default_rng(seed + 1)
        )
        sigma = shot_noise_std(outputs, shots)
        # 6-sigma bound: overwhelmingly unlikely to fail for a correct
        # estimator, fails fast for a biased one.
        assert np.all(np.abs(estimate - outputs) <= 6 * sigma + 1e-12)


class TestNoise:
    def test_noise_model_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(depolarizing=1.5)
        with pytest.raises(ValueError):
            NoiseModel(amplitude_damping=-0.1)

    def test_noiseless_matches_exact(self):
        circuit = Circuit(2).strongly_entangling_layers(1).measure_expval()
        rng = np.random.default_rng(0)
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        exact, __ = execute(circuit, None, weights, want_cache=False)
        noisy = noisy_execute(circuit, None, weights, NoiseModel(), 1, rng)
        np.testing.assert_allclose(noisy, exact, atol=1e-12)

    def test_trajectories_must_be_positive(self):
        circuit = Circuit(1).ry(0).measure_expval()
        with pytest.raises(ValueError):
            noisy_execute(circuit, None, np.zeros(1), NoiseModel(0.1), 0,
                          np.random.default_rng(0))

    def test_depolarizing_shrinks_expectation(self):
        # Single RY(0) gate on |0>: ideal <Z> = 1.  One depolarizing step at
        # rate p gives <Z> = 1 - 4p/3 (X/Y flip the sign, Z keeps it).
        circuit = Circuit(1).ry(0).measure_expval()
        weights = np.zeros(1)
        p = 0.3
        rng = np.random.default_rng(5)
        outputs = noisy_execute(circuit, None, weights, NoiseModel(depolarizing=p),
                                4000, rng)
        np.testing.assert_allclose(outputs, [[1 - 4 * p / 3]], atol=0.05)

    def test_strong_depolarizing_destroys_signal(self):
        circuit = Circuit(2).strongly_entangling_layers(3).measure_expval()
        rng = np.random.default_rng(6)
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        exact, __ = execute(circuit, None, weights, want_cache=False)
        noisy = noisy_execute(circuit, None, weights,
                              NoiseModel(depolarizing=0.75), 800, rng)
        assert np.abs(noisy).max() < np.abs(exact).max() + 0.1
        assert np.abs(noisy).mean() < 0.2

    def test_amplitude_damping_biases_toward_zero_state(self):
        # X|0> = |1>, then full-rate damping: <Z> should rise toward +1.
        circuit = Circuit(1).rx(0).measure_expval()
        weights = np.array([np.pi])  # RX(pi)|0> ~ |1>
        rng = np.random.default_rng(7)
        outputs = noisy_execute(circuit, None, weights,
                                NoiseModel(amplitude_damping=1.0), 200, rng)
        assert outputs[0, 0] > 0.9

    def test_noise_preserves_probability_normalization(self):
        circuit = Circuit(3).strongly_entangling_layers(2).measure_probs()
        rng = np.random.default_rng(8)
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        outputs = noisy_execute(circuit, None, weights,
                                NoiseModel(depolarizing=0.2,
                                           amplitude_damping=0.1),
                                50, rng)
        np.testing.assert_allclose(outputs.sum(axis=1), [1.0], atol=1e-9)

    def test_noise_with_amplitude_embedding(self):
        circuit = (
            Circuit(2)
            .amplitude_embedding(4)
            .strongly_entangling_layers(1)
            .measure_expval()
        )
        rng = np.random.default_rng(9)
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        x = np.abs(rng.normal(size=(3, 4))) + 0.1
        outputs = noisy_execute(circuit, x, weights, NoiseModel(0.05), 20, rng)
        assert outputs.shape == (3, 2)
        assert np.all(np.abs(outputs) <= 1 + 1e-9)


class TestDrawer:
    def test_draws_all_wires(self):
        circuit = Circuit(3).strongly_entangling_layers(1).measure_expval()
        art = draw(circuit)
        lines = art.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("0:")

    def test_gate_labels_present(self):
        circuit = Circuit(2).ry(0).cnot(0, 1).measure_expval()
        art = draw(circuit)
        assert "RY(w0)" in art
        assert "o" in art and "x" in art
        assert art.count("[Z]") == 2

    def test_probs_measurement_marker(self):
        art = draw(Circuit(1).rx(0).measure_probs())
        assert "[P]" in art

    def test_input_slots_labeled(self):
        circuit = Circuit(2).angle_embedding(2).measure_expval()
        art = draw(circuit)
        assert "RY(x0)" in art and "RY(x1)" in art

    def test_amplitude_header(self):
        circuit = Circuit(2).amplitude_embedding(4).measure_probs()
        assert "amplitude embedding of 4 features" in draw(circuit)

    def test_truncation(self):
        circuit = Circuit(1)
        for _ in range(10):
            circuit.rx(0)
        art = draw(circuit, max_columns=3)
        assert "..." in art
        assert "w9" not in art

    def test_crz_label(self):
        art = draw(Circuit(2).crz(0, 1).measure_expval())
        assert "RZ(w0)" in art

    def test_vertical_connector(self):
        # CNOT between wires 0 and 2 must draw a connector through wire 1.
        circuit = Circuit(3).cnot(0, 2).measure_expval()
        art = draw(circuit)
        middle = art.splitlines()[1]
        assert "|" in middle


class TestNoiseEdgeCases:
    """Zero-probability channels and boundary rates (satellite coverage)."""

    def _circuit(self):
        return Circuit(2).strongly_entangling_layers(1).measure_expval()

    def test_zero_probability_model_is_noiseless(self):
        assert NoiseModel().is_noiseless
        assert NoiseModel(depolarizing=0.0, amplitude_damping=0.0).is_noiseless
        assert not NoiseModel(depolarizing=1e-6).is_noiseless
        assert not NoiseModel(amplitude_damping=1e-6).is_noiseless

    def test_zero_probability_channels_bypass_trajectories(self):
        # A noiseless model must delegate to the exact simulator: many
        # trajectories give *identical* (not just statistically close)
        # output, and the rng is never consumed.
        circuit = self._circuit()
        rng = np.random.default_rng(20)
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        exact, __ = execute(circuit, None, weights, want_cache=False)
        rng_state_before = np.random.default_rng(21)
        out = noisy_execute(
            circuit, None, weights, NoiseModel(0.0, 0.0), 50, rng_state_before
        )
        np.testing.assert_array_equal(out, exact)
        # The generator was untouched: it still produces the same stream as
        # a fresh generator with the same seed.
        np.testing.assert_array_equal(
            rng_state_before.random(4), np.random.default_rng(21).random(4)
        )

    def test_one_zero_channel_skips_only_that_channel(self):
        # depolarizing=0 with full-rate damping on |1>: the depolarizing
        # branch must never fire, and damping drives <Z> back to +1.
        circuit = Circuit(1).rx(0).measure_expval()
        outputs = noisy_execute(
            circuit, None, np.array([np.pi]),
            NoiseModel(depolarizing=0.0, amplitude_damping=1.0),
            100, np.random.default_rng(22),
        )
        assert outputs[0, 0] > 0.9

    def test_boundary_probability_one_is_valid_and_normalized(self):
        circuit = Circuit(2).strongly_entangling_layers(1).measure_probs()
        rng = np.random.default_rng(23)
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        outputs = noisy_execute(
            circuit, None, weights,
            NoiseModel(depolarizing=1.0, amplitude_damping=1.0), 20, rng,
        )
        np.testing.assert_allclose(outputs.sum(axis=1), [1.0], atol=1e-9)


class TestSamplingEdgeCases:
    """Single-shot determinism and degenerate shot counts."""

    def test_single_shot_deterministic_under_fixed_rng(self):
        state = plus_state(4)
        first = sample_basis_states(state, 1, np.random.default_rng(30))
        second = sample_basis_states(state, 1, np.random.default_rng(30))
        assert first.shape == (4, 1)
        np.testing.assert_array_equal(first, second)

    def test_single_shot_expval_is_an_eigenvalue(self):
        # One shot of a Z measurement can only ever produce +1 or -1.
        estimate = estimate_expval_z(
            plus_state(8), (0,), 1, np.random.default_rng(31)
        )
        assert set(np.unique(estimate)) <= {-1.0, 1.0}

    def test_single_shot_probability_estimate_is_one_hot(self):
        estimate = estimate_probabilities(
            plus_state(5), 1, np.random.default_rng(32)
        )
        np.testing.assert_array_equal(np.sort(estimate, axis=1)[:, :-1], 0.0)
        np.testing.assert_allclose(estimate.sum(axis=1), 1.0)

    def test_single_shot_on_deterministic_state_is_exact(self):
        samples = sample_basis_states(zero_state(3), 1, np.random.default_rng(33))
        np.testing.assert_array_equal(samples, 0)


class TestDrawerOnFusedPlans:
    """The drawer renders the *circuit*, one column per op — fusion in the
    lowered plan must never change or truncate what is drawn."""

    def test_fused_plan_circuit_draws_every_op(self):
        from repro.quantum import compiled_plan

        circuit = Circuit(3).strongly_entangling_layers(2).measure_expval()
        plan = compiled_plan(circuit)
        # The plan fuses aggressively (Rot triples -> pair blocks, rings ->
        # one gather) ...
        assert plan.n_instructions < len(circuit.ops)
        # ... while the drawing still shows every weight slot and one "o"
        # control per CNOT of both rings.
        art = draw(circuit)
        for w in range(circuit.n_weights):
            assert f"(w{w})" in art
        assert art.count("o") == 6

    def test_adjacent_wire_merged_runs_keep_their_columns(self):
        from repro.quantum import compiled_plan
        from repro.quantum.engine import _SDense

        circuit = Circuit(2).rot(0).rot(1).measure_expval()
        plan = compiled_plan(circuit)
        pairs = [
            i for i in plan.instructions
            if isinstance(i, _SDense) and i.d == 4
        ]
        assert len(pairs) == 1  # the two Rot runs merged into one 4x4 block
        art = draw(circuit)
        lines = art.splitlines()
        assert "RZ(w0)" in lines[0] and "RZ(w3)" in lines[1]


class TestSamplingValidationAndVectorizedDraw:
    """The inverse-CDF rewrite of sample_basis_states: clear zero-mass
    errors, exactness on degenerate states, and statistical agreement."""

    def test_zero_probability_state_raises_clear_error(self):
        # An all-zero row used to divide to NaN and crash deep inside
        # rng.choice ("probabilities contain NaN").
        state = np.zeros((2, 4), dtype=np.complex128)
        state[0, 1] = 1.0  # row 0 fine; row 1 has no amplitude mass
        with pytest.raises(ValueError, match=r"\[1\].*zero or non-finite"):
            sample_basis_states(state, 10, np.random.default_rng(0))

    def test_all_rows_zero_names_every_row(self):
        state = np.zeros((3, 4), dtype=np.complex128)
        with pytest.raises(ValueError, match=r"\[0, 1, 2\]"):
            sample_basis_states(state, 1, np.random.default_rng(0))

    def test_deterministic_state_always_hits_its_basis_index(self):
        state = np.zeros((2, 8), dtype=np.complex128)
        state[0, 3] = 1.0
        state[1, 5] = 1.0
        samples = sample_basis_states(state, 64, np.random.default_rng(1))
        assert (samples[0] == 3).all()
        assert (samples[1] == 5).all()

    def test_zero_probability_outcomes_never_drawn(self):
        # Half the basis states have exactly zero probability; the
        # searchsorted draw must never land on them (side='right' skips
        # flat CDF segments).
        state = np.zeros((1, 8), dtype=np.complex128)
        state[0, [0, 2, 4, 6]] = 0.5
        samples = sample_basis_states(state, 4000, np.random.default_rng(2))
        assert set(np.unique(samples)) <= {0, 2, 4, 6}

    def test_empirical_distribution_matches_probabilities(self):
        rng = np.random.default_rng(3)
        raw = rng.normal(size=(1, 16)) + 1j * rng.normal(size=(1, 16))
        state = raw / np.linalg.norm(raw, axis=1, keepdims=True)
        shots = 200_000
        samples = sample_basis_states(state, shots, np.random.default_rng(4))
        counts = np.bincount(samples[0], minlength=16) / shots
        probs = np.abs(state[0]) ** 2
        np.testing.assert_allclose(counts, probs, atol=5e-3)

    def test_batch_rows_sample_independently(self):
        # Rows with disjoint supports must never leak into each other
        # through the shared offset-CDF searchsorted.
        state = np.zeros((2, 4), dtype=np.complex128)
        state[0, [0, 1]] = np.sqrt(0.5)
        state[1, [2, 3]] = np.sqrt(0.5)
        samples = sample_basis_states(state, 500, np.random.default_rng(5))
        assert set(np.unique(samples[0])) <= {0, 1}
        assert set(np.unique(samples[1])) <= {2, 3}

    def test_draw_at_float_boundary_stays_in_range(self):
        # A uniform draw within half an ulp of 1.0 rounds up to exactly
        # the next row's offset boundary (u + b == b + 1) in the flat CDF;
        # unclamped, searchsorted then returned an out-of-range index
        # (== dim) for every row past the first.  The clamp must resolve
        # it to the row's last nonzero-probability state.
        class BoundaryRng:
            def random(self, shape):
                return np.full(shape, np.nextafter(1.0, 0.0))

        state = np.full((3, 4), 0.5, dtype=np.complex128)  # uniform probs
        samples = sample_basis_states(state, 8, BoundaryRng())
        assert samples.shape == (3, 8)
        assert (samples == 3).all()  # last basis state, never dim

    def test_draw_at_float_boundary_skips_zero_prob_tail(self):
        class BoundaryRng:
            def random(self, shape):
                return np.full(shape, np.nextafter(1.0, 0.0))

        state = np.zeros((2, 4), dtype=np.complex128)
        state[:, [0, 1]] = np.sqrt(0.5)  # support only on indices 0-1
        samples = sample_basis_states(state, 8, BoundaryRng())
        assert (samples == 1).all()  # last *nonzero*-probability state

    def test_nonfinite_probability_rows_rejected(self):
        # A diverged (NaN-amplitude) state must fail loudly, not feed
        # searchsorted an unsorted CDF and return garbage indices.
        state = np.full((2, 4), np.nan + 0j)
        state[0] = 0.5  # row 0 fine; row 1 NaN
        with pytest.raises(ValueError, match=r"non-finite.*\[1\]|\[1\].*non-finite"):
            sample_basis_states(state, 4, np.random.default_rng(0))

    def test_infinite_probability_rows_rejected(self):
        state = np.zeros((1, 4), dtype=np.complex128)
        state[0, 0] = np.inf
        with pytest.raises(ValueError, match="zero or non-finite"):
            sample_basis_states(state, 4, np.random.default_rng(0))
