"""Tests for the circuit builder, execution, and exact gradients.

The adjoint backward pass is the load-bearing component of the whole
reproduction (every hybrid model trains through it), so it is validated
three ways: against the parameter-shift rule, against finite differences,
and via hypothesis property tests over random circuits.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quantum import (
    Circuit,
    backward,
    execute,
    prepare_amplitude_state,
    sel_weight_count,
)


def _finite_diff_weights(circuit, inputs, weights, grad_outputs, eps=1e-6):
    grads = np.zeros_like(weights)
    for i in range(weights.size):
        w = weights.copy()
        w[i] += eps
        hi, __ = execute(circuit, inputs, w, want_cache=False)
        w[i] -= 2 * eps
        lo, __ = execute(circuit, inputs, w, want_cache=False)
        grads[i] = ((hi - lo) / (2 * eps) * grad_outputs).sum()
    return grads


def _finite_diff_inputs(circuit, inputs, weights, grad_outputs, eps=1e-6):
    grads = np.zeros_like(inputs)
    for b in range(inputs.shape[0]):
        for i in range(inputs.shape[1]):
            x = inputs.copy()
            x[b, i] += eps
            hi, __ = execute(circuit, x, weights, want_cache=False)
            x[b, i] -= 2 * eps
            lo, __ = execute(circuit, x, weights, want_cache=False)
            grads[b, i] = ((hi - lo) / (2 * eps) * grad_outputs).sum(axis=1)[b]
    return grads


class TestCircuitBuilder:
    def test_sel_weight_count(self):
        circuit = Circuit(4).strongly_entangling_layers(3)
        assert circuit.n_weights == sel_weight_count(4, 3) == 36

    def test_sel_gate_sequence(self):
        circuit = Circuit(2).strongly_entangling_layers(1)
        names = [op.name for op in circuit.ops]
        assert names == ["RZ", "RY", "RZ"] * 2 + ["CNOT", "CNOT"]

    def test_sel_periodic_cnots(self):
        circuit = Circuit(3).strongly_entangling_layers(1)
        cnots = [op.wires for op in circuit.ops if op.name == "CNOT"]
        assert cnots == [(0, 1), (1, 2), (2, 0)]

    def test_sel_custom_ranges(self):
        circuit = Circuit(4).strongly_entangling_layers(2, ranges=[1, 2])
        cnots = [op.wires for op in circuit.ops if op.name == "CNOT"]
        assert cnots[:4] == [(0, 1), (1, 2), (2, 3), (3, 0)]
        assert cnots[4:] == [(0, 2), (1, 3), (2, 0), (3, 1)]

    def test_sel_bad_range(self):
        with pytest.raises(ValueError):
            Circuit(3).strongly_entangling_layers(1, ranges=3)

    def test_single_wire_sel_has_no_cnot(self):
        circuit = Circuit(1).strongly_entangling_layers(2)
        assert all(op.name != "CNOT" for op in circuit.ops)

    def test_angle_embedding_slots(self):
        circuit = Circuit(4).angle_embedding(3)
        assert circuit.n_inputs == 3
        assert [op.source for op in circuit.ops] == [
            ("input", 0),
            ("input", 1),
            ("input", 2),
        ]

    def test_angle_embedding_too_many_features(self):
        with pytest.raises(ValueError):
            Circuit(2).angle_embedding(3)

    def test_amplitude_embedding_too_many_features(self):
        with pytest.raises(ValueError):
            Circuit(2).amplitude_embedding(5)

    def test_amplitude_embedding_must_be_first(self):
        circuit = Circuit(2).ry(0)
        with pytest.raises(ValueError):
            circuit.amplitude_embedding(4)

    def test_output_dim(self):
        assert Circuit(3).measure_expval().output_dim == 3
        assert Circuit(3).measure_expval((0,)).output_dim == 1
        assert Circuit(3).measure_probs().output_dim == 8

    def test_output_dim_without_measurement(self):
        with pytest.raises(ValueError):
            Circuit(2).output_dim

    def test_measure_bad_wire(self):
        with pytest.raises(ValueError):
            Circuit(2).measure_expval((5,))

    def test_unknown_gate_rejected(self):
        from repro.quantum import Operation

        with pytest.raises(ValueError):
            Operation("FOO", (0,))


class TestExecution:
    def test_expval_single_ry(self):
        circuit = Circuit(1).ry(0).measure_expval()
        theta = 0.73
        outputs, __ = execute(circuit, None, np.array([theta]))
        np.testing.assert_allclose(outputs, [[np.cos(theta)]], atol=1e-12)

    def test_probs_output_sums_to_one(self):
        circuit = Circuit(3).strongly_entangling_layers(2).measure_probs()
        rng = np.random.default_rng(0)
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        outputs, __ = execute(circuit, None, weights)
        np.testing.assert_allclose(outputs.sum(axis=1), [1.0], atol=1e-12)

    def test_amplitude_embedding_probs_identity_circuit(self):
        circuit = Circuit(2).amplitude_embedding(4).measure_probs()
        x = np.array([[1.0, 2.0, 2.0, 0.0]])
        outputs, __ = execute(circuit, x, np.zeros(0))
        np.testing.assert_allclose(outputs, [[1 / 9, 4 / 9, 4 / 9, 0.0]], atol=1e-12)

    def test_amplitude_embedding_pads(self):
        circuit = Circuit(2).amplitude_embedding(3).measure_probs()
        x = np.array([[1.0, 1.0, 1.0]])
        outputs, __ = execute(circuit, x, np.zeros(0))
        np.testing.assert_allclose(outputs[0, 3], 0.0, atol=1e-12)

    def test_amplitude_embedding_zero_vector_raises(self):
        circuit = Circuit(2).amplitude_embedding(4).measure_probs()
        with pytest.raises(ValueError):
            execute(circuit, np.zeros((1, 4)), np.zeros(0))

    def test_angle_embedding_matches_analytic(self):
        circuit = Circuit(2).angle_embedding(2).measure_expval()
        x = np.array([[0.3, 1.1], [0.0, np.pi]])
        outputs, __ = execute(circuit, x, np.zeros(0))
        np.testing.assert_allclose(outputs, np.cos(x), atol=1e-12)

    def test_batched_execution_matches_loop(self):
        circuit = (
            Circuit(3)
            .angle_embedding(3)
            .strongly_entangling_layers(2)
            .measure_expval()
        )
        rng = np.random.default_rng(1)
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        x = rng.uniform(-1, 1, size=(5, 3))
        batch_out, __ = execute(circuit, x, weights)
        for b in range(5):
            single, __ = execute(circuit, x[b : b + 1], weights)
            np.testing.assert_allclose(batch_out[b], single[0], atol=1e-12)

    def test_missing_measurement_raises(self):
        with pytest.raises(ValueError):
            execute(Circuit(2).ry(0), None, np.zeros(1))

    def test_wrong_weight_count_raises(self):
        with pytest.raises(ValueError):
            execute(Circuit(2).ry(0).measure_expval(), None, np.zeros(5))

    def test_inputs_required(self):
        circuit = Circuit(2).angle_embedding(2).measure_expval()
        with pytest.raises(ValueError):
            execute(circuit, None, np.zeros(0))


class TestGradients:
    def test_single_ry_gradient_analytic(self):
        circuit = Circuit(1).ry(0).measure_expval()
        theta = 0.73
        outputs, cache = execute(circuit, None, np.array([theta]))
        __, grad_w = backward(cache, np.ones_like(outputs))
        np.testing.assert_allclose(grad_w, [-np.sin(theta)], atol=1e-12)

    def test_adjoint_matches_parameter_shift_expval(self, gradcheck_shift):
        circuit = (
            Circuit(3)
            .angle_embedding(3)
            .strongly_entangling_layers(2)
            .measure_expval()
        )
        rng = np.random.default_rng(2)
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        x = rng.uniform(-2, 2, size=(4, 3))
        outputs, cache = execute(circuit, x, weights)
        grad_outputs = rng.normal(size=outputs.shape)
        __, adjoint = backward(cache, grad_outputs)
        gradcheck_shift(circuit, x, weights, grad_outputs, adjoint, atol=1e-10)

    def test_adjoint_matches_parameter_shift_probs(self, gradcheck_shift):
        circuit = Circuit(2).strongly_entangling_layers(2).measure_probs()
        rng = np.random.default_rng(3)
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        outputs, cache = execute(circuit, None, weights)
        grad_outputs = rng.normal(size=outputs.shape)
        __, adjoint = backward(cache, grad_outputs)
        gradcheck_shift(circuit, None, weights, grad_outputs, adjoint, atol=1e-10)

    def test_input_gradients_match_finite_diff(self):
        circuit = (
            Circuit(3)
            .angle_embedding(3)
            .strongly_entangling_layers(1)
            .measure_expval()
        )
        rng = np.random.default_rng(4)
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        x = rng.uniform(-1, 1, size=(3, 3))
        outputs, cache = execute(circuit, x, weights)
        grad_outputs = rng.normal(size=outputs.shape)
        grad_in, __ = backward(cache, grad_outputs)
        fd = _finite_diff_inputs(circuit, x, weights, grad_outputs)
        np.testing.assert_allclose(grad_in, fd, atol=1e-6)

    def test_amplitude_input_gradients_match_finite_diff(self):
        circuit = (
            Circuit(2)
            .amplitude_embedding(4)
            .strongly_entangling_layers(1)
            .measure_expval()
        )
        rng = np.random.default_rng(5)
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        x = rng.uniform(0.2, 2.0, size=(2, 4))
        outputs, cache = execute(circuit, x, weights)
        grad_outputs = rng.normal(size=outputs.shape)
        grad_in, __ = backward(cache, grad_outputs)
        fd = _finite_diff_inputs(circuit, x, weights, grad_outputs)
        np.testing.assert_allclose(grad_in, fd, atol=1e-6)

    def test_crz_gradient_matches_finite_diff(self):
        circuit = Circuit(2).ry(0).crz(0, 1).measure_expval()
        rng = np.random.default_rng(6)
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        outputs, cache = execute(circuit, None, weights)
        grad_outputs = rng.normal(size=outputs.shape)
        __, grad_w = backward(cache, grad_outputs)
        fd = _finite_diff_weights(circuit, None, weights, grad_outputs)
        np.testing.assert_allclose(grad_w, fd, atol=1e-6)

    def test_probs_gradient_with_amplitude_embedding(self):
        # The F-BQ decoder-like configuration: angle in, probs out.
        circuit = (
            Circuit(2)
            .angle_embedding(2)
            .strongly_entangling_layers(2)
            .measure_probs()
        )
        rng = np.random.default_rng(7)
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        x = rng.uniform(-1, 1, size=(3, 2))
        outputs, cache = execute(circuit, x, weights)
        grad_outputs = rng.normal(size=outputs.shape)
        grad_in, grad_w = backward(cache, grad_outputs)
        np.testing.assert_allclose(
            grad_w, _finite_diff_weights(circuit, x, weights, grad_outputs), atol=1e-6
        )
        np.testing.assert_allclose(
            grad_in, _finite_diff_inputs(circuit, x, weights, grad_outputs), atol=1e-6
        )


class TestGradientProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        n_wires=st.integers(min_value=1, max_value=4),
        n_layers=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=10_000),
        use_probs=st.booleans(),
    )
    def test_adjoint_equals_shift_on_random_sel_circuits(
        self, gradcheck_shift, n_wires, n_layers, seed, use_probs
    ):
        circuit = Circuit(n_wires).strongly_entangling_layers(n_layers)
        if use_probs:
            circuit.measure_probs()
        else:
            circuit.measure_expval()
        rng = np.random.default_rng(seed)
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        outputs, cache = execute(circuit, None, weights)
        grad_outputs = rng.normal(size=outputs.shape)
        __, adjoint = backward(cache, grad_outputs)
        gradcheck_shift(circuit, None, weights, grad_outputs, adjoint)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        batch=st.integers(min_value=1, max_value=4),
    )
    def test_norm_preserved_under_random_circuits(self, seed, batch):
        rng = np.random.default_rng(seed)
        circuit = (
            Circuit(3)
            .angle_embedding(3)
            .strongly_entangling_layers(2)
            .measure_probs()
        )
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        x = rng.uniform(-3, 3, size=(batch, 3))
        outputs, __ = execute(circuit, x, weights)
        np.testing.assert_allclose(outputs.sum(axis=1), np.ones(batch), atol=1e-10)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_amplitude_state_is_normalized(self, seed):
        rng = np.random.default_rng(seed)
        features = rng.uniform(0.1, 5.0, size=(3, 6))
        state, norms = prepare_amplitude_state(features, 3)
        np.testing.assert_allclose(np.linalg.norm(state, axis=1), np.ones(3), atol=1e-12)
        assert norms.shape == (3,)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_expval_bounded(self, seed):
        rng = np.random.default_rng(seed)
        circuit = Circuit(4).strongly_entangling_layers(3).measure_expval()
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        outputs, __ = execute(circuit, None, weights)
        assert np.all(outputs <= 1.0 + 1e-12)
        assert np.all(outputs >= -1.0 - 1e-12)
