"""Randomized differential harness: compiled vs naive vs stacked engines.

The unification of the per-instance adjoint with the stacked substrate is
guarded here: for ≥50 seeded random circuits (drawn from the shared
``random_circuit`` fixture, spanning widths 1-4, every lowered gate, both
embeddings, both measurements, and re-uploaded inputs) the three execution
paths must agree on forward outputs *and* adjoint gradients —

* at float64, to near machine precision (the compiled path is literally
  the stacked substrate at ``p = 1``, and the naive interpreter is an
  independent implementation);
* at float32/complex64, within calibrated single-precision tolerances.

Dedicated seed bands pin the two geometries most likely to regress:
1-qubit circuits (no two-qubit lowering, ``left == right == 1`` kernels)
and adjacent-wire-heavy bodies (maximal 4x4 kron pair merging).  A sparse
cross-check against the parameter-shift rule anchors the whole harness to
physics rather than to a shared bug.
"""

import numpy as np
import pytest

from repro.quantum import (
    NumpyBackend,
    ThreadedBackend,
    backward,
    backward_stacked,
    execute,
    execute_stacked,
    naive_backward,
    naive_execute,
)

# Single-precision tolerances, calibrated as in test_engine_precision.py:
# outputs are bounded and the random bodies apply at most ~25 complex64
# gates, so forward error sits near 1e-6 and gradient error near 1e-5;
# the bounds leave an order of magnitude of headroom.
F32_FWD_ATOL = 1e-5
F32_GRAD_ATOL = 1e-3

N_SEEDS = 60


def _case_for_seed(seed, random_circuit):
    """Deterministically derive a circuit + data from one seed.

    Seed bands force the edge-case geometries: every 5th case is 1-qubit,
    every 5th (offset 1) is adjacent-wire-heavy on 3-4 wires.
    """
    rng = np.random.default_rng(10_000 + seed)
    if seed % 5 == 0:
        n_wires = 1
        adjacent = False
    elif seed % 5 == 1:
        n_wires = int(rng.integers(3, 5))
        adjacent = True
    else:
        n_wires = int(rng.integers(2, 5))
        adjacent = False
    n_ops = int(rng.integers(1, 26))
    embedding = ["none", "amplitude", "angle"][seed % 3]
    measurement = "expval" if seed % 2 else "probs"
    reupload = seed % 4 == 2
    circuit = random_circuit(
        rng, n_wires, n_ops, embedding, measurement,
        reupload=reupload, adjacent=adjacent,
    )
    batch = int(rng.integers(1, 4))
    weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
    inputs = (
        rng.uniform(0.1, 2.0, size=(batch, circuit.n_inputs))
        if circuit.n_inputs
        else None
    )
    return circuit, inputs, weights, batch, rng


class TestDifferentialRandomCircuits:
    @pytest.mark.parametrize("seed", range(N_SEEDS))
    def test_engines_agree_across_precisions(self, seed, random_circuit):
        circuit, inputs, weights, batch, rng = _case_for_seed(
            seed, random_circuit
        )
        p = 1 + seed % 2  # alternate degenerate and true stacks

        # --- float64: near machine-precision agreement -------------------
        out_c, cache_c = execute(circuit, inputs, weights)
        out_n, cache_n = naive_execute(circuit, inputs, weights)
        stacked_inputs = (
            None if inputs is None else np.broadcast_to(
                inputs, (p,) + inputs.shape
            ).copy()
        )
        out_s, cache_s = execute_stacked(
            circuit, stacked_inputs, np.tile(weights, (p, 1))
        )
        np.testing.assert_allclose(out_c, out_n, atol=1e-10)
        for k in range(p):
            np.testing.assert_allclose(out_s[k], out_c, atol=1e-10)

        grad_outputs = rng.normal(size=out_c.shape)
        gi_c, gw_c = backward(cache_c, grad_outputs)
        gi_n, gw_n = naive_backward(cache_n, grad_outputs)
        gi_s, gw_s = backward_stacked(
            cache_s, np.broadcast_to(grad_outputs, (p,) + grad_outputs.shape)
        )
        np.testing.assert_allclose(gw_c, gw_n, atol=1e-10)
        for k in range(p):
            np.testing.assert_allclose(gw_s[k], gw_c, atol=1e-10)
        if gi_n is None:
            assert gi_c is None and gi_s is None
        else:
            np.testing.assert_allclose(gi_c, gi_n, atol=1e-10)
            for k in range(p):
                np.testing.assert_allclose(gi_s[k], gi_c, atol=1e-10)

        # --- float32: relaxed single-precision agreement -----------------
        out32_c, cache32_c = execute(circuit, inputs, weights, dtype="float32")
        out32_n, cache32_n = naive_execute(
            circuit, inputs, weights, dtype="float32"
        )
        out32_s, cache32_s = execute_stacked(
            circuit, stacked_inputs, np.tile(weights, (p, 1)), dtype="float32"
        )
        assert out32_c.dtype == np.float32
        np.testing.assert_allclose(out32_c, out_c, atol=F32_FWD_ATOL)
        np.testing.assert_allclose(out32_n, out_c, atol=F32_FWD_ATOL)
        np.testing.assert_allclose(out32_s[0], out_c, atol=F32_FWD_ATOL)

        gi32_c, gw32_c = backward(cache32_c, grad_outputs)
        gi32_n, gw32_n = naive_backward(cache32_n, grad_outputs)
        gi32_s, gw32_s = backward_stacked(
            cache32_s, np.broadcast_to(grad_outputs, (p,) + grad_outputs.shape)
        )
        np.testing.assert_allclose(gw32_c, gw_c, atol=F32_GRAD_ATOL)
        np.testing.assert_allclose(gw32_n, gw_c, atol=F32_GRAD_ATOL)
        np.testing.assert_allclose(gw32_s[0], gw_c, atol=F32_GRAD_ATOL)
        if gi_c is not None:
            np.testing.assert_allclose(gi32_c, gi_c, atol=F32_GRAD_ATOL)
            np.testing.assert_allclose(gi32_n, gi_c, atol=F32_GRAD_ATOL)
            np.testing.assert_allclose(gi32_s[0], gi_c, atol=F32_GRAD_ATOL)

    @pytest.mark.parametrize("seed", range(0, N_SEEDS, 6))
    def test_sparse_parameter_shift_anchor(
        self, seed, random_circuit, gradcheck_shift
    ):
        # Anchor the differential harness to the shift rule so a bug shared
        # by all three adjoint implementations cannot hide.
        circuit, inputs, weights, __, rng = _case_for_seed(
            seed, random_circuit
        )
        if any(
            op.name == "CRZ" and op.source is not None
            for op in circuit.ops
        ):
            pytest.skip("CRZ is outside the two-term shift rule")
        out, cache = execute(circuit, inputs, weights)
        grad_outputs = rng.normal(size=out.shape)
        __, gw = backward(cache, grad_outputs)
        gradcheck_shift(circuit, inputs, weights, grad_outputs, gw)


class TestBackendParity:
    """Both kernel backends must agree with the naive reference on the full
    randomized suite, to float64 tolerance.

    The threaded backend is instantiated with ``min_shard_elements=1`` and
    more workers than most cases have rows, so every kernel actually
    shards (the production defaults would route these small states to the
    unsharded fallthrough and test nothing).
    """

    # One pool for the whole suite; sharding forced on for every kernel.
    BACKENDS = {
        "numpy": NumpyBackend(),
        "threaded": ThreadedBackend(max_workers=3, min_shard_elements=1),
    }

    @pytest.mark.parametrize("backend_name", sorted(BACKENDS))
    @pytest.mark.parametrize("seed", range(N_SEEDS))
    def test_backends_match_naive_reference(
        self, seed, backend_name, random_circuit
    ):
        backend = self.BACKENDS[backend_name]
        circuit, inputs, weights, batch, rng = _case_for_seed(
            seed, random_circuit
        )
        p = 2 + seed % 2  # always a true stack (2 or 3 instances)

        out_n, cache_n = naive_execute(circuit, inputs, weights)
        grad_outputs = rng.normal(size=out_n.shape)
        gi_n, gw_n = naive_backward(cache_n, grad_outputs)

        out_c, cache_c = execute(circuit, inputs, weights, backend=backend)
        assert cache_c.backend is backend
        np.testing.assert_allclose(out_c, out_n, atol=1e-10)
        gi_c, gw_c = backward(cache_c, grad_outputs)
        np.testing.assert_allclose(gw_c, gw_n, atol=1e-10)

        stacked_inputs = (
            None if inputs is None else np.broadcast_to(
                inputs, (p,) + inputs.shape
            ).copy()
        )
        out_s, cache_s = execute_stacked(
            circuit, stacked_inputs, np.tile(weights, (p, 1)),
            backend=backend,
        )
        gi_s, gw_s = backward_stacked(
            cache_s, np.broadcast_to(grad_outputs, (p,) + grad_outputs.shape)
        )
        for k in range(p):
            np.testing.assert_allclose(out_s[k], out_n, atol=1e-10)
            np.testing.assert_allclose(gw_s[k], gw_n, atol=1e-10)
        if gi_n is None:
            assert gi_c is None and gi_s is None
        else:
            np.testing.assert_allclose(gi_c, gi_n, atol=1e-10)
            for k in range(p):
                np.testing.assert_allclose(gi_s[k], gi_n, atol=1e-10)


class TestThreadedEdgeCases:
    """Worker-count extremes of the row-sharding backend."""

    def _case(self, random_circuit, batch=3):
        rng = np.random.default_rng(77)
        circuit = random_circuit(rng, 3, 12, "amplitude", "expval")
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        inputs = rng.uniform(0.1, 2.0, size=(batch, circuit.n_inputs))
        return circuit, inputs, weights, rng

    def _assert_matches_numpy(self, backend, random_circuit, batch):
        circuit, inputs, weights, rng = self._case(random_circuit, batch)
        out_ref, cache_ref = execute(circuit, inputs, weights)
        grad_outputs = rng.normal(size=out_ref.shape)
        gi_ref, gw_ref = backward(cache_ref, grad_outputs)

        out, cache = execute(circuit, inputs, weights, backend=backend)
        gi, gw = backward(cache, grad_outputs)
        np.testing.assert_allclose(out, out_ref, atol=1e-12)
        np.testing.assert_allclose(gw, gw_ref, atol=1e-12)
        np.testing.assert_allclose(gi, gi_ref, atol=1e-12)

        p = 2
        outs, cache_s = execute_stacked(
            circuit,
            np.broadcast_to(inputs, (p,) + inputs.shape).copy(),
            np.tile(weights, (p, 1)),
            backend=backend,
        )
        gis, gws = backward_stacked(
            cache_s, np.broadcast_to(grad_outputs, (p,) + grad_outputs.shape)
        )
        for k in range(p):
            np.testing.assert_allclose(outs[k], out_ref, atol=1e-12)
            np.testing.assert_allclose(gws[k], gw_ref, atol=1e-12)
            np.testing.assert_allclose(gis[k], gi_ref, atol=1e-12)

    def test_single_worker_pool(self, random_circuit):
        # One worker degrades to the unsharded kernels — still exact.
        backend = ThreadedBackend(max_workers=1)
        self._assert_matches_numpy(backend, random_circuit, batch=3)

    def test_more_workers_than_rows(self, random_circuit):
        # 64 workers over 1-3 rows: shards clamp to the row count (some
        # kernels get one shard per row, none get an empty shard).
        backend = ThreadedBackend(max_workers=64, min_shard_elements=1)
        self._assert_matches_numpy(backend, random_circuit, batch=1)
        self._assert_matches_numpy(backend, random_circuit, batch=3)

    def test_worker_count_validation(self):
        with pytest.raises(ValueError, match="max_workers"):
            ThreadedBackend(max_workers=0)


class TestCotangentValidation:
    """Malformed cotangents must fail loudly at the backward entry point,
    naming the offending shape/dtype — not deep inside a kernel."""

    def _cached(self, dtype=None):
        from repro.quantum import Circuit

        rng = np.random.default_rng(0)
        circuit = (
            Circuit(2).amplitude_embedding(4).strongly_entangling_layers(1)
            .measure_expval()
        )
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        inputs = rng.uniform(0.1, 1.0, size=(3, 4))
        out, cache = execute(circuit, inputs, weights, dtype=dtype)
        return circuit, inputs, weights, out, cache

    def test_backward_rejects_wrong_shape(self):
        __, ___, ____, out, cache = self._cached()
        bad = np.ones((out.shape[0] + 1, out.shape[1]))
        with pytest.raises(ValueError, match=r"\(4, 2\).*\(3, 2\)"):
            backward(cache, bad)

    def test_backward_rejects_transposed_cotangent(self):
        __, ___, ____, out, cache = self._cached()
        with pytest.raises(ValueError, match="does not match"):
            backward(cache, np.ones(out.T.shape))

    def test_backward_rejects_complex_cotangent(self):
        __, ___, ____, out, cache = self._cached(dtype="float32")
        with pytest.raises(ValueError, match="complex64"):
            backward(cache, np.ones(out.shape, dtype=np.complex64))

    def test_naive_backward_rejects_wrong_shape(self):
        from repro.quantum import Circuit

        rng = np.random.default_rng(1)
        circuit = Circuit(2).strongly_entangling_layers(1).measure_expval()
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        out, cache = naive_execute(circuit, None, weights)
        with pytest.raises(ValueError, match="does not match"):
            naive_backward(cache, np.ones((5, 2)))

    def test_backward_stacked_rejects_wrong_shape(self):
        from repro.quantum import Circuit

        rng = np.random.default_rng(2)
        circuit = (
            Circuit(2).amplitude_embedding(4).strongly_entangling_layers(1)
            .measure_expval()
        )
        weights = rng.uniform(-np.pi, np.pi, (2, circuit.n_weights))
        inputs = rng.uniform(0.1, 1.0, size=(2, 3, 4))
        out, cache = execute_stacked(circuit, inputs, weights)
        # A flat (p * batch, output_dim) cotangent silently reshaped before
        # the fix; it must now be rejected against (p, batch, output_dim).
        with pytest.raises(ValueError, match=r"\(6, 2\).*\(2, 3, 2\)"):
            backward_stacked(cache, np.ones((6, 2)))

    def test_backward_stacked_rejects_complex_cotangent(self):
        from repro.quantum import Circuit

        rng = np.random.default_rng(3)
        circuit = (
            Circuit(2).amplitude_embedding(4).strongly_entangling_layers(1)
            .measure_expval()
        )
        weights = rng.uniform(-np.pi, np.pi, (2, circuit.n_weights))
        inputs = rng.uniform(0.1, 1.0, size=(2, 3, 4))
        out, cache = execute_stacked(circuit, inputs, weights)
        with pytest.raises(ValueError, match="must be real"):
            backward_stacked(cache, np.ones(out.shape, dtype=np.complex128))

    def test_valid_cotangent_still_accepted(self):
        __, ___, ____, out, cache = self._cached()
        gi, gw = backward(cache, np.ones(out.shape))
        assert gw.shape == (cache.circuit.n_weights,)
        assert gi.shape == (3, 4)
