"""Tests for the data-reuploading circuit template."""

import numpy as np
import pytest

from repro.nn import Adam, Tensor, functional as F
from repro.qnn import QuantumLayer, reuploading_expval_circuit
from repro.quantum import (
    Circuit,
    backward,
    execute,
    parameter_shift_gradients,
)


class TestTemplate:
    def test_input_slots_reused(self):
        circuit = Circuit(2).reuploading_layers(2, n_layers=3)
        input_slots = [op.source[1] for op in circuit.ops
                       if op.source and op.source[0] == "input"]
        assert input_slots == [0, 1] * 3
        assert circuit.n_inputs == 2

    def test_weight_count(self):
        circuit = Circuit(3).reuploading_layers(3, n_layers=4)
        assert circuit.n_weights == 4 * 3 * 3 * 1  # layers x wires x 3 angles

    def test_requires_positive_layers(self):
        with pytest.raises(ValueError):
            Circuit(2).reuploading_layers(2, n_layers=0)

    def test_factory_builds_measured_circuit(self):
        circuit = reuploading_expval_circuit(3, 3, 2)
        assert circuit.measurement is not None
        assert circuit.output_dim == 3


class TestGradients:
    def test_reused_input_gradients_accumulate(self):
        # The same input slot feeds several gates; its gradient must match
        # finite differences (i.e. accumulate across uploads).
        circuit = reuploading_expval_circuit(2, 2, 2)
        rng = np.random.default_rng(0)
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        x = rng.uniform(-1, 1, size=(3, 2))
        outputs, cache = execute(circuit, x, weights)
        grad_out = rng.normal(size=outputs.shape)
        grad_in, __ = backward(cache, grad_out)

        eps = 1e-6
        fd = np.zeros_like(x)
        for b in range(x.shape[0]):
            for i in range(x.shape[1]):
                xp = x.copy()
                xp[b, i] += eps
                hi, __ = execute(circuit, xp, weights, want_cache=False)
                xp[b, i] -= 2 * eps
                lo, __ = execute(circuit, xp, weights, want_cache=False)
                fd[b, i] = (((hi - lo) / (2 * eps)) * grad_out).sum(axis=1)[b]
        np.testing.assert_allclose(grad_in, fd, atol=1e-6)

    def test_weight_gradients_match_parameter_shift(self):
        circuit = reuploading_expval_circuit(2, 2, 2)
        rng = np.random.default_rng(1)
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        x = rng.uniform(-1, 1, size=(2, 2))
        outputs, cache = execute(circuit, x, weights)
        grad_out = rng.normal(size=outputs.shape)
        __, adjoint = backward(cache, grad_out)
        shift = parameter_shift_gradients(circuit, x, weights, grad_out)
        np.testing.assert_allclose(adjoint, shift, atol=1e-10)


class TestExpressivity:
    def test_reuploading_fits_higher_frequency_target(self):
        """Single-embedding circuits see only ~1 Fourier harmonic of the
        input; re-uploading unlocks higher frequencies (Perez-Salinas).
        Fit y = cos(3x) on one qubit and compare achievable losses."""

        rng = np.random.default_rng(2)
        x = np.linspace(-np.pi, np.pi, 24).reshape(-1, 1)
        y = np.cos(3 * x)

        def best_loss(circuit, seed, steps=300):
            layer = QuantumLayer(circuit, rng=np.random.default_rng(seed))
            opt = Adam(list(layer.parameters()), lr=0.1)
            final = None
            for _ in range(steps):
                opt.zero_grad()
                loss = F.mse_loss(layer(Tensor(x)), Tensor(y))
                loss.backward()
                opt.step()
                final = loss.item()
            return final

        single = (
            Circuit(1).angle_embedding(1).strongly_entangling_layers(3)
            .measure_expval()
        )
        reupload = reuploading_expval_circuit(1, 1, 3)
        single_loss = best_loss(single, seed=3)
        reupload_loss = best_loss(reupload, seed=3)
        assert reupload_loss < single_loss * 0.5
        assert reupload_loss < 0.05
