"""Unit tests for the pluggable kernel-backend layer.

The differential suite (``test_differential.py``) proves both backends
agree with the naive reference end to end; this file covers the machinery
around them — the registry, the ``use_backend`` policy stack, layer/config
knobs, and the threaded backend's sharding plumbing.
"""

import numpy as np
import pytest

from repro.quantum import (
    Circuit,
    KernelBackend,
    NumpyBackend,
    ThreadedBackend,
    available_backends,
    default_backend,
    execute,
    register_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.quantum.backends import _kron_eye


def _measured_circuit():
    return (
        Circuit(2).amplitude_embedding(4).strongly_entangling_layers(1)
        .measure_expval()
    )


class TestRegistryAndPolicy:
    def test_builtin_backends_registered(self):
        assert "numpy" in available_backends()
        assert "threaded" in available_backends()

    def test_default_is_numpy(self):
        assert isinstance(default_backend(), NumpyBackend)

    def test_resolve_none_follows_active_policy(self):
        assert resolve_backend(None) is default_backend()

    def test_resolve_by_name_and_instance(self):
        assert isinstance(resolve_backend("threaded"), ThreadedBackend)
        mine = ThreadedBackend(max_workers=2)
        assert resolve_backend(mine) is mine

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("cuda")

    def test_use_backend_scopes_and_restores(self):
        before = default_backend()
        with use_backend("threaded") as active:
            assert isinstance(active, ThreadedBackend)
            assert default_backend() is active
            with use_backend("numpy"):
                assert isinstance(default_backend(), NumpyBackend)
            assert default_backend() is active
        assert default_backend() is before

    def test_use_backend_restores_on_error(self):
        before = default_backend()
        with pytest.raises(RuntimeError):
            with use_backend("threaded"):
                raise RuntimeError("boom")
        assert default_backend() is before

    def test_set_default_backend_roundtrip(self):
        previous = set_default_backend("threaded")
        try:
            assert isinstance(default_backend(), ThreadedBackend)
        finally:
            set_default_backend(previous)
        assert default_backend() is previous

    def test_register_backend_requires_concrete_name(self):
        with pytest.raises(ValueError, match="concrete name"):
            register_backend(KernelBackend())

    def test_register_custom_backend(self):
        class Custom(NumpyBackend):
            name = "custom-test"

        register_backend(Custom())
        assert "custom-test" in available_backends()
        assert isinstance(resolve_backend("custom-test"), Custom)

    def test_abstract_vocabulary_raises(self):
        backend = KernelBackend()
        state = np.zeros((1, 2), dtype=np.complex128)
        for call in [
            lambda: backend.apply_dense(state, None, 1, 1, 1, 2, 1, True),
            lambda: backend.transition_matrix(state, state, 1, 1, 1, 2, 1,
                                              True),
            lambda: backend.diag_phase(state, state, 1, 1),
            lambda: backend.crz_phase(state, [0], [1], None),
            lambda: backend.diag_sign(state, [0]),
            lambda: backend.gather(state, [1, 0]),
            lambda: backend.probabilities(state),
            lambda: backend.expvals(state, np.ones((1, 2))),
            lambda: backend.row_norms(np.ones((1, 2))),
        ]:
            with pytest.raises(NotImplementedError):
                call()


class TestExecutionIntegration:
    def test_execute_records_backend_in_cache(self):
        circuit = _measured_circuit()
        rng = np.random.default_rng(0)
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        inputs = rng.uniform(0.1, 1.0, size=(3, 4))
        backend = ThreadedBackend(max_workers=2, min_shard_elements=1)
        __, cache = execute(circuit, inputs, weights, backend=backend)
        assert cache.backend is backend

    def test_quantum_layer_backend_knob(self):
        from repro.nn import Tensor
        from repro.qnn import QuantumLayer

        layer = QuantumLayer(
            _measured_circuit(),
            rng=np.random.default_rng(0),
            backend="threaded",
        )
        assert isinstance(layer.backend, ThreadedBackend)
        out = layer(Tensor(np.random.default_rng(1).uniform(0.1, 1.0, (2, 4))))
        assert out.shape == (2, 2)

    def test_quantum_layer_defaults_to_active_policy(self):
        from repro.nn import Tensor
        from repro.qnn import QuantumLayer

        layer = QuantumLayer(
            _measured_circuit(), rng=np.random.default_rng(0)
        )
        assert layer.backend is None
        x = Tensor(np.random.default_rng(1).uniform(0.1, 1.0, (2, 4)))
        baseline = layer(x).data
        with use_backend(ThreadedBackend(max_workers=2,
                                         min_shard_elements=1)):
            scoped = layer(x).data
        np.testing.assert_allclose(scoped, baseline, atol=1e-12)

    def test_patched_layer_backend_knob(self):
        from repro.nn import Tensor
        from repro.qnn import PatchedQuantumLayer

        backend = ThreadedBackend(max_workers=2, min_shard_elements=1)
        layer = PatchedQuantumLayer(
            lambda i: _measured_circuit(),
            n_patches=2,
            rng=np.random.default_rng(0),
            backend=backend,
        )
        assert layer.backend is backend
        x = Tensor(
            np.random.default_rng(1).uniform(0.1, 1.0, (4, 8)),
            requires_grad=True,
        )
        out = layer(x)
        out.sum().backward()
        assert out.shape == (4, 4)
        assert x.grad is not None

    def test_train_config_backend_knob(self):
        from repro.data.loader import ArrayDataset
        from repro.models import ScalableQuantumAE
        from repro.training import TrainConfig, Trainer

        rng = np.random.default_rng(0)
        model = ScalableQuantumAE(
            input_dim=16, n_patches=2, n_layers=1, rng=rng
        )
        config = TrainConfig(epochs=1, batch_size=4, backend="threaded")
        trainer = Trainer(model, config)
        assert isinstance(trainer.backend, ThreadedBackend)
        data = ArrayDataset(np.abs(rng.normal(size=(8, 16))) + 0.01)
        history = trainer.fit(data)
        assert len(history.epochs) == 1


class TestThreadedSharding:
    def test_shards_cover_range_without_overlap(self):
        backend = ThreadedBackend(max_workers=4, min_shard_elements=1)
        shards = backend._shards(10, 1000)
        assert shards[0][0] == 0 and shards[-1][1] == 10
        for (____, hi), (lo, __) in zip(shards, shards[1:]):
            assert hi == lo
        assert len(shards) == 4

    def test_small_work_falls_through(self):
        # Explicit floor (the CI threaded leg overrides the default to 1
        # via REPRO_BACKEND_MIN_SHARD, so don't rely on it here).
        backend = ThreadedBackend(max_workers=4, min_shard_elements=1 << 13)
        assert backend._shards(2, 4) is None  # 8 elements: far below floor
        assert backend._shards(1, 1 << 20) is None  # single unit

    def test_single_worker_never_shards(self):
        backend = ThreadedBackend(max_workers=1, min_shard_elements=1)
        assert backend._shards(1024, 1024) is None

    def test_pool_is_lazy_and_closable(self):
        backend = ThreadedBackend(max_workers=2, min_shard_elements=1)
        assert backend._pool is None
        state = np.arange(8, dtype=np.complex128).reshape(4, 2)
        out = backend.gather(state, np.array([1, 0]))
        np.testing.assert_array_equal(out, state[:, [1, 0]])
        assert backend._pool is not None
        backend.close()
        assert backend._pool is None
        # reusable after close
        out = backend.gather(state, np.array([1, 0]))
        np.testing.assert_array_equal(out, state[:, [1, 0]])

    def test_kron_eye_matches_numpy_kron(self):
        rng = np.random.default_rng(3)
        for right in (2, 4, 8):
            mat = rng.normal(size=(3, 4, 4)) + 1j * rng.normal(size=(3, 4, 4))
            expected = np.stack([np.kron(m, np.eye(right)) for m in mat])
            np.testing.assert_allclose(_kron_eye(mat, right), expected)

    def test_probabilities_sharded_matches(self):
        backend = ThreadedBackend(max_workers=3, min_shard_elements=1)
        rng = np.random.default_rng(4)
        state = rng.normal(size=(7, 16)) + 1j * rng.normal(size=(7, 16))
        np.testing.assert_allclose(
            backend.probabilities(state), NumpyBackend().probabilities(state)
        )

    def test_workers_resolved_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND_WORKERS", "5")
        assert ThreadedBackend().max_workers == 5


class TestTrainerBackendScope:
    def test_trainer_respects_ambient_use_backend_scope(self):
        # TrainConfig(backend=None) must follow the caller's scope, not
        # pin the construction-time default over the fit loop.
        from repro.data.loader import ArrayDataset
        from repro.models import ScalableQuantumAE
        from repro.training import TrainConfig, Trainer

        seen = []

        class Spy(NumpyBackend):
            name = "spy"

            def apply_dense(self, *args, **kwargs):
                seen.append("apply_dense")
                return super().apply_dense(*args, **kwargs)

        rng = np.random.default_rng(0)
        model = ScalableQuantumAE(input_dim=16, n_patches=2, n_layers=1,
                                  rng=rng)
        trainer = Trainer(model, TrainConfig(epochs=1, batch_size=4))
        assert trainer.backend is None
        data = ArrayDataset(np.abs(rng.normal(size=(8, 16))) + 0.01)
        with use_backend(Spy()):
            trainer.fit(data)
        assert seen  # the ambient backend actually served the kernels


class TestThreadedEnvKnobs:
    def test_min_shard_resolved_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND_MIN_SHARD", "1")
        assert ThreadedBackend(max_workers=2).min_shard_elements == 1
        monkeypatch.delenv("REPRO_BACKEND_MIN_SHARD")
        assert ThreadedBackend(max_workers=2).min_shard_elements == 1 << 13

    def test_concurrent_lazy_pool_creation_is_single(self):
        import threading

        backend = ThreadedBackend(max_workers=2, min_shard_elements=1)
        pools = []
        gate = threading.Barrier(4)

        def grab():
            gate.wait()
            pools.append(backend._executor())

        threads = [threading.Thread(target=grab) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(p) for p in pools}) == 1
        backend.close()

    def test_diag_phase_shards_p1_broadcast(self):
        # A weight-bound RZ on the compiled (p = 1) path binds (1, dim)
        # phases against a (batch, dim) state; the threaded kernel must
        # shard the row axis there too, not fall through single-threaded.
        backend = ThreadedBackend(max_workers=3, min_shard_elements=1)
        rng = np.random.default_rng(6)
        state = rng.normal(size=(7, 8)) + 1j * rng.normal(size=(7, 8))
        phases = np.exp(1j * rng.normal(size=(1, 8)))
        expected = NumpyBackend().diag_phase(state, phases, 1, 7)
        np.testing.assert_allclose(
            backend.diag_phase(state, phases, 1, 7), expected
        )
        out = np.empty_like(state)
        backend.diag_phase(state, phases, 1, 7, out=out)
        np.testing.assert_allclose(out, expected)


class TestNaiveReferenceIsBackendFree:
    def test_naive_execute_ignores_active_backend(self):
        # The naive interpreter is the parity reference; a (hypothetically
        # broken) active backend must not contaminate it.
        from repro.quantum import naive_execute

        class Broken(NumpyBackend):
            name = "broken-norms"

            def row_norms(self, rows):
                return super().row_norms(rows) * 2.0

        circuit = _measured_circuit()
        rng = np.random.default_rng(0)
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        inputs = rng.uniform(0.1, 1.0, size=(3, 4))
        baseline, __ = naive_execute(circuit, inputs, weights,
                                     want_cache=False)
        with use_backend(Broken()):
            scoped, __ = naive_execute(circuit, inputs, weights,
                                       want_cache=False)
        np.testing.assert_array_equal(scoped, baseline)
