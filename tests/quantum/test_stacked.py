"""Property tests for stacked (multi-bind) execution.

``execute_stacked`` / ``backward_stacked`` run p structurally identical
weight-bindings of one circuit as a single ``(p * batch, 2**n)`` pass through
a :class:`~repro.quantum.engine.StackedPlan`.  The plan's specialized
lowering — per-patch bulk binding, adjacent-wire 4x4 kron blocks, composed
permutation gathers, transition-matrix gradients read from forward
checkpoints — must be *indistinguishable* from running the per-instance
compiled path p times: identical outputs, identical weight and input
gradients, to near machine precision, across the full gate set.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quantum import (
    Circuit,
    backward,
    backward_stacked,
    compile_stacked,
    execute,
    execute_stacked,
    stacked_plan,
)
from repro.quantum.autodiff import _NORM_EPS, _prepare_amplitude
from repro.quantum.engine import _SDense, _SPermutation


def _compare_stacked(circuit, p, batch, rng, inputs=None, atol=1e-10):
    """Stacked pass vs p independent per-instance passes."""
    weights = rng.uniform(-np.pi, np.pi, (p, circuit.n_weights))
    out_s, cache = execute_stacked(circuit, inputs, weights)
    grad_outputs = rng.normal(size=out_s.shape)
    gi_s, gw_s = backward_stacked(cache, grad_outputs)
    for k in range(p):
        per_inputs = None if inputs is None else inputs[k]
        out_k, cache_k = execute(circuit, per_inputs, weights[k])
        np.testing.assert_allclose(out_s[k], out_k, atol=atol)
        gi_k, gw_k = backward(cache_k, grad_outputs[k])
        np.testing.assert_allclose(gw_s[k], gw_k, atol=atol)
        if gi_k is None:
            assert gi_s is None
        else:
            np.testing.assert_allclose(gi_s[k], gi_k, atol=atol)
    return out_s


class TestStackedMatchesPerInstance:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        n_wires=st.integers(min_value=1, max_value=4),
        n_ops=st.integers(min_value=0, max_value=25),
        embedding=st.sampled_from(["none", "amplitude", "angle"]),
        measurement=st.sampled_from(["expval", "probs"]),
        p=st.integers(min_value=1, max_value=4),
        batch=st.integers(min_value=1, max_value=3),
        reupload=st.booleans(),
    )
    def test_random_circuits(
        self, random_circuit, seed, n_wires, n_ops, embedding, measurement, p,
        batch, reupload
    ):
        rng = np.random.default_rng(seed)
        circuit = random_circuit(
            rng, n_wires, n_ops, embedding, measurement, reupload
        )
        inputs = (
            rng.uniform(0.1, 2.0, size=(p, batch, circuit.n_inputs))
            if circuit.n_inputs
            else None
        )
        _compare_stacked(circuit, p, batch, rng, inputs)

    def test_sel_amplitude_with_zero_fallback_rows(self):
        rng = np.random.default_rng(7)
        circuit = (
            Circuit(3)
            .amplitude_embedding(8, zero_fallback=True)
            .strongly_entangling_layers(3)
            .measure_expval()
        )
        inputs = np.abs(rng.normal(size=(4, 3, 8))) + 0.05
        inputs[2, 1] = 0.0  # a zero row inside the stack
        _compare_stacked(circuit, 4, 3, rng, inputs)

    def test_every_specialized_kernel(self):
        rng = np.random.default_rng(8)
        circuit = Circuit(3)
        circuit.rz(0)            # lone RZ -> stacked diagonal kernel
        circuit.z(1)             # lone Z -> sign kernel
        circuit.x(2)             # lone X -> permutation kernel
        circuit.h(0).y(0)        # fused fixed run
        circuit.rot(1)           # fused Rot triple
        circuit.cnot(0, 2)
        circuit.cz(1, 2)
        circuit.swap(0, 1)
        circuit.crz(2, 0)
        circuit.rx(2).ry(2)
        circuit.measure_probs()
        _compare_stacked(circuit, 5, 1, rng)

    def test_p_equals_one(self):
        rng = np.random.default_rng(9)
        circuit = (
            Circuit(2).amplitude_embedding(4).strongly_entangling_layers(2)
            .measure_expval()
        )
        inputs = rng.uniform(0.1, 1.0, size=(1, 4, 4))
        _compare_stacked(circuit, 1, 4, rng, inputs)

    def test_want_inputs_false_skips_input_gradients(self):
        rng = np.random.default_rng(10)
        circuit = (
            Circuit(2).amplitude_embedding(4).strongly_entangling_layers(2)
            .measure_expval()
        )
        weights = rng.uniform(-np.pi, np.pi, (3, circuit.n_weights))
        inputs = rng.uniform(0.1, 1.0, size=(3, 2, 4))
        out, cache = execute_stacked(circuit, inputs, weights)
        grad_outputs = rng.normal(size=out.shape)
        gi_full, gw_full = backward_stacked(cache, grad_outputs)
        gi_none, gw_none = backward_stacked(
            cache, grad_outputs, want_inputs=False
        )
        assert gi_none is None and gi_full is not None
        np.testing.assert_allclose(gw_none, gw_full, atol=1e-12)

    def test_backward_twice_is_deterministic(self):
        rng = np.random.default_rng(11)
        circuit = Circuit(3).reuploading_layers(3, 2).measure_expval()
        weights = rng.uniform(-np.pi, np.pi, (2, circuit.n_weights))
        inputs = rng.uniform(-1, 1, size=(2, 3, 3))
        out, cache = execute_stacked(circuit, inputs, weights)
        grad_outputs = rng.normal(size=out.shape)
        first = backward_stacked(cache, grad_outputs)
        second = backward_stacked(cache, grad_outputs)
        np.testing.assert_array_equal(first[0], second[0])
        np.testing.assert_array_equal(first[1], second[1])


class TestStackedValidation:
    def _circuit(self):
        return (
            Circuit(2).amplitude_embedding(4).strongly_entangling_layers(1)
            .measure_expval()
        )

    def test_weights_must_be_2d(self):
        circuit = self._circuit()
        with pytest.raises(ValueError, match="stacked weights"):
            execute_stacked(
                circuit, np.ones((2, 1, 4)), np.zeros(circuit.n_weights)
            )

    def test_weight_width_must_match(self):
        circuit = self._circuit()
        with pytest.raises(ValueError, match="stacked weights"):
            execute_stacked(
                circuit, np.ones((2, 1, 4)), np.zeros((2, circuit.n_weights + 1))
            )

    def test_inputs_must_be_3d_with_matching_p(self):
        circuit = self._circuit()
        weights = np.zeros((2, circuit.n_weights))
        with pytest.raises(ValueError, match="stacked inputs"):
            execute_stacked(circuit, np.ones((2, 4)), weights)
        with pytest.raises(ValueError, match="stacked inputs"):
            execute_stacked(circuit, np.ones((3, 1, 4)), weights)
        with pytest.raises(ValueError, match="stacked inputs"):
            execute_stacked(circuit, np.ones((2, 1, 3)), weights)

    def test_inputs_required(self):
        circuit = self._circuit()
        with pytest.raises(ValueError, match="inputs"):
            execute_stacked(circuit, None, np.zeros((2, circuit.n_weights)))

    def test_measurement_required(self):
        circuit = Circuit(2).ry(0)
        with pytest.raises(ValueError, match="measurement"):
            execute_stacked(circuit, None, np.zeros((2, 1)))


class TestStackedPlanLowering:
    def test_sel_pairs_merge_and_ring_composes(self):
        # 7 wires, 5 layers: per layer the Rot runs merge into three 4x4
        # pair blocks + one single, and the 7-CNOT ring composes into a
        # single gather.
        circuit = Circuit(7).strongly_entangling_layers(5).measure_expval()
        plan = compile_stacked(circuit)
        dense = [i for i in plan.instructions if isinstance(i, _SDense)]
        perms = [i for i in plan.instructions if isinstance(i, _SPermutation)]
        assert len(dense) == 20  # (3 pairs + 1 single) x 5 layers
        assert sum(1 for i in dense if i.d == 4) == 15
        assert len(perms) == 5  # one composed gather per ring
        assert plan.n_instructions == 25

    def test_pair_geometry(self):
        circuit = Circuit(4).strongly_entangling_layers(1).measure_expval()
        plan = compile_stacked(circuit)
        pairs = [
            i for i in plan.instructions
            if isinstance(i, _SDense) and i.d == 4
        ]
        assert [pair.wires for pair in pairs] == [(0, 1), (2, 3)]
        for pair in pairs:
            assert pair.left == 2 ** pair.wires[0]
            assert pair.right == 2 ** (4 - 1 - pair.wires[1])

    def test_composed_permutation_inverse(self):
        circuit = Circuit(3).cnot(0, 1).cnot(1, 2).cnot(2, 0).measure_probs()
        plan = compile_stacked(circuit)
        perms = [i for i in plan.instructions if isinstance(i, _SPermutation)]
        assert len(perms) == 1
        composed = perms[0]
        np.testing.assert_array_equal(
            composed.perm[composed.inv], np.arange(8)
        )

    def test_plan_cached_and_invalidated(self):
        circuit = Circuit(3).strongly_entangling_layers(1).measure_expval()
        plan = stacked_plan(circuit)
        assert stacked_plan(circuit) is plan
        circuit.ry(0)
        assert stacked_plan(circuit) is not plan

    def test_identical_structures_share_a_plan(self):
        def make():
            return Circuit(3).strongly_entangling_layers(2).measure_expval()

        assert stacked_plan(make()) is stacked_plan(make())


class TestAmplitudeNormGuard:
    """The near-zero embedding guard (satellite fix): rows whose norm is
    built from subnormal squares must hit the zero-fallback path (or raise)
    instead of being normalized into garbage."""

    def test_subnormal_norm_rows_use_fallback(self):
        features = np.full((1, 4), 1e-200)  # squares underflow entirely
        state, norms, zero_rows = _prepare_amplitude(features, 2, True)
        assert zero_rows[0]
        assert norms[0] == 1.0
        np.testing.assert_allclose(state[0, 0], 1.0)

    def test_tiny_but_representable_norms_pass(self):
        features = np.zeros((1, 4))
        features[0, 0] = 1e-100  # norm 1e-100 >> eps: normalizes exactly
        state, norms, zero_rows = _prepare_amplitude(features, 2, False)
        assert not zero_rows[0]
        np.testing.assert_allclose(np.abs(state[0, 0]), 1.0)

    def test_near_eps_rows_rejected_without_fallback(self):
        features = np.full((1, 4), _NORM_EPS / 100)
        with pytest.raises(ValueError, match="norm"):
            _prepare_amplitude(features, 2, False)

    def test_execute_routes_subnormal_rows_through_fallback(self):
        rng = np.random.default_rng(12)
        circuit = (
            Circuit(2)
            .amplitude_embedding(4, zero_fallback=True)
            .strongly_entangling_layers(1)
            .measure_expval()
        )
        weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
        inputs = np.abs(rng.normal(size=(3, 4))) + 0.1
        inputs[1] = 1e-200  # subnormal-norm row
        zeroed = inputs.copy()
        zeroed[1] = 0.0
        out, __ = execute(circuit, inputs, weights, want_cache=False)
        out_zero, __ = execute(circuit, zeroed, weights, want_cache=False)
        np.testing.assert_allclose(out[1], out_zero[1], atol=1e-12)
