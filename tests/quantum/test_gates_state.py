"""Unit tests for gate matrices and batched statevector operations."""

import numpy as np
import pytest

from repro.quantum import (
    apply_gate,
    basis_state,
    expval_z,
    gates,
    marginal_probabilities,
    num_wires,
    probabilities,
    zero_state,
)


class TestGateMatrices:
    @pytest.mark.parametrize("name", ["RX", "RY", "RZ"])
    def test_rotations_are_unitary(self, name):
        gate = gates.PARAMETRIC_GATES[name](0.7)
        np.testing.assert_allclose(gate @ gate.conj().T, np.eye(2), atol=1e-12)

    @pytest.mark.parametrize("name", ["RX", "RY", "RZ"])
    def test_rotation_at_zero_is_identity(self, name):
        gate = gates.PARAMETRIC_GATES[name](0.0)
        np.testing.assert_allclose(gate, np.eye(2), atol=1e-12)

    def test_rx_pi_is_minus_i_x(self):
        np.testing.assert_allclose(gates.rx(np.pi), -1j * gates.PAULI_X, atol=1e-12)

    def test_ry_pi_flips_zero_to_one(self):
        state = gates.ry(np.pi) @ np.array([1, 0], dtype=complex)
        np.testing.assert_allclose(np.abs(state) ** 2, [0, 1], atol=1e-12)

    def test_rot_composition(self):
        phi, theta, omega = 0.3, 0.8, -0.4
        expected = gates.rz(omega) @ gates.ry(theta) @ gates.rz(phi)
        np.testing.assert_allclose(gates.rot(phi, theta, omega), expected, atol=1e-12)

    def test_crz_is_unitary_and_controlled(self):
        gate = gates.crz(1.1)
        np.testing.assert_allclose(gate @ gate.conj().T, np.eye(4), atol=1e-12)
        # Control off -> identity block.
        np.testing.assert_allclose(gate[:2, :2], np.eye(2), atol=1e-12)

    def test_batched_rotation_matches_scalar(self):
        thetas = np.array([0.1, 0.2, 0.3])
        batched = gates.ry(thetas)
        assert batched.shape == (3, 2, 2)
        for theta, gate in zip(thetas, batched):
            np.testing.assert_allclose(gate, gates.ry(theta), atol=1e-12)

    def test_batched_crz_matches_scalar(self):
        thetas = np.array([0.5, -0.5])
        batched = gates.crz(thetas)
        for theta, gate in zip(thetas, batched):
            np.testing.assert_allclose(gate, gates.crz(theta), atol=1e-12)

    def test_generator_identity_rotations(self):
        # dU/dtheta == -i/2 * G * U, checked by finite differences.
        eps = 1e-7
        for name in ["RX", "RY", "RZ", "CRZ"]:
            fn = gates.PARAMETRIC_GATES[name]
            theta = 0.4321
            numeric = (fn(theta + eps) - fn(theta - eps)) / (2 * eps)
            analytic = -0.5j * gates.generator(name) @ fn(theta)
            np.testing.assert_allclose(numeric, analytic, atol=1e-7)

    def test_generator_unknown_gate_raises(self):
        with pytest.raises(KeyError):
            gates.generator("CNOT")

    def test_hadamard_unitary(self):
        h = gates.HADAMARD
        np.testing.assert_allclose(h @ h, np.eye(2), atol=1e-12)


class TestStateOps:
    def test_zero_state(self):
        state = zero_state(3, batch=2)
        assert state.shape == (2, 8)
        np.testing.assert_allclose(probabilities(state)[:, 0], [1.0, 1.0])

    def test_basis_state(self):
        state = basis_state(5, 3)
        np.testing.assert_allclose(probabilities(state)[0, 5], 1.0)

    def test_basis_state_out_of_range(self):
        with pytest.raises(ValueError):
            basis_state(8, 3)

    def test_num_wires(self):
        assert num_wires(zero_state(4)) == 4

    def test_num_wires_bad_dim(self):
        with pytest.raises(ValueError):
            num_wires(np.zeros((1, 3), dtype=complex))

    def test_apply_x_flips(self):
        state = apply_gate(zero_state(2), gates.PAULI_X, (0,))
        # wire 0 is the most significant bit -> |10> = index 2
        np.testing.assert_allclose(probabilities(state)[0, 2], 1.0)

    def test_apply_cnot_entangles(self):
        state = zero_state(2)
        state = apply_gate(state, gates.HADAMARD, (0,))
        state = apply_gate(state, gates.CNOT, (0, 1))
        probs = probabilities(state)[0]
        np.testing.assert_allclose(probs, [0.5, 0, 0, 0.5], atol=1e-12)

    def test_cnot_wire_order_matters(self):
        state = apply_gate(zero_state(2), gates.PAULI_X, (1,))  # |01>
        flipped = apply_gate(state, gates.CNOT, (1, 0))  # control wire 1 is set
        np.testing.assert_allclose(probabilities(flipped)[0, 3], 1.0, atol=1e-12)

    def test_apply_gate_preserves_norm(self):
        rng = np.random.default_rng(0)
        state = rng.normal(size=(4, 8)) + 1j * rng.normal(size=(4, 8))
        state /= np.linalg.norm(state, axis=1, keepdims=True)
        out = apply_gate(state, gates.ry(0.77), (1,))
        np.testing.assert_allclose(np.linalg.norm(out, axis=1), np.ones(4), atol=1e-12)

    def test_apply_gate_batched_matrices(self):
        thetas = np.array([0.0, np.pi])
        state = zero_state(1, batch=2)
        out = apply_gate(state, gates.ry(thetas), (0,))
        probs = probabilities(out)
        np.testing.assert_allclose(probs[0], [1, 0], atol=1e-12)
        np.testing.assert_allclose(probs[1], [0, 1], atol=1e-12)

    def test_apply_gate_duplicate_wires(self):
        with pytest.raises(ValueError):
            apply_gate(zero_state(2), gates.CNOT, (0, 0))

    def test_apply_gate_wire_out_of_range(self):
        with pytest.raises(ValueError):
            apply_gate(zero_state(2), gates.PAULI_X, (2,))

    def test_apply_gate_wrong_gate_size(self):
        with pytest.raises(ValueError):
            apply_gate(zero_state(2), gates.CNOT, (0,))

    def test_batched_gate_wrong_batch(self):
        with pytest.raises(ValueError):
            apply_gate(zero_state(1, batch=3), gates.ry(np.array([0.1, 0.2])), (0,))


class TestMeasurements:
    def test_expval_zero_state(self):
        values = expval_z(zero_state(3), wires=(0, 1, 2))
        np.testing.assert_allclose(values, [[1.0, 1.0, 1.0]])

    def test_expval_flipped(self):
        state = apply_gate(zero_state(2), gates.PAULI_X, (1,))
        values = expval_z(state, wires=(0, 1))
        np.testing.assert_allclose(values, [[1.0, -1.0]])

    def test_expval_superposition(self):
        state = apply_gate(zero_state(1), gates.HADAMARD, (0,))
        np.testing.assert_allclose(expval_z(state, (0,)), [[0.0]], atol=1e-12)

    def test_expval_matches_analytic_ry(self):
        theta = 0.9
        state = apply_gate(zero_state(1), gates.ry(theta), (0,))
        np.testing.assert_allclose(expval_z(state, (0,)), [[np.cos(theta)]], atol=1e-12)

    def test_probabilities_sum_to_one(self):
        rng = np.random.default_rng(1)
        state = rng.normal(size=(5, 16)) + 1j * rng.normal(size=(5, 16))
        state /= np.linalg.norm(state, axis=1, keepdims=True)
        np.testing.assert_allclose(probabilities(state).sum(axis=1), np.ones(5))

    def test_marginal_probabilities(self):
        # Bell state on (0,1): marginal on wire 0 is uniform.
        state = zero_state(2)
        state = apply_gate(state, gates.HADAMARD, (0,))
        state = apply_gate(state, gates.CNOT, (0, 1))
        marginal = marginal_probabilities(state, (0,))
        np.testing.assert_allclose(marginal, [[0.5, 0.5]], atol=1e-12)

    def test_marginal_full_equals_probs(self):
        rng = np.random.default_rng(2)
        state = rng.normal(size=(2, 8)) + 1j * rng.normal(size=(2, 8))
        state /= np.linalg.norm(state, axis=1, keepdims=True)
        np.testing.assert_allclose(
            marginal_probabilities(state, (0, 1, 2)), probabilities(state), atol=1e-12
        )
