"""Tests for Pauli-string expectation and variance measurements."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quantum import (
    apply_gate,
    expval_z,
    gates,
    pauli_string_expval,
    pauli_string_variance,
    rotate_to_z_basis,
    zero_state,
)


def plus_state():
    return apply_gate(zero_state(1), gates.HADAMARD, (0,))


def bell_state():
    state = apply_gate(zero_state(2), gates.HADAMARD, (0,))
    return apply_gate(state, gates.CNOT, (0, 1))


class TestExpectations:
    def test_z_on_zero_state(self):
        np.testing.assert_allclose(pauli_string_expval(zero_state(1), "Z"),
                                   [1.0])

    def test_x_on_plus_state(self):
        np.testing.assert_allclose(pauli_string_expval(plus_state(), "X"),
                                   [1.0], atol=1e-12)

    def test_z_on_plus_state(self):
        np.testing.assert_allclose(pauli_string_expval(plus_state(), "Z"),
                                   [0.0], atol=1e-12)

    def test_y_eigenstate(self):
        # S H |0> = (|0> + i|1>)/sqrt(2) is the +1 eigenstate of Y.
        s_gate = np.diag([1, 1j]).astype(np.complex128)
        state = apply_gate(plus_state(), s_gate, (0,))
        np.testing.assert_allclose(pauli_string_expval(state, "Y"), [1.0],
                                   atol=1e-12)

    def test_identity_string(self):
        np.testing.assert_allclose(pauli_string_expval(bell_state(), "II"),
                                   [1.0], atol=1e-12)

    def test_bell_correlations(self):
        # <ZZ> = <XX> = 1 and <ZI> = 0 on the Bell state.
        bell = bell_state()
        np.testing.assert_allclose(pauli_string_expval(bell, "ZZ"), [1.0],
                                   atol=1e-12)
        np.testing.assert_allclose(pauli_string_expval(bell, "XX"), [1.0],
                                   atol=1e-12)
        np.testing.assert_allclose(pauli_string_expval(bell, "ZI"), [0.0],
                                   atol=1e-12)
        np.testing.assert_allclose(pauli_string_expval(bell, "YY"), [-1.0],
                                   atol=1e-12)

    def test_single_z_matches_expval_z(self):
        rng = np.random.default_rng(0)
        state = rng.normal(size=(4, 8)) + 1j * rng.normal(size=(4, 8))
        state /= np.linalg.norm(state, axis=1, keepdims=True)
        np.testing.assert_allclose(
            pauli_string_expval(state, "ZII"), expval_z(state, (0,))[:, 0],
            atol=1e-12,
        )
        np.testing.assert_allclose(
            pauli_string_expval(state, "IIZ"), expval_z(state, (2,))[:, 0],
            atol=1e-12,
        )

    def test_wrong_length_raises(self):
        with pytest.raises(ValueError):
            pauli_string_expval(zero_state(2), "Z")

    def test_unknown_letter_raises(self):
        with pytest.raises(ValueError):
            pauli_string_expval(zero_state(1), "Q")

    def test_lowercase_accepted(self):
        np.testing.assert_allclose(pauli_string_expval(zero_state(1), "z"),
                                   [1.0])

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000),
           letters=st.text(alphabet="IXYZ", min_size=3, max_size=3))
    def test_expectation_bounded(self, seed, letters):
        rng = np.random.default_rng(seed)
        state = rng.normal(size=(2, 8)) + 1j * rng.normal(size=(2, 8))
        state /= np.linalg.norm(state, axis=1, keepdims=True)
        values = pauli_string_expval(state, letters)
        assert np.all(np.abs(values) <= 1.0 + 1e-9)

    def test_rotation_preserves_norm(self):
        rng = np.random.default_rng(1)
        state = rng.normal(size=(3, 8)) + 1j * rng.normal(size=(3, 8))
        state /= np.linalg.norm(state, axis=1, keepdims=True)
        rotated = rotate_to_z_basis(state, "XYZ")
        np.testing.assert_allclose(np.linalg.norm(rotated, axis=1),
                                   np.ones(3), atol=1e-12)


class TestVariances:
    def test_eigenstate_has_zero_variance(self):
        np.testing.assert_allclose(pauli_string_variance(zero_state(1), "Z"),
                                   [0.0], atol=1e-12)

    def test_maximal_variance_on_unbiased_state(self):
        np.testing.assert_allclose(pauli_string_variance(plus_state(), "Z"),
                                   [1.0], atol=1e-12)

    def test_identity_has_zero_variance(self):
        np.testing.assert_allclose(pauli_string_variance(bell_state(), "II"),
                                   [0.0])

    def test_variance_matches_sampling(self):
        # Empirical variance of +-1 outcomes must approach 1 - <Z>^2.
        from repro.quantum import sample_basis_states, z_signs

        theta = 1.1
        state = apply_gate(zero_state(1), gates.ry(theta), (0,))
        analytic = pauli_string_variance(state, "Z")[0]
        samples = sample_basis_states(state, 40_000, np.random.default_rng(2))
        outcomes = z_signs(1)[0][samples[0]]
        assert abs(outcomes.var() - analytic) < 0.02

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_variance_in_unit_interval(self, seed):
        rng = np.random.default_rng(seed)
        state = rng.normal(size=(2, 4)) + 1j * rng.normal(size=(2, 4))
        state /= np.linalg.norm(state, axis=1, keepdims=True)
        variance = pauli_string_variance(state, "XZ")
        assert np.all((variance >= -1e-12) & (variance <= 1.0 + 1e-12))
