"""Tests for the top-level command-line interface."""

import numpy as np
import pytest

from repro.cli import main


class TestTrain:
    def test_train_classical_vae(self, tmp_path, capsys):
        out = tmp_path / "vae.npz"
        code = main([
            "train", "--model", "vae", "--dataset", "qm9",
            "--samples", "32", "--epochs", "1", "--batch-size", "16",
            "--out", str(out),
        ])
        assert code == 0
        assert out.exists()
        output = capsys.readouterr().out
        assert "epoch 1" in output and "checkpoint written" in output

    def test_train_sq_ae_without_checkpoint(self, capsys):
        code = main([
            "train", "--model", "sq-ae", "--dataset", "qm9",
            "--samples", "24", "--epochs", "1", "--batch-size", "16",
            "--patches", "2", "--layers", "1",
        ])
        assert code == 0
        assert "checkpoint" not in capsys.readouterr().out

    def test_train_fbq_with_normalize(self, capsys):
        code = main([
            "train", "--model", "f-bq-vae", "--dataset", "qm9",
            "--samples", "24", "--epochs", "1", "--batch-size", "16",
            "--layers", "1", "--normalize",
        ])
        assert code == 0

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["train", "--model", "gan", "--dataset", "qm9"])


class TestSample:
    @pytest.fixture(scope="class")
    def checkpoint(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("ckpt") / "vae.npz"
        main([
            "train", "--model", "vae", "--dataset", "qm9",
            "--samples", "48", "--epochs", "3", "--batch-size", "16",
            "--warm-start-bias", "--out", str(path),
        ])
        return path

    def test_sample_prints_molecules(self, checkpoint, capsys):
        code = main(["sample", "--checkpoint", str(checkpoint),
                     "--count", "5"])
        assert code == 0
        output = capsys.readouterr().out
        assert "QED" in output
        assert "samples decoded" in output

    def test_sample_is_seeded(self, checkpoint, capsys):
        main(["sample", "--checkpoint", str(checkpoint), "--count", "3",
              "--seed", "5"])
        first = capsys.readouterr().out
        main(["sample", "--checkpoint", str(checkpoint), "--count", "3",
              "--seed", "5"])
        second = capsys.readouterr().out
        assert first == second

    def test_missing_checkpoint_names_resolved_path(self, tmp_path):
        missing = tmp_path / "nope.npz"
        with pytest.raises(SystemExit, match=f"checkpoint not found: {missing}"):
            main(["sample", "--checkpoint", str(missing)])

    def test_missing_checkpoint_bare_name_resolves_npz(self, tmp_path):
        # A bare name falls back to the .npz-suffixed form; the error must
        # name the path that was actually probed.
        bare = tmp_path / "nope"
        with pytest.raises(SystemExit, match=f"checkpoint not found: {bare}.npz"):
            main(["sample", "--checkpoint", str(bare)])

    def test_bare_checkpoint_name_loads_npz_file(self, checkpoint, capsys):
        bare = str(checkpoint)[: -len(".npz")]
        assert main(["sample", "--checkpoint", bare, "--count", "2"]) == 0
        assert "samples decoded" in capsys.readouterr().out

    def test_vanilla_ae_cannot_sample(self, tmp_path, capsys):
        path = tmp_path / "ae.npz"
        main(["train", "--model", "ae", "--dataset", "qm9", "--samples", "24",
              "--epochs", "1", "--batch-size", "16", "--out", str(path)])
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main(["sample", "--checkpoint", str(path)])


class TestStatsAndDraw:
    def test_stats_qm9(self, capsys):
        assert main(["stats", "--dataset", "qm9", "--samples", "32"]) == 0
        assert "sparsity" in capsys.readouterr().out

    def test_stats_rejects_image_dataset(self):
        with pytest.raises(SystemExit):
            main(["stats", "--dataset", "cifar"])

    def test_draw_fbq_encoder(self, capsys):
        assert main(["draw", "--model", "f-bq-ae"]) == 0
        output = capsys.readouterr().out
        assert "amplitude embedding" in output
        assert "RZ(w0)" in output

    def test_draw_sq_patch(self, capsys):
        assert main(["draw", "--model", "sq-ae", "--patches", "2",
                     "--layers", "1"]) == 0
        assert "0:" in capsys.readouterr().out

    def test_draw_classical_rejected(self):
        with pytest.raises(SystemExit):
            main(["draw", "--model", "ae"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
