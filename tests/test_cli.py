"""Tests for the top-level command-line interface."""

import numpy as np
import pytest

from repro.cli import main


class TestTrain:
    def test_train_classical_vae(self, tmp_path, capsys):
        out = tmp_path / "vae.npz"
        code = main([
            "train", "--model", "vae", "--dataset", "qm9",
            "--samples", "32", "--epochs", "1", "--batch-size", "16",
            "--out", str(out),
        ])
        assert code == 0
        assert out.exists()
        output = capsys.readouterr().out
        assert "epoch 1" in output and "checkpoint written" in output

    def test_train_sq_ae_without_checkpoint(self, capsys):
        code = main([
            "train", "--model", "sq-ae", "--dataset", "qm9",
            "--samples", "24", "--epochs", "1", "--batch-size", "16",
            "--patches", "2", "--layers", "1",
        ])
        assert code == 0
        assert "checkpoint" not in capsys.readouterr().out

    def test_train_fbq_with_normalize(self, capsys):
        code = main([
            "train", "--model", "f-bq-vae", "--dataset", "qm9",
            "--samples", "24", "--epochs", "1", "--batch-size", "16",
            "--layers", "1", "--normalize",
        ])
        assert code == 0

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["train", "--model", "gan", "--dataset", "qm9"])


class TestSample:
    @pytest.fixture(scope="class")
    def checkpoint(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("ckpt") / "vae.npz"
        main([
            "train", "--model", "vae", "--dataset", "qm9",
            "--samples", "48", "--epochs", "3", "--batch-size", "16",
            "--warm-start-bias", "--out", str(path),
        ])
        return path

    def test_sample_prints_molecules(self, checkpoint, capsys):
        code = main(["sample", "--checkpoint", str(checkpoint),
                     "--count", "5"])
        assert code == 0
        output = capsys.readouterr().out
        assert "QED" in output
        assert "samples decoded" in output

    def test_sample_is_seeded(self, checkpoint, capsys):
        main(["sample", "--checkpoint", str(checkpoint), "--count", "3",
              "--seed", "5"])
        first = capsys.readouterr().out
        main(["sample", "--checkpoint", str(checkpoint), "--count", "3",
              "--seed", "5"])
        second = capsys.readouterr().out
        assert first == second

    def test_missing_checkpoint_names_resolved_path(self, tmp_path):
        missing = tmp_path / "nope.npz"
        with pytest.raises(SystemExit, match=f"checkpoint not found: {missing}"):
            main(["sample", "--checkpoint", str(missing)])

    def test_missing_checkpoint_bare_name_resolves_npz(self, tmp_path):
        # A bare name falls back to the .npz-suffixed form; the error must
        # name the path that was actually probed.
        bare = tmp_path / "nope"
        with pytest.raises(SystemExit, match=f"checkpoint not found: {bare}.npz"):
            main(["sample", "--checkpoint", str(bare)])

    def test_bare_checkpoint_name_loads_npz_file(self, checkpoint, capsys):
        bare = str(checkpoint)[: -len(".npz")]
        assert main(["sample", "--checkpoint", bare, "--count", "2"]) == 0
        assert "samples decoded" in capsys.readouterr().out

    def test_vanilla_ae_cannot_sample(self, tmp_path, capsys):
        path = tmp_path / "ae.npz"
        main(["train", "--model", "ae", "--dataset", "qm9", "--samples", "24",
              "--epochs", "1", "--batch-size", "16", "--out", str(path)])
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main(["sample", "--checkpoint", str(path)])

    def test_all_empty_decode_reports_cleanly(self, checkpoint, capsys,
                                              monkeypatch):
        # An undertrained model can decode every draw to an empty molecule;
        # that used to crash the scorers mid-table.  Now: clean 0/N, exit 0.
        import repro.cli as cli
        from repro.chem.batch import MoleculeBatch

        monkeypatch.setattr(
            cli, "sample_batch",
            lambda model, n, rng: MoleculeBatch.from_matrices(
                np.zeros((n, 8, 8))
            ),
        )
        code = main(["sample", "--checkpoint", str(checkpoint),
                     "--count", "7"])
        assert code == 0
        output = capsys.readouterr().out
        assert "0/7 samples decoded to usable molecules" in output
        assert "QED" not in output  # no orphaned table header


class TestPrecisionBackendRoundTrip:
    def test_float32_training_round_trips_through_sample(self, tmp_path,
                                                         capsys,
                                                         recwarn):
        from repro.nn.serialization import read_checkpoint_metadata

        path = tmp_path / "vae32.npz"
        assert main([
            "train", "--model", "vae", "--dataset", "qm9", "--samples", "32",
            "--epochs", "1", "--batch-size", "16", "--precision", "float32",
            "--backend", "numpy", "--warm-start-bias", "--out", str(path),
        ]) == 0
        meta = read_checkpoint_metadata(path)
        assert meta["precision"] == "float32"
        assert meta["backend"] == "numpy"
        # Sampling rebuilds the module at the recorded dtype, so the
        # width-mismatch warning must not fire.
        assert main(["sample", "--checkpoint", str(path), "--count", "3"]) == 0
        assert not [w for w in recwarn
                    if "parameters but the module was built"
                    in str(w.message)]
        capsys.readouterr()

    def test_mismatched_manual_rebuild_warns(self, tmp_path):
        # Loading a float32 checkpoint into a float64-built module is the
        # legacy failure mode; it now names both dtypes.
        from repro.models import build_model
        from repro.nn.serialization import load_module, save_module

        source = build_model("vae", 64, 4, 3, 6, 0, dtype="float32")
        path = save_module(source, tmp_path / "w32")
        wide = build_model("vae", 64, 4, 3, 6, 1)
        with pytest.warns(UserWarning, match=r"float32 parameters but the "
                                             r"module was built float64"):
            load_module(wide, path)


class TestServe:
    def test_serve_answers_over_tcp_then_exits(self, tmp_path, capsys):
        import threading
        import time

        from repro.serving import NetworkClient

        ckpt = tmp_path / "vae.npz"
        main(["train", "--model", "vae", "--dataset", "qm9", "--samples",
              "32", "--epochs", "1", "--batch-size", "16",
              "--out", str(ckpt)])
        capsys.readouterr()

        ready = tmp_path / "ready.txt"
        codes = []
        thread = threading.Thread(
            target=lambda: codes.append(main([
                "serve", "--checkpoint", str(ckpt), "--port", "0",
                "--flush-ms", "2", "--max-requests", "4",
                "--ready-file", str(ready),
            ])),
            daemon=True,
        )
        thread.start()
        deadline = time.monotonic() + 30.0
        while not ready.exists() and time.monotonic() < deadline:
            time.sleep(0.02)
        host, port = ready.read_text().split()

        with NetworkClient(host, int(port)) as client:
            assert client.ping()
            matrices = client.sample(3, seed=1)
            assert matrices.shape == (3, 8, 8)
            assert client.stats()["batcher"]["requests"] >= 1
            client.ping()  # 4th request spends the lifetime budget
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert codes == [0]
        assert "serving" in capsys.readouterr().out

    def test_serve_missing_checkpoint_exits_cleanly(self, tmp_path):
        missing = tmp_path / "gone.npz"
        with pytest.raises(SystemExit,
                           match=f"checkpoint not found: {missing}"):
            main(["serve", "--checkpoint", str(missing), "--port", "0"])


class TestFlagValidation:
    """Non-positive numeric flags exit with a message naming the flag."""

    @pytest.mark.parametrize("argv, flag", [
        (["train", "--model", "vae", "--dataset", "qm9",
          "--samples", "0"], "--samples"),
        (["train", "--model", "vae", "--dataset", "qm9",
          "--epochs", "-3"], "--epochs"),
        (["train", "--model", "vae", "--dataset", "qm9",
          "--batch-size", "0"], "--batch-size"),
        (["train", "--model", "vae", "--dataset", "qm9",
          "--patches", "-1"], "--patches"),
        (["train", "--model", "vae", "--dataset", "qm9",
          "--latent", "0"], "--latent"),
        (["sample", "--checkpoint", "x.npz", "--count", "0"], "--count"),
        (["sample", "--checkpoint", "x.npz", "--count", "two"], "--count"),
        (["stats", "--dataset", "qm9", "--samples", "-5"], "--samples"),
        (["draw", "--model", "sq-ae", "--patches", "0"], "--patches"),
        (["serve", "--checkpoint", "x.npz", "--max-batch", "0"],
         "--max-batch"),
        (["serve", "--checkpoint", "x.npz", "--flush-ms", "-1"],
         "--flush-ms"),
    ])
    def test_rejected_with_flag_named(self, argv, flag, capsys):
        with pytest.raises(SystemExit):
            main(argv)
        err = capsys.readouterr().err
        assert f"argument {flag}" in err
        assert "expected a positive" in err


class TestStatsAndDraw:
    def test_stats_qm9(self, capsys):
        assert main(["stats", "--dataset", "qm9", "--samples", "32"]) == 0
        assert "sparsity" in capsys.readouterr().out

    def test_stats_rejects_image_dataset(self):
        with pytest.raises(SystemExit):
            main(["stats", "--dataset", "cifar"])

    def test_draw_fbq_encoder(self, capsys):
        assert main(["draw", "--model", "f-bq-ae"]) == 0
        output = capsys.readouterr().out
        assert "amplitude embedding" in output
        assert "RZ(w0)" in output

    def test_draw_sq_patch(self, capsys):
        assert main(["draw", "--model", "sq-ae", "--patches", "2",
                     "--layers", "1"]) == 0
        assert "0:" in capsys.readouterr().out

    def test_draw_sq_patches_8_gets_consistent_input_dim(self, capsys):
        # The input dim used to be a dead `64 if ... else 64`, which gave
        # an 8-patch model 8-feature patches; patches are 16-feature (4
        # qubits) regardless of --patches now.
        assert main(["draw", "--model", "sq-ae", "--patches", "8",
                     "--layers", "1"]) == 0
        output = capsys.readouterr().out
        assert "0:" in output and "3:" in output  # 4 wires per patch

    def test_draw_classical_rejected(self):
        with pytest.raises(SystemExit):
            main(["draw", "--model", "ae"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
