"""Tests for the molecule-matrix codec and valence sanitization/repair."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chem import (
    AROMATIC,
    Molecule,
    MoleculeSpec,
    check_valence,
    decode_molecule,
    discretize,
    encode_molecule,
    is_valid,
    is_well_formed,
    largest_fragment,
    random_molecule,
    sanitize_lenient,
    symmetrize,
)


def paper_fig3_matrix():
    """The 9x9 QM9 molecule matrix from Fig. 3 of the paper."""
    return np.array(
        [
            [1, 1, 0, 0, 0, 0, 0, 0, 0],
            [1, 1, 4, 0, 0, 0, 0, 0, 4],
            [0, 4, 1, 1, 4, 0, 0, 0, 0],
            [0, 0, 1, 2, 0, 0, 0, 0, 0],
            [0, 0, 4, 0, 1, 4, 0, 0, 0],
            [0, 0, 0, 0, 4, 1, 4, 0, 0],
            [0, 0, 0, 0, 0, 4, 1, 2, 4],
            [0, 0, 0, 0, 0, 0, 2, 3, 0],
            [0, 4, 0, 0, 0, 0, 4, 0, 2],
        ]
    )


class TestCodec:
    def test_encode_ethanol(self):
        mol = Molecule.from_atoms_and_bonds(
            ["C", "C", "O"], [(0, 1, 1.0), (1, 2, 1.0)]
        )
        matrix = encode_molecule(mol, 4)
        assert matrix.shape == (4, 4)
        assert matrix[0, 0] == 1 and matrix[1, 1] == 1 and matrix[2, 2] == 3
        assert matrix[0, 1] == matrix[1, 0] == 1
        assert matrix[3, 3] == 0

    def test_roundtrip_simple(self):
        mol = Molecule.from_atoms_and_bonds(
            ["C", "N", "O"], [(0, 1, 2.0), (1, 2, 1.0)]
        )
        assert decode_molecule(encode_molecule(mol, 5)) == mol

    def test_roundtrip_aromatic(self):
        bonds = [(i, (i + 1) % 6, AROMATIC) for i in range(6)]
        mol = Molecule.from_atoms_and_bonds(["C"] * 6, bonds)
        assert decode_molecule(encode_molecule(mol, 8)) == mol

    def test_decode_paper_example(self):
        mol = decode_molecule(paper_fig3_matrix())
        assert mol.num_atoms == 9
        # Fig. 3 diagonal: [1,1,1,2,1,1,1,3,2] -> six C, two N, one O.
        assert mol.symbols.count("C") == 6
        assert mol.symbols.count("N") == 2
        assert mol.symbols.count("O") == 1
        # Off-diagonal non-zeros come in symmetric pairs: 9 bonds total.
        assert mol.num_bonds == 9

    def test_encode_too_many_atoms(self):
        mol = Molecule.from_atoms_and_bonds(["C"] * 3, [])
        with pytest.raises(ValueError):
            encode_molecule(mol, 2)

    def test_decode_skips_bonds_to_empty_slots(self):
        matrix = np.zeros((3, 3), dtype=int)
        matrix[0, 0] = 1
        matrix[0, 2] = 1  # bond to an empty slot
        matrix[2, 0] = 1
        mol = decode_molecule(matrix)
        assert mol.num_atoms == 1
        assert mol.num_bonds == 0

    def test_decode_unknown_atom_code(self):
        matrix = np.zeros((2, 2), dtype=int)
        matrix[0, 0] = 9
        with pytest.raises(ValueError):
            decode_molecule(matrix)

    def test_decode_nonsquare(self):
        with pytest.raises(ValueError):
            decode_molecule(np.zeros((2, 3)))

    def test_symmetrize(self):
        matrix = np.array([[0.0, 2.0], [0.0, 0.0]])
        np.testing.assert_allclose(symmetrize(matrix), [[0, 1], [1, 0]])

    def test_discretize_rounds_and_clips(self):
        raw = np.array(
            [
                [1.4, 0.6, -0.3],
                [0.6, 7.9, 3.6],
                [-0.3, 3.6, 2.2],
            ]
        )
        out = discretize(raw)
        assert out[0, 0] == 1
        assert out[1, 1] == 5  # diag clipped to max atom code
        assert out[0, 2] == 0  # negative -> 0
        assert out[1, 2] == 4  # off-diag clipped to max bond code
        assert np.array_equal(out, out.T)

    def test_discretize_symmetrizes_first(self):
        raw = np.zeros((2, 2))
        raw[0, 1] = 2.0  # asymmetric input averages to 1.0
        out = discretize(raw)
        assert out[0, 1] == out[1, 0] == 1

    def test_is_well_formed(self):
        assert is_well_formed(paper_fig3_matrix())
        bad = paper_fig3_matrix()
        bad[0, 1] = 9
        assert not is_well_formed(bad)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_molecule_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        mol = random_molecule(rng, MoleculeSpec())
        assert decode_molecule(encode_molecule(mol, 9)) == mol

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_discretize_always_well_formed(self, seed):
        rng = np.random.default_rng(seed)
        raw = rng.normal(scale=3.0, size=(8, 8))
        assert is_well_formed(discretize(raw))


class TestStrictValidation:
    def test_valid_molecule(self):
        mol = Molecule.from_atoms_and_bonds(
            ["C", "C", "O"], [(0, 1, 1.0), (1, 2, 1.0)]
        )
        report = check_valence(mol)
        assert report.ok and not report.problems

    def test_overloaded_carbon(self):
        mol = Molecule.from_atoms_and_bonds(
            ["C", "O", "O", "O"],
            [(0, 1, 2.0), (0, 2, 2.0), (0, 3, 2.0)],
        )
        report = check_valence(mol)
        assert not report.ok
        assert any("valence" in p for p in report.problems)

    def test_fluorine_overload(self):
        mol = Molecule.from_atoms_and_bonds(["F", "C"], [(0, 1, 2.0)])
        assert not is_valid(mol)

    def test_aromatic_outside_ring_invalid(self):
        mol = Molecule.from_atoms_and_bonds(["C", "C"], [(0, 1, AROMATIC)])
        report = check_valence(mol)
        assert not report.ok
        assert any("aromatic" in p for p in report.problems)

    def test_disconnected_invalid(self):
        mol = Molecule.from_atoms_and_bonds(["C", "C"], [])
        assert not is_valid(mol)

    def test_empty_invalid(self):
        assert not is_valid(Molecule())


class TestLenientRepair:
    def test_repair_returns_valid(self):
        mol = Molecule.from_atoms_and_bonds(
            ["C", "O", "O", "O"],
            [(0, 1, 2.0), (0, 2, 2.0), (0, 3, 2.0)],
        )
        fixed = sanitize_lenient(mol)
        assert is_valid(fixed)

    def test_repair_demotes_nonring_aromatic(self):
        mol = Molecule.from_atoms_and_bonds(["C", "C"], [(0, 1, AROMATIC)])
        fixed = sanitize_lenient(mol)
        assert fixed.bond_order(0, 1) == 1.0
        assert is_valid(fixed)

    def test_repair_keeps_largest_fragment(self):
        mol = Molecule.from_atoms_and_bonds(
            ["C", "C", "C", "O"], [(0, 1, 1.0), (0, 2, 1.0)]
        )
        fixed = sanitize_lenient(mol)
        assert fixed.num_atoms == 3
        assert "O" not in fixed.symbols

    def test_repair_empty(self):
        assert sanitize_lenient(Molecule()).num_atoms == 0

    def test_repair_preserves_valid_molecule(self):
        mol = Molecule.from_atoms_and_bonds(
            ["C", "C", "O"], [(0, 1, 1.0), (1, 2, 1.0)]
        )
        assert sanitize_lenient(mol) == mol

    def test_largest_fragment_tie_breaks_low_index(self):
        mol = Molecule.from_atoms_and_bonds(
            ["C", "N", "O", "S"], [(0, 1, 1.0), (2, 3, 1.0)]
        )
        frag = largest_fragment(mol)
        assert frag.symbols == ["C", "N"]

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_repair_always_valid_on_random_matrices(self, seed):
        # The Table II pipeline: random continuous matrix -> discretize ->
        # decode -> lenient repair must yield a valid or empty molecule.
        rng = np.random.default_rng(seed)
        raw = rng.normal(loc=0.4, scale=1.5, size=(12, 12))
        mol = decode_molecule(discretize(raw))
        fixed = sanitize_lenient(mol)
        assert fixed.num_atoms == 0 or is_valid(fixed)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_generator_molecules_strictly_valid(self, seed):
        rng = np.random.default_rng(seed)
        spec = MoleculeSpec(min_atoms=5, max_atoms=20,
                            hetero_weights={"N": 0.1, "O": 0.12, "F": 0.03, "S": 0.04},
                            ring_closure_prob=0.6, max_ring_closures=3)
        mol = random_molecule(rng, spec)
        assert is_valid(mol)
