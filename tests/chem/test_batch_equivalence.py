"""Golden-equivalence suite: every batched scorer matches its per-molecule
reference bit-for-bit.

The batched pipeline in :mod:`repro.chem.batch` is a pure performance
rewrite — the per-molecule scalar functions remain the semantic source of
truth.  These tests compare the two over seeded randomized molecule sets
(plain == on floats, no tolerance), including the hostile shapes the
pipeline must survive: empty sets, molecules that sanitize down to zero
atoms, and disconnected multi-fragment decodes from noisy matrices.
"""

import math

import numpy as np
import pytest

from repro.chem import (
    MoleculeSpec,
    crippen_logp,
    decode_molecule,
    default_fragment_table,
    hydrogen_bond_acceptors,
    hydrogen_bond_donors,
    is_valid,
    normalized_logp,
    normalized_sa,
    qed,
    random_molecules,
    sa_score,
    sanitize_lenient,
    structural_alerts,
    tpsa,
    uniqueness,
)
from repro.chem.batch import (
    MoleculeBatch,
    crippen_logp_batch,
    descriptor_matrix_batch,
    hydrogen_bond_acceptors_batch,
    hydrogen_bond_donors_batch,
    molecular_weight_batch,
    qed_batch,
    sa_score_batch,
    sanitize_batch,
    structural_alerts_batch,
    tpsa_batch,
    unique_fraction,
    valid_mask,
)
from repro.chem.fingerprints import (
    bulk_tanimoto,
    morgan_fingerprint,
    morgan_fingerprints,
    nearest_neighbor_similarity,
    nearest_neighbor_similarity_reference,
    novelty,
    tanimoto_matrix,
)
from repro.chem.metrics import (
    normalized_logp_batch,
    normalized_sa_batch,
    score_matrices,
    score_matrices_reference,
    score_molecules,
    score_molecules_reference,
)
from repro.chem.molecule import Molecule
from repro.data import load_pdbbind_ligands, load_qm9

RICH_SPEC = MoleculeSpec(
    min_atoms=6,
    max_atoms=24,
    hetero_weights={"N": 0.12, "O": 0.14, "F": 0.03, "S": 0.05, "P": 0.01,
                    "Cl": 0.02},
    ring_closure_prob=0.5,
    max_ring_closures=3,
    double_bond_prob=0.25,
    triple_bond_prob=0.04,
    aromatize_prob=0.6,
)


def seeded_molecules(seed=11, n=60):
    """Randomized workload: small + hetero-rich molecules, plus empties."""
    mols = random_molecules(n // 2, seed)
    mols += random_molecules(n - n // 2, seed + 1, RICH_SPEC)
    mols.insert(0, Molecule())
    mols.insert(len(mols) // 2, Molecule())
    return mols


def noisy_stack(seed=404, n=48, sigma=0.45):
    """Noisy ligand matrices — decode to a mix of valid molecules,
    repairables, disconnected fragments, and zero-atom wrecks.  The last
    matrix is forced to all-empty slots so the stack always contains a
    decode-to-nothing case."""
    raw = load_pdbbind_ligands(n, seed=2019).raw.astype(np.float64)
    rng = np.random.default_rng(seed)
    noisy = raw + rng.normal(0.0, sigma, size=raw.shape)
    noisy[-1] = -np.abs(noisy[-1])
    return noisy


def assert_same_graph(a, b):
    assert a.symbols == b.symbols
    assert a._bonds == b._bonds
    assert list(a._bonds) == list(b._bonds)  # insertion order too
    assert a._adjacency == b._adjacency


class TestPackedDecode:
    def test_from_matrices_matches_scalar_decode(self):
        from repro.chem import discretize

        stack = noisy_stack()
        batch = MoleculeBatch.from_matrices(stack)
        assert len(batch) == stack.shape[0]
        for matrix, packed in zip(stack, batch.molecules):
            assert_same_graph(decode_molecule(discretize(matrix)), packed)

    def test_workload_is_hostile(self):
        # The noisy stack must actually exercise the edge cases the suite
        # claims to cover, or the equivalence tests prove less than stated.
        mols = MoleculeBatch.from_matrices(noisy_stack()).molecules
        assert any(not m.is_connected() and m.num_atoms for m in mols)
        assert any(not is_valid(m) for m in mols)
        assert any(m.num_atoms == 0 for m in mols)

    def test_empty_stack(self):
        batch = MoleculeBatch.from_matrices(np.zeros((0, 8, 8)))
        assert len(batch) == 0
        assert qed_batch(batch).shape == (0,)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            MoleculeBatch.from_matrices(np.zeros((2, 4, 5)))

    def test_roundtrip_from_molecules(self):
        mols = seeded_molecules()
        batch = MoleculeBatch.from_molecules(mols)
        for original, packed in zip(mols, batch.molecules):
            assert_same_graph(original, packed)


class TestScorerEquivalence:
    """Exact == against the scalar reference, molecule by molecule."""

    def batches(self):
        yield seeded_molecules()
        yield MoleculeBatch.from_matrices(noisy_stack()).molecules
        yield []

    def check(self, batch_fn, scalar_fn):
        for mols in self.batches():
            got = batch_fn(mols)
            expected = [scalar_fn(m) for m in mols]
            assert got.tolist() == expected

    def test_molecular_weight(self):
        self.check(molecular_weight_batch, lambda m: m.molecular_weight())

    def test_crippen_logp(self):
        self.check(crippen_logp_batch, crippen_logp)

    def test_crippen_rejects_hydrogen_like_reference(self):
        hmol = Molecule.from_atoms_and_bonds(["C", "H"], [(0, 1, 1.0)])
        with pytest.raises(ValueError):
            crippen_logp(hmol)
        with pytest.raises(ValueError):
            crippen_logp_batch([hmol])

    def test_tpsa(self):
        self.check(tpsa_batch, tpsa)

    def test_hydrogen_bond_counts(self):
        self.check(hydrogen_bond_acceptors_batch, hydrogen_bond_acceptors)
        self.check(hydrogen_bond_donors_batch, hydrogen_bond_donors)

    def test_structural_alerts(self):
        self.check(structural_alerts_batch, structural_alerts)

    def test_qed(self):
        self.check(qed_batch, qed)

    def test_sa_score(self):
        table = default_fragment_table()
        self.check(lambda m: sa_score_batch(m, table),
                   lambda m: sa_score(m, table))

    def test_normalized_metrics(self):
        table = default_fragment_table()
        self.check(normalized_logp_batch, normalized_logp)
        self.check(lambda m: normalized_sa_batch(m, table),
                   lambda m: normalized_sa(m, table))

    def test_descriptor_matrix(self):
        from repro.evaluation.distribution import descriptor_matrix_reference

        for mols in self.batches():
            got = descriptor_matrix_batch(mols)
            assert got.shape == (len(mols), 9)
            assert got.tolist() == descriptor_matrix_reference(mols).tolist()

    def test_valid_mask(self):
        for mols in self.batches():
            assert valid_mask(MoleculeBatch.from_molecules(mols)).tolist() \
                == [is_valid(m) for m in mols]

    def test_sanitize_batch(self):
        for mols in self.batches():
            got = sanitize_batch(MoleculeBatch.from_molecules(mols))
            assert len(got) == len(mols)
            for cleaned, m in zip(got, mols):
                assert_same_graph(cleaned, sanitize_lenient(m))

    def test_unique_fraction(self):
        for mols in self.batches():
            if not mols:
                continue
            assert unique_fraction(MoleculeBatch.from_molecules(mols)) \
                == uniqueness(mols)


class TestFingerprintEquivalence:
    def test_bulk_fingerprints_match_scalar(self):
        mols = seeded_molecules(seed=23, n=40)
        fps = morgan_fingerprints(mols)
        assert fps.shape == (len(mols), 1024)
        for row, m in zip(fps, mols):
            assert row.tolist() == morgan_fingerprint(m).tolist()

    def test_bulk_fingerprints_other_widths(self):
        mols = seeded_molecules(seed=5, n=12)
        for n_bits, radius in ((64, 1), (256, 3)):
            fps = morgan_fingerprints(mols, n_bits=n_bits, radius=radius)
            for row, m in zip(fps, mols):
                assert row.tolist() == morgan_fingerprint(
                    m, n_bits=n_bits, radius=radius
                ).tolist()
        with pytest.raises(ValueError):
            morgan_fingerprints(mols, n_bits=4)

    def test_tanimoto_matrix_matches_bulk_tanimoto(self):
        generated = seeded_molecules(seed=31, n=20)
        reference = seeded_molecules(seed=37, n=16)
        gen_fps = morgan_fingerprints(generated)
        ref_fps = morgan_fingerprints(reference)
        matrix = tanimoto_matrix(gen_fps, ref_fps)
        assert matrix.shape == (len(generated), len(reference))
        for i, fp in enumerate(gen_fps):
            assert matrix[i].tolist() == bulk_tanimoto(fp, ref_fps).tolist()

    def test_nearest_neighbor_similarity_matches_reference(self):
        generated = seeded_molecules(seed=41, n=24)
        reference = seeded_molecules(seed=43, n=18)
        got = nearest_neighbor_similarity(generated, reference)
        expected = nearest_neighbor_similarity_reference(generated, reference)
        assert got.tolist() == expected.tolist()

    def test_precomputed_reference_fingerprints(self):
        generated = seeded_molecules(seed=47, n=10)
        reference = seeded_molecules(seed=53, n=10)
        ref_fps = morgan_fingerprints(reference)
        assert novelty(generated, reference) == novelty(
            generated, reference_fingerprints=ref_fps
        )

    def test_empty_generated(self):
        reference = seeded_molecules(seed=59, n=4)
        assert nearest_neighbor_similarity([], reference).shape == (0,)

    def test_empty_reference_rejected(self):
        generated = seeded_molecules(seed=61, n=4)
        with pytest.raises(ValueError):
            nearest_neighbor_similarity(generated)
        with pytest.raises(ValueError):
            nearest_neighbor_similarity(generated, [])


class TestSetScoring:
    def test_score_molecules_matches_reference(self):
        table = default_fragment_table()
        for mols in (seeded_molecules(),
                     MoleculeBatch.from_matrices(noisy_stack()).molecules,
                     []):
            for correct in (True, False):
                assert score_molecules(mols, table=table, correct=correct) \
                    == score_molecules_reference(
                        mols, table=table, correct=correct
                    )

    def test_score_matrices_matches_reference(self):
        table = default_fragment_table()
        stack = noisy_stack(seed=505, n=32)
        for correct in (True, False):
            assert score_matrices(stack, table=table, correct=correct) \
                == score_matrices_reference(
                    stack, table=table, correct=correct
                )

    def test_score_matrices_empty(self):
        assert score_matrices(np.asarray([])) \
            == score_matrices_reference(np.asarray([]))
        empty_stack = np.zeros((0, 8, 8))
        assert score_matrices(empty_stack) \
            == score_matrices_reference(empty_stack)

    def test_all_molecules_sanitize_to_nothing(self):
        # A stack whose every decode repairs down to zero atoms must hit
        # the empty-scored branch identically in both implementations.
        stack = np.zeros((4, 8, 8))
        assert score_matrices(stack) == score_matrices_reference(stack)
        scores = score_matrices(stack)
        assert scores.n_scored == 0 and scores.qed == 0.0
