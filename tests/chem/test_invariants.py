"""Property-based invariants of the chemistry pipeline.

These pin down the algebraic properties the Table II pipeline silently
relies on: idempotence of repair and discretization, codec consistency,
and boundedness of every score.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.chem import (
    MoleculeSpec,
    canonical_signature,
    decode_molecule,
    discretize,
    encode_molecule,
    is_valid,
    is_well_formed,
    normalized_logp,
    normalized_sa,
    qed,
    random_molecule,
    sanitize_lenient,
)
from repro.chem.sa import default_fragment_table

seeds = st.integers(0, 100_000)


def random_mol(seed, max_atoms=16):
    rng = np.random.default_rng(seed)
    spec = MoleculeSpec(
        min_atoms=3, max_atoms=max_atoms,
        hetero_weights={"N": 0.1, "O": 0.12, "F": 0.03, "S": 0.03},
        ring_closure_prob=0.5, max_ring_closures=3,
    )
    return random_molecule(rng, spec)


class TestIdempotence:
    @settings(max_examples=30, deadline=None)
    @given(seed=seeds)
    def test_sanitize_lenient_idempotent(self, seed):
        rng = np.random.default_rng(seed)
        raw = decode_molecule(
            discretize(rng.normal(loc=0.4, scale=1.5, size=(10, 10)))
        )
        once = sanitize_lenient(raw)
        twice = sanitize_lenient(once)
        assert canonical_signature(once) == canonical_signature(twice)

    @settings(max_examples=30, deadline=None)
    @given(seed=seeds)
    def test_discretize_idempotent(self, seed):
        rng = np.random.default_rng(seed)
        matrix = discretize(rng.normal(scale=2.0, size=(8, 8)))
        np.testing.assert_array_equal(discretize(matrix), matrix)

    @settings(max_examples=30, deadline=None)
    @given(seed=seeds)
    def test_sanitize_preserves_valid_molecules(self, seed):
        mol = random_mol(seed)
        repaired = sanitize_lenient(mol)
        assert canonical_signature(repaired) == canonical_signature(mol)


class TestCodecConsistency:
    @settings(max_examples=30, deadline=None)
    @given(seed=seeds)
    def test_encode_decode_identity(self, seed):
        mol = random_mol(seed, max_atoms=20)
        again = decode_molecule(encode_molecule(mol, 32))
        assert canonical_signature(again) == canonical_signature(mol)

    @settings(max_examples=30, deadline=None)
    @given(seed=seeds)
    def test_encoded_matrices_well_formed(self, seed):
        mol = random_mol(seed, max_atoms=20)
        assert is_well_formed(encode_molecule(mol, 32))

    @settings(max_examples=30, deadline=None)
    @given(seed=seeds)
    def test_atom_count_preserved(self, seed):
        mol = random_mol(seed)
        matrix = encode_molecule(mol, 24)
        assert int((np.diag(matrix) > 0).sum()) == mol.num_atoms


class TestScoreBounds:
    @settings(max_examples=25, deadline=None)
    @given(seed=seeds)
    def test_all_scores_bounded(self, seed):
        mol = random_mol(seed, max_atoms=24)
        table = default_fragment_table()
        assert 0.0 <= qed(mol) <= 1.0
        assert 0.0 <= normalized_logp(mol) <= 1.0
        assert 0.0 <= normalized_sa(mol, table) <= 1.0

    @settings(max_examples=25, deadline=None)
    @given(seed=seeds)
    def test_repaired_random_matrices_scoreable(self, seed):
        rng = np.random.default_rng(seed)
        raw = decode_molecule(
            discretize(rng.normal(loc=0.35, scale=1.4, size=(12, 12)))
        )
        repaired = sanitize_lenient(raw)
        if repaired.num_atoms:
            assert is_valid(repaired)
            assert 0.0 <= qed(repaired) <= 1.0

    @settings(max_examples=25, deadline=None)
    @given(seed=seeds)
    def test_signature_stable_under_encode_roundtrip(self, seed):
        mol = random_mol(seed)
        sig = canonical_signature(mol)
        roundtrip = decode_molecule(encode_molecule(mol, 20))
        assert canonical_signature(roundtrip) == sig
