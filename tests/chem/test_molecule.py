"""Tests for the molecular graph and periodic data."""

import numpy as np
import pytest

from repro.chem import AROMATIC, Molecule, element, from_smiles


def ethanol():
    # CCO
    return Molecule.from_atoms_and_bonds(
        ["C", "C", "O"], [(0, 1, 1.0), (1, 2, 1.0)]
    )


def benzene():
    bonds = [(i, (i + 1) % 6, AROMATIC) for i in range(6)]
    return Molecule.from_atoms_and_bonds(["C"] * 6, bonds)


class TestPeriodic:
    def test_known_elements(self):
        assert element("C").max_valence == 4
        assert element("N").max_valence == 3
        assert element("O").max_valence == 2
        assert element("F").max_valence == 1
        assert element("S").max_valence == 6

    def test_unknown_element(self):
        with pytest.raises(KeyError):
            element("Xx")


class TestConstruction:
    def test_add_atoms_and_bonds(self):
        mol = ethanol()
        assert mol.num_atoms == 3
        assert mol.num_bonds == 2
        assert mol.bond_order(0, 1) == 1.0
        assert mol.bond_order(0, 2) == 0.0

    def test_self_bond_rejected(self):
        mol = Molecule()
        mol.add_atom("C")
        with pytest.raises(ValueError):
            mol.add_bond(0, 0)

    def test_duplicate_bond_rejected(self):
        mol = ethanol()
        with pytest.raises(ValueError):
            mol.add_bond(1, 0)

    def test_invalid_order_rejected(self):
        mol = ethanol()
        with pytest.raises(ValueError):
            mol.add_bond(0, 2, 2.5)

    def test_bad_atom_index(self):
        mol = ethanol()
        with pytest.raises(IndexError):
            mol.add_bond(0, 7)

    def test_remove_bond(self):
        mol = ethanol()
        mol.remove_bond(1, 2)
        assert mol.bond_order(1, 2) == 0.0
        with pytest.raises(KeyError):
            mol.remove_bond(1, 2)

    def test_set_bond_order(self):
        mol = ethanol()
        mol.set_bond_order(0, 1, 2.0)
        assert mol.bond_order(0, 1) == 2.0

    def test_copy_is_independent(self):
        mol = ethanol()
        clone = mol.copy()
        clone.set_bond_order(0, 1, 3.0)
        assert mol.bond_order(0, 1) == 1.0


class TestValenceAndHydrogens:
    def test_implicit_hydrogens_methane_like(self):
        mol = Molecule()
        mol.add_atom("C")
        assert mol.implicit_hydrogens(0) == 4

    def test_implicit_hydrogens_ethanol(self):
        mol = ethanol()
        assert mol.implicit_hydrogens(0) == 3  # CH3
        assert mol.implicit_hydrogens(1) == 2  # CH2
        assert mol.implicit_hydrogens(2) == 1  # OH
        assert mol.total_hydrogens() == 6

    def test_aromatic_carbon_hydrogens(self):
        mol = benzene()
        # Each aromatic CH: 2 x 1.5 used -> 1 hydrogen.
        assert all(mol.implicit_hydrogens(i) == 1 for i in range(6))

    def test_molecular_weight_ethanol(self):
        np.testing.assert_allclose(ethanol().molecular_weight(), 46.069, atol=0.01)

    def test_molecular_weight_benzene(self):
        np.testing.assert_allclose(benzene().molecular_weight(), 78.114, atol=0.01)

    def test_molecular_formula(self):
        assert ethanol().molecular_formula() == "C2H6O"
        assert benzene().molecular_formula() == "C6H6"

    def test_valence_used_with_double_bond(self):
        mol = Molecule.from_atoms_and_bonds(["C", "O"], [(0, 1, 2.0)])
        assert mol.valence_used(0) == 2.0
        assert mol.implicit_hydrogens(1) == 0


class TestGraphQueries:
    def test_neighbors_and_degree(self):
        mol = ethanol()
        assert mol.neighbors(1) == {0, 2}
        assert mol.degree(1) == 2

    def test_connected(self):
        mol = ethanol()
        assert mol.is_connected()
        mol.remove_bond(1, 2)
        assert not mol.is_connected()
        assert len(mol.connected_components()) == 2

    def test_empty_molecule_not_connected(self):
        assert not Molecule().is_connected()

    def test_rings_benzene(self):
        rings = benzene().rings()
        assert len(rings) == 1
        assert len(rings[0]) == 6

    def test_ring_bonds(self):
        mol = benzene()
        mol.add_atom("C")
        mol.add_bond(0, 6, 1.0)  # exocyclic methyl
        ring = mol.ring_bonds()
        assert len(ring) == 6
        assert (0, 6) not in ring

    def test_atoms_in_rings(self):
        mol = benzene()
        mol.add_atom("C")
        mol.add_bond(0, 6, 1.0)
        assert mol.atoms_in_rings() == set(range(6))

    def test_subgraph_reindexes(self):
        mol = ethanol()
        sub = mol.subgraph({1, 2})
        assert sub.num_atoms == 2
        assert sub.symbols == ["C", "O"]
        assert sub.bond_order(0, 1) == 1.0

    def test_to_networkx_attrs(self):
        graph = ethanol().to_networkx()
        assert graph.nodes[2]["symbol"] == "O"
        assert graph.edges[0, 1]["order"] == 1.0

    def test_equality(self):
        assert ethanol() == ethanol()
        other = ethanol()
        other.set_bond_order(0, 1, 2.0)
        assert ethanol() != other

    def test_from_smiles_equivalent(self):
        assert from_smiles("CCO") == ethanol()
