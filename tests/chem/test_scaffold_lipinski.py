"""Tests for Murcko scaffolds, canonical signatures, and Lipinski filters."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chem import (
    AROMATIC,
    Molecule,
    MoleculeSpec,
    canonical_signature,
    from_smiles,
    lipinski_report,
    murcko_scaffold,
    passes_rule_of_five,
    passes_veber,
    random_molecule,
    same_molecule,
    scaffold_diversity,
)


def benzene():
    return Molecule.from_atoms_and_bonds(
        ["C"] * 6, [(i, (i + 1) % 6, AROMATIC) for i in range(6)]
    )


class TestMurckoScaffold:
    def test_acyclic_gives_empty(self):
        assert murcko_scaffold(from_smiles("CCCCO")).num_atoms == 0

    def test_plain_ring_is_its_own_scaffold(self):
        ring = from_smiles("C1CCCCC1")
        assert same_molecule(murcko_scaffold(ring), ring)

    def test_substituents_removed(self):
        decorated = from_smiles("CC1CCCC(O)C1")
        scaffold = murcko_scaffold(decorated)
        assert scaffold.num_atoms == 6
        assert set(scaffold.symbols) == {"C"}

    def test_linker_retained(self):
        # Two rings joined by a 2-carbon linker: the linker stays.
        two_rings = from_smiles("C1CCCCC1CCC1CCCCC1")
        scaffold = murcko_scaffold(two_rings)
        assert scaffold.num_atoms == 14  # 6 + 2 + 6

    def test_dangling_chain_on_linker_removed(self):
        mol = from_smiles("C1CCCCC1C(CCC)C1CCCCC1")
        scaffold = murcko_scaffold(mol)
        assert scaffold.num_atoms == 13  # 6 + 1 + 6; the CCC branch drops

    def test_original_not_mutated(self):
        mol = from_smiles("CC1CCCCC1")
        murcko_scaffold(mol)
        assert mol.num_atoms == 7


class TestCanonicalSignature:
    def test_invariant_under_renumbering(self):
        a = from_smiles("CCO")
        b = from_smiles("OCC")
        assert canonical_signature(a) == canonical_signature(b)

    def test_distinguishes_constitutional_isomers(self):
        butane = from_smiles("CCCC")
        isobutane = from_smiles("CC(C)C")
        assert canonical_signature(butane) != canonical_signature(isobutane)

    def test_distinguishes_bond_orders(self):
        assert canonical_signature(from_smiles("CC")) != canonical_signature(
            from_smiles("C=C")
        )

    def test_distinguishes_elements(self):
        assert canonical_signature(from_smiles("CCO")) != canonical_signature(
            from_smiles("CCN")
        )

    def test_empty_molecule(self):
        assert canonical_signature(Molecule()) == "empty"

    def test_same_molecule_predicate(self):
        assert same_molecule(benzene(), benzene())
        assert not same_molecule(benzene(), from_smiles("C1CCCCC1"))

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 50_000))
    def test_invariant_under_random_permutation(self, seed):
        rng = np.random.default_rng(seed)
        mol = random_molecule(rng, MoleculeSpec(min_atoms=4, max_atoms=12))
        permutation = rng.permutation(mol.num_atoms)
        remapped = Molecule()
        inverse = np.empty_like(permutation)
        inverse[permutation] = np.arange(mol.num_atoms)
        for new_index in range(mol.num_atoms):
            remapped.add_atom(mol.symbols[permutation[new_index]])
        for i, j, order in mol.bonds():
            remapped.add_bond(int(inverse[i]), int(inverse[j]), order)
        assert canonical_signature(mol) == canonical_signature(remapped)


class TestScaffoldDiversity:
    def test_empty_set(self):
        assert scaffold_diversity([]) == 0.0

    def test_identical_scaffolds(self):
        mols = [from_smiles("CC1CCCCC1"), from_smiles("CCC1CCCCC1")]
        assert scaffold_diversity(mols) == 0.5

    def test_distinct_scaffolds(self):
        mols = [from_smiles("C1CCCCC1"), benzene()]
        assert scaffold_diversity(mols) == 1.0


class TestLipinski:
    def test_small_molecule_passes(self):
        report = lipinski_report(from_smiles("CCO"))
        assert report.n_violations == 0
        assert passes_rule_of_five(from_smiles("CCO"))
        assert passes_veber(from_smiles("CCO"))

    def test_heavy_molecule_violates_mw(self):
        big = from_smiles("C" * 40)
        report = lipinski_report(big)
        assert "MW > 500" in report.violations

    def test_greasy_molecule_violates_logp(self):
        greasy = from_smiles("C" * 35)
        assert "logP > 5" in lipinski_report(greasy).violations

    def test_donor_violation(self):
        polyol = from_smiles("OC(O)C(O)C(O)C(O)C(O)O")
        assert "HBD > 5" in lipinski_report(polyol).violations

    def test_acceptor_violation(self):
        ethers = from_smiles("COCOCOCOCOCOCOCOCOCOCOC")
        assert "HBA > 10" in lipinski_report(ethers).violations

    def test_allowed_violations_threshold(self):
        big = from_smiles("C" * 40)  # violates MW and logP
        assert not passes_rule_of_five(big, allowed_violations=1)
        assert passes_rule_of_five(big, allowed_violations=2)

    def test_veber_rotatable_violation(self):
        floppy = from_smiles("C" * 16)
        assert lipinski_report(floppy).rotatable > 10
        assert not passes_veber(floppy)

    def test_report_values_consistent(self):
        mol = from_smiles("CCO")
        report = lipinski_report(mol)
        assert report.molecular_weight == pytest.approx(mol.molecular_weight())
        assert report.donors == 1
        assert report.acceptors == 1
