"""Tests for SMILES I/O, descriptors, logP, QED, SA, and set metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chem import (
    AROMATIC,
    Molecule,
    MoleculeSpec,
    aromatic_ring_count,
    crippen_logp,
    default_fragment_table,
    from_smiles,
    hydrogen_bond_acceptors,
    hydrogen_bond_donors,
    normalized_logp,
    normalized_sa,
    qed,
    qed_properties,
    random_molecule,
    random_molecules,
    ring_count,
    rotatable_bonds,
    sa_score,
    score_matrices,
    score_molecules,
    structural_alerts,
    to_smiles,
    tpsa,
    uniqueness,
)
from repro.chem.qed import ADS_PARAMS, ads


def mol_from(smiles):
    return from_smiles(smiles)


def _benzene():
    bonds = [(i, (i + 1) % 6, AROMATIC) for i in range(6)]
    return Molecule.from_atoms_and_bonds(["C"] * 6, bonds)


class TestSmiles:
    def test_write_ethanol(self):
        assert to_smiles(mol_from("CCO")) == "CCO"

    def test_roundtrip_branches(self):
        smiles = "CC(C)(C)O"
        assert to_smiles(mol_from(smiles)) == smiles

    def test_roundtrip_double_bond(self):
        assert to_smiles(mol_from("C=CC#N")) == "C=CC#N"

    def test_roundtrip_ring(self):
        mol = mol_from("C1CCCCC1")
        again = from_smiles(to_smiles(mol))
        assert again.num_atoms == 6
        assert len(again.rings()) == 1

    def test_roundtrip_aromatic_ring(self):
        bonds = [(i, (i + 1) % 6, AROMATIC) for i in range(6)]
        benzene = Molecule.from_atoms_and_bonds(["C"] * 6, bonds)
        again = from_smiles(to_smiles(benzene))
        assert aromatic_ring_count(again) == 1

    def test_parse_explicit_single(self):
        assert from_smiles("C-C") == from_smiles("CC")

    def test_parse_two_char_element(self):
        mol = from_smiles("CCl")
        assert mol.symbols == ["C", "Cl"]

    def test_unbalanced_paren(self):
        with pytest.raises(ValueError):
            from_smiles("C(C")

    def test_unclosed_ring(self):
        with pytest.raises(ValueError):
            from_smiles("C1CC")

    def test_disconnected_write_raises(self):
        mol = Molecule.from_atoms_and_bonds(["C", "C"], [])
        with pytest.raises(ValueError):
            to_smiles(mol)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_random_molecule_smiles_roundtrip_preserves_counts(self, seed):
        rng = np.random.default_rng(seed)
        mol = random_molecule(rng, MoleculeSpec(max_atoms=12))
        again = from_smiles(to_smiles(mol))
        assert sorted(again.symbols) == sorted(mol.symbols)
        assert again.num_bonds == mol.num_bonds
        assert again.molecular_formula() == mol.molecular_formula()


class TestDescriptors:
    def test_hba_hbd_ethanol(self):
        mol = mol_from("CCO")
        assert hydrogen_bond_acceptors(mol) == 1
        assert hydrogen_bond_donors(mol) == 1

    def test_hbd_requires_hydrogen(self):
        ether = mol_from("COC")
        assert hydrogen_bond_acceptors(ether) == 1
        assert hydrogen_bond_donors(ether) == 0

    def test_rotatable_bonds_butane(self):
        assert rotatable_bonds(mol_from("CCCC")) == 1

    def test_rotatable_bonds_exclude_ring(self):
        assert rotatable_bonds(mol_from("C1CCCCC1")) == 0

    def test_rotatable_bonds_exclude_double(self):
        assert rotatable_bonds(mol_from("C=CC=C")) == 1

    def test_ring_count(self):
        assert ring_count(mol_from("C1CCCCC1")) == 1
        assert ring_count(mol_from("CCCC")) == 0

    def test_aromatic_ring_count(self):
        benzene = _benzene()
        assert aromatic_ring_count(benzene) == 1
        assert aromatic_ring_count(mol_from("C1CCCCC1")) == 0

    def test_tpsa_zero_for_hydrocarbon(self):
        assert tpsa(mol_from("CCCC")) == 0.0

    def test_tpsa_hydroxyl(self):
        np.testing.assert_allclose(tpsa(mol_from("CCO")), 20.23)

    def test_tpsa_ether_smaller_than_hydroxyl(self):
        assert tpsa(mol_from("COC")) < tpsa(mol_from("CCO"))

    def test_tpsa_carbonyl(self):
        np.testing.assert_allclose(tpsa(mol_from("CC=O")), 17.07)

    def test_alerts_clean_molecule(self):
        assert structural_alerts(mol_from("CCO")) == 0

    def test_alert_peroxide(self):
        assert structural_alerts(mol_from("COOC")) >= 1

    def test_alert_aldehyde(self):
        assert structural_alerts(mol_from("CC=O")) >= 1

    def test_alert_thiocarbonyl(self):
        assert structural_alerts(mol_from("CC(=S)C")) >= 1

    def test_alert_cumulated(self):
        assert structural_alerts(mol_from("C=C=C")) >= 1

    def test_alert_hydrazine_and_azo(self):
        assert structural_alerts(mol_from("CNNC")) >= 1
        assert structural_alerts(mol_from("CN=NC")) >= 1


class TestCrippenLogP:
    def test_alkane_positive(self):
        assert crippen_logp(mol_from("CCCCCC")) > 1.0

    def test_polar_lower_than_alkane(self):
        assert crippen_logp(mol_from("OCCO")) < crippen_logp(mol_from("CCCC"))

    def test_longer_chain_higher(self):
        assert crippen_logp(mol_from("CCCCCCCC")) > crippen_logp(mol_from("CCC"))

    def test_aromatic_contribution(self):
        np.testing.assert_allclose(
            crippen_logp(_benzene()), 6 * 0.2940 + 6 * 0.1230, atol=1e-9
        )

    def test_normalized_logp_in_unit_interval(self):
        for smiles in ["C", "CCCCCCCCCCCC", "OCC(O)C(O)CO"]:
            value = normalized_logp(mol_from(smiles))
            assert 0.0 <= value <= 1.0


class TestQED:
    def test_ads_positive_normalized(self):
        for name, params in ADS_PARAMS.items():
            for x in [0.0, 1.0, 10.0, 100.0, 500.0]:
                value = ads(x, params)
                assert 0.0 < value <= 1.0 + 1e-9, (name, x, value)

    def test_ads_mw_peak_location(self):
        # MW desirability should peak near ~300 Da and fall at extremes.
        params = ADS_PARAMS["MW"]
        assert ads(305, params) > ads(30, params)
        assert ads(305, params) > ads(700, params)

    def test_qed_in_unit_interval(self):
        for smiles in ["CCO", "CCCCCCCCCC", "C1CCCCC1"]:
            assert 0.0 <= qed(mol_from(smiles)) <= 1.0

    def test_qed_empty_molecule(self):
        assert qed(Molecule()) == 0.0

    def test_qed_druglike_beats_pathological(self):
        druglike = from_smiles("CC(C)CC1:C:C:C:C:C1")  # isobutylbenzene-ish
        pathological = mol_from("C" * 40)  # C40 chain
        assert qed(druglike) > qed(pathological)

    def test_qed_alerts_hurt(self):
        clean = mol_from("CCCCO")
        alerty = mol_from("CCCOO")  # peroxide
        assert qed(clean) > qed(alerty)

    def test_qed_properties_keys(self):
        props = qed_properties(mol_from("CCO"))
        assert set(props) == {
            "MW", "ALOGP", "HBA", "HBD", "PSA", "ROTB", "AROM", "ALERTS",
        }


class TestSAScore:
    def test_range(self):
        table = default_fragment_table()
        for smiles in ["CCO", "CCCCCC", "C1CCCCC1"]:
            value = sa_score(mol_from(smiles), table)
            assert 1.0 <= value <= 10.0

    def test_simple_easier_than_weird(self):
        table = default_fragment_table()
        simple = mol_from("CCCCO")
        weird = from_smiles("FC1(F)C(F)(F)C1(F)F")  # strained perfluoro ring
        assert sa_score(simple, table) < sa_score(weird, table)

    def test_macrocycle_harder_than_chain(self):
        table = default_fragment_table()
        n = 12
        chain = mol_from("C" * n)
        ring_bonds = [(i, (i + 1) % n, 1.0) for i in range(n)]
        macrocycle = Molecule.from_atoms_and_bonds(["C"] * n, ring_bonds)
        assert sa_score(chain, table) < sa_score(macrocycle, table)

    def test_empty_molecule_hard(self):
        assert sa_score(Molecule()) == 10.0

    def test_normalized_sa_unit_interval(self):
        assert 0.0 <= normalized_sa(mol_from("CCO")) <= 1.0


class TestSetMetrics:
    def test_score_generator_molecules(self):
        mols = random_molecules(30, seed=7)
        scores = score_molecules(mols)
        assert scores.n_total == 30
        assert scores.n_scored == 30
        assert scores.validity == 1.0  # generator output is strictly valid
        assert 0.0 <= scores.qed <= 1.0
        assert 0.0 <= scores.logp <= 1.0
        assert 0.0 <= scores.sa <= 1.0

    def test_score_random_matrices_runs(self):
        rng = np.random.default_rng(0)
        matrices = rng.normal(loc=0.3, scale=1.2, size=(20, 10, 10))
        scores = score_matrices(matrices)
        assert scores.n_total == 20
        assert 0.0 <= scores.validity <= 1.0

    def test_strict_mode_skips_invalid(self):
        mol = Molecule.from_atoms_and_bonds(["C", "C"], [])  # disconnected
        scores = score_molecules([mol], correct=False)
        assert scores.n_scored == 0

    def test_uniqueness(self):
        a = mol_from("CCO")
        b = mol_from("CCO")
        c = mol_from("CCC")
        assert uniqueness([a, b, c]) == pytest.approx(2 / 3)

    def test_empty_set(self):
        scores = score_molecules([])
        assert scores.n_total == 0
        assert scores.qed == 0.0
