"""Tests for Morgan-style fingerprints, Tanimoto, and novelty."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chem import (
    MoleculeSpec,
    bulk_tanimoto,
    from_smiles,
    morgan_fingerprint,
    nearest_neighbor_similarity,
    novelty,
    random_molecule,
    random_molecules,
    tanimoto,
)


class TestFingerprint:
    def test_shape_and_dtype(self):
        fp = morgan_fingerprint(from_smiles("CCO"), n_bits=256)
        assert fp.shape == (256,)
        assert fp.dtype == bool
        assert fp.any()

    def test_deterministic(self):
        a = morgan_fingerprint(from_smiles("CCO"))
        b = morgan_fingerprint(from_smiles("CCO"))
        np.testing.assert_array_equal(a, b)

    def test_renumbering_invariant(self):
        a = morgan_fingerprint(from_smiles("CCO"))
        b = morgan_fingerprint(from_smiles("OCC"))
        np.testing.assert_array_equal(a, b)

    def test_min_bits_enforced(self):
        with pytest.raises(ValueError):
            morgan_fingerprint(from_smiles("C"), n_bits=4)

    def test_submolecule_bits_subset(self):
        # Ethanol contains every radius-0 environment of ethane's carbons?
        # Not exactly — but a molecule trivially contains its own bits.
        fp = morgan_fingerprint(from_smiles("CCO"))
        assert tanimoto(fp, fp) == 1.0


class TestTanimoto:
    def test_identical(self):
        fp = morgan_fingerprint(from_smiles("CCCC"))
        assert tanimoto(fp, fp) == 1.0

    def test_disjoint(self):
        a = np.zeros(16, dtype=bool)
        b = np.zeros(16, dtype=bool)
        a[0] = True
        b[1] = True
        assert tanimoto(a, b) == 0.0

    def test_empty(self):
        z = np.zeros(16, dtype=bool)
        assert tanimoto(z, z) == 0.0

    def test_half_overlap(self):
        a = np.array([1, 1, 0, 0], dtype=bool)
        b = np.array([1, 0, 1, 0], dtype=bool)
        assert tanimoto(a, b) == pytest.approx(1 / 3)

    def test_similar_molecules_score_higher(self):
        ethanol = morgan_fingerprint(from_smiles("CCO"))
        propanol = morgan_fingerprint(from_smiles("CCCO"))
        benzene_like = morgan_fingerprint(from_smiles("C1CCCCC1"))
        assert tanimoto(ethanol, propanol) > tanimoto(ethanol, benzene_like)

    def test_bulk_matches_scalar(self):
        mols = [from_smiles(s) for s in ("CCO", "CCC", "C1CCCCC1")]
        fps = np.stack([morgan_fingerprint(m) for m in mols])
        query = morgan_fingerprint(from_smiles("CCO"))
        bulk = bulk_tanimoto(query, fps)
        for i, fp in enumerate(fps):
            assert bulk[i] == pytest.approx(tanimoto(query, fp))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_tanimoto_bounds(self, seed):
        rng = np.random.default_rng(seed)
        a = morgan_fingerprint(random_molecule(rng, MoleculeSpec()))
        b = morgan_fingerprint(random_molecule(rng, MoleculeSpec()))
        assert 0.0 <= tanimoto(a, b) <= 1.0


class TestNovelty:
    def test_copies_are_not_novel(self):
        reference = random_molecules(10, seed=0)
        assert novelty(reference, reference) == 0.0

    def test_disjoint_sets_fully_novel(self):
        small = random_molecules(8, seed=1, spec=MoleculeSpec(min_atoms=4,
                                                              max_atoms=5))
        large = random_molecules(8, seed=2, spec=MoleculeSpec(min_atoms=16,
                                                              max_atoms=20))
        assert novelty(large, small) == 1.0

    def test_threshold_softens(self):
        reference = random_molecules(10, seed=3)
        generated = random_molecules(10, seed=4)
        strict = novelty(generated, reference, threshold=1.0)
        loose = novelty(generated, reference, threshold=0.3)
        assert loose <= strict

    def test_empty_generated(self):
        assert novelty([], random_molecules(3, seed=5)) == 0.0

    def test_empty_reference_rejected(self):
        with pytest.raises(ValueError):
            nearest_neighbor_similarity(random_molecules(2, seed=6), [])

    def test_nearest_neighbor_shape(self):
        gen = random_molecules(5, seed=7)
        ref = random_molecules(3, seed=8)
        sims = nearest_neighbor_similarity(gen, ref)
        assert sims.shape == (5,)
        assert np.all((0 <= sims) & (sims <= 1))
